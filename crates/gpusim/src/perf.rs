//! The performance model: sampled warp-level event counting plus a
//! calibrated throughput/latency model.
//!
//! The model walks the per-thread body of a lowered kernel for a
//! *stratified sample* of thread blocks and warps, evaluating every memory
//! access's real address stream.  Coalescing, bank conflicts and dynamic
//! instruction counts therefore *emerge* from the generated code — the
//! mechanism behind the paper's Tables I–III — rather than being asserted.
//! Sampled counts are scaled to the full grid; long sequential loops are
//! sampled stratified as well (iteration behaviour in the BLAS3 kernels is
//! either uniform or piecewise-linear in the loop counter, so stratified
//! means are accurate).
//!
//! Time model:
//! ```text
//! T_kernel = max(T_compute, T_memory) / occupancy_efficiency
//! T_compute = warp_instructions × cycles_per_warp_instr / (active_SMs × clock)
//! T_memory  = bytes / (bandwidth × efficiency)
//! ```
//! plus launch overheads and the analytic cost of `GM_map` prologues and
//! `check_blank_zero` passes.

use oa_loopir::arrays::{AllocMode, MemSpace};
use oa_loopir::expr::{AffineExpr, CmpOp, Predicate};
use oa_loopir::interp::Bindings;
use oa_loopir::scalar::ScalarExpr;
use oa_loopir::stmt::{AssignOp, SharedStage, Stmt};
use oa_loopir::Program;
use std::collections::HashMap;

use crate::device::{DeviceSpec, WARP};
use crate::events::{record_gmem, smem_replays};
use crate::launch::{
    estimate_regs_per_thread, extract_launch, smem_bytes_per_block, Launch, LaunchError,
};
use crate::profile::ProfileCounters;

/// Result of a performance evaluation.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Device name.
    pub device: String,
    /// Main-kernel time, seconds.
    pub kernel_time_s: f64,
    /// Prologue (`GM_map`, blank checks) time, seconds.
    pub prologue_time_s: f64,
    /// End-to-end time.
    pub total_time_s: f64,
    /// Useful GFLOPS (caller-supplied flop count over total time).
    pub gflops: f64,
    /// Occupancy of the main kernel.
    pub occupancy: f64,
    /// Compute-side time bound.
    pub t_compute: f64,
    /// Memory-side time bound.
    pub t_memory: f64,
    /// Scaled hardware counters.
    pub counters: ProfileCounters,
    /// Registers/thread estimate used for occupancy.
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes.
    pub smem_bytes: u32,
}

/// Why a performance evaluation failed — one class per distinguishable
/// cause, so the tuner's failure table can bucket candidates precisely.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The program does not lower to a launchable kernel.
    Launch(LaunchError),
    /// The model produced a non-finite or non-positive time/GFLOPS figure
    /// (a modelling bug surfaced by a degenerate candidate; never silently
    /// ranked).
    NonFinite(&'static str),
}

impl EvalError {
    /// A short stable class label (`launch/not-mapped`,
    /// `launch/malformed`, `launch/size`, `non-finite`) for failure-table
    /// bucketing.
    pub fn class(&self) -> &'static str {
        match self {
            EvalError::Launch(LaunchError::NotMapped) => "launch/not-mapped",
            EvalError::Launch(LaunchError::Malformed(_)) => "launch/malformed",
            EvalError::Launch(LaunchError::SizeConstraint { .. }) => "launch/size",
            EvalError::NonFinite(_) => "non-finite",
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Launch(e) => write!(f, "launch: {e}"),
            EvalError::NonFinite(what) => write!(f, "non-finite model output ({what})"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<LaunchError> for EvalError {
    fn from(e: LaunchError) -> Self {
        EvalError::Launch(e)
    }
}

/// Evaluate a lowered program on a device.
///
/// `useful_flops` is the routine's nominal flop count (e.g. `2·M·N·K` for
/// GEMM); it defines the GFLOPS denominator exactly as the paper's figures
/// do.  `blank_zero` supplies the runtime `check_blank_zero` outcome for
/// multi-versioned kernels.
pub fn evaluate(
    p: &Program,
    bindings: &Bindings,
    device: &DeviceSpec,
    useful_flops: f64,
    blank_zero: bool,
) -> Result<PerfReport, EvalError> {
    let launch = extract_launch(p, bindings)?;
    let compiled = Compiler::new(p, bindings, &launch, blank_zero, device).compile(&launch.inner);

    let threads = launch.threads_per_block();
    let nwarps = ((threads + WARP as i64 - 1) / WARP as i64).max(1);

    // Stratified block sample (≤ 4 strata per grid dimension; the BLAS3
    // per-block workloads are constant or piecewise linear in the block
    // index, for which stratified midpoints are near-exact).
    let sample_x = strata(launch.grid.0, 4);
    let sample_y = strata(launch.grid.1, 4);

    // Warp sample: warp 0 exactly once (it owns thread (0,0), which can
    // carry bound serial work), plus one representative for the rest.
    let warp_samples: Vec<(i64, f64)> = if nwarps == 1 {
        vec![(0, 1.0)]
    } else {
        vec![(0, 1.0), (nwarps - 1, (nwarps - 1) as f64)]
    };

    let mut counters = ProfileCounters::default();
    for &(by, wy) in &sample_y {
        for &(bx, wx) in &sample_x {
            for &(warp, ww) in &warp_samples {
                let mut walker = Walker::new(device, &compiled, &launch, bx, by, warp);
                walker.weight = wx * wy * ww;
                walker.walk(&compiled.body);
                counters += walker.counters;
            }
        }
    }

    // Resources and occupancy.
    let regs = estimate_regs_per_thread(p);
    let smem = smem_bytes_per_block(p);
    let occ = device.occupancy(threads as u32, regs, smem);
    // Below ~25% occupancy the SM cannot hide latency; the penalty is a
    // simple linear derating with a floor.
    let occ_eff = (occ / 0.25).clamp(0.20, 1.0);

    let active_sms = device.sms.min(launch.total_blocks() as u32).max(1) as f64;
    let clock_hz = device.clock_ghz * 1.0e9;
    let t_compute = counters.instructions * device.cycles_per_warp_instr()
        / (active_sms * clock_hz * device.issue_efficiency);
    let t_memory = counters.gmem_bytes / (device.mem_bw_gbs * 1.0e9 * device.mem_efficiency);
    let kernel_time = t_compute.max(t_memory) / occ_eff + device.launch_overhead_s;

    let prologue_time = prologue_cost(p, bindings, device);
    let total = kernel_time + prologue_time;
    if !total.is_finite() || total <= 0.0 {
        return Err(EvalError::NonFinite("total time"));
    }

    Ok(PerfReport {
        device: device.name.to_string(),
        kernel_time_s: kernel_time,
        prologue_time_s: prologue_time,
        total_time_s: total,
        gflops: useful_flops / total / 1.0e9,
        occupancy: occ,
        t_compute,
        t_memory,
        counters,
        regs_per_thread: regs,
        smem_bytes: smem,
    })
}

/// Stratified sample of `[0, n)`: up to `max_strata` (midpoint, weight)
/// pairs whose weights sum to `n`.
fn strata(n: i64, max_strata: usize) -> Vec<(i64, f64)> {
    let n = n.max(1);
    let s = (max_strata as i64).min(n);
    (0..s)
        .map(|k| {
            let lo = k * n / s;
            let hi = (k + 1) * n / s;
            ((lo + hi - 1) / 2, (hi - lo) as f64)
        })
        .collect()
}

/// Analytic cost of the `GM_map` prologues and blank-zero checks: simple
/// streaming passes, bandwidth-bound with a small instruction overhead.
fn prologue_cost(p: &Program, bindings: &Bindings, device: &DeviceSpec) -> f64 {
    let resolve = |n: &str| p.resolve(n, bindings);
    let bw = device.mem_bw_gbs * 1.0e9 * device.mem_efficiency;
    let clock_hz = device.clock_ghz * 1.0e9;
    let mut t = 0.0;
    for mk in &p.prologues {
        let elems = (mk.rows.eval(&resolve) * mk.cols.eval(&resolve)) as f64;
        let bytes = elems * 8.0; // read + write
        let instr = elems * 6.0 / WARP as f64;
        let t_c = instr * device.cycles_per_warp_instr() / (device.sms as f64 * clock_hz);
        t += (bytes / bw).max(t_c) + device.launch_overhead_s;
    }
    for chk in &p.blank_checks {
        if let Some(decl) = p.array(&chk.array) {
            let elems = (decl.rows.eval(&resolve) * decl.cols.eval(&resolve)) as f64 / 2.0;
            t += elems * 4.0 / bw + device.launch_overhead_s;
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Compiled form: affine expressions flattened onto an indexed environment so
// the inner sampling loops avoid string lookups entirely.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct CExpr {
    terms: Vec<(usize, i64)>,
    cst: i64,
}

impl CExpr {
    #[inline]
    fn eval(&self, env: &[i64]) -> i64 {
        let mut acc = self.cst;
        for &(v, c) in &self.terms {
            acc += c * env[v];
        }
        acc
    }
}

#[derive(Clone, Debug)]
struct CCond {
    lhs: CExpr,
    op: CmpOp,
    rhs: CExpr,
}

#[derive(Clone, Debug, Default)]
struct CPred {
    conds: Vec<CCond>,
    thread0: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CSpace {
    Global,
    Shared,
}

#[derive(Clone, Debug)]
struct CAccess {
    space: CSpace,
    is_store: bool,
    word: CExpr,
    /// Unique access-site id, used by the walker's register-reuse memo.
    site: usize,
}

#[derive(Clone, Debug)]
struct CStage {
    rows: i64,
    cols: i64,
    src_row0: CExpr,
    src_col0: CExpr,
    src_base: i64,
    src_ld: i64,
    src_rows: i64,
    src_cols: i64,
    dst_base: i64,
    dst_ld: i64,
    mode: AllocMode,
    strided: bool,
}

#[derive(Clone, Debug)]
enum CStmt {
    Loop {
        var: usize,
        lower: CExpr,
        upper: CExpr,
        overhead: f64,
        body: Vec<CStmt>,
    },
    Assign {
        accesses: Vec<CAccess>,
        instr: f64,
        flops: f64,
    },
    If {
        pred: CPred,
        then_b: Vec<CStmt>,
        else_b: Vec<CStmt>,
    },
    Stage(CStage),
    /// Register tile load/store: per-element (guard, global word address).
    RegXfer {
        elems: Vec<(CPred, CExpr)>,
        is_store: bool,
    },
    Nop,
}

#[derive(Debug)]
struct Compiled {
    body: Vec<CStmt>,
    nvars: usize,
    nsites: usize,
    smem_load_cost: f64,
    /// Indices of the two builtin thread-id variables.
    tx_var: usize,
    ty_var: usize,
    /// Bind variables: (env index, builtin).
    binds: Vec<(usize, crate::launch::Builtin)>,
}

struct Compiler<'a> {
    program: &'a Program,
    bindings: &'a Bindings,
    blank_zero: bool,
    /// Instruction cost of a shared-memory load: on CC 1.x one MAD operand
    /// may come straight from shared memory, so the load is nearly free;
    /// Fermi's load/store architecture needs a real LDS instruction.
    smem_load_cost: f64,
    scope: Vec<String>,
    vars: Vec<String>,
    var_map: HashMap<String, usize>,
    /// Word base offset of each global array.
    gbase: HashMap<String, i64>,
    /// Word base offset of each shared array (separate space).
    sbase: HashMap<String, i64>,
    binds: Vec<(usize, crate::launch::Builtin)>,
    tx_var: usize,
    ty_var: usize,
    sites: usize,
    /// Known inclusive value ranges of in-scope iteration variables, used
    /// for guard specialization (nvcc-style "fulltile" kernels: guards
    /// provably true over the whole iteration box are dropped).
    ranges: HashMap<usize, (i64, i64)>,
}

impl<'a> Compiler<'a> {
    fn new(
        p: &'a Program,
        bindings: &'a Bindings,
        launch: &Launch,
        blank_zero: bool,
        device: &DeviceSpec,
    ) -> Self {
        let mut c = Compiler {
            program: p,
            bindings,
            blank_zero,
            smem_load_cost: match device.cc {
                crate::device::ComputeCapability::Cc2_0 => 1.0,
                _ => 0.3,
            },
            scope: Vec::new(),
            vars: Vec::new(),
            var_map: HashMap::new(),
            gbase: HashMap::new(),
            sbase: HashMap::new(),
            binds: Vec::new(),
            tx_var: 0,
            ty_var: 0,
            sites: 0,
            ranges: HashMap::new(),
        };
        // Assign base offsets (words), 32-word aligned so arrays never
        // share a cache line.
        let mut goff = 0i64;
        let mut soff = 0i64;
        let resolve = |n: &str| p.resolve(n, bindings);
        for a in &p.arrays {
            match a.space {
                MemSpace::Global => {
                    c.gbase.insert(a.name.clone(), goff);
                    let len = (a.rows.eval(&resolve) + a.pad) * a.cols.eval(&resolve);
                    goff += (len + 31) / 32 * 32 + 32;
                }
                MemSpace::Shared => {
                    c.sbase.insert(a.name.clone(), soff);
                    let len = (a.rows.eval(&resolve) + a.pad) * a.cols.eval(&resolve);
                    soff += len;
                }
                MemSpace::Reg => {}
            }
        }
        c.tx_var = c.var_idx("__tx");
        c.ty_var = c.var_idx("__ty");
        c.ranges.insert(c.tx_var, (0, launch.block.0 - 1));
        c.ranges.insert(c.ty_var, (0, launch.block.1 - 1));
        for (v, b) in &launch.binds {
            c.scope.push(v.clone());
            let idx = c.var_idx(v);
            let hi = match b {
                crate::launch::Builtin::BlockX => launch.grid.0,
                crate::launch::Builtin::BlockY => launch.grid.1,
                crate::launch::Builtin::ThreadX => launch.block.0,
                crate::launch::Builtin::ThreadY => launch.block.1,
            };
            c.ranges.insert(idx, (0, hi - 1));
            c.binds.push((idx, *b));
        }
        c.scope.push("__tx".into());
        c.scope.push("__ty".into());
        c
    }

    fn var_idx(&mut self, name: &str) -> usize {
        if let Some(i) = self.var_map.get(name) {
            return *i;
        }
        let i = self.vars.len();
        self.vars.push(name.to_string());
        self.var_map.insert(name.to_string(), i);
        i
    }

    fn compile(mut self, stmts: &[Stmt]) -> Compiled {
        let body = self.compile_stmts(stmts);
        Compiled {
            body,
            nvars: self.vars.len(),
            nsites: self.sites,
            smem_load_cost: self.smem_load_cost,
            tx_var: self.tx_var,
            ty_var: self.ty_var,
            binds: self.binds.clone(),
        }
    }

    /// Inclusive interval of an affine expression over the known ranges of
    /// in-scope variables; `None` when any variable's range is unknown.
    fn expr_range(&mut self, e: &AffineExpr) -> Option<(i64, i64)> {
        let mut lo = e.constant();
        let mut hi = e.constant();
        // Collect first to appease the borrow checker.
        let terms: Vec<(String, i64)> = e.terms().map(|(v, c)| (v.to_string(), c)).collect();
        for (v, c) in terms {
            if self.scope.iter().any(|s| s == &v) {
                let idx = self.var_idx(&v);
                let (vlo, vhi) = *self.ranges.get(&idx)?;
                if c >= 0 {
                    lo += c * vlo;
                    hi += c * vhi;
                } else {
                    lo += c * vhi;
                    hi += c * vlo;
                }
            } else {
                let k = c * self.program.resolve(&v, self.bindings);
                lo += k;
                hi += k;
            }
        }
        Some((lo, hi))
    }

    /// Is a comparison provably true / provably false over the iteration
    /// box?  `None` means genuinely dynamic.
    fn cond_verdict(&mut self, c: &oa_loopir::AffineCond) -> Option<bool> {
        let (llo, lhi) = self.expr_range(&c.lhs)?;
        let (rlo, rhi) = self.expr_range(&c.rhs)?;
        let always = match c.op {
            CmpOp::Lt => lhi < rlo,
            CmpOp::Le => lhi <= rlo,
            CmpOp::Gt => llo > rhi,
            CmpOp::Ge => llo >= rhi,
            CmpOp::Eq => llo == lhi && rlo == rhi && llo == rlo,
            CmpOp::Ne => lhi < rlo || llo > rhi,
        };
        if always {
            return Some(true);
        }
        let never = match c.op {
            CmpOp::Lt => llo >= rhi,
            CmpOp::Le => llo > rhi,
            CmpOp::Gt => lhi <= rlo,
            CmpOp::Ge => lhi < rlo,
            CmpOp::Eq => lhi < rlo || llo > rhi,
            CmpOp::Ne => llo == lhi && rlo == rhi && llo == rlo,
        };
        if never {
            return Some(false);
        }
        None
    }

    fn cexpr(&mut self, e: &AffineExpr) -> CExpr {
        let mut out = CExpr {
            terms: Vec::new(),
            cst: e.constant(),
        };
        for (v, coeff) in e.terms() {
            if self.scope.iter().any(|s| s == v) {
                let idx = self.var_idx(v);
                out.terms.push((idx, coeff));
            } else {
                out.cst += coeff * self.program.resolve(v, self.bindings);
            }
        }
        out
    }

    /// Compile a predicate; returns `None` when the predicate is statically
    /// false under the blank-zero assumption (branch pruned).
    fn cpred(&mut self, pred: &Predicate) -> Option<CPred> {
        if let Some(_arr) = &pred.blank_zero {
            let want = !pred.blank_zero_negated;
            if self.blank_zero != want {
                return None;
            }
        }
        let mut conds = Vec::new();
        for c in &pred.conds {
            match self.cond_verdict(c) {
                Some(true) => continue, // specialized away (full tile)
                Some(false) => return None,
                None => conds.push(CCond {
                    lhs: self.cexpr(&c.lhs),
                    op: c.op,
                    rhs: self.cexpr(&c.rhs),
                }),
            }
        }
        Some(CPred {
            conds,
            thread0: pred.thread0_only,
        })
    }

    fn ld_of(&self, name: &str) -> i64 {
        let resolve = |n: &str| self.program.resolve(n, self.bindings);
        self.program
            .array(name)
            .map(|a| a.rows.eval(&resolve) + a.pad)
            .unwrap_or(1)
    }

    fn access_word(&mut self, acc: &oa_loopir::Access) -> Option<CAccess> {
        let space = self
            .program
            .array(&acc.array)
            .map(|a| a.space)
            .unwrap_or(MemSpace::Global);
        let (cspace, base) = match space {
            MemSpace::Global => (CSpace::Global, *self.gbase.get(&acc.array).unwrap_or(&0)),
            MemSpace::Shared => (CSpace::Shared, *self.sbase.get(&acc.array).unwrap_or(&0)),
            MemSpace::Reg => return None,
        };
        let ld = self.ld_of(&acc.array);
        let row = self.cexpr(&acc.row);
        let col = self.cexpr(&acc.col);
        // word = base + row + col*ld
        let mut word = CExpr {
            terms: row.terms.clone(),
            cst: base + row.cst + col.cst * ld,
        };
        for (v, c) in col.terms {
            if let Some(t) = word.terms.iter_mut().find(|(tv, _)| *tv == v) {
                t.1 += c * ld;
            } else {
                word.terms.push((v, c * ld));
            }
        }
        let site = self.sites;
        self.sites += 1;
        Some(CAccess {
            space: cspace,
            is_store: false,
            word,
            site,
        })
    }

    fn compile_stmts(&mut self, stmts: &[Stmt]) -> Vec<CStmt> {
        stmts.iter().map(|s| self.compile_stmt(s)).collect()
    }

    fn compile_stmt(&mut self, s: &Stmt) -> CStmt {
        match s {
            Stmt::Loop(l) => {
                let bound_range = (self.expr_range(&l.lower), self.expr_range(&l.upper));
                let lower = self.cexpr(&l.lower);
                let upper = self.cexpr(&l.upper);
                self.scope.push(l.var.clone());
                let var = self.var_idx(&l.var);
                if let (Some((llo, _)), Some((_, uhi))) = bound_range {
                    self.ranges.insert(var, (llo, (uhi - 1).max(llo)));
                }
                let body = self.compile_stmts(&l.body);
                self.scope.pop();
                self.ranges.remove(&var);
                let const_trip = match (l.lower.as_const(), l.upper.as_const()) {
                    (Some(a), Some(b)) => Some(b - a),
                    _ => None,
                };
                let overhead = match l.unroll {
                    0 => 0.0,
                    // nvcc -O2 fully unrolls tiny constant-trip loops.
                    1 if const_trip.map(|t| t <= 8).unwrap_or(false) => 0.0,
                    1 => 2.0,
                    f => 2.0 / f as f64,
                };
                CStmt::Loop {
                    var,
                    lower,
                    upper,
                    overhead,
                    body,
                }
            }
            Stmt::Assign(a) => {
                let mut accesses = Vec::new();
                let mut instr = 0.0;
                for acc in a.rhs.accesses() {
                    if let Some(ca) = self.access_word(acc) {
                        instr += match ca.space {
                            CSpace::Shared => self.smem_load_cost,
                            CSpace::Global => 1.0,
                        };
                        accesses.push(ca);
                    }
                }
                // Arithmetic: a multiply feeding an accumulate fuses to MAD.
                let (arith, flops) = arith_cost(&a.rhs, a.op);
                instr += arith;
                if let Some(mut store) = self.access_word(&a.lhs) {
                    store.is_store = true;
                    // Read-modify-write of a global/shared accumulator also
                    // loads the old value.
                    if a.op != AssignOp::Assign {
                        let mut rd = store.clone();
                        rd.is_store = false;
                        accesses.push(rd);
                        instr += 1.0;
                    }
                    instr += 1.0;
                    accesses.push(store);
                }
                CStmt::Assign {
                    accesses,
                    instr,
                    flops,
                }
            }
            Stmt::If {
                pred,
                then_body,
                else_body,
            } => match self.cpred(pred) {
                Some(cp) => CStmt::If {
                    pred: cp,
                    then_b: self.compile_stmts(then_body),
                    else_b: self.compile_stmts(else_body),
                },
                None => {
                    // Statically false (blank-zero mismatch): only the else
                    // branch survives.
                    let else_b = self.compile_stmts(else_body);
                    CStmt::If {
                        pred: CPred::default(),
                        then_b: else_b,
                        else_b: Vec::new(),
                    }
                }
            },
            Stmt::Stage(st) => self.compile_stage(st),
            Stmt::RegLoad(rt) | Stmt::RegStore(rt) => {
                let is_store = matches!(s, Stmt::RegStore(_));
                let ld = self.ld_of(&rt.global);
                let base = *self.gbase.get(&rt.global).unwrap_or(&0);
                let mut elems = Vec::new();
                for c in 0..rt.cols {
                    for r in 0..rt.rows {
                        let row = rt.row0.add_const(r * rt.row_stride);
                        let col = rt.col0.add_const(c * rt.col_stride);
                        let guard = rt.guard.subst("__gr", &row).subst("__gc", &col);
                        let cg = self.cpred(&guard).unwrap_or_default();
                        let crow = self.cexpr(&row);
                        let ccol = self.cexpr(&col);
                        let mut word = CExpr {
                            terms: crow.terms.clone(),
                            cst: base + crow.cst + ccol.cst * ld,
                        };
                        for (v, cf) in ccol.terms {
                            if let Some(t) = word.terms.iter_mut().find(|(tv, _)| *tv == v) {
                                t.1 += cf * ld;
                            } else {
                                word.terms.push((v, cf * ld));
                            }
                        }
                        elems.push((cg, word));
                    }
                }
                CStmt::RegXfer { elems, is_store }
            }
            Stmt::RegZero(_) => CStmt::Nop,
            Stmt::Sync => CStmt::Nop,
        }
    }

    fn compile_stage(&mut self, st: &SharedStage) -> CStmt {
        let resolve = |n: &str| self.program.resolve(n, self.bindings);
        let src_decl = self.program.array(&st.src);
        let (src_rows, src_cols) = src_decl
            .map(|a| (a.rows.eval(&resolve), a.cols.eval(&resolve)))
            .unwrap_or((i64::MAX, i64::MAX));
        CStmt::Stage(CStage {
            rows: st.rows,
            cols: st.cols,
            src_row0: self.cexpr(&st.src_row0),
            src_col0: self.cexpr(&st.src_col0),
            src_base: *self.gbase.get(&st.src).unwrap_or(&0),
            src_ld: self.ld_of(&st.src),
            src_rows,
            src_cols,
            dst_base: *self.sbase.get(&st.dst).unwrap_or(&0),
            dst_ld: self.ld_of(&st.dst),
            mode: st.mode,
            strided: st.strided_copy,
        })
    }
}

/// (instruction cost, flops) of the arithmetic in an update statement.
fn arith_cost(rhs: &ScalarExpr, op: AssignOp) -> (f64, f64) {
    fn op_weight(e: &ScalarExpr) -> (f64, f64) {
        match e {
            ScalarExpr::Bin(b, l, r) => {
                let (li, lf) = op_weight(l);
                let (ri, rf) = op_weight(r);
                let (wi, wf) = match b {
                    oa_loopir::BinOp::Div => (8.0, 1.0),
                    _ => (1.0, 1.0),
                };
                (li + ri + wi, lf + rf + wf)
            }
            _ => (0.0, 0.0),
        }
    }
    let accum = op != AssignOp::Assign;
    // `acc ±= a * b` fuses into one MAD.
    if accum {
        if let ScalarExpr::Bin(oa_loopir::BinOp::Mul, l, r) = rhs {
            let (li, lf) = op_weight(l);
            let (ri, rf) = op_weight(r);
            return (li + ri + 1.0, lf + rf + 2.0);
        }
    }
    let (i, f) = op_weight(rhs);
    (
        i + if accum { 1.0 } else { 0.0 },
        f + if accum { 1.0 } else { 0.0 },
    )
}

// ---------------------------------------------------------------------------
// The sampled warp walker.
// ---------------------------------------------------------------------------

const ITER_SAMPLE_THRESHOLD: i64 = 16;
const ITER_SAMPLES: i64 = 8;

struct Walker<'a> {
    device: &'a DeviceSpec,
    compiled: &'a Compiled,
    counters: ProfileCounters,
    /// Register-reuse memo: the last few lane-address vectors seen at each
    /// load site.  A repeated vector models the value being kept in a
    /// register by the compiler (LICM / unroll-and-jam reuse), so neither
    /// an instruction nor a memory transaction is charged.
    memo: Vec<std::collections::VecDeque<[Option<i64>; WARP]>>,
    /// Per-lane environments, `nvars` values each.
    env: Vec<i64>,
    active: [bool; WARP],
    weight: f64,
    threads_per_block: i64,
    warp_index: i64,
    warps_per_block: i64,
}

impl<'a> Walker<'a> {
    fn new(
        device: &'a DeviceSpec,
        compiled: &'a Compiled,
        launch: &Launch,
        bx: i64,
        by: i64,
        warp: i64,
    ) -> Self {
        let n = compiled.nvars;
        let threads = launch.threads_per_block();
        let mut env = vec![0i64; n * WARP];
        let mut active = [false; WARP];
        for (lane, live) in active.iter_mut().enumerate() {
            let tid = warp * WARP as i64 + lane as i64;
            if tid >= threads {
                continue;
            }
            *live = true;
            let tx = tid % launch.block.0;
            let ty = tid / launch.block.0;
            let base = lane * n;
            env[base + compiled.tx_var] = tx;
            env[base + compiled.ty_var] = ty;
            for (idx, b) in &compiled.binds {
                let v = match b {
                    crate::launch::Builtin::BlockX => bx,
                    crate::launch::Builtin::BlockY => by,
                    crate::launch::Builtin::ThreadX => tx,
                    crate::launch::Builtin::ThreadY => ty,
                };
                env[base + idx] = v;
            }
        }
        Walker {
            device,
            compiled,
            counters: ProfileCounters::default(),
            memo: vec![std::collections::VecDeque::with_capacity(8); compiled.nsites],
            env,
            active,
            weight: 1.0,
            threads_per_block: threads,
            warp_index: warp,
            warps_per_block: (threads + WARP as i64 - 1) / WARP as i64,
        }
    }

    #[inline]
    fn lane_env(&self, lane: usize) -> &[i64] {
        let n = self.compiled.nvars;
        &self.env[lane * n..(lane + 1) * n]
    }

    fn set_var_all(&mut self, var: usize, v: i64) {
        let n = self.compiled.nvars;
        for lane in 0..WARP {
            self.env[lane * n + var] = v;
        }
    }

    fn eval_pred_lane(&self, pred: &CPred, lane: usize) -> bool {
        let env = self.lane_env(lane);
        if pred.thread0 {
            let n = self.compiled.nvars;
            let base = lane * n;
            if self.env[base + self.compiled.tx_var] != 0
                || self.env[base + self.compiled.ty_var] != 0
            {
                return false;
            }
        }
        pred.conds
            .iter()
            .all(|c| c.op.eval(c.lhs.eval(env), c.rhs.eval(env)))
    }

    fn any_active(&self) -> bool {
        self.active.iter().any(|&a| a)
    }

    fn walk(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            if !self.any_active() {
                return;
            }
            match s {
                CStmt::Nop => {}
                CStmt::Loop {
                    var,
                    lower,
                    upper,
                    overhead,
                    body,
                } => self.walk_loop(*var, lower, upper, *overhead, body),
                CStmt::Assign {
                    accesses,
                    instr,
                    flops,
                } => self.walk_assign(accesses, *instr, *flops),
                CStmt::If {
                    pred,
                    then_b,
                    else_b,
                } => self.walk_if(pred, then_b, else_b),
                CStmt::Stage(st) => self.walk_stage(st),
                CStmt::RegXfer { elems, is_store } => self.walk_regxfer(elems, *is_store),
            }
        }
    }

    fn walk_loop(
        &mut self,
        var: usize,
        lower: &CExpr,
        upper: &CExpr,
        overhead: f64,
        body: &[CStmt],
    ) {
        // Bounds must be uniform across active lanes (guards provide the
        // per-thread shaping in the generated kernels).
        let lane0 = self.active.iter().position(|&a| a).expect("active lane");
        let lo = lower.eval(self.lane_env(lane0));
        let hi = upper.eval(self.lane_env(lane0));
        let trip = (hi - lo).max(0);
        if trip == 0 {
            return;
        }
        self.counters.instructions += overhead * trip as f64 * self.weight;
        if trip <= ITER_SAMPLE_THRESHOLD {
            for v in lo..hi {
                self.set_var_all(var, v);
                self.walk(body);
            }
        } else {
            // Stratified iteration sampling with weight scaling.
            let saved = self.weight;
            self.weight = saved * trip as f64 / ITER_SAMPLES as f64;
            for k in 0..ITER_SAMPLES {
                let a = lo + k * trip / ITER_SAMPLES;
                let b = lo + (k + 1) * trip / ITER_SAMPLES;
                let v = (a + b - 1) / 2;
                self.set_var_all(var, v);
                self.walk(body);
            }
            self.weight = saved;
        }
    }

    fn walk_if(&mut self, pred: &CPred, then_b: &[CStmt], else_b: &[CStmt]) {
        let saved = self.active;
        let mut then_mask = [false; WARP];
        let mut else_mask = [false; WARP];
        for lane in 0..WARP {
            if !saved[lane] {
                continue;
            }
            if self.eval_pred_lane(pred, lane) {
                then_mask[lane] = true;
            } else {
                else_mask[lane] = true;
            }
        }
        if !pred.conds.is_empty() || pred.thread0 {
            self.counters.instructions += self.weight;
        }
        if then_mask.iter().any(|&a| a) {
            self.active = then_mask;
            self.walk(then_b);
        }
        if else_mask.iter().any(|&a| a) && !else_b.is_empty() {
            self.active = else_mask;
            self.walk(else_b);
        }
        self.active = saved;
    }

    fn walk_assign(&mut self, accesses: &[CAccess], instr: f64, flops: f64) {
        let n_active = self.active.iter().filter(|&&a| a).count();
        if n_active == 0 {
            return;
        }
        let mut instr = instr;
        self.counters.flops += flops * n_active as f64 * self.weight;
        for acc in accesses {
            let mut lanes: [Option<i64>; WARP] = [None; WARP];
            for (lane, slot) in lanes.iter_mut().enumerate() {
                if self.active[lane] {
                    *slot = Some(acc.word.eval(self.lane_env(lane)));
                }
            }
            // Register reuse: a load whose address vector was recently seen
            // at this site stays in registers.
            if !acc.is_store {
                let slot = &mut self.memo[acc.site];
                if slot.iter().any(|m| *m == lanes) {
                    instr -= match acc.space {
                        CSpace::Shared => self.compiled.smem_load_cost,
                        CSpace::Global => 1.0,
                    };
                    continue;
                }
                if slot.len() == 8 {
                    slot.pop_front();
                }
                slot.push_back(lanes);
            }
            match acc.space {
                CSpace::Global => {
                    record_gmem(
                        &mut self.counters,
                        self.device.cc,
                        &lanes,
                        acc.is_store,
                        self.weight,
                    );
                }
                CSpace::Shared => {
                    if acc.is_store {
                        self.counters.smem_store += self.weight;
                    } else {
                        self.counters.smem_load += self.weight;
                    }
                    let rep = smem_replays(self.device.smem_banks, &lanes) as f64;
                    self.counters.smem_replays += rep * self.weight;
                    self.counters.instructions += rep * self.weight;
                }
            }
        }
        self.counters.instructions += instr * self.weight;
    }

    /// Cooperative staging: this warp's share of the block-wide copy.
    fn walk_stage(&mut self, st: &CStage) {
        let lane0 = self.active.iter().position(|&a| a).expect("active lane");
        let r0 = st.src_row0.eval(self.lane_env(lane0));
        let c0 = st.src_col0.eval(self.lane_env(lane0));
        let elems = st.rows * st.cols;
        let iters = (elems + self.threads_per_block - 1) / self.threads_per_block;
        // Iterations are identical in shape; sample up to 4.
        let sample = iters.min(4);
        let iter_weight = iters as f64 / sample as f64;
        for s in 0..sample {
            let iter = s * iters / sample;
            let mut gl: [Option<i64>; WARP] = [None; WARP];
            let mut sm: [Option<i64>; WARP] = [None; WARP];
            for lane in 0..WARP {
                let tid = self.warp_index * WARP as i64 + lane as i64;
                if tid >= self.threads_per_block {
                    continue;
                }
                let e = tid + iter * self.threads_per_block;
                if e >= elems {
                    continue;
                }
                // Column-major traversal coalesces on the column-major
                // source; the strided variant walks rows first.
                let (r, c) = if st.strided {
                    (e / st.cols, e % st.cols)
                } else {
                    (e % st.rows, e / st.rows)
                };
                let (gr, gc) = (r0 + r, c0 + c);
                if gr >= st.src_rows || gc >= st.src_cols {
                    continue; // guarded off (edge tile)
                }
                gl[lane] = Some(st.src_base + gr + gc * st.src_ld);
                let (dr, dc) = match st.mode {
                    AllocMode::Transpose => (c, r),
                    _ => (r, c),
                };
                sm[lane] = Some(st.dst_base + dr + dc * st.dst_ld);
            }
            let w = self.weight * iter_weight;
            record_gmem(&mut self.counters, self.device.cc, &gl, false, w);
            self.counters.smem_store += w;
            let rep = smem_replays(self.device.smem_banks, &sm) as f64;
            self.counters.smem_replays += rep * w;
            // ~4 instructions per copied element per thread: index math,
            // load, store, loop bookkeeping.
            self.counters.instructions += 4.0 * w;
        }
        let _ = self.warps_per_block;
    }

    fn walk_regxfer(&mut self, elems: &[(CPred, CExpr)], is_store: bool) {
        for (guard, word) in elems {
            let mut lanes: [Option<i64>; WARP] = [None; WARP];
            for (lane, slot) in lanes.iter_mut().enumerate() {
                if self.active[lane] && self.eval_pred_lane(guard, lane) {
                    *slot = Some(word.eval(self.lane_env(lane)));
                }
            }
            if lanes.iter().all(|l| l.is_none()) {
                continue;
            }
            record_gmem(
                &mut self.counters,
                self.device.cc,
                &lanes,
                is_store,
                self.weight,
            );
            self.counters.instructions += 2.0 * self.weight;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_loopir::builder::gemm_nn_like;
    use oa_loopir::transform::{
        loop_tiling, loop_unroll, reg_alloc, sm_alloc, thread_grouping, TileParams,
    };

    fn tuned_gemm(n: i64) -> (Program, Bindings) {
        let mut p = gemm_nn_like("GEMM-NN");
        // Volkov-like shape: 64 threads own exclusive rows; B staged in
        // shared memory; 16 C columns per thread in registers.
        let params = TileParams {
            ty: 64,
            tx: 16,
            thr_i: 64,
            thr_j: 1,
            kb: 16,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", params).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        loop_unroll(&mut p, &["Ljjj", "Lkkk"], 0).unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        (p, Bindings::square(n))
    }

    #[test]
    fn gemm_perf_is_compute_bound_and_reasonable() {
        let (p, b) = tuned_gemm(1024);
        let dev = DeviceSpec::gtx285();
        let flops = 2.0 * 1024f64.powi(3);
        let rep = evaluate(&p, &b, &dev, flops, true).unwrap();
        assert!(
            rep.t_compute > rep.t_memory,
            "a staged, register-tiled GEMM must be compute bound: {rep:?}"
        );
        // Between 25% and 95% of the 709 GFLOPS peak.
        assert!(rep.gflops > 0.25 * 709.0, "gflops too low: {}", rep.gflops);
        assert!(
            rep.gflops < 0.95 * 709.0,
            "gflops above peak share: {}",
            rep.gflops
        );
        // Stores/loads are coalesced in this layout.
        assert_eq!(rep.counters.gld_incoherent, 0.0);
        assert_eq!(rep.counters.gst_incoherent, 0.0);
    }

    #[test]
    fn naive_kernel_is_slower_than_tuned() {
        // Thread grouping only, no tiling/staging: every B access goes to
        // global memory.
        let mut naive = gemm_nn_like("GEMM-NN");
        let params = TileParams {
            ty: 32,
            tx: 32,
            thr_i: 16,
            thr_j: 16,
            kb: 16,
            unroll: 0,
        };
        thread_grouping(&mut naive, "Li", "Lj", params).unwrap();
        let b = Bindings::square(1024);
        let dev = DeviceSpec::gtx285();
        let flops = 2.0 * 1024f64.powi(3);
        let naive_rep = evaluate(&naive, &b, &dev, flops, true).unwrap();
        let (tuned, _) = tuned_gemm(1024);
        let tuned_rep = evaluate(&tuned, &b, &dev, flops, true).unwrap();
        assert!(
            tuned_rep.gflops > 2.0 * naive_rep.gflops,
            "tuned {} vs naive {}",
            tuned_rep.gflops,
            naive_rep.gflops
        );
    }

    #[test]
    fn flop_sampling_is_accurate() {
        // The sampled+scaled flop counter must land within a few percent of
        // the analytic 2*M*N*K.
        let (p, b) = tuned_gemm(512);
        let dev = DeviceSpec::gtx285();
        let rep = evaluate(&p, &b, &dev, 1.0, true).unwrap();
        let expect = 2.0 * 512f64.powi(3);
        let ratio = rep.counters.flops / expect;
        assert!((0.9..1.1).contains(&ratio), "flops ratio {ratio}");
    }

    #[test]
    fn scaling_with_problem_size() {
        let dev = DeviceSpec::gtx285();
        let (p1, b1) = tuned_gemm(512);
        let (p2, b2) = tuned_gemm(1024);
        let r1 = evaluate(&p1, &b1, &dev, 2.0 * 512f64.powi(3), true).unwrap();
        let r2 = evaluate(&p2, &b2, &dev, 2.0 * 1024f64.powi(3), true).unwrap();
        // 8x the flops: time should grow roughly 8x (within 2x slack).
        let ratio = r2.kernel_time_s / r1.kernel_time_s;
        assert!((4.0..16.0).contains(&ratio), "time ratio {ratio}");
    }

    #[test]
    fn triangular_flop_sampling_is_accurate() {
        // TRMM's per-block work is triangular (linear in the block row);
        // the stratified block/iteration sampling must still integrate the
        // total flops to within ~15% of the analytic n^2(n+1).
        use oa_loopir::builder::trmm_ll_like;
        let mut p = trmm_ll_like("TRMM");
        let params = TileParams {
            ty: 32,
            tx: 32,
            thr_i: 16,
            thr_j: 16,
            kb: 16,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", params).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let n = 512i64;
        let rep = evaluate(&p, &Bindings::square(n), &DeviceSpec::gtx285(), 1.0, true).unwrap();
        let expect = (n * n) as f64 * (n + 1) as f64; // 2 flops x n^2(n+1)/2
        let ratio = rep.counters.flops / expect;
        assert!(
            (0.85..1.15).contains(&ratio),
            "triangular flops ratio {ratio}"
        );
    }

    #[test]
    fn strata_cover_weights() {
        let s = strata(64, 5);
        assert_eq!(s.iter().map(|(_, w)| *w).sum::<f64>(), 64.0);
        let s1 = strata(3, 5);
        assert_eq!(s1.len(), 3);
        assert_eq!(strata(1, 5), vec![(0, 1.0)]);
    }

    #[test]
    fn occupancy_penalty_applies() {
        // A 16-thread block cannot hide latency; occupancy derating must
        // make it slower per flop than a 256-thread block.
        let mut small = gemm_nn_like("g");
        let params = TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 8,
            unroll: 0,
        };
        thread_grouping(&mut small, "Li", "Lj", params).unwrap();
        let b = Bindings::square(256);
        let dev = DeviceSpec::gtx285();
        let rep = evaluate(&small, &b, &dev, 2.0 * 256f64.powi(3), true).unwrap();
        assert!(rep.occupancy <= 0.25);
    }
}
