//! Linear-bytecode lowering: the second compilation stage of the GPU
//! simulator.
//!
//! [`Tape`](crate::tape::Tape) already resolves names to slots, but it
//! still *interprets program structure*: every thread of every block
//! re-walks the nested `Vec<Op>` bodies and `Box`ed [`SExpr`] trees, and
//! re-evaluates every affine subscript from scratch on every iteration.
//! This module compiles a tape once more, into a flat `Vec` of fixed-size
//! [`Instr`]uctions over
//!
//! * **virtual f32 registers** — every scalar expression tree becomes a
//!   short register program (loads, binary ops, fused multiply-adds);
//! * **address units** — the distinct [`SlotExpr`] affine forms of the
//!   program, interned into one table ([`ByteCode::units`]) so the
//!   optimizer can reason about them by index;
//! * **jumps** — loop and guard structure becomes `LoopTest`/`LoopJump`/
//!   branch instructions over a program counter, with an explicit mask
//!   stack replacing per-thread control flow (see [`crate::vexec`]).
//!
//! Between lowering and linearization an optimizer pipeline runs over the
//! structured form:
//!
//! 1. **constant folding** — affine forms with no live terms collapse to
//!    immediates, single-term unit-coefficient forms collapse to plain
//!    slot reads, constant guards select a branch at compile time, and
//!    constant scalar subtrees fold to literals;
//! 2. **loop-invariant hoisting** — a unit whose terms are all invariant
//!    in a loop is evaluated once into a cache slot at loop entry
//!    (`pre`), recursively liftable through enclosing loops;
//! 3. **strength reduction** — a unit of the form `c·var + invariant`
//!    is initialized once per loop entry and advanced by `c` per
//!    iteration with an incremental add, removing the per-iteration
//!    multiply-accumulate chain;
//! 4. **FMA fusion** — `a*b ± c` / `c ± a*b` scalar trees become one
//!    [`Instr::FFma`] with the tape's exact two-rounding semantics and
//!    operand order preserved.
//!
//! The result executes on the lane-vectorized interpreter in
//! [`crate::vexec`] and is bit-identical to both the tape and the
//! tree-walking oracle on every generated kernel (enforced by the
//! `engine_differential` and `bytecode_differential` test suites).

use oa_loopir::arrays::{AllocMode, Fill};
use oa_loopir::interp::Bindings;
use oa_loopir::nest::MapKernel;
use oa_loopir::scalar::BinOp;
use oa_loopir::slots::{SlotExpr, SlotPred};
use oa_loopir::stmt::AssignOp;
use oa_loopir::Program;
use std::collections::{HashMap, HashSet};

use crate::exec::ExecError;
use crate::launch::Builtin;
use crate::tape::{ArrRef, GlobalInfo, Op, RegDecl, SExpr, SmemDecl, Tape};

/// Static lane-structure of a load/store address, computed by
/// [`mark_lanes`].
///
/// `Affine { lr, lc }` means both subscripts are affine in the lane
/// index: `row(lane) = row(l₀) + lr·(lane−l₀)` and likewise `col` with
/// `lc`, for any active lane `l₀`.  `Affine { 0, 0 }` is a fully
/// *uniform* address (one read, broadcast); a nonzero class lets the
/// interpreter turn a gather into a constant-stride walk — stride 1 over
/// a column-major global is the coalesced-load pattern, which becomes a
/// plain slice copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AddrClass {
    /// Per-lane evaluation required.
    Generic,
    /// Row/col advance by `lr`/`lc` per lane.
    Affine { lr: i64, lc: i64 },
}

impl AddrClass {
    /// The fully lane-invariant class.
    pub(crate) const UNIFORM: AddrClass = AddrClass::Affine { lr: 0, lc: 0 };
}

/// An address operand: how an instruction obtains an i64 index value.
///
/// After optimization most operands are `Const` or `Slot`; `Unit` (a full
/// affine evaluation) survives only where hoisting and strength reduction
/// do not apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AOp {
    /// A compile-time constant.
    Const(i64),
    /// The current value of one frame slot.
    Slot(u32),
    /// Full evaluation of `units[ix]` over the lane's frame.
    Unit(u32),
}

/// One bytecode instruction.
///
/// Control flow is expressed with explicit program-counter targets; the
/// interpreter maintains a mask stack (`LoopInit`/`IfSplit` push,
/// `PopMask` pops) so divergent lanes are handled by masking rather than
/// per-thread traversal.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Instr {
    /// `frame[dst] = units[unit]` for every lane (cache-slot fill).
    Eval { dst: u32, unit: u32 },
    /// `frame[dst] += imm` for every lane (loop step / strength-reduced
    /// address advance).
    StepAdd { dst: u32, imm: i64 },
    /// Enter a loop: push the mask, evaluate bounds **once** per lane
    /// (`frame[var] = lo`, `frame[hi] = hi_src`), and for barrier loops
    /// (`uniform`) require the bounds to agree across all lanes.
    LoopInit {
        var: u32,
        hi: u32,
        lo: AOp,
        hi_src: AOp,
        uniform: bool,
        label: u32,
    },
    /// `active &= frame[var] < frame[hi]`; jump to `exit` (the matching
    /// `PopMask`) when no lane remains. When `uniform` the bounds are
    /// statically lane-invariant and the interpreter tests lane 0 only
    /// (all lanes enter and exit together, the mask is untouched).
    LoopTest {
        var: u32,
        hi: u32,
        exit: u32,
        uniform: bool,
    },
    /// Unconditional back-edge to the loop's `LoopTest`.
    LoopJump { top: u32 },
    /// Unconditional forward jump (then→end over an else branch).
    Jump { target: u32 },
    /// Uniform guard enclosing a barrier: evaluate the predicate on every
    /// lane (lane 0 is thread 0), error on divergence, fall through on
    /// true, jump on false. Does not touch the mask stack.
    BranchUniform { pred: u32, if_false: u32 },
    /// Divergent guard: push `(saved, pred-lanes)`, activate
    /// `saved ∧ pred`; jump to `on_empty` (the `IfElse`, or the `PopMask`
    /// when there is no else branch) if that is empty.
    IfSplit { pred: u32, on_empty: u32 },
    /// Flip to the else lanes: activate `saved ∧ ¬pred`; jump to `done`
    /// (the `PopMask`) if that is empty.
    IfElse { done: u32 },
    /// Restore the saved mask and pop.
    PopMask,
    /// `freg[dst] = v` for every lane.
    FConst { dst: u32, v: f32 },
    /// An unbound scalar parameter was reached by at least one lane:
    /// panic with its name, exactly like the oracle.
    FParamPanic { name: u32 },
    /// Masked load: `freg[dst] = arr[row][col]` per active lane. `addr`
    /// carries the static lane-structure of the address: uniform
    /// addresses broadcast one read, lane-affine addresses walk a
    /// constant stride instead of evaluating subscripts per lane.
    FLoad {
        dst: u32,
        arr: ArrRef,
        row: AOp,
        col: AOp,
        addr: AddrClass,
    },
    /// `freg[dst] = freg[a] op freg[b]` for every lane.
    FBin { op: BinOp, dst: u32, a: u32, b: u32 },
    /// Fused multiply-add with the tape's two-rounding semantics:
    /// `t = a*b` (rounded), then `t op c` when `mul_first`, `c op t`
    /// otherwise — never a single-rounding hardware FMA, so results stay
    /// bit-identical to the unfused tape evaluation.
    FFma {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        mul_first: bool,
    },
    /// Masked store with read-modify-write for `+=`/`-=`, per active
    /// lane. A uniform `addr` on a register tile runs as one contiguous
    /// vector op (each lane owns its register file).
    FStore {
        src: u32,
        arr: ArrRef,
        row: AOp,
        col: AOp,
        op: AssignOp,
        addr: AddrClass,
    },
    /// Cooperative shared-memory stage (block-level macro;
    /// `stages[ix]`).
    Stage { ix: u32 },
    /// Register-tile load/store loop nest (per-lane macro; `moves[ix]`).
    Move { ix: u32 },
    /// Zero a register tile, per active lane.
    RegZero { reg: u32 },
}

/// Side-table entry for [`Instr::Stage`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct StageOp {
    pub(crate) dst: usize,
    pub(crate) src: usize,
    pub(crate) row0: AOp,
    pub(crate) col0: AOp,
    pub(crate) rows: i64,
    pub(crate) cols: i64,
    pub(crate) mode: AllocMode,
    pub(crate) src_fill: Fill,
    pub(crate) guard: u32,
}

/// Side-table entry for [`Instr::Move`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct MoveOp {
    pub(crate) load: bool,
    pub(crate) reg: usize,
    pub(crate) global: usize,
    pub(crate) row0: AOp,
    pub(crate) col0: AOp,
    pub(crate) row_stride: i64,
    pub(crate) col_stride: i64,
    pub(crate) rows: i64,
    pub(crate) cols: i64,
    pub(crate) guard: u32,
}

/// A tape lowered to linear bytecode: flat instruction stream plus the
/// interned side tables. Compile once, execute many times on the
/// lane-vectorized interpreter ([`crate::vexec`]).
#[derive(Clone, Debug)]
pub struct ByteCode {
    /// Grid dimensions `(gx, gy)`.
    pub grid: (i64, i64),
    /// Block dimensions `(bx, by)` in threads.
    pub block: (i64, i64),
    /// Lane-frame length in i64 slots (tape slots + loop-bound and cache
    /// slots added during lowering).
    pub(crate) n_slots: usize,
    /// Virtual f32 register file size per lane.
    pub(crate) n_fregs: usize,
    pub(crate) binds: Vec<(usize, Builtin)>,
    pub(crate) tx_slot: usize,
    pub(crate) ty_slot: usize,
    pub(crate) sr_slot: usize,
    pub(crate) sc_slot: usize,
    pub(crate) gr_slot: usize,
    pub(crate) gc_slot: usize,
    pub(crate) code: Vec<Instr>,
    /// Interned affine address units.
    pub(crate) units: Vec<SlotExpr>,
    /// Interned guard predicates.
    pub(crate) preds: Vec<SlotPred>,
    pub(crate) stages: Vec<StageOp>,
    pub(crate) moves: Vec<MoveOp>,
    /// Loop labels, for barrier-divergence diagnostics.
    pub(crate) labels: Vec<String>,
    /// Names of unbound scalar parameters ([`Instr::FParamPanic`]).
    pub(crate) params: Vec<String>,
    pub(crate) globals: Vec<GlobalInfo>,
    pub(crate) smem: Vec<SmemDecl>,
    /// Flat f32 offset of each shared tile in the per-block arena.
    pub(crate) smem_off: Vec<usize>,
    /// Total shared-arena length in f32 elements.
    pub(crate) smem_len: usize,
    pub(crate) regs: Vec<RegDecl>,
    /// Element offset of each register tile (pre-lane; the arena is
    /// element-major over lanes).
    pub(crate) reg_off: Vec<usize>,
    /// Total register-arena length in elements per lane.
    pub(crate) reg_len: usize,
    pub(crate) blank_checks: Vec<(usize, Fill)>,
    pub(crate) n_blank_flags: usize,
    pub(crate) prologues: Vec<MapKernel>,
    pub(crate) prologue_env: HashMap<String, i64>,
    /// Per-slot lane-affinity classes from [`mark_lanes`] — the loop and
    /// address metadata the native lowering's pattern matcher consumes.
    pub(crate) lane_cls: Vec<Lane>,
}

impl ByteCode {
    /// Lower `p` for concrete `bindings`: tape compilation followed by
    /// the bytecode lowering and optimizer pipeline.
    pub fn compile(p: &Program, bindings: &Bindings) -> Result<ByteCode, ExecError> {
        Ok(Self::from_tape(&Tape::compile(p, bindings)?))
    }

    /// Lower an already-compiled tape. Infallible: every launchable tape
    /// lowers.
    pub(crate) fn from_tape(tape: &Tape) -> ByteCode {
        let mut lw = Lower::new(tape);
        let mut nodes = lw.lower_ops(&tape.ops);
        lw.optimize(&mut nodes);
        let mut code = Vec::new();
        emit_nodes(nodes, &mut code);
        let lane_cls = mark_lanes(&mut code, &lw.units, lw.n_slots, tape);

        let mut smem_off = Vec::with_capacity(tape.smem.len());
        let mut smem_len = 0usize;
        for d in &tape.smem {
            smem_off.push(smem_len);
            smem_len += ((d.rows + d.pad) * d.cols) as usize;
        }
        let mut reg_off = Vec::with_capacity(tape.regs.len());
        let mut reg_len = 0usize;
        for d in &tape.regs {
            reg_off.push(reg_len);
            reg_len += (d.rows * d.cols) as usize;
        }

        ByteCode {
            grid: tape.grid,
            block: tape.block,
            n_slots: lw.n_slots,
            n_fregs: lw.max_fregs,
            binds: tape.binds.clone(),
            tx_slot: tape.tx_slot,
            ty_slot: tape.ty_slot,
            sr_slot: tape.sr_slot,
            sc_slot: tape.sc_slot,
            gr_slot: tape.gr_slot,
            gc_slot: tape.gc_slot,
            code,
            units: lw.units,
            preds: lw.preds,
            stages: lw.stages,
            moves: lw.moves,
            labels: lw.labels,
            params: lw.params,
            globals: tape.globals.clone(),
            smem: tape.smem.clone(),
            smem_off,
            smem_len,
            regs: tape.regs.clone(),
            reg_off,
            reg_len,
            blank_checks: tape.blank_checks.clone(),
            n_blank_flags: tape.n_blank_flags,
            prologues: tape.prologues.clone(),
            prologue_env: tape.prologue_env.clone(),
            lane_cls,
        }
    }

    /// Threads per block (lanes of the vector interpreter).
    pub fn threads_per_block(&self) -> i64 {
        self.block.0 * self.block.1
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> i64 {
        self.grid.0 * self.grid.1
    }

    /// Instruction count (after optimization), for tests and diagnostics.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the kernel body lowered to no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Human-readable disassembly of the instruction stream, one line per
    /// instruction with its pc — the debugging surface for the optimizer
    /// and the native lowering's pattern matcher.
    pub fn disasm(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (pc, i) in self.code.iter().enumerate() {
            let _ = writeln!(s, "{pc:4}: {i:?}");
        }
        s
    }
}

/// Structured mid-form between the tape's `Op` tree and linear code:
/// loops and guards still nest (so the optimizer can reason per region),
/// but statements are already instruction sequences.
enum Node {
    I(Instr),
    Loop(Box<LoopNode>),
    If(Box<IfNode>),
}

struct LoopNode {
    var: u32,
    /// Fresh slot holding the upper bound, evaluated once at entry.
    hi: u32,
    lo: AOp,
    hi_src: AOp,
    uniform: bool,
    label: u32,
    /// Hoisted invariant evaluations, run once per loop entry before
    /// `LoopInit`.
    pre: Vec<Instr>,
    /// Strength-reduction bases, run once per entry after `LoopInit`
    /// (they read the freshly initialized loop variable).
    init: Vec<Instr>,
    body: Vec<Node>,
    /// Incremental advances appended to each iteration (after the
    /// implicit `var += 1`).
    steps: Vec<Instr>,
}

struct IfNode {
    pred: u32,
    uniform: bool,
    then_b: Vec<Node>,
    else_b: Vec<Node>,
}

/// A scalar value during expression lowering: either a folded constant or
/// a virtual register holding the result.
#[derive(Clone, Copy)]
enum FVal {
    Const(f32),
    Reg(u32),
}

struct Lower<'a> {
    tape: &'a Tape,
    units: Vec<SlotExpr>,
    unit_ix: HashMap<SlotExpr, u32>,
    preds: Vec<SlotPred>,
    stages: Vec<StageOp>,
    moves: Vec<MoveOp>,
    labels: Vec<String>,
    params: Vec<String>,
    n_slots: usize,
    max_fregs: usize,
}

impl<'a> Lower<'a> {
    fn new(tape: &'a Tape) -> Self {
        Lower {
            tape,
            units: Vec::new(),
            unit_ix: HashMap::new(),
            preds: Vec::new(),
            stages: Vec::new(),
            moves: Vec::new(),
            labels: Vec::new(),
            params: Vec::new(),
            n_slots: tape.n_slots,
            max_fregs: 0,
        }
    }

    fn fresh_slot(&mut self) -> u32 {
        let s = self.n_slots;
        self.n_slots += 1;
        s as u32
    }

    /// Statement-local virtual-register allocation; registers are reused
    /// across statements (values never outlive one assignment).
    fn freg(&mut self, nf: &mut u32) -> u32 {
        let r = *nf;
        *nf += 1;
        self.max_fregs = self.max_fregs.max(*nf as usize);
        r
    }

    /// Constant-fold an affine form into the cheapest operand kind.
    fn aop(&mut self, e: &SlotExpr) -> AOp {
        if let Some(c) = e.as_const() {
            return AOp::Const(c);
        }
        if e.terms.len() == 1 && e.terms[0].1 == 1 && e.constant == 0 {
            return AOp::Slot(e.terms[0].0 as u32);
        }
        AOp::Unit(self.intern_unit(e))
    }

    fn intern_unit(&mut self, e: &SlotExpr) -> u32 {
        if let Some(&ix) = self.unit_ix.get(e) {
            return ix;
        }
        let ix = self.units.len() as u32;
        self.units.push(e.clone());
        self.unit_ix.insert(e.clone(), ix);
        ix
    }

    fn intern_pred(&mut self, p: &SlotPred) -> u32 {
        let ix = self.preds.len() as u32;
        self.preds.push(p.clone());
        ix
    }

    /// `Some(v)` when the predicate's value is known at compile time.
    fn pred_const(p: &SlotPred) -> Option<bool> {
        let mut all_true = true;
        for c in &p.conds {
            match (c.lhs.as_const(), c.rhs.as_const()) {
                (Some(l), Some(r)) => {
                    if !c.op.eval(l, r) {
                        return Some(false);
                    }
                }
                _ => all_true = false,
            }
        }
        (all_true && !p.thread0_only && p.blank_flag.is_none()).then_some(true)
    }

    // ---- lowering ------------------------------------------------------

    fn lower_ops(&mut self, ops: &[Op]) -> Vec<Node> {
        let mut out = Vec::new();
        for op in ops {
            self.lower_op(op, &mut out);
        }
        out
    }

    fn lower_op(&mut self, op: &Op, out: &mut Vec<Node>) {
        match op {
            Op::Loop {
                var,
                lower,
                upper,
                has_barrier,
                label,
                body,
            } => {
                let lo = self.aop(lower);
                let hi_src = self.aop(upper);
                let hi = self.fresh_slot();
                let label_ix = self.labels.len() as u32;
                self.labels.push(label.clone());
                let body = self.lower_ops(body);
                out.push(Node::Loop(Box::new(LoopNode {
                    var: *var as u32,
                    hi,
                    lo,
                    hi_src,
                    uniform: *has_barrier,
                    label: label_ix,
                    pre: Vec::new(),
                    init: Vec::new(),
                    body,
                    steps: Vec::new(),
                })));
            }
            Op::Assign {
                arr,
                row,
                col,
                op,
                rhs,
            } => {
                let mut nf = 0u32;
                let v = self.expr(rhs, &mut nf, out);
                let src = self.materialize(v, &mut nf, out);
                let (row, col) = (self.aop(row), self.aop(col));
                out.push(Node::I(Instr::FStore {
                    src,
                    arr: *arr,
                    row,
                    col,
                    op: *op,
                    addr: AddrClass::Generic, // refined by `mark_lanes`
                }));
            }
            Op::If {
                pred,
                has_barrier,
                then_ops,
                else_ops,
            } => {
                if let Some(v) = Self::pred_const(pred) {
                    // Constant guard: inline the taken branch (a uniform
                    // guard with a constant predicate is trivially
                    // uniform, so the divergence check can be dropped).
                    let taken = if v { then_ops } else { else_ops };
                    for op in taken {
                        self.lower_op(op, out);
                    }
                    return;
                }
                if then_ops.is_empty() && else_ops.is_empty() {
                    return; // predicate evaluation is pure
                }
                let pred = self.intern_pred(pred);
                let then_b = self.lower_ops(then_ops);
                let else_b = self.lower_ops(else_ops);
                out.push(Node::If(Box::new(IfNode {
                    pred,
                    uniform: *has_barrier,
                    then_b,
                    else_b,
                })));
            }
            Op::Stage {
                dst,
                src,
                row0,
                col0,
                rows,
                cols,
                mode,
                src_fill,
                guard,
            } => {
                let guard = self.intern_pred(guard);
                let (row0, col0) = (self.aop(row0), self.aop(col0));
                let ix = self.stages.len() as u32;
                self.stages.push(StageOp {
                    dst: *dst,
                    src: *src,
                    row0,
                    col0,
                    rows: *rows,
                    cols: *cols,
                    mode: *mode,
                    src_fill: *src_fill,
                    guard,
                });
                out.push(Node::I(Instr::Stage { ix }));
            }
            Op::RegMove {
                load,
                reg,
                global,
                row0,
                col0,
                row_stride,
                col_stride,
                rows,
                cols,
                guard,
            } => {
                let guard = self.intern_pred(guard);
                let (row0, col0) = (self.aop(row0), self.aop(col0));
                let ix = self.moves.len() as u32;
                self.moves.push(MoveOp {
                    load: *load,
                    reg: *reg,
                    global: *global,
                    row0,
                    col0,
                    row_stride: *row_stride,
                    col_stride: *col_stride,
                    rows: *rows,
                    cols: *cols,
                    guard,
                });
                out.push(Node::I(Instr::Move { ix }));
            }
            Op::RegZero { reg } => out.push(Node::I(Instr::RegZero { reg: *reg as u32 })),
            Op::Sync => {} // instruction-lockstep execution needs no fence
        }
    }

    /// Lower a scalar tree, folding constants and fusing `a*b ± c` /
    /// `c ± a*b` into FMA. Subexpression evaluation order follows the
    /// tape (left before right) — loads are pure, but keeping the order
    /// makes the instruction stream directly comparable.
    fn expr(&mut self, e: &SExpr, nf: &mut u32, out: &mut Vec<Node>) -> FVal {
        match e {
            SExpr::Lit(v) => FVal::Const(*v),
            SExpr::Param(_, Some(v)) => FVal::Const(*v),
            SExpr::Param(name, None) => {
                let ix = self.params.len() as u32;
                self.params.push(name.clone());
                out.push(Node::I(Instr::FParamPanic { name: ix }));
                // Unreachable at runtime; the register is never written.
                FVal::Reg(self.freg(nf))
            }
            SExpr::Load(arr, row, col) => {
                let dst = self.freg(nf);
                let (row, col) = (self.aop(row), self.aop(col));
                out.push(Node::I(Instr::FLoad {
                    dst,
                    arr: *arr,
                    row,
                    col,
                    addr: AddrClass::Generic, // refined by `mark_lanes`
                }));
                FVal::Reg(dst)
            }
            SExpr::Bin(op @ (BinOp::Add | BinOp::Sub), l, r) => {
                if let SExpr::Bin(BinOp::Mul, a, b) = &**l {
                    // (a*b) op c — multiply evaluated first, as the tape
                    // evaluates the left subtree first.
                    let va = self.expr(a, nf, out);
                    let vb = self.expr(b, nf, out);
                    let vc = self.expr(r, nf, out);
                    if let (FVal::Const(x), FVal::Const(y), FVal::Const(z)) = (va, vb, vc) {
                        return FVal::Const(op.apply(BinOp::Mul.apply(x, y), z));
                    }
                    return self.fma(*op, va, vb, vc, true, nf, out);
                }
                if let SExpr::Bin(BinOp::Mul, a, b) = &**r {
                    // c op (a*b) — c is the left subtree, evaluated first.
                    let vc = self.expr(l, nf, out);
                    let va = self.expr(a, nf, out);
                    let vb = self.expr(b, nf, out);
                    if let (FVal::Const(x), FVal::Const(y), FVal::Const(z)) = (va, vb, vc) {
                        return FVal::Const(op.apply(z, BinOp::Mul.apply(x, y)));
                    }
                    return self.fma(*op, va, vb, vc, false, nf, out);
                }
                self.bin(*op, l, r, nf, out)
            }
            SExpr::Bin(op, l, r) => self.bin(*op, l, r, nf, out),
        }
    }

    fn bin(&mut self, op: BinOp, l: &SExpr, r: &SExpr, nf: &mut u32, out: &mut Vec<Node>) -> FVal {
        let vl = self.expr(l, nf, out);
        let vr = self.expr(r, nf, out);
        if let (FVal::Const(a), FVal::Const(b)) = (vl, vr) {
            return FVal::Const(op.apply(a, b));
        }
        let a = self.materialize(vl, nf, out);
        let b = self.materialize(vr, nf, out);
        let dst = self.freg(nf);
        out.push(Node::I(Instr::FBin { op, dst, a, b }));
        FVal::Reg(dst)
    }

    #[allow(clippy::too_many_arguments)]
    fn fma(
        &mut self,
        op: BinOp,
        va: FVal,
        vb: FVal,
        vc: FVal,
        mul_first: bool,
        nf: &mut u32,
        out: &mut Vec<Node>,
    ) -> FVal {
        let a = self.materialize(va, nf, out);
        let b = self.materialize(vb, nf, out);
        let c = self.materialize(vc, nf, out);
        let dst = self.freg(nf);
        out.push(Node::I(Instr::FFma {
            op,
            dst,
            a,
            b,
            c,
            mul_first,
        }));
        FVal::Reg(dst)
    }

    fn materialize(&mut self, v: FVal, nf: &mut u32, out: &mut Vec<Node>) -> u32 {
        match v {
            FVal::Reg(r) => r,
            FVal::Const(c) => {
                let dst = self.freg(nf);
                out.push(Node::I(Instr::FConst { dst, v: c }));
                dst
            }
        }
    }

    // ---- optimizer -----------------------------------------------------

    /// Run the hoist / strength-reduction passes: innermost loops first,
    /// then each enclosing region, and finally the block top level (whose
    /// "pre" — units invariant for the whole block, e.g. pure
    /// block/thread-index addresses — is evaluated once per block).
    fn optimize(&mut self, nodes: &mut Vec<Node>) {
        for n in nodes.iter_mut() {
            self.optimize_children(n);
        }
        let (pre, init, steps) = self.optimize_region(nodes, None);
        debug_assert!(init.is_empty() && steps.is_empty());
        for (i, instr) in pre.into_iter().enumerate() {
            nodes.insert(i, Node::I(instr));
        }
    }

    fn optimize_children(&mut self, n: &mut Node) {
        match n {
            Node::Loop(l) => {
                for c in l.body.iter_mut() {
                    self.optimize_children(c);
                }
                let (pre, init, steps) = self.optimize_region(&mut l.body, Some(l.var));
                l.pre.extend(pre);
                l.init.extend(init);
                l.steps.extend(steps);
            }
            Node::If(f) => {
                for c in f.then_b.iter_mut().chain(f.else_b.iter_mut()) {
                    self.optimize_children(c);
                }
            }
            Node::I(_) => {}
        }
    }

    /// Optimize one region (a loop body, or the block top level when
    /// `var` is `None`): lift already-hoisted invariant evaluations out
    /// of nested loops, hoist invariant units, and strength-reduce
    /// `c·var + invariant` units.
    fn optimize_region(
        &mut self,
        body: &mut [Node],
        var: Option<u32>,
    ) -> (Vec<Instr>, Vec<Instr>, Vec<Instr>) {
        let mut written: HashSet<u32> = HashSet::new();
        if let Some(v) = var {
            written.insert(v);
        }
        self.collect_written(body, &mut written);

        let mut pre = Vec::new();
        self.lift_invariant_evals(body, &written, &mut pre);

        let mut seen = HashSet::new();
        let mut uses = Vec::new();
        self.collect_unit_uses(body, &mut seen, &mut uses);

        let mut init = Vec::new();
        let mut steps = Vec::new();
        let mut map: HashMap<u32, AOp> = HashMap::new();
        for u in uses {
            let e = &self.units[u as usize];
            let invariant = e.terms.iter().all(|&(s, _)| !written.contains(&(s as u32)));
            if invariant {
                let cache = self.fresh_slot();
                pre.push(Instr::Eval {
                    dst: cache,
                    unit: u,
                });
                map.insert(u, AOp::Slot(cache));
                continue;
            }
            if let Some(v) = var {
                let e = &self.units[u as usize];
                let coeff = e
                    .terms
                    .iter()
                    .find(|&&(s, _)| s as u32 == v)
                    .map(|&(_, c)| c);
                let others_invariant = e
                    .terms
                    .iter()
                    .all(|&(s, _)| s as u32 == v || !written.contains(&(s as u32)));
                if let (Some(c), true) = (coeff, others_invariant) {
                    let cache = self.fresh_slot();
                    init.push(Instr::Eval {
                        dst: cache,
                        unit: u,
                    });
                    steps.push(Instr::StepAdd { dst: cache, imm: c });
                    map.insert(u, AOp::Slot(cache));
                }
            }
        }

        if !map.is_empty() {
            self.apply_unit_map(body, &map);
        }
        (pre, init, steps)
    }

    fn collect_written(&self, nodes: &[Node], w: &mut HashSet<u32>) {
        for n in nodes {
            match n {
                Node::I(i) => self.written_of_instr(i, w),
                Node::Loop(l) => {
                    w.insert(l.var);
                    w.insert(l.hi);
                    for i in l.pre.iter().chain(&l.init).chain(&l.steps) {
                        self.written_of_instr(i, w);
                    }
                    self.collect_written(&l.body, w);
                }
                Node::If(f) => {
                    self.collect_written(&f.then_b, w);
                    self.collect_written(&f.else_b, w);
                }
            }
        }
    }

    fn written_of_instr(&self, i: &Instr, w: &mut HashSet<u32>) {
        match i {
            Instr::Eval { dst, .. } | Instr::StepAdd { dst, .. } => {
                w.insert(*dst);
            }
            Instr::Stage { .. } => {
                w.insert(self.tape.sr_slot as u32);
                w.insert(self.tape.sc_slot as u32);
            }
            Instr::Move { .. } => {
                w.insert(self.tape.gr_slot as u32);
                w.insert(self.tape.gc_slot as u32);
            }
            _ => {}
        }
    }

    /// Move invariant cache evaluations from nested loops' `pre` lists
    /// into this region's `pre`: a cache hoisted out of an inner loop
    /// rises as far as its unit stays invariant.
    fn lift_invariant_evals(
        &self,
        nodes: &mut [Node],
        written: &HashSet<u32>,
        out: &mut Vec<Instr>,
    ) {
        for n in nodes {
            match n {
                Node::Loop(l) => {
                    let units = &self.units;
                    l.pre.retain(|i| {
                        if let Instr::Eval { unit, .. } = i {
                            let e = &units[*unit as usize];
                            if e.terms.iter().all(|&(s, _)| !written.contains(&(s as u32))) {
                                out.push(*i);
                                return false;
                            }
                        }
                        true
                    });
                    self.lift_invariant_evals(&mut l.body, written, out);
                }
                Node::If(f) => {
                    self.lift_invariant_evals(&mut f.then_b, written, out);
                    self.lift_invariant_evals(&mut f.else_b, written, out);
                }
                Node::I(_) => {}
            }
        }
    }

    /// Distinct unit indices used as *operands* within a region, in
    /// first-use order: instruction address operands plus nested loops'
    /// entry bounds.
    fn collect_unit_uses(&self, nodes: &[Node], seen: &mut HashSet<u32>, out: &mut Vec<u32>) {
        let push = |a: &AOp, seen: &mut HashSet<u32>, out: &mut Vec<u32>| {
            if let AOp::Unit(u) = a {
                if seen.insert(*u) {
                    out.push(*u);
                }
            }
        };
        for n in nodes {
            match n {
                Node::I(i) => match i {
                    Instr::FLoad { row, col, .. } | Instr::FStore { row, col, .. } => {
                        push(row, seen, out);
                        push(col, seen, out);
                    }
                    Instr::Stage { ix } => {
                        let st = &self.stages[*ix as usize];
                        push(&st.row0, seen, out);
                        push(&st.col0, seen, out);
                    }
                    Instr::Move { ix } => {
                        let mv = &self.moves[*ix as usize];
                        push(&mv.row0, seen, out);
                        push(&mv.col0, seen, out);
                    }
                    _ => {}
                },
                Node::Loop(l) => {
                    push(&l.lo, seen, out);
                    push(&l.hi_src, seen, out);
                    self.collect_unit_uses(&l.body, seen, out);
                }
                Node::If(f) => {
                    self.collect_unit_uses(&f.then_b, seen, out);
                    self.collect_unit_uses(&f.else_b, seen, out);
                }
            }
        }
    }

    fn apply_unit_map(&mut self, nodes: &mut [Node], map: &HashMap<u32, AOp>) {
        let sub = |a: &mut AOp, map: &HashMap<u32, AOp>| {
            if let AOp::Unit(u) = a {
                if let Some(rep) = map.get(u) {
                    *a = *rep;
                }
            }
        };
        for n in nodes {
            match n {
                Node::I(i) => match i {
                    Instr::FLoad { row, col, .. } | Instr::FStore { row, col, .. } => {
                        sub(row, map);
                        sub(col, map);
                    }
                    Instr::Stage { ix } => {
                        let st = &mut self.stages[*ix as usize];
                        sub(&mut st.row0, map);
                        sub(&mut st.col0, map);
                    }
                    Instr::Move { ix } => {
                        let mv = &mut self.moves[*ix as usize];
                        sub(&mut mv.row0, map);
                        sub(&mut mv.col0, map);
                    }
                    _ => {}
                },
                Node::Loop(l) => {
                    sub(&mut l.lo, map);
                    sub(&mut l.hi_src, map);
                    self.apply_unit_map(&mut l.body, map);
                }
                Node::If(f) => {
                    self.apply_unit_map(&mut f.then_b, map);
                    self.apply_unit_map(&mut f.else_b, map);
                }
            }
        }
    }
}

// ---- linearization -----------------------------------------------------

fn emit_nodes(nodes: Vec<Node>, code: &mut Vec<Instr>) {
    for n in nodes {
        emit_node(n, code);
    }
}

fn emit_node(n: Node, code: &mut Vec<Instr>) {
    match n {
        Node::I(i) => code.push(i),
        Node::Loop(l) => {
            code.extend(l.pre);
            code.push(Instr::LoopInit {
                var: l.var,
                hi: l.hi,
                lo: l.lo,
                hi_src: l.hi_src,
                uniform: l.uniform,
                label: l.label,
            });
            code.extend(l.init);
            let top = code.len();
            code.push(Instr::LoopTest {
                var: l.var,
                hi: l.hi,
                exit: u32::MAX,
                uniform: false, // refined by `mark_uniform`
            });
            emit_nodes(l.body, code);
            code.push(Instr::StepAdd { dst: l.var, imm: 1 });
            code.extend(l.steps);
            code.push(Instr::LoopJump { top: top as u32 });
            let exit = code.len() as u32;
            code.push(Instr::PopMask);
            if let Instr::LoopTest { exit: e, .. } = &mut code[top] {
                *e = exit;
            }
        }
        Node::If(f) => {
            if f.uniform {
                let br = code.len();
                code.push(Instr::BranchUniform {
                    pred: f.pred,
                    if_false: u32::MAX,
                });
                emit_nodes(f.then_b, code);
                if f.else_b.is_empty() {
                    let end = code.len() as u32;
                    if let Instr::BranchUniform { if_false, .. } = &mut code[br] {
                        *if_false = end;
                    }
                } else {
                    let j = code.len();
                    code.push(Instr::Jump { target: u32::MAX });
                    let else_start = code.len() as u32;
                    if let Instr::BranchUniform { if_false, .. } = &mut code[br] {
                        *if_false = else_start;
                    }
                    emit_nodes(f.else_b, code);
                    let end = code.len() as u32;
                    if let Instr::Jump { target } = &mut code[j] {
                        *target = end;
                    }
                }
            } else {
                let split = code.len();
                code.push(Instr::IfSplit {
                    pred: f.pred,
                    on_empty: u32::MAX,
                });
                emit_nodes(f.then_b, code);
                if f.else_b.is_empty() {
                    let end = code.len() as u32;
                    code.push(Instr::PopMask);
                    if let Instr::IfSplit { on_empty, .. } = &mut code[split] {
                        *on_empty = end;
                    }
                } else {
                    let ep = code.len();
                    code.push(Instr::IfElse { done: u32::MAX });
                    if let Instr::IfSplit { on_empty, .. } = &mut code[split] {
                        *on_empty = ep as u32;
                    }
                    emit_nodes(f.else_b, code);
                    let end = code.len() as u32;
                    code.push(Instr::PopMask);
                    if let Instr::IfElse { done } = &mut code[ep] {
                        *done = end;
                    }
                }
            }
        }
    }
}

/// Per-slot lane structure tracked by [`mark_lanes`]: how a slot's value
/// varies across the lanes of a block.
///
/// `Aff(a, b)` means the value is `u + a·tx + b·ty` for a lane-invariant
/// `u`; `Unknown` is the optimistic top (not yet constrained); `Bot` is
/// "no single affine form" (e.g. the staging specials, or a slot written
/// with two different shapes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Lane {
    Unknown,
    Aff(i64, i64),
    Bot,
}

impl Lane {
    /// Lattice meet: `Unknown` yields to anything, equal classes stay,
    /// conflicting classes collapse to `Bot`.
    fn meet(self, other: Lane) -> Lane {
        match (self, other) {
            (Lane::Unknown, x) | (x, Lane::Unknown) => x,
            (a, b) if a == b => a,
            _ => Lane::Bot,
        }
    }
}

/// Static lane-structure analysis over the linear code.
///
/// Each slot is classified as an affine function of the thread indices,
/// `u + a·tx + b·ty` with `u` lane-invariant (`Lane::Aff(a, b)`), or
/// demoted to `Lane::Bot` when no single such form exists.  Divergence
/// enters only through the thread-index slots and the per-lane
/// staging/move specials (`__sr`/`__sc`/`__gr`/`__gc`); every other write
/// is `Eval` (coefficients add linearly), `LoopInit` (takes the bound's
/// class) or `StepAdd` (a constant step preserves the class).  A thread
/// index over a block dimension of extent 1 is constantly zero, so it
/// seeds as uniform — with `thr_j = 1` (the Volkov-like shapes) every
/// `ty` term vanishes statically.  The optimistic fixpoint only moves
/// down the three-level lattice, so it terminates quickly.
///
/// A class translates to a single per-lane stride once the block shape
/// is known (lanes enumerate `tx + ty·block.0`): `a·tx + b·ty` is linear
/// in the lane index iff one dimension is degenerate or `b = a·block.0`.
/// The interpreter uses the result to broadcast uniform-address loads,
/// turn lane-affine gathers into constant-stride walks (stride 1 over a
/// column-major global — the coalesced pattern — becomes a slice copy),
/// run uniform-address register-tile traffic as contiguous vector ops,
/// and test uniform loop bounds on lane 0 only.
fn mark_lanes(code: &mut [Instr], units: &[SlotExpr], n_slots: usize, tape: &Tape) -> Vec<Lane> {
    let (bx, by) = tape.block;
    let mut cls = vec![Lane::Unknown; n_slots];
    let tx_seed = Lane::Aff(i64::from(bx > 1), 0);
    let ty_seed = Lane::Aff(0, i64::from(by > 1));
    cls[tape.tx_slot] = tx_seed;
    cls[tape.ty_slot] = ty_seed;
    cls[tape.sr_slot] = Lane::Bot;
    cls[tape.sc_slot] = Lane::Bot;
    cls[tape.gr_slot] = Lane::Bot;
    cls[tape.gc_slot] = Lane::Bot;
    for &(slot, b) in &tape.binds {
        match b {
            Builtin::ThreadX => cls[slot] = tx_seed,
            Builtin::ThreadY => cls[slot] = ty_seed,
            _ => {}
        }
    }
    // Slots no instruction writes (block indices, problem sizes — bound
    // once per block) are lane-invariant unless seeded above.
    let mut written = vec![false; n_slots];
    for i in code.iter() {
        match *i {
            Instr::Eval { dst, .. } | Instr::StepAdd { dst, .. } => {
                written[dst as usize] = true;
            }
            Instr::LoopInit { var, hi, .. } => {
                written[var as usize] = true;
                written[hi as usize] = true;
            }
            _ => {}
        }
    }
    for (c, w) in cls.iter_mut().zip(&written) {
        if !w && *c == Lane::Unknown {
            *c = Lane::Aff(0, 0);
        }
    }

    let class_unit = |cls: &[Lane], u: u32| {
        let mut a = 0i64;
        let mut b = 0i64;
        for &(s, c) in &units[u as usize].terms {
            match cls[s] {
                Lane::Bot => return Lane::Bot,
                Lane::Unknown => return Lane::Unknown,
                Lane::Aff(sa, sb) => {
                    a += c * sa;
                    b += c * sb;
                }
            }
        }
        Lane::Aff(a, b)
    };
    let class_aop = |cls: &[Lane], a: AOp| match a {
        AOp::Const(_) => Lane::Aff(0, 0),
        AOp::Slot(s) => cls[s as usize],
        AOp::Unit(u) => class_unit(cls, u),
    };

    loop {
        let mut changed = false;
        let mut refine = |cls: &mut Vec<Lane>, slot: u32, new: Lane| {
            let met = cls[slot as usize].meet(new);
            if met != cls[slot as usize] {
                cls[slot as usize] = met;
                changed = true;
            }
        };
        for i in code.iter() {
            match *i {
                Instr::Eval { dst, unit } => {
                    let c = class_unit(&cls, unit);
                    refine(&mut cls, dst, c);
                }
                Instr::LoopInit {
                    var,
                    hi,
                    lo,
                    hi_src,
                    ..
                } => {
                    let lo_c = class_aop(&cls, lo);
                    let hi_c = class_aop(&cls, hi_src);
                    refine(&mut cls, var, lo_c);
                    refine(&mut cls, hi, hi_c);
                }
                // StepAdd adds a constant to every lane: preserves.
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Per-lane stride of a class, if the `tx`/`ty` coefficients form a
    // single linear function of the lane index (`lane = tx + ty·bx`).
    // A slot still `Unknown` is written only in terms of itself (dead or
    // unreachable): no fast path.
    let stride = |c: Lane| match c {
        Lane::Bot | Lane::Unknown => None,
        Lane::Aff(a, b) => {
            if by == 1 {
                Some(a)
            } else if bx == 1 {
                Some(b)
            } else if b == a * bx {
                Some(a)
            } else {
                None
            }
        }
    };
    let aop_stride = |a: AOp| stride(class_aop(&cls, a));

    for i in code.iter_mut() {
        match i {
            Instr::FLoad { row, col, addr, .. } | Instr::FStore { row, col, addr, .. } => {
                *addr = match (aop_stride(*row), aop_stride(*col)) {
                    (Some(lr), Some(lc)) => AddrClass::Affine { lr, lc },
                    _ => AddrClass::Generic,
                }
            }
            Instr::LoopTest {
                var, hi, uniform, ..
            } => {
                *uniform =
                    stride(cls[*var as usize]) == Some(0) && stride(cls[*hi as usize]) == Some(0)
            }
            _ => {}
        }
    }
    cls
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_loopir::builder::gemm_nn_like;
    use oa_loopir::transform::{loop_tiling, reg_alloc, sm_alloc, thread_grouping, TileParams};

    fn lowered_gemm() -> (Program, Bindings) {
        let mut p = gemm_nn_like("g");
        let params = TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", params).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        (p, Bindings::square(32))
    }

    #[test]
    fn gemm_lowers_to_bytecode() {
        let (p, b) = lowered_gemm();
        let bc = ByteCode::compile(&p, &b).expect("lowers");
        assert!(!bc.is_empty());
        assert!(bc.n_fregs >= 1);
        // The inner-product statement must have fused or at least
        // compiled to flat instructions with no structural nesting left.
        assert!(bc
            .code
            .iter()
            .any(|i| matches!(i, Instr::FStore { .. } | Instr::Move { .. })));
    }

    #[test]
    fn optimizer_strength_reduces_inner_addresses() {
        let (p, b) = lowered_gemm();
        let bc = ByteCode::compile(&p, &b).expect("lowers");
        // Hoisting/strength reduction allocate cache slots beyond the
        // tape's own count; a strength-reduced address shows up as a
        // StepAdd whose destination is such a cache slot (loop-variable
        // steps always target tape slots), and a hoisted unit as an Eval.
        let tape = Tape::compile(&p, &b).unwrap();
        let n_tape = tape.n_slots as u32;
        assert!(
            bc.n_slots > tape.n_slots,
            "expected cache slots to be allocated by hoisting/strength reduction"
        );
        assert!(bc.code.iter().any(|i| matches!(i, Instr::Eval { .. })));
        assert!(bc
            .code
            .iter()
            .any(|i| matches!(i, Instr::StepAdd { dst, .. } if *dst >= n_tape)));
    }

    #[test]
    fn unmapped_program_fails_compile() {
        let p = gemm_nn_like("g");
        let err = ByteCode::compile(&p, &Bindings::square(8)).unwrap_err();
        assert!(matches!(err, ExecError::Launch(_)));
    }

    #[test]
    fn jump_targets_are_patched() {
        let (p, b) = lowered_gemm();
        let bc = ByteCode::compile(&p, &b).expect("lowers");
        let n = bc.code.len() as u32;
        for i in &bc.code {
            let t = match i {
                Instr::LoopTest { exit, .. } => *exit,
                Instr::LoopJump { top } => *top,
                Instr::Jump { target } => *target,
                Instr::BranchUniform { if_false, .. } => *if_false,
                Instr::IfSplit { on_empty, .. } => *on_empty,
                Instr::IfElse { done } => *done,
                _ => continue,
            };
            assert!(t < n, "unpatched or out-of-range jump target {t}");
        }
    }
}
