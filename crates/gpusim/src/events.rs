//! Per-warp memory event classification: global-memory coalescing by
//! compute capability and shared-memory bank-conflict analysis.
//!
//! Addresses are in 4-byte *words*.  A lane's entry is `None` when the
//! thread is inactive (guarded off / divergent).

use crate::device::{ComputeCapability, HALF_WARP, WARP};
use crate::profile::ProfileCounters;

/// Outcome of one warp-wide global access.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GmemEvent {
    /// Transactions issued.
    pub transactions: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Whether any part was classified non-coalesced (CC 1.0 only).
    pub incoherent: u64,
    /// Coalesced transaction count.
    pub coherent: u64,
}

/// Classify a warp's global access (32 lanes of optional word addresses).
pub fn classify_gmem(cc: ComputeCapability, lanes: &[Option<i64>; WARP]) -> GmemEvent {
    match cc {
        ComputeCapability::Cc1_0 => {
            // Per half-warp: threads must hit one 64-byte segment in
            // thread order, else one 32-byte transaction per thread.
            let mut ev = GmemEvent::default();
            for half in 0..2 {
                let slice = &lanes[half * HALF_WARP..(half + 1) * HALF_WARP];
                let active: Vec<(usize, i64)> = slice
                    .iter()
                    .enumerate()
                    .filter_map(|(i, a)| a.map(|w| (i, w)))
                    .collect();
                if active.is_empty() {
                    continue;
                }
                let base = active[0].1 - active[0].0 as i64;
                let perfect = base % HALF_WARP as i64 == 0
                    && active.iter().all(|(i, w)| *w == base + *i as i64);
                if perfect {
                    ev.transactions += 1;
                    ev.bytes += 64;
                    ev.coherent += 1;
                } else {
                    ev.transactions += active.len() as u64;
                    ev.bytes += active.len() as u64 * 32;
                    ev.incoherent += active.len() as u64;
                }
            }
            ev
        }
        ComputeCapability::Cc1_3 => {
            // Per half-warp: the hardware issues one transaction per
            // distinct 64-byte segment actually touched.
            let mut ev = GmemEvent::default();
            for half in 0..2 {
                let slice = &lanes[half * HALF_WARP..(half + 1) * HALF_WARP];
                let mut segs: Vec<i64> = slice
                    .iter()
                    .flatten()
                    .map(|w| w.div_euclid(HALF_WARP as i64))
                    .collect();
                if segs.is_empty() {
                    continue;
                }
                segs.sort_unstable();
                segs.dedup();
                ev.transactions += segs.len() as u64;
                ev.bytes += segs.len() as u64 * 64;
                ev.coherent += segs.len() as u64;
            }
            ev
        }
        ComputeCapability::Cc2_0 => {
            // Per warp: one transaction per distinct 128-byte cache line.
            let mut lines: Vec<i64> = lanes.iter().flatten().map(|w| w.div_euclid(32)).collect();
            if lines.is_empty() {
                return GmemEvent::default();
            }
            lines.sort_unstable();
            lines.dedup();
            GmemEvent {
                transactions: lines.len() as u64,
                bytes: lines.len() as u64 * 128,
                incoherent: 0,
                coherent: lines.len() as u64,
            }
        }
    }
}

/// Shared-memory bank-conflict replay count for one warp access: the
/// serialization degree minus one, maximized over banks.  Identical
/// addresses broadcast without conflict.
pub fn smem_replays(banks: u32, lanes: &[Option<i64>; WARP]) -> u64 {
    // CC 1.x resolves conflicts per half-warp; CC 2.0 per warp with 32
    // banks.  Using the bank count to choose the group size models both.
    let group = if banks <= 16 { HALF_WARP } else { WARP };
    let mut worst_total = 0u64;
    for chunk in lanes.chunks(group) {
        let mut per_bank: std::collections::HashMap<i64, Vec<i64>> =
            std::collections::HashMap::new();
        for w in chunk.iter().flatten() {
            per_bank
                .entry(w.rem_euclid(banks as i64))
                .or_default()
                .push(*w);
        }
        let mut worst = 1u64;
        for addrs in per_bank.values_mut() {
            addrs.sort_unstable();
            addrs.dedup();
            worst = worst.max(addrs.len() as u64);
        }
        if !per_bank.is_empty() {
            worst_total += worst - 1;
        }
    }
    worst_total
}

/// Accumulate a global access into counters, with the CC-appropriate
/// counter names.
pub fn record_gmem(
    counters: &mut ProfileCounters,
    cc: ComputeCapability,
    lanes: &[Option<i64>; WARP],
    is_store: bool,
    weight: f64,
) {
    let ev = classify_gmem(cc, lanes);
    if ev.transactions == 0 {
        return;
    }
    counters.gmem_bytes += ev.bytes as f64 * weight;
    match cc {
        ComputeCapability::Cc1_0 | ComputeCapability::Cc1_3 => {
            if is_store {
                counters.gst_coherent += ev.coherent as f64 * weight;
                counters.gst_incoherent += ev.incoherent as f64 * weight;
            } else {
                counters.gld_coherent += ev.coherent as f64 * weight;
                counters.gld_incoherent += ev.incoherent as f64 * weight;
            }
        }
        ComputeCapability::Cc2_0 => {
            if is_store {
                counters.gst_request += weight;
            } else {
                counters.gld_request += weight;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_lanes(base: i64) -> [Option<i64>; WARP] {
        std::array::from_fn(|i| Some(base + i as i64))
    }

    fn strided_lanes(base: i64, stride: i64) -> [Option<i64>; WARP] {
        std::array::from_fn(|i| Some(base + i as i64 * stride))
    }

    fn broadcast_lanes(addr: i64) -> [Option<i64>; WARP] {
        [Some(addr); WARP]
    }

    #[test]
    fn cc10_sequential_coalesces() {
        let ev = classify_gmem(ComputeCapability::Cc1_0, &seq_lanes(64));
        assert_eq!(ev.transactions, 2); // one per half-warp
        assert_eq!(ev.incoherent, 0);
        assert_eq!(ev.bytes, 128);
    }

    #[test]
    fn cc10_strided_serializes() {
        let ev = classify_gmem(ComputeCapability::Cc1_0, &strided_lanes(0, 4096));
        assert_eq!(ev.transactions, 32);
        assert_eq!(ev.incoherent, 32);
        assert_eq!(ev.bytes, 32 * 32);
    }

    #[test]
    fn cc10_misaligned_serializes() {
        // Sequential but starting mid-segment: G80 cannot coalesce.
        let ev = classify_gmem(ComputeCapability::Cc1_0, &seq_lanes(3));
        assert!(ev.incoherent > 0);
    }

    #[test]
    fn cc10_broadcast_serializes() {
        // Same-address global reads serialize on G80 (no broadcast path).
        let ev = classify_gmem(ComputeCapability::Cc1_0, &broadcast_lanes(128));
        assert_eq!(ev.incoherent, 32);
    }

    #[test]
    fn cc13_misaligned_costs_extra_segment_only() {
        let ev = classify_gmem(ComputeCapability::Cc1_3, &seq_lanes(3));
        // Each half-warp spans two 64B segments.
        assert_eq!(ev.transactions, 4);
        assert_eq!(ev.incoherent, 0);
    }

    #[test]
    fn cc13_broadcast_is_one_segment_per_half() {
        let ev = classify_gmem(ComputeCapability::Cc1_3, &broadcast_lanes(128));
        assert_eq!(ev.transactions, 2);
    }

    #[test]
    fn cc20_sequential_is_one_line() {
        let ev = classify_gmem(ComputeCapability::Cc2_0, &seq_lanes(0));
        assert_eq!(ev.transactions, 1);
        assert_eq!(ev.bytes, 128);
    }

    #[test]
    fn cc20_strided_touches_many_lines() {
        let ev = classify_gmem(ComputeCapability::Cc2_0, &strided_lanes(0, 1024));
        assert_eq!(ev.transactions, 32);
    }

    #[test]
    fn inactive_lanes_ignored() {
        let mut lanes = seq_lanes(0);
        for l in lanes.iter_mut().skip(16) {
            *l = None;
        }
        let ev = classify_gmem(ComputeCapability::Cc1_0, &lanes);
        assert_eq!(ev.transactions, 1);
    }

    #[test]
    fn bank_conflicts_16_banks() {
        // Stride-16 word accesses: every lane in a half-warp hits bank 0.
        assert_eq!(smem_replays(16, &strided_lanes(0, 16)), (16 - 1) * 2);
        // Stride-17 (padded tile): conflict-free.
        assert_eq!(smem_replays(16, &strided_lanes(0, 17)), 0);
        // Broadcast: conflict-free.
        assert_eq!(smem_replays(16, &broadcast_lanes(5)), 0);
        // Sequential: conflict-free.
        assert_eq!(smem_replays(16, &seq_lanes(0)), 0);
    }

    #[test]
    fn bank_conflicts_32_banks() {
        assert_eq!(smem_replays(32, &strided_lanes(0, 32)), 31);
        assert_eq!(smem_replays(32, &strided_lanes(0, 33)), 0);
    }

    #[test]
    fn record_counters_by_cc() {
        let mut c = ProfileCounters::default();
        record_gmem(
            &mut c,
            ComputeCapability::Cc1_0,
            &strided_lanes(0, 100),
            false,
            1.0,
        );
        assert!(c.gld_incoherent > 0.0);
        let mut f = ProfileCounters::default();
        record_gmem(&mut f, ComputeCapability::Cc2_0, &seq_lanes(0), true, 2.0);
        assert_eq!(f.gst_request, 2.0);
        assert_eq!(f.gmem_bytes, 256.0);
    }
}
