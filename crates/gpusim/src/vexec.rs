//! Lane-vectorized execution of [`ByteCode`]: the fastest of the three
//! engines.
//!
//! The tape executor walks its `Op` tree once *per simulated thread*; this
//! interpreter walks the flat instruction stream once *per block*, applying
//! each instruction across all lanes (threads) of the block in lockstep:
//!
//! * **state is lane-vectorized** — integer frames are slot-major
//!   (`frames[slot·n + lane]`) and f32 registers reg-major
//!   (`fregs[reg·n + lane]`), so one instruction touches `n` contiguous
//!   values and the per-instruction dispatch cost amortizes over the whole
//!   block;
//! * **divergence is a mask stack** — `LoopInit`/`IfSplit` push the current
//!   active-lane bitset, `LoopTest`/`IfElse` refine it, `PopMask` restores
//!   it; a region whose mask empties is skipped by a jump rather than
//!   visited by every thread;
//! * **addresses are incremental** — after the optimizer most subscripts
//!   are a cache-slot read kept fresh by `StepAdd`, not an affine dot
//!   product.
//!
//! Equivalence with the tape: within one barrier-free segment the tape runs
//! thread `t` to completion before thread `t+1`, while this engine runs
//! lanes in lockstep per instruction. The two orders can differ only when
//! lanes of the same segment touch the *same* element — a data race no
//! generated kernel exhibits (each thread owns its output elements between
//! barriers), and one the engine-differential tests would catch. Loads are
//! masked (inactive lanes compute no address, so guard-protected
//! out-of-bounds subscripts are never formed), stores are masked, and pure
//! per-lane arithmetic on inactive lanes is unobservable.

use oa_loopir::arrays::AllocMode;
use oa_loopir::interp::{blank_is_zero, run_map_kernel, Buffers, Matrix};
use oa_loopir::scalar::BinOp;
use oa_loopir::slots::SlotExpr;
use oa_loopir::stmt::{stage_src_coords, AssignOp};
use rayon::prelude::*;
use std::cell::RefCell;

use crate::bytecode::{AOp, AddrClass, ByteCode, Instr};
use crate::exec::ExecError;
use crate::launch::Builtin;
use crate::native::{NativeScratch, NativeTable};
use crate::tape::{pack_key, unpack_key, ArrRef, Overlay};

/// Per-worker scratch reused across blocks and executions: all
/// per-block state lives here, so steady-state execution allocates
/// nothing. Every reset reproduces the state a fresh allocation would
/// have.
#[derive(Default)]
struct VScratch {
    frames: Vec<i64>,
    fregs: Vec<f32>,
    smem: Vec<f32>,
    regs: Vec<f32>,
    overlay: Overlay,
    active: Vec<u64>,
    /// The all-lanes mask pattern, for cheap "is the mask full" tests.
    full: Vec<u64>,
    /// Mask stack entries `(saved, pred_lanes)`; retained and rewritten
    /// in place, `sp` marks the live depth.
    stack: Vec<(Vec<u64>, Vec<u64>)>,
    /// Scratch for the native tier's preflight and trace replay.
    native: NativeScratch,
}

thread_local! {
    static VSCRATCH: RefCell<VScratch> = RefCell::new(VScratch::default());
}

impl ByteCode {
    /// Execute on the given buffers: prologue kernels, blank-zero checks,
    /// then the block-parallel grid with the same deterministic `(by, bx)`
    /// overlay merge as the tape engine.
    pub fn execute(&self, bufs: &mut Buffers) -> Result<(), ExecError> {
        self.execute_impl(bufs, None)
    }

    /// Execute with the native tier's region table: the interpreter
    /// drives, handing matched regions to the native microkernels.
    pub(crate) fn execute_with_native(
        &self,
        bufs: &mut Buffers,
        table: &NativeTable,
    ) -> Result<(), ExecError> {
        self.execute_impl(bufs, Some(table))
    }

    fn execute_impl(
        &self,
        bufs: &mut Buffers,
        native: Option<&NativeTable>,
    ) -> Result<(), ExecError> {
        for mk in &self.prologues {
            run_map_kernel(mk, bufs, &|n| self.prologue_env[n]);
        }

        let mut blank_flags = vec![false; self.n_blank_flags];
        for (i, &(g, fill)) in self.blank_checks.iter().enumerate() {
            let name = &self.globals[g].name;
            let m = bufs
                .get(name)
                .ok_or_else(|| ExecError::MissingBuffer(name.clone()))?;
            blank_flags[i] = blank_is_zero(m, fill);
        }

        let nblocks = self.total_blocks();
        let logs: Vec<Result<Vec<(u64, f32)>, ExecError>> = {
            let mut base = Vec::with_capacity(self.globals.len());
            for g in &self.globals {
                base.push(
                    bufs.get(&g.name)
                        .ok_or_else(|| ExecError::MissingBuffer(g.name.clone()))?,
                );
            }
            let base = &base;
            let flags = &blank_flags;
            (0..nblocks)
                .into_par_iter()
                .map(|rank| self.run_block(rank, base, flags, native))
                .collect()
        };

        // Keys within one block's log are distinct, so drain order within
        // a log cannot change the merged result; across blocks the
        // sequential (by, bx) order reproduces the oracle's block loop.
        for res in logs {
            for (key, v) in res? {
                let (g, r, c) = unpack_key(key);
                bufs.get_mut(&self.globals[g].name)
                    .expect("checked above")
                    .set(r, c, v);
            }
        }
        Ok(())
    }

    fn run_block(
        &self,
        rank: i64,
        base: &[&Matrix],
        blank_flags: &[bool],
        native: Option<&NativeTable>,
    ) -> Result<Vec<(u64, f32)>, ExecError> {
        VSCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.run_block_in(rank, base, blank_flags, native, scratch)
        })
    }

    fn run_block_in(
        &self,
        rank: i64,
        base: &[&Matrix],
        blank_flags: &[bool],
        native: Option<&NativeTable>,
        scratch: &mut VScratch,
    ) -> Result<Vec<(u64, f32)>, ExecError> {
        let bx = rank % self.grid.0;
        let by = rank / self.grid.0;
        let n = self.threads_per_block() as usize;
        let words = n.div_ceil(64);

        scratch.frames.clear();
        scratch.frames.resize(self.n_slots * n, 0);
        for ty in 0..self.block.1 {
            for tx in 0..self.block.0 {
                let lane = (tx + ty * self.block.0) as usize;
                scratch.frames[self.tx_slot * n + lane] = tx;
                scratch.frames[self.ty_slot * n + lane] = ty;
                for &(slot, b) in &self.binds {
                    scratch.frames[slot * n + lane] = match b {
                        Builtin::BlockX => bx,
                        Builtin::BlockY => by,
                        Builtin::ThreadX => tx,
                        Builtin::ThreadY => ty,
                    };
                }
            }
        }
        scratch.fregs.clear();
        scratch.fregs.resize(self.n_fregs * n, 0.0);
        scratch.smem.clear();
        scratch.smem.resize(self.smem_len, 0.0);
        scratch.regs.clear();
        scratch.regs.resize(self.reg_len * n, 0.0);
        scratch.overlay.clear();
        scratch.active.clear();
        scratch.active.resize(words, 0);
        for lane in 0..n {
            scratch.active[lane / 64] |= 1 << (lane % 64);
        }
        scratch.full.clear();
        scratch.full.extend_from_slice(&scratch.active);

        let mut vb = VBlock {
            bc: self,
            n,
            words,
            frames: &mut scratch.frames,
            fregs: &mut scratch.fregs,
            smem: &mut scratch.smem,
            regs: &mut scratch.regs,
            overlay: &mut scratch.overlay,
            base,
            blank_flags,
            active: &mut scratch.active,
            full: &scratch.full,
            stack: &mut scratch.stack,
            sp: 0,
            native,
            nscratch: &mut scratch.native,
        };
        vb.run()?;
        Ok(scratch.overlay.drain().collect())
    }
}

/// One block's execution state, borrowing a worker's [`VScratch`].
/// Fields are `pub(crate)` so the native tier (`crate::native`) can run
/// its preflight and microkernels directly on the block state.
pub(crate) struct VBlock<'a> {
    pub(crate) bc: &'a ByteCode,
    /// Lanes (threads per block).
    pub(crate) n: usize,
    /// `n.div_ceil(64)` — length of every mask bitset.
    pub(crate) words: usize,
    /// Slot-major integer frames: `frames[slot*n + lane]`.
    pub(crate) frames: &'a mut [i64],
    /// Reg-major virtual f32 registers: `fregs[reg*n + lane]`.
    pub(crate) fregs: &'a mut [f32],
    /// Flat shared-tile arena (one copy per block), tiles at
    /// `smem_off[s]`, column-major with leading dimension `rows + pad`.
    pub(crate) smem: &'a mut [f32],
    /// Flat register-tile arena: `regs[(reg_off[x] + r + c*rows)*n + lane]`.
    pub(crate) regs: &'a mut [f32],
    pub(crate) overlay: &'a mut Overlay,
    pub(crate) base: &'a [&'a Matrix],
    pub(crate) blank_flags: &'a [bool],
    pub(crate) active: &'a mut Vec<u64>,
    /// The all-lanes mask pattern (`active == full` ⇔ no divergence).
    pub(crate) full: &'a [u64],
    pub(crate) stack: &'a mut Vec<(Vec<u64>, Vec<u64>)>,
    pub(crate) sp: usize,
    /// The native tier's region table, when executing as `native`.
    pub(crate) native: Option<&'a NativeTable>,
    pub(crate) nscratch: &'a mut NativeScratch,
}

/// Iterate the set lanes of a mask word-by-word.
macro_rules! for_active {
    ($self:ident, $lane:ident => $body:block) => {
        for w in 0..$self.words {
            let mut m = $self.active[w];
            while m != 0 {
                let $lane = w * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                $body
            }
        }
    };
}

impl VBlock<'_> {
    #[inline]
    fn eval_expr(&self, e: &SlotExpr, lane: usize) -> i64 {
        // SlotExpr::eval expects a lane-contiguous frame; our frames are
        // slot-major, so the dot product is re-expressed over the strided
        // layout here.
        let mut acc = e.constant;
        for &(s, c) in &e.terms {
            acc += c * self.frames[s * self.n + lane];
        }
        acc
    }

    #[inline]
    fn aop(&self, a: AOp, lane: usize) -> i64 {
        match a {
            AOp::Const(c) => c,
            AOp::Slot(s) => self.frames[s as usize * self.n + lane],
            AOp::Unit(u) => self.eval_expr(&self.bc.units[u as usize], lane),
        }
    }

    #[inline]
    fn eval_pred(&self, p: u32, lane: usize, thread0: bool) -> bool {
        let p = &self.bc.preds[p as usize];
        if p.thread0_only && !thread0 {
            return false;
        }
        if let Some(ix) = p.blank_flag {
            if self.blank_flags[ix] == p.blank_negated {
                return false;
            }
        }
        p.conds.iter().all(|c| {
            c.op.eval(self.eval_expr(&c.lhs, lane), self.eval_expr(&c.rhs, lane))
        })
    }

    /// Global read: the block's own writes shadow the snapshot.
    #[inline]
    pub(crate) fn gread(&self, g: usize, r: i64, c: i64) -> f32 {
        if self.bc.globals[g].written {
            if let Some(&v) = self.overlay.get(&pack_key(g, r, c)) {
                return v;
            }
        }
        self.base[g].get(r, c)
    }

    #[inline]
    fn gwrite(&mut self, g: usize, r: i64, c: i64, v: f32) {
        self.overlay.insert(pack_key(g, r, c), v);
    }

    #[inline]
    pub(crate) fn smem_ix(&self, s: usize, r: i64, c: i64) -> usize {
        let d = &self.bc.smem[s];
        let ld = d.rows + d.pad;
        // Mirrors Matrix::get/set bounds (rows ≤ r < ld lands in the pad).
        debug_assert!(
            r >= 0 && r < ld && c >= 0 && c < d.cols,
            "shared tile index ({r}, {c}) out of bounds"
        );
        self.bc.smem_off[s] + (r + c * ld) as usize
    }

    #[inline]
    fn reg_ix(&self, x: usize, r: i64, c: i64, lane: usize) -> usize {
        let d = &self.bc.regs[x];
        debug_assert!(
            r >= 0 && r < d.rows && c >= 0 && c < d.cols,
            "register tile index ({r}, {c}) out of bounds"
        );
        (self.bc.reg_off[x] + (r + c * d.rows) as usize) * self.n + lane
    }

    #[inline]
    fn read_elem(&self, arr: ArrRef, r: i64, c: i64, lane: usize) -> f32 {
        match arr {
            ArrRef::Global(g) => self.gread(g, r, c),
            ArrRef::Shared(s) => self.smem[self.smem_ix(s, r, c)],
            ArrRef::Reg(x) => self.regs[self.reg_ix(x, r, c, lane)],
        }
    }

    #[inline]
    fn write_elem(&mut self, arr: ArrRef, r: i64, c: i64, v: f32, lane: usize) {
        match arr {
            ArrRef::Global(g) => self.gwrite(g, r, c, v),
            ArrRef::Shared(s) => self.smem[self.smem_ix(s, r, c)] = v,
            ArrRef::Reg(x) => self.regs[self.reg_ix(x, r, c, lane)] = v,
        }
    }

    fn any_active(&self) -> bool {
        self.active.iter().any(|&w| w != 0)
    }

    /// True when every lane is active (the overwhelmingly common case in
    /// generated kernels — divergence is confined to guard regions).
    #[inline]
    pub(crate) fn mask_full(&self) -> bool {
        self.active[..] == self.full[..]
    }

    /// Lowest-numbered active lane, if any.
    #[inline]
    fn first_active(&self) -> Option<usize> {
        self.active
            .iter()
            .enumerate()
            .find(|(_, &m)| m != 0)
            .map(|(w, m)| w * 64 + m.trailing_zeros() as usize)
    }

    /// Uniform-address load: one read, broadcast to every lane.  Register
    /// tiles are lane-contiguous at a uniform element, so they broadcast
    /// as one vector copy.  Inactive lanes receive the value too — their
    /// virtual registers are dead (never stored), so this is
    /// unobservable.
    #[inline]
    fn fload_uniform(&mut self, dst: u32, arr: ArrRef, row: AOp, col: AOp) {
        let n = self.n;
        let Some(l0) = self.first_active() else {
            return;
        };
        let r = self.aop(row, l0);
        let c = self.aop(col, l0);
        let d = dst as usize * n;
        if let ArrRef::Reg(x) = arr {
            let base = self.reg_ix(x, r, c, 0);
            self.fregs[d..d + n].copy_from_slice(&self.regs[base..base + n]);
        } else {
            let v = self.read_elem(arr, r, c, l0);
            self.fregs[d..d + n].fill(v);
        }
    }

    /// Full-mask load: every lane gathers, with no mask bookkeeping and
    /// the array dispatch hoisted out of the lane loop.
    #[inline]
    fn fload_dense(&mut self, dst: u32, arr: ArrRef, row: AOp, col: AOp) {
        let n = self.n;
        let d = dst as usize * n;
        match arr {
            ArrRef::Global(g) if !self.bc.globals[g].written => {
                let m = self.base[g];
                for lane in 0..n {
                    let r = self.aop(row, lane);
                    let c = self.aop(col, lane);
                    self.fregs[d + lane] = m.get(r, c);
                }
            }
            _ => {
                for lane in 0..n {
                    let r = self.aop(row, lane);
                    let c = self.aop(col, lane);
                    let v = self.read_elem(arr, r, c, lane);
                    self.fregs[d + lane] = v;
                }
            }
        }
    }

    /// Lane-affine load: the subscripts advance by a constant per lane,
    /// so the gather needs no per-lane address evaluation.  A stride-1
    /// walk over an unwritten global — the coalesced-load pattern of the
    /// generated kernels — collapses to a plain slice copy; shared tiles
    /// become a constant-stride walk over the arena.
    #[inline]
    fn fload_affine(&mut self, dst: u32, arr: ArrRef, row: AOp, col: AOp, lr: i64, lc: i64) {
        let n = self.n;
        let Some(l0) = self.first_active() else {
            return;
        };
        // Subscripts at lane 0, extrapolated from the first active lane
        // (exact: the class is affine across every lane of the block).
        let r0 = self.aop(row, l0) - lr * l0 as i64;
        let c0 = self.aop(col, l0) - lc * l0 as i64;
        let d = dst as usize * n;
        if !self.mask_full() {
            for_active!(self, lane => {
                let r = r0 + lr * lane as i64;
                let c = c0 + lc * lane as i64;
                self.fregs[d + lane] = self.read_elem(arr, r, c, lane);
            });
            return;
        }
        match arr {
            ArrRef::Global(g) if !self.bc.globals[g].written => {
                let m = self.base[g];
                let base = r0 + c0 * m.ld;
                let stride = lr + lc * m.ld;
                if stride == 1 {
                    let base = base as usize;
                    self.fregs[d..d + n].copy_from_slice(&m.data[base..base + n]);
                } else {
                    for (lane, f) in self.fregs[d..d + n].iter_mut().enumerate() {
                        *f = m.data[(base + stride * lane as i64) as usize];
                    }
                }
            }
            ArrRef::Shared(s) => {
                let t = &self.bc.smem[s];
                let ld = t.rows + t.pad;
                let base = self.bc.smem_off[s] as i64 + r0 + c0 * ld;
                let stride = lr + lc * ld;
                for (lane, f) in self.fregs[d..d + n].iter_mut().enumerate() {
                    *f = self.smem[(base + stride * lane as i64) as usize];
                }
            }
            _ => {
                let (mut r, mut c) = (r0, c0);
                for lane in 0..n {
                    self.fregs[d + lane] = self.read_elem(arr, r, c, lane);
                    r += lr;
                    c += lc;
                }
            }
        }
    }

    /// Reserve (or reuse) the mask-stack entry at `sp` and return it.
    fn stack_entry(&mut self) -> (Vec<u64>, Vec<u64>) {
        if self.sp < self.stack.len() {
            std::mem::take(&mut self.stack[self.sp])
        } else {
            self.stack.push(Default::default());
            Default::default()
        }
    }

    fn run(&mut self) -> Result<(), ExecError> {
        let bc = self.bc;
        let code = &bc.code;
        let n = self.n;
        let mut pc = 0usize;
        while pc < code.len() {
            // Native tier: at a lowered region's entry point, hand the
            // whole nest to the microkernels; on `None` (divergent mask
            // or an unprovable guard — nothing mutated) fall through and
            // interpret the very same instructions.
            if let Some(nat) = self.native {
                let rix = nat.entry[pc];
                if rix != u32::MAX {
                    if let Some(next) = self.try_native(nat, rix) {
                        pc = next;
                        continue;
                    }
                }
            }
            match code[pc] {
                Instr::Eval { dst, unit } => {
                    let e = &bc.units[unit as usize];
                    for lane in 0..n {
                        self.frames[dst as usize * n + lane] = self.eval_expr(e, lane);
                    }
                    pc += 1;
                }
                Instr::StepAdd { dst, imm } => {
                    for v in &mut self.frames[dst as usize * n..(dst as usize + 1) * n] {
                        *v += imm;
                    }
                    pc += 1;
                }
                Instr::LoopInit {
                    var,
                    hi,
                    lo,
                    hi_src,
                    uniform,
                    label,
                } => {
                    let (mut saved, predm) = self.stack_entry();
                    saved.clear();
                    saved.extend_from_slice(self.active);
                    self.stack[self.sp] = (saved, predm);
                    self.sp += 1;
                    for lane in 0..n {
                        let l = self.aop(lo, lane);
                        let h = self.aop(hi_src, lane);
                        self.frames[var as usize * n + lane] = l;
                        self.frames[hi as usize * n + lane] = h;
                    }
                    if uniform {
                        let (l0, h0) =
                            (self.frames[var as usize * n], self.frames[hi as usize * n]);
                        for lane in 1..n {
                            if self.frames[var as usize * n + lane] != l0
                                || self.frames[hi as usize * n + lane] != h0
                            {
                                let label = &bc.labels[label as usize];
                                return Err(ExecError::BarrierDivergence(format!(
                                    "loop {label} bounds differ across threads"
                                )));
                            }
                        }
                    }
                    pc += 1;
                }
                Instr::LoopTest {
                    var,
                    hi,
                    exit,
                    uniform,
                } => {
                    let vn = var as usize * n;
                    let hn = hi as usize * n;
                    if uniform {
                        // Statically lane-invariant bounds: every lane
                        // passes or fails together, so test lane 0 and
                        // leave the mask untouched.
                        pc = if self.frames[vn] < self.frames[hn] {
                            pc + 1
                        } else {
                            exit as usize
                        };
                        continue;
                    }
                    let mut any = false;
                    for w in 0..self.words {
                        let lane0 = w * 64;
                        let lim = 64.min(n - lane0);
                        let mut bits = 0u64;
                        for i in 0..lim {
                            if self.frames[vn + lane0 + i] < self.frames[hn + lane0 + i] {
                                bits |= 1 << i;
                            }
                        }
                        let na = self.active[w] & bits;
                        self.active[w] = na;
                        any |= na != 0;
                    }
                    pc = if any { pc + 1 } else { exit as usize };
                }
                Instr::LoopJump { top } => pc = top as usize,
                Instr::Jump { target } => pc = target as usize,
                Instr::BranchUniform { pred, if_false } => {
                    let first = self.eval_pred(pred, 0, true);
                    for lane in 1..n {
                        if self.eval_pred(pred, lane, false) != first {
                            return Err(ExecError::BarrierDivergence(
                                "guard enclosing a barrier diverges".into(),
                            ));
                        }
                    }
                    pc = if first { pc + 1 } else { if_false as usize };
                }
                Instr::IfSplit { pred, on_empty } => {
                    let (mut saved, mut predm) = self.stack_entry();
                    saved.clear();
                    saved.extend_from_slice(self.active);
                    predm.clear();
                    predm.resize(self.words, 0);
                    for lane in 0..n {
                        if self.eval_pred(pred, lane, lane == 0) {
                            predm[lane / 64] |= 1 << (lane % 64);
                        }
                    }
                    for w in 0..self.words {
                        self.active[w] = saved[w] & predm[w];
                    }
                    self.stack[self.sp] = (saved, predm);
                    self.sp += 1;
                    pc = if self.any_active() {
                        pc + 1
                    } else {
                        on_empty as usize
                    };
                }
                Instr::IfElse { done } => {
                    let (saved, predm) = &self.stack[self.sp - 1];
                    for w in 0..self.words {
                        self.active[w] = saved[w] & !predm[w];
                    }
                    pc = if self.any_active() {
                        pc + 1
                    } else {
                        done as usize
                    };
                }
                Instr::PopMask => {
                    self.sp -= 1;
                    self.active.copy_from_slice(&self.stack[self.sp].0);
                    pc += 1;
                }
                Instr::FConst { dst, v } => {
                    self.fregs[dst as usize * n..(dst as usize + 1) * n].fill(v);
                    pc += 1;
                }
                Instr::FParamPanic { name } => {
                    // Reached only with at least one active lane (empty
                    // regions are jumped over), matching the oracle.
                    panic!("unbound scalar parameter {}", bc.params[name as usize]);
                }
                Instr::FLoad {
                    dst,
                    arr,
                    row,
                    col,
                    addr,
                } => {
                    match addr {
                        AddrClass::Affine { lr: 0, lc: 0 } => {
                            self.fload_uniform(dst, arr, row, col);
                        }
                        AddrClass::Affine { lr, lc } => {
                            self.fload_affine(dst, arr, row, col, lr, lc);
                        }
                        AddrClass::Generic => {
                            if self.mask_full() {
                                self.fload_dense(dst, arr, row, col);
                            } else {
                                for_active!(self, lane => {
                                    let r = self.aop(row, lane);
                                    let c = self.aop(col, lane);
                                    self.fregs[dst as usize * n + lane] =
                                        self.read_elem(arr, r, c, lane);
                                });
                            }
                        }
                    }
                    pc += 1;
                }
                Instr::FBin { op, dst, a, b } => {
                    // Registers are statement-local and allocated
                    // operands-first, so dst > a, b and the split is safe.
                    let (src, d) = self.fregs.split_at_mut(dst as usize * n);
                    let d = &mut d[..n];
                    let a = &src[a as usize * n..][..n];
                    let b = &src[b as usize * n..][..n];
                    let lanes = d.iter_mut().zip(a).zip(b);
                    match op {
                        BinOp::Add => lanes.for_each(|((d, a), b)| *d = a + b),
                        BinOp::Sub => lanes.for_each(|((d, a), b)| *d = a - b),
                        BinOp::Mul => lanes.for_each(|((d, a), b)| *d = a * b),
                        BinOp::Div => lanes.for_each(|((d, a), b)| *d = a / b),
                    }
                    pc += 1;
                }
                Instr::FFma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                } => {
                    let (src, d) = self.fregs.split_at_mut(dst as usize * n);
                    let d = &mut d[..n];
                    let a = &src[a as usize * n..][..n];
                    let b = &src[b as usize * n..][..n];
                    let c = &src[c as usize * n..][..n];
                    // Two separately rounded operations, never a fused
                    // mul_add: bit-identical to the tape's tree walk.
                    let lanes = d.iter_mut().zip(a).zip(b).zip(c);
                    match (op, mul_first) {
                        (BinOp::Add, true) => lanes.for_each(|(((d, a), b), c)| *d = a * b + c),
                        (BinOp::Add, false) => lanes.for_each(|(((d, a), b), c)| *d = c + a * b),
                        (BinOp::Sub, true) => lanes.for_each(|(((d, a), b), c)| *d = a * b - c),
                        (BinOp::Sub, false) => lanes.for_each(|(((d, a), b), c)| *d = c - a * b),
                        _ => unreachable!("FFma is only built for Add/Sub"),
                    }
                    pc += 1;
                }
                Instr::FStore {
                    src,
                    arr,
                    row,
                    col,
                    op,
                    addr,
                } => {
                    // Uniform-address register-tile store: each lane owns
                    // its own register file, so the whole store is one
                    // contiguous vector op (the hot accumulator update in
                    // register-tiled kernels).
                    if addr == AddrClass::UNIFORM && self.mask_full() {
                        if let ArrRef::Reg(x) = arr {
                            let r = self.aop(row, 0);
                            let c = self.aop(col, 0);
                            let base = self.reg_ix(x, r, c, 0);
                            let s = src as usize * n;
                            let lanes = self.regs[base..base + n]
                                .iter_mut()
                                .zip(&self.fregs[s..s + n]);
                            match op {
                                AssignOp::Assign => lanes.for_each(|(d, v)| *d = *v),
                                AssignOp::AddAssign => lanes.for_each(|(d, v)| *d += v),
                                AssignOp::SubAssign => lanes.for_each(|(d, v)| *d -= v),
                            }
                            pc += 1;
                            continue;
                        }
                    }
                    for_active!(self, lane => {
                        let r = self.aop(row, lane);
                        let c = self.aop(col, lane);
                        let v = self.fregs[src as usize * n + lane];
                        let new = match op {
                            AssignOp::Assign => v,
                            AssignOp::AddAssign => self.read_elem(arr, r, c, lane) + v,
                            AssignOp::SubAssign => self.read_elem(arr, r, c, lane) - v,
                        };
                        self.write_elem(arr, r, c, new, lane);
                    });
                    pc += 1;
                }
                Instr::Stage { ix } => {
                    self.stage(ix);
                    pc += 1;
                }
                Instr::Move { ix } => {
                    self.reg_move(ix);
                    pc += 1;
                }
                Instr::RegZero { reg } => {
                    let x = reg as usize;
                    let d = &self.bc.regs[x];
                    let len = (d.rows * d.cols) as usize;
                    let off = self.bc.reg_off[x];
                    if self.mask_full() {
                        self.regs[off * n..(off + len) * n].fill(0.0);
                    } else {
                        for_active!(self, lane => {
                            for e in 0..len {
                                self.regs[(off + e) * n + lane] = 0.0;
                            }
                        });
                    }
                    pc += 1;
                }
            }
        }
        Ok(())
    }

    /// Cooperative staging: one whole-tile copy per block, evaluated on
    /// lane 0's frame with `thread0 = true`, exactly like the tape.
    /// Always runs in a uniform (all-lanes) context.
    fn stage(&mut self, ix: u32) {
        let st = self.bc.stages[ix as usize];
        let n = self.n;
        let r0 = self.aop(st.row0, 0);
        let c0 = self.aop(st.col0, 0);
        let sr = self.bc.sr_slot * n;
        let sc = self.bc.sc_slot * n;
        for c in 0..st.cols {
            for r in 0..st.rows {
                // Symmetry mode reads blank-side elements from their global
                // mirror, exactly as the oracle and the tape do.
                let (gsr, gsc) = stage_src_coords(st.mode, st.src_fill, r0 + r, c0 + c);
                self.frames[sr] = gsr;
                self.frames[sc] = gsc;
                let v = if self.eval_pred(st.guard, 0, true) {
                    self.gread(st.src, gsr, gsc)
                } else {
                    0.0
                };
                match st.mode {
                    AllocMode::NoChange | AllocMode::Symmetry => {
                        let ix = self.smem_ix(st.dst, r, c);
                        self.smem[ix] = v;
                    }
                    AllocMode::Transpose => {
                        let ix = self.smem_ix(st.dst, c, r);
                        self.smem[ix] = v;
                    }
                }
            }
        }
    }

    /// Register-tile load/store nest for every active lane, mirroring the
    /// tape's per-thread `RegMove` (including the `__gr`/`__gc` specials
    /// the guard may consult).
    fn reg_move(&mut self, ix: u32) {
        let mv = self.bc.moves[ix as usize];
        let n = self.n;
        let grn = self.bc.gr_slot * n;
        let gcn = self.bc.gc_slot * n;
        for_active!(self, lane => {
            let r0 = self.aop(mv.row0, lane);
            let c0 = self.aop(mv.col0, lane);
            for c in 0..mv.cols {
                for r in 0..mv.rows {
                    let gr = r0 + r * mv.row_stride;
                    let gc = c0 + c * mv.col_stride;
                    self.frames[grn + lane] = gr;
                    self.frames[gcn + lane] = gc;
                    if !self.eval_pred(mv.guard, lane, lane == 0) {
                        continue;
                    }
                    let rix = self.reg_ix(mv.reg, r, c, lane);
                    if mv.load {
                        self.regs[rix] = self.gread(mv.global, gr, gc);
                    } else {
                        self.gwrite(mv.global, gr, gc, self.regs[rix]);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::exec_program;
    use oa_loopir::builder::{gemm_nn_like, trmm_ll_like};
    use oa_loopir::interp::{alloc_buffers, Bindings};
    use oa_loopir::transform::{loop_tiling, reg_alloc, sm_alloc, thread_grouping, TileParams};
    use oa_loopir::Program;

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    /// Bit-exact comparison of bytecode vs oracle on fresh buffers.
    fn assert_bit_identical(p: &Program, n: i64, seed: u64) {
        let b = Bindings::square(n);
        let mut oracle = alloc_buffers(p, &b, seed);
        exec_program(p, &b, &mut oracle).expect("oracle exec");
        let mut fast = alloc_buffers(p, &b, seed);
        let bc = ByteCode::compile(p, &b).expect("bytecode compile");
        bc.execute(&mut fast).expect("bytecode exec");
        for (name, m) in &oracle {
            let f = &fast[name];
            assert_eq!(
                m.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                f.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "buffer {name} differs"
            );
        }
    }

    #[test]
    fn gemm_full_scheme_bit_identical() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        assert_bit_identical(&p, 16, 3);
        assert_bit_identical(&p, 32, 7);
        assert_bit_identical(&p, 19, 23); // ragged
    }

    #[test]
    fn trmm_scheme_bit_identical() {
        let mut p = trmm_ll_like("t");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        oa_loopir::transform::peel_triangular(&mut p, "A").unwrap();
        assert_bit_identical(&p, 16, 5);
        assert_bit_identical(&p, 24, 9);
    }

    #[test]
    fn grouping_only_bit_identical() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        assert_bit_identical(&p, 19, 23);
    }

    #[test]
    fn repeated_execution_is_deterministic() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        let b = Bindings::square(32);
        let bc = ByteCode::compile(&p, &b).unwrap();
        let mut first = alloc_buffers(&p, &b, 1);
        bc.execute(&mut first).unwrap();
        let mut second = alloc_buffers(&p, &b, 1);
        bc.execute(&mut second).unwrap();
        assert_eq!(first["C"].data, second["C"].data);
    }
}
