//! Execution-level building blocks of the batched routine-dispatch layer.
//!
//! The paper's endgame (Sec. V) is a *library*: routines tuned once per
//! device and then called many times.  The registry and request types live
//! in `oa_core::dispatch` (they need the tuner and the BLAS3 routine
//! table, which sit above this crate); what belongs down here is
//! everything that touches compiled kernels and threads:
//!
//! * [`CompiledProgram`] — one program lowered **once** through the
//!   selected [`ExecEngine`] into its ready-to-run form (tree oracle,
//!   slot-resolved tape, or linear bytecode), executable any number of
//!   times from any thread;
//! * [`Lru`] — a bounded least-recently-used store with hit/miss/eviction
//!   counters, the precompiled-program cache of the registry;
//! * [`run_jobs`] — a caller-sized worker pool draining a shared queue:
//!   idle workers pull the next unclaimed job (the degenerate form of
//!   work-stealing where every worker steals from a single injector
//!   queue), results land in submission order, and each worker runs its
//!   jobs under [`rayon::in_place`] so the engines' internal
//!   block-parallel regions stay inline instead of oversubscribing the
//!   machine — batch-level parallelism replaces grid-level parallelism.
//!
//! Determinism contract: a job's result may depend only on the job itself
//! (never on claim order or worker identity), which is what makes batched
//! results bit-identical to one-at-a-time execution.  The dispatch test
//! battery (`tests/dispatch_*.rs`) enforces this across engines, thread
//! counts and LRU capacities.

use oa_loopir::interp::{Bindings, Buffers};
use oa_loopir::Program;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::ExecEngine;
use crate::exec::ExecError;
use crate::native::NativeProgram;
use crate::{ByteCode, Tape};

/// A program lowered once through one engine, ready for repeated
/// execution.  The oracle variant keeps the program tree (its "compile"
/// is free); the tape and bytecode variants hold their fully resolved
/// forms, so every subsequent launch skips lowering entirely.
///
/// Variant sizes are allowed to differ: compiled programs are built
/// once, parked behind an `Arc` in the registry's LRU, and never moved
/// by value after that, so inline size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CompiledProgram {
    /// Tree-walking oracle: interpretation happens at execute time.
    /// Boxed so the enum stays the size of its compiled siblings.
    Oracle {
        /// The program tree.
        program: Box<Program>,
        /// The bindings the program was specialized for.
        bindings: Bindings,
    },
    /// Slot-resolved compiled kernel tape.
    Tape(Tape),
    /// Optimized linear bytecode for the lane-vectorized interpreter.
    Bytecode(ByteCode),
    /// Bytecode annotated with native microkernel regions.
    Native(NativeProgram),
}

impl CompiledProgram {
    /// Lower `p` under `bindings` through `engine`.  Unlaunchable
    /// programs fail here for the compiled engines and at
    /// [`CompiledProgram::execute`] for the oracle — the same split the
    /// raw engines have.
    pub fn compile(
        engine: ExecEngine,
        p: &Program,
        bindings: &Bindings,
    ) -> Result<CompiledProgram, ExecError> {
        match engine {
            ExecEngine::Oracle => Ok(CompiledProgram::Oracle {
                program: Box::new(p.clone()),
                bindings: bindings.clone(),
            }),
            ExecEngine::Tape => Tape::compile(p, bindings).map(CompiledProgram::Tape),
            ExecEngine::Bytecode => ByteCode::compile(p, bindings).map(CompiledProgram::Bytecode),
            ExecEngine::Native => NativeProgram::compile(p, bindings).map(CompiledProgram::Native),
        }
    }

    /// Execute on `bufs`.  Results are bit-identical across engines for
    /// every kernel this framework generates (the engine differential
    /// invariant).
    pub fn execute(&self, bufs: &mut Buffers) -> Result<(), ExecError> {
        match self {
            CompiledProgram::Oracle { program, bindings } => {
                crate::exec::exec_program(program, bindings, bufs)
            }
            CompiledProgram::Tape(t) => t.execute(bufs),
            CompiledProgram::Bytecode(b) => b.execute(bufs),
            CompiledProgram::Native(np) => np.execute(bufs),
        }
    }

    /// Which engine this program was lowered for.
    pub fn engine(&self) -> ExecEngine {
        match self {
            CompiledProgram::Oracle { .. } => ExecEngine::Oracle,
            CompiledProgram::Tape(_) => ExecEngine::Tape,
            CompiledProgram::Bytecode(_) => ExecEngine::Bytecode,
            CompiledProgram::Native(_) => ExecEngine::Native,
        }
    }
}

/// Cumulative counters of one [`Lru`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl LruStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &LruStats) -> LruStats {
        LruStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A bounded least-recently-used map with hit/miss/eviction accounting.
///
/// Recency is a monotone tick bumped on every hit and insert; eviction
/// scans for the stalest entry (linear in the live set — capacities here
/// are small, the values are `Arc`-shared compiled programs).  Capacity
/// `None` means unbounded.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: Option<usize>,
    tick: u64,
    entries: HashMap<K, (u64, V)>,
    stats: LruStats,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty store; `capacity` of `None` never evicts, `Some(c)`
    /// keeps at most `max(c, 1)` entries.
    pub fn new(capacity: Option<usize>) -> Self {
        Lru {
            capacity: capacity.map(|c| c.max(1)),
            tick: 0,
            entries: HashMap::new(),
            stats: LruStats::default(),
        }
    }

    /// Look up `k`, refreshing its recency; counts a hit or a miss.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        match self.entries.get_mut(k) {
            Some((tick, v)) => {
                self.tick += 1;
                *tick = self.tick;
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `k`, evicting the least-recently-used entry
    /// when over capacity.
    pub fn insert(&mut self, k: K, v: V) {
        self.tick += 1;
        self.entries.insert(k, (self.tick, v));
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let stalest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (tick, _))| *tick)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty over-capacity LRU");
                self.entries.remove(&stalest);
                self.stats.evictions += 1;
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (counters survive — they are cumulative).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Run `f` over every job on a pool of `threads` workers and return the
/// results in submission order.
///
/// Scheduling is a single shared injector queue: each idle worker claims
/// the next unclaimed index with one atomic increment, so a slow job
/// never blocks the queue behind it and the load balances like a
/// work-stealing pool whose victims all share one deque.  Workers wrap
/// `f` in [`rayon::in_place`], keeping the engines' internal
/// block-parallel regions inline — the pool owns the machine's
/// parallelism.  With `threads <= 1` (or one job) everything runs on the
/// calling thread, *without* `in_place`, so a sequential caller keeps
/// grid-level parallelism for latency.
///
/// `f` receives `(submission index, &job)`; results land in slot
/// `submission index`, so the output order never depends on claim order.
pub fn run_jobs<T, R, F>(threads: usize, jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        return jobs.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = rayon::in_place(|| f(i, &jobs[i]));
                *slots[i].lock().expect("unpoisoned result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned result slot")
                .expect("every job index claimed exactly once")
        })
        .collect()
}

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A persistent worker pool: threads spawned once and reused across
/// batches, the long-lived sibling of [`run_jobs`]'s per-batch scope.
///
/// `oa serve --listen` keeps one `Pool` alive for the whole server
/// lifetime — every dynamic batch is one [`Pool::spawn`]ed job, so the
/// steady state pays a channel send per batch instead of a
/// `thread::spawn`/join per batch.  Workers wrap jobs in
/// [`rayon::in_place`] for the same reason `run_jobs` does: batch-level
/// parallelism owns the machine; the engines' internal block-parallel
/// regions stay inline.
///
/// Dropping the pool closes the queue and joins every worker after it
/// finishes its current job — queued jobs still run (drop is a drain,
/// not an abort).
pub struct Pool {
    tx: Option<mpsc::Sender<PoolJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn `threads.max(1)` workers sharing one job queue.
    pub fn new(threads: usize) -> Pool {
        let (tx, rx) = mpsc::channel::<PoolJob>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the dequeue, never
                    // across a job.
                    let job = match rx.lock().expect("unpoisoned pool queue").recv() {
                        Ok(j) => j,
                        Err(_) => break, // queue closed: pool dropped
                    };
                    rayon::in_place(job);
                })
            })
            .collect();
        Pool {
            tx: Some(tx),
            workers,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one job; an idle worker picks it up in FIFO order.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool queue open")
            .send(Box::new(job))
            .expect("pool workers alive");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.tx.take(); // close the queue; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The dynamic batch former: groups items by key within a size/time
/// window so same-program requests run as **one warm batch** against the
/// compiled-program LRU.
///
/// An item joins the open group of its key.  A group becomes *ready*
/// when it reaches `max_batch` items or when its oldest item has waited
/// `window` — so an isolated request pays at most `window` of added
/// latency while a burst of identical requests coalesces into a single
/// resolve/compile/lookup.  [`Coalescer::pop_ready`] returns ready
/// groups oldest-first (arrival order of each group's first item), which
/// keeps group dispatch FIFO-fair across keys.
#[derive(Debug)]
pub struct Coalescer<K, T> {
    max_batch: usize,
    window: Duration,
    seq: u64,
    groups: HashMap<K, CoalesceGroup<T>>,
    len: usize,
}

#[derive(Debug)]
struct CoalesceGroup<T> {
    first_seq: u64,
    oldest: Instant,
    items: Vec<T>,
}

impl<K: Eq + Hash + Clone, T> Coalescer<K, T> {
    /// An empty former; `max_batch` floors at 1 (a window of zero makes
    /// every item immediately ready — batching off).
    pub fn new(max_batch: usize, window: Duration) -> Self {
        Coalescer {
            max_batch: max_batch.max(1),
            window,
            seq: 0,
            groups: HashMap::new(),
            len: 0,
        }
    }

    /// Add one item to its key's open group.
    pub fn push(&mut self, key: K, item: T, now: Instant) {
        self.seq += 1;
        let seq = self.seq;
        let g = self.groups.entry(key).or_insert_with(|| CoalesceGroup {
            first_seq: seq,
            oldest: now,
            items: Vec::new(),
        });
        g.items.push(item);
        self.len += 1;
    }

    /// Queued items across all open groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No queued items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn ready(&self, g: &CoalesceGroup<T>, now: Instant) -> bool {
        g.items.len() >= self.max_batch || now.duration_since(g.oldest) >= self.window
    }

    fn take(&mut self, key: K) -> (K, Vec<T>) {
        // `max_batch` is a hard cap, not just a readiness threshold: a
        // group that out-grew it between polls (a burst landing faster
        // than the scheduler drains) is split, and the remainder re-opens
        // at the back of the queue so other keys get a turn in between.
        let g = self.groups.get_mut(&key).expect("group present");
        if g.items.len() > self.max_batch {
            let rest = g.items.split_off(self.max_batch);
            let out = std::mem::replace(&mut g.items, rest);
            self.len -= out.len();
            self.seq += 1;
            g.first_seq = self.seq;
            return (key, out);
        }
        let g = self.groups.remove(&key).expect("group present");
        self.len -= g.items.len();
        (key, g.items)
    }

    /// Remove and return the oldest *ready* group, if any.
    pub fn pop_ready(&mut self, now: Instant) -> Option<(K, Vec<T>)> {
        let key = self
            .groups
            .iter()
            .filter(|(_, g)| self.ready(g, now))
            .min_by_key(|(_, g)| g.first_seq)
            .map(|(k, _)| k.clone())?;
        Some(self.take(key))
    }

    /// Remove and return the oldest group regardless of readiness — the
    /// shutdown drain path.
    pub fn pop_oldest(&mut self) -> Option<(K, Vec<T>)> {
        let key = self
            .groups
            .iter()
            .min_by_key(|(_, g)| g.first_seq)
            .map(|(k, _)| k.clone())?;
        Some(self.take(key))
    }

    /// When the earliest open group becomes ready by timeout (`None`
    /// when empty).  A scheduler sleeps until this instant, pops ready
    /// groups, and repeats.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.groups.values().map(|g| g.oldest + self.window).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_counts_hits_misses_evictions() {
        let mut lru: Lru<i32, &'static str> = Lru::new(Some(2));
        assert!(lru.get(&1).is_none());
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some(&"a")); // 1 is now most recent
        lru.insert(3, "c"); // evicts 2
        assert!(lru.get(&2).is_none());
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), Some(&"c"));
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 2, 1));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_unbounded_never_evicts_and_capacity_floors_at_one() {
        let mut unbounded: Lru<u32, u32> = Lru::new(None);
        for i in 0..100 {
            unbounded.insert(i, i);
        }
        assert_eq!(unbounded.len(), 100);
        assert_eq!(unbounded.stats().evictions, 0);

        let mut tiny: Lru<u32, u32> = Lru::new(Some(0));
        tiny.insert(1, 1);
        tiny.insert(2, 2);
        assert_eq!(tiny.len(), 1, "capacity 0 behaves as 1");
    }

    #[test]
    fn lru_capacity_zero_still_serves_the_one_entry() {
        // `Some(0)` floors to one slot: every insert evicts the previous
        // entry, but the surviving entry is still retrievable and the
        // counters account for every displacement.
        let mut lru: Lru<u32, &'static str> = Lru::new(Some(0));
        lru.insert(1, "a");
        assert_eq!(lru.get(&1), Some(&"a"));
        lru.insert(2, "b");
        assert!(lru.get(&1).is_none(), "old entry displaced");
        assert_eq!(lru.get(&2), Some(&"b"));
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 1, 1));
    }

    #[test]
    fn lru_repeated_same_key_insert_refreshes_not_grows() {
        let mut lru: Lru<u32, u32> = Lru::new(Some(2));
        lru.insert(1, 10);
        lru.insert(2, 20);
        // Re-inserting key 1 must replace its value in place: no growth,
        // no eviction, and key 1 becomes the most recent.
        lru.insert(1, 11);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 0);
        assert_eq!(lru.get(&1), Some(&11));
        // 2 is now the stalest: the next insert evicts it, not 1.
        lru.insert(3, 30);
        assert!(lru.get(&2).is_none());
        assert_eq!(lru.get(&1), Some(&11));
    }

    #[test]
    fn lru_eviction_order_breaks_ties_by_recency_not_key() {
        // Insert in descending key order so that, were eviction keyed on
        // the map key rather than the recency tick, the victim would
        // differ.  Recency must win: the *first-inserted* (stalest) key
        // goes first regardless of its numeric value.
        let mut lru: Lru<u32, u32> = Lru::new(Some(3));
        lru.insert(30, 0);
        lru.insert(20, 0);
        lru.insert(10, 0);
        lru.insert(40, 0); // evicts 30 (stalest), not 10 (smallest)
        assert!(lru.get(&30).is_none());
        assert_eq!(lru.get(&10), Some(&0));
        assert_eq!(lru.get(&20), Some(&0));

        // A get() refreshes recency, so the eviction victim follows use
        // order, not insertion order.
        lru.insert(50, 0); // evicts 40: 10 and 20 were just refreshed
        assert!(lru.get(&40).is_none());
        assert_eq!(lru.get(&10), Some(&0));
    }

    #[test]
    fn lru_stats_since_returns_exact_deltas() {
        let mut lru: Lru<u32, u32> = Lru::new(Some(1));
        lru.insert(1, 1);
        let _ = lru.get(&1); // hit
        let _ = lru.get(&9); // miss
        let before = lru.stats();
        assert_eq!((before.hits, before.misses, before.evictions), (1, 1, 0));

        lru.insert(2, 2); // evicts 1
        let _ = lru.get(&2); // hit
        let _ = lru.get(&1); // miss (evicted)
        let _ = lru.get(&3); // miss
        let delta = lru.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.evictions), (1, 2, 1));

        // since(self) is the zero delta, and clear() keeps the cumulative
        // counters (they outlive the entries).
        let now = lru.stats();
        assert_eq!(now.since(&now), LruStats::default());
        lru.clear();
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.stats(), now);
    }

    #[test]
    fn run_jobs_preserves_submission_order_across_thread_counts() {
        let jobs: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = jobs.iter().map(|j| j * 3).collect();
        for threads in [1, 2, 8] {
            let got = run_jobs(threads, &jobs, |i, j| {
                assert_eq!(i, *j, "index/job alignment");
                j * 3
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn run_jobs_handles_empty_and_oversized_pools() {
        let none: Vec<u8> = run_jobs(8, &[] as &[u8], |_, j| *j);
        assert!(none.is_empty());
        let one = run_jobs(64, &[7u8], |_, j| *j + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn pool_runs_every_spawned_job_and_drains_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Drop drains the queue: every queued job runs before join.
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 50);

        let zero = Pool::new(0);
        assert_eq!(zero.threads(), 1, "thread count floors at one");
    }

    #[test]
    fn coalescer_batches_by_size_and_window() {
        let t0 = Instant::now();
        let mut c: Coalescer<&str, u32> = Coalescer::new(3, Duration::from_millis(10));
        c.push("a", 1, t0);
        c.push("a", 2, t0);
        assert_eq!(c.len(), 2);
        // Under max_batch and inside the window: nothing ready.
        assert!(c.pop_ready(t0).is_none());
        // Third item fills the group: ready immediately.
        c.push("a", 3, t0);
        let (k, items) = c.pop_ready(t0).expect("full group ready");
        assert_eq!((k, items), ("a", vec![1, 2, 3]));
        assert!(c.is_empty());

        // A lone item becomes ready only once its window expires.
        c.push("b", 9, t0);
        assert!(c.pop_ready(t0 + Duration::from_millis(5)).is_none());
        assert_eq!(c.next_deadline(), Some(t0 + Duration::from_millis(10)));
        let (k, items) = c.pop_ready(t0 + Duration::from_millis(10)).unwrap();
        assert_eq!((k, items), ("b", vec![9]));
    }

    #[test]
    fn coalescer_pops_ready_groups_in_arrival_order() {
        let t0 = Instant::now();
        let mut c: Coalescer<u8, u8> = Coalescer::new(2, Duration::from_millis(5));
        c.push(1, 10, t0); // group 1 opens first...
        c.push(2, 20, t0);
        c.push(2, 21, t0); // ...but group 2 fills first
        let late = t0 + Duration::from_millis(5);
        // At the deadline both are ready: arrival order wins, not fill order.
        assert_eq!(c.pop_ready(late), Some((1, vec![10])));
        assert_eq!(c.pop_ready(late), Some((2, vec![20, 21])));

        // pop_oldest drains regardless of readiness (shutdown path).
        c.push(3, 30, t0);
        assert_eq!(c.pop_oldest(), Some((3, vec![30])));
        assert_eq!(c.pop_oldest(), None);
    }

    #[test]
    fn coalescer_caps_oversized_groups_and_rotates_keys() {
        let t0 = Instant::now();
        let mut c: Coalescer<&str, u32> = Coalescer::new(2, Duration::from_millis(5));
        // A burst lands 5 items on one key before the scheduler polls,
        // plus one item on a second key.
        for i in 0..5 {
            c.push("burst", i, t0);
        }
        c.push("other", 99, t0);
        let late = t0 + Duration::from_millis(5);
        // The oversized group pops capped at max_batch, and its remainder
        // goes to the back: the other (older-seq now) key gets a turn.
        assert_eq!(c.pop_ready(late), Some(("burst", vec![0, 1])));
        assert_eq!(c.pop_ready(late), Some(("other", vec![99])));
        assert_eq!(c.pop_ready(late), Some(("burst", vec![2, 3])));
        assert_eq!(c.pop_ready(late), Some(("burst", vec![4])));
        assert!(c.is_empty());

        // pop_oldest (the drain path) honours the cap too.
        for i in 0..3 {
            c.push("drain", i, t0);
        }
        assert_eq!(c.pop_oldest(), Some(("drain", vec![0, 1])));
        assert_eq!(c.pop_oldest(), Some(("drain", vec![2])));
        assert_eq!(c.pop_oldest(), None);
    }
}
