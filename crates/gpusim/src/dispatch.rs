//! Execution-level building blocks of the batched routine-dispatch layer.
//!
//! The paper's endgame (Sec. V) is a *library*: routines tuned once per
//! device and then called many times.  The registry and request types live
//! in `oa_core::dispatch` (they need the tuner and the BLAS3 routine
//! table, which sit above this crate); what belongs down here is
//! everything that touches compiled kernels and threads:
//!
//! * [`CompiledProgram`] — one program lowered **once** through the
//!   selected [`ExecEngine`] into its ready-to-run form (tree oracle,
//!   slot-resolved tape, or linear bytecode), executable any number of
//!   times from any thread;
//! * [`Lru`] — a bounded least-recently-used store with hit/miss/eviction
//!   counters, the precompiled-program cache of the registry;
//! * [`run_jobs`] — a caller-sized worker pool draining a shared queue:
//!   idle workers pull the next unclaimed job (the degenerate form of
//!   work-stealing where every worker steals from a single injector
//!   queue), results land in submission order, and each worker runs its
//!   jobs under [`rayon::in_place`] so the engines' internal
//!   block-parallel regions stay inline instead of oversubscribing the
//!   machine — batch-level parallelism replaces grid-level parallelism.
//!
//! Determinism contract: a job's result may depend only on the job itself
//! (never on claim order or worker identity), which is what makes batched
//! results bit-identical to one-at-a-time execution.  The dispatch test
//! battery (`tests/dispatch_*.rs`) enforces this across engines, thread
//! counts and LRU capacities.

use oa_loopir::interp::{Bindings, Buffers};
use oa_loopir::Program;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::ExecEngine;
use crate::exec::ExecError;
use crate::native::NativeProgram;
use crate::{ByteCode, Tape};

/// A program lowered once through one engine, ready for repeated
/// execution.  The oracle variant keeps the program tree (its "compile"
/// is free); the tape and bytecode variants hold their fully resolved
/// forms, so every subsequent launch skips lowering entirely.
///
/// Variant sizes are allowed to differ: compiled programs are built
/// once, parked behind an `Arc` in the registry's LRU, and never moved
/// by value after that, so inline size is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CompiledProgram {
    /// Tree-walking oracle: interpretation happens at execute time.
    /// Boxed so the enum stays the size of its compiled siblings.
    Oracle {
        /// The program tree.
        program: Box<Program>,
        /// The bindings the program was specialized for.
        bindings: Bindings,
    },
    /// Slot-resolved compiled kernel tape.
    Tape(Tape),
    /// Optimized linear bytecode for the lane-vectorized interpreter.
    Bytecode(ByteCode),
    /// Bytecode annotated with native microkernel regions.
    Native(NativeProgram),
}

impl CompiledProgram {
    /// Lower `p` under `bindings` through `engine`.  Unlaunchable
    /// programs fail here for the compiled engines and at
    /// [`CompiledProgram::execute`] for the oracle — the same split the
    /// raw engines have.
    pub fn compile(
        engine: ExecEngine,
        p: &Program,
        bindings: &Bindings,
    ) -> Result<CompiledProgram, ExecError> {
        match engine {
            ExecEngine::Oracle => Ok(CompiledProgram::Oracle {
                program: Box::new(p.clone()),
                bindings: bindings.clone(),
            }),
            ExecEngine::Tape => Tape::compile(p, bindings).map(CompiledProgram::Tape),
            ExecEngine::Bytecode => ByteCode::compile(p, bindings).map(CompiledProgram::Bytecode),
            ExecEngine::Native => NativeProgram::compile(p, bindings).map(CompiledProgram::Native),
        }
    }

    /// Execute on `bufs`.  Results are bit-identical across engines for
    /// every kernel this framework generates (the engine differential
    /// invariant).
    pub fn execute(&self, bufs: &mut Buffers) -> Result<(), ExecError> {
        match self {
            CompiledProgram::Oracle { program, bindings } => {
                crate::exec::exec_program(program, bindings, bufs)
            }
            CompiledProgram::Tape(t) => t.execute(bufs),
            CompiledProgram::Bytecode(b) => b.execute(bufs),
            CompiledProgram::Native(np) => np.execute(bufs),
        }
    }

    /// Which engine this program was lowered for.
    pub fn engine(&self) -> ExecEngine {
        match self {
            CompiledProgram::Oracle { .. } => ExecEngine::Oracle,
            CompiledProgram::Tape(_) => ExecEngine::Tape,
            CompiledProgram::Bytecode(_) => ExecEngine::Bytecode,
            CompiledProgram::Native(_) => ExecEngine::Native,
        }
    }
}

/// Cumulative counters of one [`Lru`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl LruStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &LruStats) -> LruStats {
        LruStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// A bounded least-recently-used map with hit/miss/eviction accounting.
///
/// Recency is a monotone tick bumped on every hit and insert; eviction
/// scans for the stalest entry (linear in the live set — capacities here
/// are small, the values are `Arc`-shared compiled programs).  Capacity
/// `None` means unbounded.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: Option<usize>,
    tick: u64,
    entries: HashMap<K, (u64, V)>,
    stats: LruStats,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty store; `capacity` of `None` never evicts, `Some(c)`
    /// keeps at most `max(c, 1)` entries.
    pub fn new(capacity: Option<usize>) -> Self {
        Lru {
            capacity: capacity.map(|c| c.max(1)),
            tick: 0,
            entries: HashMap::new(),
            stats: LruStats::default(),
        }
    }

    /// Look up `k`, refreshing its recency; counts a hit or a miss.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        match self.entries.get_mut(k) {
            Some((tick, v)) => {
                self.tick += 1;
                *tick = self.tick;
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `k`, evicting the least-recently-used entry
    /// when over capacity.
    pub fn insert(&mut self, k: K, v: V) {
        self.tick += 1;
        self.entries.insert(k, (self.tick, v));
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let stalest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (tick, _))| *tick)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty over-capacity LRU");
                self.entries.remove(&stalest);
                self.stats.evictions += 1;
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (counters survive — they are cumulative).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Run `f` over every job on a pool of `threads` workers and return the
/// results in submission order.
///
/// Scheduling is a single shared injector queue: each idle worker claims
/// the next unclaimed index with one atomic increment, so a slow job
/// never blocks the queue behind it and the load balances like a
/// work-stealing pool whose victims all share one deque.  Workers wrap
/// `f` in [`rayon::in_place`], keeping the engines' internal
/// block-parallel regions inline — the pool owns the machine's
/// parallelism.  With `threads <= 1` (or one job) everything runs on the
/// calling thread, *without* `in_place`, so a sequential caller keeps
/// grid-level parallelism for latency.
///
/// `f` receives `(submission index, &job)`; results land in slot
/// `submission index`, so the output order never depends on claim order.
pub fn run_jobs<T, R, F>(threads: usize, jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        return jobs.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = rayon::in_place(|| f(i, &jobs[i]));
                *slots[i].lock().expect("unpoisoned result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("unpoisoned result slot")
                .expect("every job index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_counts_hits_misses_evictions() {
        let mut lru: Lru<i32, &'static str> = Lru::new(Some(2));
        assert!(lru.get(&1).is_none());
        lru.insert(1, "a");
        lru.insert(2, "b");
        assert_eq!(lru.get(&1), Some(&"a")); // 1 is now most recent
        lru.insert(3, "c"); // evicts 2
        assert!(lru.get(&2).is_none());
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), Some(&"c"));
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 2, 1));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_unbounded_never_evicts_and_capacity_floors_at_one() {
        let mut unbounded: Lru<u32, u32> = Lru::new(None);
        for i in 0..100 {
            unbounded.insert(i, i);
        }
        assert_eq!(unbounded.len(), 100);
        assert_eq!(unbounded.stats().evictions, 0);

        let mut tiny: Lru<u32, u32> = Lru::new(Some(0));
        tiny.insert(1, 1);
        tiny.insert(2, 2);
        assert_eq!(tiny.len(), 1, "capacity 0 behaves as 1");
    }

    #[test]
    fn lru_capacity_zero_still_serves_the_one_entry() {
        // `Some(0)` floors to one slot: every insert evicts the previous
        // entry, but the surviving entry is still retrievable and the
        // counters account for every displacement.
        let mut lru: Lru<u32, &'static str> = Lru::new(Some(0));
        lru.insert(1, "a");
        assert_eq!(lru.get(&1), Some(&"a"));
        lru.insert(2, "b");
        assert!(lru.get(&1).is_none(), "old entry displaced");
        assert_eq!(lru.get(&2), Some(&"b"));
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 1, 1));
    }

    #[test]
    fn lru_repeated_same_key_insert_refreshes_not_grows() {
        let mut lru: Lru<u32, u32> = Lru::new(Some(2));
        lru.insert(1, 10);
        lru.insert(2, 20);
        // Re-inserting key 1 must replace its value in place: no growth,
        // no eviction, and key 1 becomes the most recent.
        lru.insert(1, 11);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 0);
        assert_eq!(lru.get(&1), Some(&11));
        // 2 is now the stalest: the next insert evicts it, not 1.
        lru.insert(3, 30);
        assert!(lru.get(&2).is_none());
        assert_eq!(lru.get(&1), Some(&11));
    }

    #[test]
    fn lru_eviction_order_breaks_ties_by_recency_not_key() {
        // Insert in descending key order so that, were eviction keyed on
        // the map key rather than the recency tick, the victim would
        // differ.  Recency must win: the *first-inserted* (stalest) key
        // goes first regardless of its numeric value.
        let mut lru: Lru<u32, u32> = Lru::new(Some(3));
        lru.insert(30, 0);
        lru.insert(20, 0);
        lru.insert(10, 0);
        lru.insert(40, 0); // evicts 30 (stalest), not 10 (smallest)
        assert!(lru.get(&30).is_none());
        assert_eq!(lru.get(&10), Some(&0));
        assert_eq!(lru.get(&20), Some(&0));

        // A get() refreshes recency, so the eviction victim follows use
        // order, not insertion order.
        lru.insert(50, 0); // evicts 40: 10 and 20 were just refreshed
        assert!(lru.get(&40).is_none());
        assert_eq!(lru.get(&10), Some(&0));
    }

    #[test]
    fn lru_stats_since_returns_exact_deltas() {
        let mut lru: Lru<u32, u32> = Lru::new(Some(1));
        lru.insert(1, 1);
        let _ = lru.get(&1); // hit
        let _ = lru.get(&9); // miss
        let before = lru.stats();
        assert_eq!((before.hits, before.misses, before.evictions), (1, 1, 0));

        lru.insert(2, 2); // evicts 1
        let _ = lru.get(&2); // hit
        let _ = lru.get(&1); // miss (evicted)
        let _ = lru.get(&3); // miss
        let delta = lru.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.evictions), (1, 2, 1));

        // since(self) is the zero delta, and clear() keeps the cumulative
        // counters (they outlive the entries).
        let now = lru.stats();
        assert_eq!(now.since(&now), LruStats::default());
        lru.clear();
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.stats(), now);
    }

    #[test]
    fn run_jobs_preserves_submission_order_across_thread_counts() {
        let jobs: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = jobs.iter().map(|j| j * 3).collect();
        for threads in [1, 2, 8] {
            let got = run_jobs(threads, &jobs, |i, j| {
                assert_eq!(i, *j, "index/job alignment");
                j * 3
            });
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn run_jobs_handles_empty_and_oversized_pools() {
        let none: Vec<u8> = run_jobs(8, &[] as &[u8], |_, j| *j);
        assert!(none.is_empty());
        let one = run_jobs(64, &[7u8], |_, j| *j + 1);
        assert_eq!(one, vec![8]);
    }
}
