//! Device models for the paper's three evaluation platforms (Sec. V).
//!
//! Each [`DeviceSpec`] captures the architectural parameters the
//! performance model needs: SM/SP counts, register file and scratchpad
//! sizes, clock, memory bandwidth, and — crucially for reproducing
//! Tables I–III — the *compute capability*, which selects the global-memory
//! coalescing rules (strict half-warp segments on CC 1.0/1.1, relaxed
//! segment minimization on CC 1.3, 128-byte cache lines on CC 2.0).

/// Coalescing generation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ComputeCapability {
    /// G80/G92 (GeForce 9800): a half-warp must access one aligned segment
    /// in thread order, else the access serializes into one transaction
    /// per thread and is counted `gld_incoherent`.
    Cc1_0,
    /// GT200 (GTX 285): the hardware minimizes segment transactions; the
    /// profiler no longer reports incoherent loads (cf. Table II's zeros).
    Cc1_3,
    /// Fermi (Tesla C2050): L1-cached 128-byte lines, per-warp requests
    /// (`gld_request` in Table III).
    Cc2_0,
}

/// A simulated GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Scalar processors per SM.
    pub sps_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Shared-memory bytes per SM.
    pub smem_per_sm: u32,
    /// Shared-memory banks.
    pub smem_banks: u32,
    /// Core (shader) clock in GHz.
    pub clock_ghz: f64,
    /// Peak global-memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Fraction of peak bandwidth sustained by well-formed kernels.
    pub mem_efficiency: f64,
    /// Fraction of the ideal issue rate real kernels sustain (pipeline
    /// bubbles, address updates, barriers) — a calibration constant.
    pub issue_efficiency: f64,
    /// Compute capability (coalescing rules).
    pub cc: ComputeCapability,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Kernel launch overhead, seconds.
    pub launch_overhead_s: f64,
}

/// Warp width on every generation we model.
pub const WARP: usize = 32;
/// Memory transaction granularity for coalescing, CC 1.x half-warps.
pub const HALF_WARP: usize = 16;

impl DeviceSpec {
    /// GeForce 9800: 16 SMs × 8 SPs, 429 GFLOPS peak (Sec. V).
    pub fn geforce_9800() -> Self {
        DeviceSpec {
            name: "GeForce 9800",
            sms: 16,
            sps_per_sm: 8,
            registers_per_sm: 8192,
            smem_per_sm: 16 * 1024,
            smem_banks: 16,
            clock_ghz: 1.674,
            mem_bw_gbs: 70.4,
            mem_efficiency: 0.75,
            issue_efficiency: 0.85,
            cc: ComputeCapability::Cc1_0,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            launch_overhead_s: 8e-6,
        }
    }

    /// GTX 285: 30 SMs × 8 SPs, 709 GFLOPS peak (Sec. V).
    pub fn gtx285() -> Self {
        DeviceSpec {
            name: "GTX 285",
            sms: 30,
            sps_per_sm: 8,
            registers_per_sm: 16384,
            smem_per_sm: 16 * 1024,
            smem_banks: 16,
            clock_ghz: 1.476,
            mem_bw_gbs: 159.0,
            mem_efficiency: 0.75,
            issue_efficiency: 0.85,
            cc: ComputeCapability::Cc1_3,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_threads_per_block: 512,
            launch_overhead_s: 7e-6,
        }
    }

    /// Fermi Tesla C2050: 14 SMs × 32 SPs, >1 TFLOPS peak (Sec. V), 48 KB
    /// shared memory configuration.
    pub fn fermi_c2050() -> Self {
        DeviceSpec {
            name: "Fermi Tesla C2050",
            sms: 14,
            sps_per_sm: 32,
            registers_per_sm: 32768,
            smem_per_sm: 48 * 1024,
            smem_banks: 32,
            clock_ghz: 1.15,
            mem_bw_gbs: 144.0,
            mem_efficiency: 0.80,
            issue_efficiency: 0.80,
            cc: ComputeCapability::Cc2_0,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            launch_overhead_s: 5e-6,
        }
    }

    /// All three evaluation platforms, in the order of Figures 10–12.
    pub fn all() -> [DeviceSpec; 3] {
        [Self::geforce_9800(), Self::gtx285(), Self::fermi_c2050()]
    }

    /// Single-precision MAD peak, GFLOPS (2 flops per SP per cycle).
    pub fn peak_gflops(&self) -> f64 {
        (self.sms * self.sps_per_sm) as f64 * self.clock_ghz * 2.0
    }

    /// Cycles an SM needs to issue one instruction for a whole warp.
    pub fn cycles_per_warp_instr(&self) -> f64 {
        WARP as f64 / self.sps_per_sm as f64
    }

    /// Resident blocks per SM given a block's resource footprint, the
    /// classic occupancy calculation.
    pub fn blocks_per_sm(
        &self,
        threads_per_block: u32,
        regs_per_thread: u32,
        smem_bytes: u32,
    ) -> u32 {
        if threads_per_block == 0 || threads_per_block > self.max_threads_per_block {
            return 0;
        }
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let by_regs = (self.registers_per_sm)
            .checked_div(regs_per_thread * threads_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        let by_smem = (self.smem_per_sm)
            .checked_div(smem_bytes)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads
            .min(by_regs)
            .min(by_smem)
            .min(self.max_blocks_per_sm)
    }

    /// Occupancy in [0, 1]: resident warps over the SM's maximum.
    pub fn occupancy(&self, threads_per_block: u32, regs_per_thread: u32, smem_bytes: u32) -> f64 {
        let blocks = self.blocks_per_sm(threads_per_block, regs_per_thread, smem_bytes);
        let warps_max = self.max_threads_per_sm as f64 / WARP as f64;
        let warps = (blocks * threads_per_block.div_ceil(WARP as u32)) as f64;
        (warps / warps_max).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_match_paper() {
        // Sec. V quotes 429, 709 and "over a Tera" GFLOPS.
        assert!((DeviceSpec::geforce_9800().peak_gflops() - 429.0).abs() < 1.0);
        assert!((DeviceSpec::gtx285().peak_gflops() - 709.0).abs() < 1.0);
        assert!(DeviceSpec::fermi_c2050().peak_gflops() > 1000.0);
    }

    #[test]
    fn warp_issue_rates() {
        assert_eq!(DeviceSpec::gtx285().cycles_per_warp_instr(), 4.0);
        assert_eq!(DeviceSpec::fermi_c2050().cycles_per_warp_instr(), 1.0);
    }

    #[test]
    fn occupancy_limits() {
        let d = DeviceSpec::gtx285();
        // 256-thread blocks, light registers: thread-limited at 4 blocks.
        assert_eq!(d.blocks_per_sm(256, 10, 2048), 4);
        // Register-heavy: 64 regs/thread, 256 threads -> 16384/16384 = 1.
        assert_eq!(d.blocks_per_sm(256, 64, 2048), 1);
        // Shared-memory-heavy: 9 KB/block -> 1 block.
        assert_eq!(d.blocks_per_sm(256, 10, 9 * 1024), 1);
        // Oversized block: impossible.
        assert_eq!(d.blocks_per_sm(1024, 10, 0), 0);
    }

    #[test]
    fn occupancy_fraction() {
        let d = DeviceSpec::gtx285();
        // 4 blocks x 8 warps = 32 warps = the SM maximum.
        assert!((d.occupancy(256, 10, 2048) - 1.0).abs() < 1e-9);
        // One resident block of 8 warps over 32.
        assert!((d.occupancy(256, 64, 2048) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fermi_has_wider_banks_and_smem() {
        let f = DeviceSpec::fermi_c2050();
        assert_eq!(f.smem_banks, 32);
        assert_eq!(f.smem_per_sm, 48 * 1024);
        assert_eq!(f.cc, ComputeCapability::Cc2_0);
    }
}
