//! The compiled-tape executor: the fast path of the functional GPU
//! simulator.
//!
//! [`exec::exec_program`](crate::exec::exec_program) walks the [`Program`]
//! tree with per-thread `HashMap<String, i64>` environments, cloning one
//! per statement per thread and hashing variable names on every bound,
//! subscript and guard evaluation.  That is the right shape for an oracle
//! but dominates the runtime of the composer's legality filter, the BLAS3
//! verifier and the autotuner, all of which execute the same program over
//! and over.
//!
//! This module lowers a program **once** per (program, bindings) pair into
//! a [`Tape`]:
//!
//! * every variable name is interned to a slot in a flat per-thread frame
//!   (`Vec<i64>`) and every affine expression / predicate becomes a
//!   [`SlotExpr`] / [`SlotPred`] evaluable with integer indexing only
//!   (see [`oa_loopir::slots`]);
//! * size parameters, derived ceil-div parameters and scalar parameters
//!   are folded into constants at compile time;
//! * register tiles live in a dense per-block arena indexed by
//!   `(reg, tid)` and shared tiles in a dense per-block arena, replacing
//!   the string-keyed maps of the oracle;
//! * the `has_barrier` segmentation the oracle recomputes on every visit
//!   is precomputed on each loop/guard node.
//!
//! Execution is **block-parallel**: CUDA blocks are independent in every
//! kernel this framework generates, so the grid is fanned out with rayon.
//! Each block runs against an immutable snapshot of global memory plus a
//! private write overlay (read-your-writes within the block); overlays are
//! merged into the buffers sequentially in `(by, bx)` order afterwards.
//! Within one block the overlay holds one final value per distinct
//! element, and across blocks the sequential merge reproduces the block
//! loop order of the oracle, so results are bit-identical to
//! `exec_program` whenever no block reads another block's output — which
//! holds for all generated kernels and is enforced by the
//! `engine_differential` test over the full 24-routine pipeline.

use oa_loopir::arrays::{AllocMode, Fill, MemSpace};
use oa_loopir::interp::{blank_is_zero, run_map_kernel, Bindings, Buffers, Matrix};
use oa_loopir::nest::MapKernel;
use oa_loopir::scalar::{BinOp, ScalarExpr};
use oa_loopir::slots::{SlotExpr, SlotMap, SlotPred};
use oa_loopir::stmt::{stage_src_coords, AssignOp, RegTile, SharedStage, Stmt};
use oa_loopir::Program;
use rayon::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::exec::ExecError;
use crate::launch::{extract_launch, Builtin};

/// A resolved array reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ArrRef {
    /// Index into the tape's global-array table.
    Global(usize),
    /// Index into the per-block shared-tile arena.
    Shared(usize),
    /// Index into the per-block register-tile arena (per thread).
    Reg(usize),
}

/// A scalar expression with accesses and parameters resolved.
#[derive(Clone, Debug)]
pub(crate) enum SExpr {
    Load(ArrRef, SlotExpr, SlotExpr),
    Lit(f32),
    /// A named scalar parameter; `None` when unbound (panics on use, like
    /// the oracle).
    Param(String, Option<f32>),
    Bin(BinOp, Box<SExpr>, Box<SExpr>),
}

/// One tape node. The tree shape of the source program is kept (loops and
/// guards nest), but every name and affine form is pre-resolved and the
/// barrier segmentation is baked in.
#[derive(Clone, Debug)]
pub(crate) enum Op {
    Loop {
        var: usize,
        lower: SlotExpr,
        upper: SlotExpr,
        has_barrier: bool,
        label: String,
        body: Vec<Op>,
    },
    Assign {
        arr: ArrRef,
        row: SlotExpr,
        col: SlotExpr,
        op: AssignOp,
        rhs: SExpr,
    },
    If {
        pred: SlotPred,
        has_barrier: bool,
        then_ops: Vec<Op>,
        else_ops: Vec<Op>,
    },
    Stage {
        dst: usize,
        src: usize,
        row0: SlotExpr,
        col0: SlotExpr,
        rows: i64,
        cols: i64,
        mode: AllocMode,
        src_fill: Fill,
        guard: SlotPred,
    },
    RegMove {
        load: bool,
        reg: usize,
        global: usize,
        row0: SlotExpr,
        col0: SlotExpr,
        row_stride: i64,
        col_stride: i64,
        rows: i64,
        cols: i64,
        guard: SlotPred,
    },
    RegZero {
        reg: usize,
    },
    Sync,
}

impl Op {
    fn has_barrier(&self) -> bool {
        match self {
            Op::Sync | Op::Stage { .. } => true,
            Op::Loop { has_barrier, .. } | Op::If { has_barrier, .. } => *has_barrier,
            _ => false,
        }
    }
}

/// One global array of the tape.
#[derive(Clone, Debug)]
pub(crate) struct GlobalInfo {
    pub(crate) name: String,
    /// Whether the kernel body ever writes this array. Read-only arrays
    /// skip the overlay lookup entirely.
    pub(crate) written: bool,
}

/// Shared-tile shape.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SmemDecl {
    pub(crate) rows: i64,
    pub(crate) cols: i64,
    pub(crate) pad: i64,
}

/// Register-tile shape.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RegDecl {
    pub(crate) rows: i64,
    pub(crate) cols: i64,
}

/// A program compiled for concrete bindings: launch shape plus the
/// slot-resolved instruction tree. Compile once, execute many times.
#[derive(Clone, Debug)]
pub struct Tape {
    /// Grid dimensions `(gx, gy)`.
    pub grid: (i64, i64),
    /// Block dimensions `(bx, by)` in threads.
    pub block: (i64, i64),
    pub(crate) n_slots: usize,
    /// Mapped-variable slots and the builtin index each takes.
    pub(crate) binds: Vec<(usize, Builtin)>,
    pub(crate) tx_slot: usize,
    pub(crate) ty_slot: usize,
    pub(crate) sr_slot: usize,
    pub(crate) sc_slot: usize,
    pub(crate) gr_slot: usize,
    pub(crate) gc_slot: usize,
    pub(crate) ops: Vec<Op>,
    pub(crate) globals: Vec<GlobalInfo>,
    pub(crate) smem: Vec<SmemDecl>,
    pub(crate) regs: Vec<RegDecl>,
    /// `(global index, fill)` per `blank_checks` entry; flag `i` of the
    /// runtime flag vector is computed from entry `i`.
    pub(crate) blank_checks: Vec<(usize, Fill)>,
    /// Flag-vector length; may exceed `blank_checks.len()` when guards
    /// reference arrays with no check (those flags stay `false`, as in the
    /// oracle).
    pub(crate) n_blank_flags: usize,
    pub(crate) prologues: Vec<MapKernel>,
    /// Pre-resolved values for every name the prologue extents mention.
    pub(crate) prologue_env: HashMap<String, i64>,
}

/// Identity-ish hasher for the packed element keys of a write overlay —
/// the key is already well-mixed by the multiply.
#[derive(Default)]
pub(crate) struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("overlay keys are u64")
    }
    fn write_u64(&mut self, k: u64) {
        self.0 = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A block's private global-memory write log: packed element key → final
/// value written by this block.
pub(crate) type Overlay = HashMap<u64, f32, BuildHasherDefault<KeyHasher>>;

const COORD_BITS: u32 = 28;
const COORD_MASK: u64 = (1 << COORD_BITS) - 1;

#[inline]
pub(crate) fn pack_key(arr: usize, r: i64, c: i64) -> u64 {
    ((arr as u64) << (2 * COORD_BITS))
        | ((r as u64 & COORD_MASK) << COORD_BITS)
        | (c as u64 & COORD_MASK)
}

#[inline]
pub(crate) fn unpack_key(k: u64) -> (usize, i64, i64) {
    (
        (k >> (2 * COORD_BITS)) as usize,
        ((k >> COORD_BITS) & COORD_MASK) as i64,
        (k & COORD_MASK) as i64,
    )
}

struct Compiler<'a> {
    program: &'a Program,
    bindings: &'a Bindings,
    slots: SlotMap,
    arr_refs: HashMap<String, ArrRef>,
    globals: Vec<GlobalInfo>,
    /// Array name → flag index, for guards' `blank_zero` references.
    blank_index: HashMap<String, usize>,
    n_blank_flags: usize,
}

impl Compiler<'_> {
    fn resolve(&self, name: &str) -> i64 {
        self.program.resolve(name, self.bindings)
    }

    fn expr(&self, e: &oa_loopir::AffineExpr) -> SlotExpr {
        SlotExpr::compile(e, &self.slots, &|n| self.program.resolve(n, self.bindings))
    }

    fn pred(&mut self, p: &oa_loopir::Predicate) -> SlotPred {
        // Split borrows: the blank-index map grows while names resolve.
        let (program, bindings) = (self.program, self.bindings);
        let blank_index = &mut self.blank_index;
        let n_blank_flags = &mut self.n_blank_flags;
        SlotPred::compile(
            p,
            &self.slots,
            &|n| program.resolve(n, bindings),
            &mut |name| {
                *blank_index.entry(name.to_string()).or_insert_with(|| {
                    // Guard references an array with no runtime check: give
                    // it a fresh always-false flag, matching the oracle's
                    // `unwrap_or(&false)`.
                    let ix = *n_blank_flags;
                    *n_blank_flags += 1;
                    ix
                })
            },
        )
    }

    fn arr(&self, name: &str) -> Result<ArrRef, ExecError> {
        self.arr_refs
            .get(name)
            .copied()
            .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))
    }

    fn global(&self, name: &str) -> Result<usize, ExecError> {
        match self.arr(name)? {
            ArrRef::Global(g) => Ok(g),
            _ => Err(ExecError::MissingBuffer(name.to_string())),
        }
    }

    fn shared(&self, name: &str) -> Result<usize, ExecError> {
        match self.arr(name)? {
            ArrRef::Shared(s) => Ok(s),
            _ => Err(ExecError::MissingBuffer(name.to_string())),
        }
    }

    fn reg(&self, name: &str) -> Result<usize, ExecError> {
        match self.arr(name)? {
            ArrRef::Reg(r) => Ok(r),
            _ => Err(ExecError::MissingBuffer(name.to_string())),
        }
    }

    fn scalar(&self, e: &ScalarExpr) -> Result<SExpr, ExecError> {
        Ok(match e {
            ScalarExpr::Load(acc) => SExpr::Load(
                self.arr(&acc.array)?,
                self.expr(&acc.row),
                self.expr(&acc.col),
            ),
            ScalarExpr::Lit(v) => SExpr::Lit(*v),
            ScalarExpr::Param(p) => SExpr::Param(p.clone(), self.bindings.scalars.get(p).copied()),
            ScalarExpr::Bin(op, l, r) => {
                SExpr::Bin(*op, Box::new(self.scalar(l)?), Box::new(self.scalar(r)?))
            }
        })
    }

    fn mark_written(&mut self, arr: ArrRef) {
        if let ArrRef::Global(g) = arr {
            self.globals[g].written = true;
        }
    }

    fn reg_move(&mut self, rt: &RegTile, load: bool) -> Result<Op, ExecError> {
        Ok(Op::RegMove {
            load,
            reg: self.reg(&rt.reg)?,
            global: self.global(&rt.global)?,
            row0: self.expr(&rt.row0),
            col0: self.expr(&rt.col0),
            row_stride: rt.row_stride,
            col_stride: rt.col_stride,
            rows: rt.rows,
            cols: rt.cols,
            guard: self.pred(&rt.guard),
        })
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<Op>, ExecError> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Op, ExecError> {
        Ok(match s {
            Stmt::Loop(l) => {
                // Bounds resolve in the enclosing scope, before the loop's
                // own variable becomes a slot.
                let lower = self.expr(&l.lower);
                let upper = self.expr(&l.upper);
                let var = self.slots.register(&l.var);
                let body = self.stmts(&l.body)?;
                Op::Loop {
                    var,
                    lower,
                    upper,
                    has_barrier: body.iter().any(Op::has_barrier),
                    label: l.label.clone(),
                    body,
                }
            }
            Stmt::Assign(a) => {
                let arr = self.arr(&a.lhs.array)?;
                self.mark_written(arr);
                Op::Assign {
                    arr,
                    row: self.expr(&a.lhs.row),
                    col: self.expr(&a.lhs.col),
                    op: a.op,
                    rhs: self.scalar(&a.rhs)?,
                }
            }
            Stmt::If {
                pred,
                then_body,
                else_body,
            } => {
                let then_ops = self.stmts(then_body)?;
                let else_ops = self.stmts(else_body)?;
                Op::If {
                    pred: self.pred(pred),
                    has_barrier: then_ops.iter().chain(&else_ops).any(Op::has_barrier),
                    then_ops,
                    else_ops,
                }
            }
            Stmt::Stage(st) => self.stage(st)?,
            Stmt::RegLoad(rt) => self.reg_move(rt, true)?,
            Stmt::RegStore(rt) => {
                let op = self.reg_move(rt, false)?;
                if let Op::RegMove { global, .. } = op {
                    self.globals[global].written = true;
                }
                op
            }
            Stmt::RegZero(rt) => Op::RegZero {
                reg: self.reg(&rt.reg)?,
            },
            Stmt::Sync => Op::Sync,
        })
    }

    fn stage(&mut self, st: &SharedStage) -> Result<Op, ExecError> {
        Ok(Op::Stage {
            dst: self.shared(&st.dst)?,
            src: self.global(&st.src)?,
            row0: self.expr(&st.src_row0),
            col0: self.expr(&st.src_col0),
            rows: st.rows,
            cols: st.cols,
            mode: st.mode,
            src_fill: st.src_fill,
            guard: self.pred(&st.guard),
        })
    }
}

impl Tape {
    /// Lower `p` for concrete `bindings` into an executable tape.
    pub fn compile(p: &Program, bindings: &Bindings) -> Result<Tape, ExecError> {
        let launch = extract_launch(p, bindings)?;

        let mut slots = SlotMap::new();
        let tx_slot = slots.register("__tx");
        let ty_slot = slots.register("__ty");
        let sr_slot = slots.register("__sr");
        let sc_slot = slots.register("__sc");
        let gr_slot = slots.register("__gr");
        let gc_slot = slots.register("__gc");
        let binds: Vec<(usize, Builtin)> = launch
            .binds
            .iter()
            .map(|(v, b)| (slots.register(v), *b))
            .collect();

        // Array tables: globals keep their names (for buffer lookup and
        // overlay merge); shared/register tiles get dense arena indices.
        let mut arr_refs = HashMap::new();
        let mut globals = Vec::new();
        let mut smem = Vec::new();
        let mut regs = Vec::new();
        for a in &p.arrays {
            let r = match a.space {
                MemSpace::Global => {
                    globals.push(GlobalInfo {
                        name: a.name.clone(),
                        written: false,
                    });
                    ArrRef::Global(globals.len() - 1)
                }
                MemSpace::Shared => {
                    smem.push(SmemDecl {
                        rows: a.rows.as_const().expect("shared dims are constant"),
                        cols: a.cols.as_const().expect("shared dims are constant"),
                        pad: a.pad,
                    });
                    ArrRef::Shared(smem.len() - 1)
                }
                MemSpace::Reg => {
                    regs.push(RegDecl {
                        rows: a.rows.as_const().expect("reg dims constant"),
                        cols: a.cols.as_const().expect("reg dims constant"),
                    });
                    ArrRef::Reg(regs.len() - 1)
                }
            };
            arr_refs.insert(a.name.clone(), r);
        }

        let mut c = Compiler {
            program: p,
            bindings,
            slots,
            arr_refs,
            globals,
            blank_index: HashMap::new(),
            n_blank_flags: 0,
        };

        // Runtime blank-zero checks, in program order: flag i belongs to
        // check i. Guards referencing unchecked arrays get extra
        // always-false flags appended during compilation below.
        let mut blank_checks = Vec::new();
        for chk in &p.blank_checks {
            let decl = p
                .array(&chk.array)
                .ok_or_else(|| ExecError::MissingBuffer(chk.array.clone()))?;
            let g = c.global(&chk.array)?;
            c.blank_index.insert(chk.array.clone(), blank_checks.len());
            blank_checks.push((g, decl.fill));
            c.n_blank_flags += 1;
        }

        let ops = c.stmts(&launch.inner)?;

        // Resolve every name the prologue extents mention so execution
        // needs no Program/Bindings back-reference.
        let mut prologue_env = HashMap::new();
        for mk in &p.prologues {
            for name in mk.rows.vars().chain(mk.cols.vars()) {
                let v = c.resolve(name);
                prologue_env.insert(name.to_string(), v);
            }
        }

        Ok(Tape {
            grid: launch.grid,
            block: launch.block,
            n_slots: c.slots.len(),
            binds,
            tx_slot,
            ty_slot,
            sr_slot,
            sc_slot,
            gr_slot,
            gc_slot,
            ops,
            globals: c.globals,
            smem,
            regs,
            blank_checks,
            n_blank_flags: c.n_blank_flags,
            prologues: p.prologues.clone(),
            prologue_env,
        })
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> i64 {
        self.block.0 * self.block.1
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> i64 {
        self.grid.0 * self.grid.1
    }

    /// Execute on the given buffers: prologue kernels, blank-zero checks,
    /// then the block-parallel grid with deterministic overlay merge.
    pub fn execute(&self, bufs: &mut Buffers) -> Result<(), ExecError> {
        for mk in &self.prologues {
            run_map_kernel(mk, bufs, &|n| self.prologue_env[n]);
        }

        let mut blank_flags = vec![false; self.n_blank_flags];
        for (i, &(g, fill)) in self.blank_checks.iter().enumerate() {
            let name = &self.globals[g].name;
            let m = bufs
                .get(name)
                .ok_or_else(|| ExecError::MissingBuffer(name.clone()))?;
            blank_flags[i] = blank_is_zero(m, fill);
        }

        let nblocks = self.total_blocks();
        let logs: Vec<Result<Vec<(u64, f32)>, ExecError>> = {
            let mut base = Vec::with_capacity(self.globals.len());
            for g in &self.globals {
                base.push(
                    bufs.get(&g.name)
                        .ok_or_else(|| ExecError::MissingBuffer(g.name.clone()))?,
                );
            }
            let base = &base;
            let flags = &blank_flags;
            (0..nblocks)
                .into_par_iter()
                .map(|rank| self.run_block(rank, base, flags))
                .collect()
        };

        // Merge block write logs in (by, bx) order — the oracle's block
        // loop order — so any cross-block overwrite resolves identically.
        // (Keys within one block's log are distinct, so the arbitrary
        // drain order inside a log cannot change the result.)
        for res in logs {
            for (key, v) in res? {
                let (g, r, c) = unpack_key(key);
                bufs.get_mut(&self.globals[g].name)
                    .expect("checked above")
                    .set(r, c, v);
            }
        }
        Ok(())
    }

    fn run_block(
        &self,
        rank: i64,
        base: &[&Matrix],
        blank_flags: &[bool],
    ) -> Result<Vec<(u64, f32)>, ExecError> {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.run_block_in(rank, base, blank_flags, scratch)
        })
    }

    fn run_block_in(
        &self,
        rank: i64,
        base: &[&Matrix],
        blank_flags: &[bool],
        scratch: &mut Scratch,
    ) -> Result<Vec<(u64, f32)>, ExecError> {
        let bx = rank % self.grid.0;
        let by = rank / self.grid.0;
        let nthreads = self.threads_per_block() as usize;

        // Frames: memset to the same all-zero state a fresh allocation
        // would have, then bind the builtins.
        scratch.frames.clear();
        scratch.frames.resize(nthreads * self.n_slots, 0);
        let frames = &mut scratch.frames[..];
        for ty in 0..self.block.1 {
            for tx in 0..self.block.0 {
                let tid = (tx + ty * self.block.0) as usize;
                let frame = &mut frames[tid * self.n_slots..(tid + 1) * self.n_slots];
                frame[self.tx_slot] = tx;
                frame[self.ty_slot] = ty;
                for &(slot, b) in &self.binds {
                    frame[slot] = match b {
                        Builtin::BlockX => bx,
                        Builtin::BlockY => by,
                        Builtin::ThreadX => tx,
                        Builtin::ThreadY => ty,
                    };
                }
            }
        }

        // Shared tiles: zero in place when the shapes already match this
        // tape (the common case — one tape, many blocks), else rebuild.
        let smem_ok = scratch.smem.len() == self.smem.len()
            && scratch
                .smem
                .iter()
                .zip(&self.smem)
                .all(|(m, d)| m.rows == d.rows && m.cols == d.cols && m.ld == d.rows + d.pad);
        if smem_ok {
            for m in &mut scratch.smem {
                m.data.fill(0.0);
            }
        } else {
            scratch.smem = self
                .smem
                .iter()
                .map(|d| Matrix::zeros_padded(d.rows, d.cols, d.pad))
                .collect();
        }

        // Register tiles, `regs[reg * nthreads + tid]`.
        let regs_ok = scratch.regs.len() == self.regs.len() * nthreads
            && scratch.regs.iter().enumerate().all(|(i, m)| {
                let d = &self.regs[i / nthreads];
                m.rows == d.rows && m.cols == d.cols && m.ld == d.rows
            });
        if regs_ok {
            for m in &mut scratch.regs {
                m.data.fill(0.0);
            }
        } else {
            scratch.regs = self
                .regs
                .iter()
                .flat_map(|d| (0..nthreads).map(move |_| Matrix::zeros(d.rows, d.cols)))
                .collect();
        }

        scratch.overlay.clear();

        let mut st = BlockState {
            tape: self,
            nthreads,
            frames,
            smem: &mut scratch.smem,
            regs: &mut scratch.regs,
            overlay: &mut scratch.overlay,
            base,
            blank_flags,
        };
        self.lockstep(&self.ops, &mut st)?;
        Ok(scratch.overlay.drain().collect())
    }

    /// Lockstep execution of a tape segment by all threads of a block:
    /// barrier-free ops run per-thread to completion; barrier-enclosing
    /// loops and guards advance all threads together and must be uniform.
    fn lockstep(&self, ops: &[Op], st: &mut BlockState<'_>) -> Result<(), ExecError> {
        for op in ops {
            if !op.has_barrier() {
                for tid in 0..st.nthreads {
                    self.exec_thread(op, tid, st)?;
                }
                continue;
            }
            match op {
                Op::Sync => {} // all threads are here by construction
                Op::Stage { .. } => self.exec_stage(op, st)?,
                Op::Loop {
                    var,
                    lower,
                    upper,
                    label,
                    body,
                    ..
                } => {
                    let lo = lower.eval(st.frame(0));
                    let hi = upper.eval(st.frame(0));
                    for tid in 1..st.nthreads {
                        let f = st.frame(tid);
                        if lower.eval(f) != lo || upper.eval(f) != hi {
                            return Err(ExecError::BarrierDivergence(format!(
                                "loop {label} bounds differ across threads"
                            )));
                        }
                    }
                    for v in lo..hi {
                        for tid in 0..st.nthreads {
                            st.frame_mut(tid)[*var] = v;
                        }
                        self.lockstep(body, st)?;
                    }
                }
                Op::If {
                    pred,
                    then_ops,
                    else_ops,
                    ..
                } => {
                    let first = pred.eval(st.frame(0), true, st.blank_flags);
                    for tid in 1..st.nthreads {
                        if pred.eval(st.frame(tid), false, st.blank_flags) != first {
                            return Err(ExecError::BarrierDivergence(
                                "guard enclosing a barrier diverges".into(),
                            ));
                        }
                    }
                    let body = if first { then_ops } else { else_ops };
                    self.lockstep(body, st)?;
                }
                _ => unreachable!("has_barrier only flags Sync/Stage/Loop/If"),
            }
        }
        Ok(())
    }

    /// Cooperative staging: semantically a single whole-tile copy per
    /// block, evaluated on thread 0's frame (thread0 = true), as in the
    /// oracle.
    fn exec_stage(&self, op: &Op, st: &mut BlockState<'_>) -> Result<(), ExecError> {
        let Op::Stage {
            dst,
            src,
            row0,
            col0,
            rows,
            cols,
            mode,
            src_fill,
            guard,
        } = op
        else {
            unreachable!()
        };
        let r0 = row0.eval(st.frame(0));
        let c0 = col0.eval(st.frame(0));
        for c in 0..*cols {
            for r in 0..*rows {
                // Symmetry mode reads blank-side elements from their global
                // mirror, exactly as the oracle does.
                let (sr, sc) = stage_src_coords(*mode, *src_fill, r0 + r, c0 + c);
                let f0 = st.frame_mut(0);
                f0[self.sr_slot] = sr;
                f0[self.sc_slot] = sc;
                let v = if guard.eval(st.frame(0), true, st.blank_flags) {
                    st.gread(*src, sr, sc)
                } else {
                    0.0
                };
                let tile = &mut st.smem[*dst];
                match mode {
                    AllocMode::NoChange | AllocMode::Symmetry => tile.set(r, c, v),
                    AllocMode::Transpose => tile.set(c, r, v),
                }
            }
        }
        Ok(())
    }

    /// Fully sequential execution of a barrier-free subtree by one thread.
    fn exec_thread(&self, op: &Op, tid: usize, st: &mut BlockState<'_>) -> Result<(), ExecError> {
        match op {
            Op::Loop {
                var,
                lower,
                upper,
                body,
                ..
            } => {
                let lo = lower.eval(st.frame(tid));
                let hi = upper.eval(st.frame(tid));
                for v in lo..hi {
                    st.frame_mut(tid)[*var] = v;
                    for inner in body {
                        self.exec_thread(inner, tid, st)?;
                    }
                }
            }
            Op::Assign {
                arr,
                row,
                col,
                op,
                rhs,
            } => {
                let v = self.eval_scalar(rhs, tid, st);
                let f = st.frame(tid);
                let r = row.eval(f);
                let c = col.eval(f);
                let old = st.read_elem(*arr, r, c, tid);
                let new = match op {
                    AssignOp::Assign => v,
                    AssignOp::AddAssign => old + v,
                    AssignOp::SubAssign => old - v,
                };
                st.write_elem(*arr, r, c, new, tid);
            }
            Op::If {
                pred,
                then_ops,
                else_ops,
                ..
            } => {
                let body = if pred.eval(st.frame(tid), tid == 0, st.blank_flags) {
                    then_ops
                } else {
                    else_ops
                };
                for inner in body {
                    self.exec_thread(inner, tid, st)?;
                }
            }
            Op::RegMove {
                load,
                reg,
                global,
                row0,
                col0,
                row_stride,
                col_stride,
                rows,
                cols,
                guard,
            } => {
                let f = st.frame(tid);
                let r0 = row0.eval(f);
                let c0 = col0.eval(f);
                for c in 0..*cols {
                    for r in 0..*rows {
                        let gr = r0 + r * row_stride;
                        let gc = c0 + c * col_stride;
                        let f = st.frame_mut(tid);
                        f[self.gr_slot] = gr;
                        f[self.gc_slot] = gc;
                        if !guard.eval(st.frame(tid), tid == 0, st.blank_flags) {
                            continue;
                        }
                        if *load {
                            let v = st.gread(*global, gr, gc);
                            st.reg_tile(*reg, tid).set(r, c, v);
                        } else {
                            let v = st.reg_tile(*reg, tid).get(r, c);
                            st.gwrite(*global, gr, gc, v);
                        }
                    }
                }
            }
            Op::RegZero { reg } => {
                st.reg_tile(*reg, tid).data.fill(0.0);
            }
            Op::Sync | Op::Stage { .. } => {
                unreachable!("barrier ops handled in lockstep")
            }
        }
        Ok(())
    }

    fn eval_scalar(&self, e: &SExpr, tid: usize, st: &BlockState<'_>) -> f32 {
        match e {
            SExpr::Load(arr, row, col) => {
                let f = st.frame(tid);
                st.read_elem(*arr, row.eval(f), col.eval(f), tid)
            }
            SExpr::Lit(v) => *v,
            SExpr::Param(name, v) => v.unwrap_or_else(|| panic!("unbound scalar parameter {name}")),
            SExpr::Bin(op, l, r) => {
                let a = self.eval_scalar(l, tid, st);
                let b = self.eval_scalar(r, tid, st);
                op.apply(a, b)
            }
        }
    }
}

/// Per-worker scratch memory reused across blocks (and, on a long-lived
/// worker, across tape executions): frames, tile arenas and the write
/// overlay are the only per-block allocations, and on small-`n` grids the
/// allocator traffic they generate is measurable. Each scratch reset
/// reproduces the exact state a fresh allocation would have, so reuse
/// cannot perturb results.
#[derive(Default)]
struct Scratch {
    frames: Vec<i64>,
    smem: Vec<Matrix>,
    regs: Vec<Matrix>,
    overlay: Overlay,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Mutable per-block execution state, borrowing a worker's [`Scratch`].
struct BlockState<'a> {
    tape: &'a Tape,
    nthreads: usize,
    /// All thread frames, contiguous: `frames[tid*n_slots..][..n_slots]`.
    frames: &'a mut [i64],
    smem: &'a mut [Matrix],
    /// Dense register arena, `regs[reg * nthreads + tid]`.
    regs: &'a mut [Matrix],
    overlay: &'a mut Overlay,
    base: &'a [&'a Matrix],
    blank_flags: &'a [bool],
}

impl BlockState<'_> {
    #[inline]
    fn frame(&self, tid: usize) -> &[i64] {
        let n = self.tape.n_slots;
        &self.frames[tid * n..(tid + 1) * n]
    }

    #[inline]
    fn frame_mut(&mut self, tid: usize) -> &mut [i64] {
        let n = self.tape.n_slots;
        &mut self.frames[tid * n..(tid + 1) * n]
    }

    #[inline]
    fn reg_tile(&mut self, reg: usize, tid: usize) -> &mut Matrix {
        &mut self.regs[reg * self.nthreads + tid]
    }

    /// Global read: the block's own writes shadow the snapshot.
    #[inline]
    fn gread(&self, g: usize, r: i64, c: i64) -> f32 {
        if self.tape.globals[g].written {
            if let Some(&v) = self.overlay.get(&pack_key(g, r, c)) {
                return v;
            }
        }
        self.base[g].get(r, c)
    }

    #[inline]
    fn gwrite(&mut self, g: usize, r: i64, c: i64, v: f32) {
        self.overlay.insert(pack_key(g, r, c), v);
    }

    #[inline]
    fn read_elem(&self, arr: ArrRef, r: i64, c: i64, tid: usize) -> f32 {
        match arr {
            ArrRef::Global(g) => self.gread(g, r, c),
            ArrRef::Shared(s) => self.smem[s].get(r, c),
            ArrRef::Reg(x) => self.regs[x * self.nthreads + tid].get(r, c),
        }
    }

    #[inline]
    fn write_elem(&mut self, arr: ArrRef, r: i64, c: i64, v: f32, tid: usize) {
        match arr {
            ArrRef::Global(g) => self.gwrite(g, r, c, v),
            ArrRef::Shared(s) => self.smem[s].set(r, c, v),
            ArrRef::Reg(x) => self.reg_tile(x, tid).set(r, c, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::exec_program;
    use oa_loopir::builder::{gemm_nn_like, trmm_ll_like};
    use oa_loopir::interp::alloc_buffers;
    use oa_loopir::transform::{loop_tiling, reg_alloc, sm_alloc, thread_grouping, TileParams};

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    /// Bit-exact comparison of tape vs oracle on fresh buffers.
    fn assert_bit_identical(p: &Program, n: i64, seed: u64) {
        let b = Bindings::square(n);
        let mut oracle = alloc_buffers(p, &b, seed);
        exec_program(p, &b, &mut oracle).expect("oracle exec");
        let mut fast = alloc_buffers(p, &b, seed);
        let tape = Tape::compile(p, &b).expect("tape compile");
        tape.execute(&mut fast).expect("tape exec");
        for (name, m) in &oracle {
            let f = &fast[name];
            assert_eq!(
                m.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                f.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "buffer {name} differs"
            );
        }
    }

    #[test]
    fn gemm_full_scheme_bit_identical() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        assert_bit_identical(&p, 16, 3);
        assert_bit_identical(&p, 32, 7);
        assert_bit_identical(&p, 19, 23); // ragged
    }

    #[test]
    fn trmm_scheme_bit_identical() {
        let mut p = trmm_ll_like("t");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        oa_loopir::transform::peel_triangular(&mut p, "A").unwrap();
        assert_bit_identical(&p, 16, 5);
        assert_bit_identical(&p, 24, 9);
    }

    #[test]
    fn grouping_only_bit_identical() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        assert_bit_identical(&p, 19, 23);
    }

    #[test]
    fn unmapped_program_fails_compile() {
        let p = gemm_nn_like("g");
        let err = Tape::compile(&p, &Bindings::square(8)).unwrap_err();
        assert!(matches!(err, ExecError::Launch(_)));
    }

    #[test]
    fn repeated_execution_is_deterministic() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        let b = Bindings::square(32);
        let tape = Tape::compile(&p, &b).unwrap();
        let mut first = alloc_buffers(&p, &b, 1);
        tape.execute(&mut first).unwrap();
        let mut second = alloc_buffers(&p, &b, 1);
        tape.execute(&mut second).unwrap();
        assert_eq!(first["C"].data, second["C"].data);
    }

    #[test]
    fn key_packing_roundtrip() {
        for &(a, r, c) in &[
            (0usize, 0i64, 0i64),
            (3, 1023, 4095),
            (7, 1 << 27, (1 << 28) - 1),
        ] {
            assert_eq!(unpack_key(pack_key(a, r, c)), (a, r, c));
        }
    }
}
