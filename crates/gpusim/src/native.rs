//! Native microkernel engine: the fourth execution tier.
//!
//! The bytecode interpreter (`vexec`) still pays per-[`Instr`] dispatch
//! and per-lane address arithmetic inside the register-tile inner loop —
//! the FMA-fused accumulate over the K-tile that dominates every BLAS3
//! routine.  This module lowers a compiled [`ByteCode`] program one tier
//! further: it pattern-matches the optimizer's lane-affine loop nests at
//! compile time and executes each matched *region* through a library of
//! specialized host microkernels — monomorphized Rust loops selected
//! over (guard shape, accumulator target, stride class) whose
//! contiguous-slice FMA bodies the autovectorizer lifts to SIMD.
//!
//! The lowering is an *annotation*, not a rewrite: the bytecode stream is
//! left untouched, and a region that cannot be proven safe at compile
//! time (recorded in [`NativeTable::rejects`] with a [`NativeReject`]
//! reason) or at run time (a divergent entry mask, a guard or loop test
//! the interval analysis cannot represent) simply falls back to
//! interpreting the very same instructions in place.  Fallbacks are
//! therefore always bit-identical by construction; the native path must
//! then *also* be bit-identical, which it achieves by:
//!
//! * **a scalar preflight over lane boxes** — lane 0's integer frame
//!   column is interpreted on a scratch environment while the active
//!   lane set is tracked as a rectangular sub-box of the thread block
//!   (`[txl, txh) × [tyl, tyh)`).  An affine guard or a divergent
//!   (lane-affine) loop test whose condition varies along a *single*
//!   block axis cuts the box exactly — the triangular-prefix /
//!   diagonal-split patterns TRMM, SYMM and TRSM emit — while a
//!   condition varying along both axes is admitted only with a uniform
//!   corner-interval verdict.  Anything unrepresentable aborts to the
//!   interpreter *before anything is mutated*;
//! * **staged shared memory inside the region** — the stage→sync→consume
//!   barrier macro is a compile-time region boundary: the preflight
//!   resolves the tile origin and records the per-element guard bits,
//!   the replay performs the whole-tile copy (a contiguous column
//!   `memcpy` when every guard bit is set), and the consume nests that
//!   follow read the freshly staged arena exactly as the interpreter
//!   would;
//! * **sequential trace replay** — statement instances execute in
//!   exactly the interpreter's order, each over its recorded lane box
//!   through a fused vector kernel (or a generic vectorized op-by-op
//!   path), so floating-point effects are reproduced operation for
//!   operation;
//! * **two-rounding FMA** — every kernel computes `t = a*b` (rounded),
//!   then `acc ± t` (rounded), never `mul_add`, matching the semantics
//!   every other engine pins;
//! * **exact frame writeback** — integer slots written inside the region
//!   are reconstructed per lane from `env[slot] + a·tx + b·ty`, the very
//!   invariant `mark_lanes` proved for them.  This stays exact under
//!   divergence because the interpreter's `Eval`/`StepAdd`/`LoopInit`
//!   write all lanes unmasked.

use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use oa_loopir::arrays::AllocMode;
use oa_loopir::interp::{Bindings, Buffers, Matrix};
use oa_loopir::scalar::BinOp;
use oa_loopir::slots::SlotExpr;
use oa_loopir::stmt::{stage_src_coords, AssignOp};
use oa_loopir::{CmpOp, Program};

use crate::bytecode::{AOp, ByteCode, Instr, Lane};
use crate::exec::ExecError;
use crate::tape::ArrRef;
use crate::vexec::VBlock;

/// A bytecode program plus its native-lowering side table: the artifact
/// the `native` engine compiles to.
#[derive(Debug)]
pub struct NativeProgram {
    bc: ByteCode,
    table: NativeTable,
}

impl NativeProgram {
    /// Compile a program for the native engine: bytecode lowering first,
    /// then the region matcher over the instruction stream.
    pub fn compile(p: &Program, bindings: &Bindings) -> Result<NativeProgram, ExecError> {
        Ok(NativeProgram::from_bytecode(ByteCode::compile(
            p, bindings,
        )?))
    }

    /// Annotate an already-compiled bytecode program.
    pub(crate) fn from_bytecode(bc: ByteCode) -> NativeProgram {
        let table = lower(&bc);
        NativeProgram { bc, table }
    }

    /// Execute on the given buffers: the interpreter drives, entering a
    /// native region whenever the program counter hits a matched entry
    /// point and the runtime checks pass.
    pub fn execute(&self, bufs: &mut Buffers) -> Result<(), ExecError> {
        self.bc.execute_with_native(bufs, &self.table)
    }

    /// Number of loop-nest regions the matcher lowered.
    pub fn region_count(&self) -> usize {
        self.table.regions.len()
    }

    /// Loop nests the matcher inspected but refused, with the pc of the
    /// offending instruction and the reason — deduplicated, in program
    /// order.  The structured fallback trace the lowering tests assert
    /// on.
    pub fn rejects(&self) -> &[(usize, NativeReject)] {
        &self.table.rejects
    }

    /// Runtime counters: `(entries, fallbacks)` — how often a lowered
    /// region actually ran natively vs. fell back to the interpreter.
    pub fn runtime_stats(&self) -> (u64, u64) {
        (
            self.table.entries.load(Ordering::Relaxed),
            self.table.fallbacks.load(Ordering::Relaxed),
        )
    }

    /// The underlying bytecode program the regions annotate.
    pub fn bytecode(&self) -> &ByteCode {
        &self.bc
    }

    /// Structured coverage snapshot: region count, runtime counters and
    /// the reject-reason histogram (descending by count).
    pub fn coverage(&self) -> NativeCoverage {
        let (entries, fallbacks) = self.runtime_stats();
        let mut by: BTreeMap<&'static str, u64> = BTreeMap::new();
        for &(_, r) in &self.table.rejects {
            *by.entry(r.name()).or_insert(0) += 1;
        }
        let mut rejects: Vec<(&'static str, u64)> = by.into_iter().collect();
        rejects.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        NativeCoverage {
            regions: self.table.regions.len(),
            entries,
            fallbacks,
            rejects,
        }
    }

    /// Human-readable lowering report: region map, reject table and the
    /// annotated instruction stream — the `oa explain --native` dump
    /// used to tune the matcher.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        let (entries, fallbacks) = self.runtime_stats();
        let _ = writeln!(
            s,
            "native lowering: {} region(s), {} reject(s), entries={entries} fallbacks={fallbacks}",
            self.table.regions.len(),
            self.table.rejects.len(),
        );
        for (k, r) in self.table.regions.iter().enumerate() {
            let (mut runs, mut stages) = (0usize, 0usize);
            for st in &r.stmts {
                match st {
                    NStmt::Run(_) => runs += 1,
                    NStmt::Stage(_) => stages += 1,
                }
            }
            let _ = writeln!(
                s,
                "  region {k}: pc {}..{}  runs={runs} stages={stages} guards={} writeback-slots={}",
                r.start,
                r.resume,
                r.guards.len(),
                r.writeback.len(),
            );
        }
        if !self.table.rejects.is_empty() {
            let _ = writeln!(s, "  rejects:");
            for &(pc, r) in &self.table.rejects {
                let _ = writeln!(s, "    pc {pc:4}: {}", r.name());
            }
        }
        let _ = writeln!(s, "instruction stream:");
        for (pc, line) in self.bc.disasm().lines().enumerate() {
            let mut mark = String::new();
            if pc < self.table.entry.len() && self.table.entry[pc] != u32::MAX {
                mark = format!("R{}>", self.table.entry[pc]);
            } else if self.table.rejects.iter().any(|&(p, _)| p == pc) {
                mark = "x".into();
            }
            let _ = writeln!(s, "{mark:>4} {line}");
        }
        s
    }
}

/// Per-program native coverage, surfaced through the trace stream and
/// the bench reports so coverage regressions are visible, not silent.
#[derive(Clone, Debug)]
pub struct NativeCoverage {
    /// Regions the matcher lowered.
    pub regions: usize,
    /// Regions entered natively at runtime.
    pub entries: u64,
    /// Runtime fallbacks to the interpreter.
    pub fallbacks: u64,
    /// Reject-reason histogram, descending by count.
    pub rejects: Vec<(&'static str, u64)>,
}

/// Why the pattern matcher refused to lower a loop nest.  A reject is
/// not an error: the region simply stays on the interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NativeReject {
    /// A barrier loop's bound is not provably lane-invariant.
    NonUniformBounds,
    /// A divergent loop's trip count has no lane-affine class, so the
    /// iteration-space split cannot be constructed.
    DivergentLoop,
    /// The nest contains an instruction the native tier does not model
    /// (register moves, uniform branches, …).
    UnsupportedInstr,
    /// A guard is `thread0_only` or its condition is not lane-affine, so
    /// the box-cut analysis cannot classify it.
    NonAffineGuard,
    /// A load/store subscript has no lane-affine class (gather).
    NonAffineAddress,
    /// A store targets something other than a register tile at a
    /// lane-invariant element.
    StoreShape,
    /// A load reads a global the kernel also writes: the interpreter's
    /// overlay (read-your-write) semantics would be bypassed.
    WrittenGlobalLoad,
    /// An integer slot written in the nest has no lane-affine class, so
    /// the frame writeback could not be reconstructed.
    NonAffineWriteback,
    /// The nest matched but contains no accumulate statement — nothing
    /// to win, so it stays on the interpreter.
    NoStatement,
}

impl NativeReject {
    /// Stable short name, for histograms and the trace stream.
    pub fn name(self) -> &'static str {
        match self {
            NativeReject::NonUniformBounds => "non-uniform-bounds",
            NativeReject::DivergentLoop => "divergent-loop",
            NativeReject::UnsupportedInstr => "unsupported-instr",
            NativeReject::NonAffineGuard => "non-affine-guard",
            NativeReject::NonAffineAddress => "non-affine-address",
            NativeReject::StoreShape => "store-shape",
            NativeReject::WrittenGlobalLoad => "written-global-load",
            NativeReject::NonAffineWriteback => "non-affine-writeback",
            NativeReject::NoStatement => "no-statement",
        }
    }
}

/// The lowering side table for one program.
#[derive(Debug)]
pub(crate) struct NativeTable {
    /// Per-pc region index (`u32::MAX` = no region starts here).
    pub(crate) entry: Vec<u32>,
    pub(crate) regions: Vec<Region>,
    /// `(pc, reason)` for every instruction the matcher refused,
    /// deduplicated, in program order.
    pub(crate) rejects: Vec<(usize, NativeReject)>,
    /// Regions entered natively (runtime, relaxed).
    pub(crate) entries: AtomicU64,
    /// Runtime fallbacks to the interpreter (divergent entry mask, or a
    /// guard/loop-test cut the box analysis could not represent).
    pub(crate) fallbacks: AtomicU64,
}

/// The active-lane set as a rectangular sub-box of the thread block:
/// lanes `(tx, ty)` with `txl ≤ tx < txh`, `tyl ≤ ty < tyh`.  Guards and
/// divergent loop tests refine it by exact single-axis interval cuts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct LBox {
    pub(crate) txl: i64,
    pub(crate) txh: i64,
    pub(crate) tyl: i64,
    pub(crate) tyh: i64,
}

impl LBox {
    const EMPTY: LBox = LBox {
        txl: 0,
        txh: 0,
        tyl: 0,
        tyh: 0,
    };

    fn full(bx: i64, by: i64) -> LBox {
        LBox {
            txl: 0,
            txh: bx,
            tyl: 0,
            tyh: by,
        }
    }

    fn is_empty(&self) -> bool {
        self.txl >= self.txh || self.tyl >= self.tyh
    }

    fn is_full(&self, bx: i64, by: i64) -> bool {
        *self == LBox::full(bx, by)
    }
}

/// One matched loop nest: an annotation over `code[start..resume]`.
#[derive(Debug)]
pub(crate) struct Region {
    /// pc of the outer `LoopInit`.
    pub(crate) start: usize,
    /// pc just past the outer `PopMask` — where the interpreter resumes.
    pub(crate) resume: usize,
    stmts: Vec<NStmt>,
    guards: Vec<GuardInfo>,
    /// `(pc, action)` sorted by pc — the preflight's dispatch map for
    /// every instruction that is not pure integer control flow.
    pf: Vec<(usize, PfOp)>,
    /// Direct-mapped dispatch: `pf_map[pc - start]` is the `pf` index
    /// plus one, or 0 when the pc is plain control flow.  The preflight
    /// consults this every pc step, so it must be O(1).
    pf_map: Vec<u32>,
    /// Integer slots written inside the region, with their lane-affine
    /// class `(slot, a, b)`: lane value = `env[slot] + a·tx + b·ty`.
    writeback: Vec<(u32, i64, i64)>,
    /// Every slot/guard/address in this region passed the affinity
    /// analysis.  Always true for a constructed region — asserted at
    /// entry so the native path can never run on a rejected nest.
    pub(crate) affine_ok: bool,
}

/// One lowered statement: a run of F-instrs or a shared-memory stage.
#[derive(Debug)]
enum NStmt {
    Run(NRun),
    Stage(NStage),
}

/// A guarded or bare run of floating-point instructions.
#[derive(Debug)]
struct NRun {
    ops: Vec<NOp>,
    /// Trace addresses per instance (one `(r, c)` pair per load/store).
    n_addrs: usize,
    /// pc just past the run.
    exit: usize,
    /// The fused FMA-accumulate shape, when the ops match it exactly.
    hot: Option<Hot>,
}

/// A cooperative shared-memory stage executed inside the region.
#[derive(Debug)]
struct NStage {
    /// Index into `bc.stages`.
    ix: u32,
    /// Guard-bit words per instance: `(rows·cols).div_ceil(64)`.
    words: usize,
    /// Whether guard-true at the four tile corners proves guard-true
    /// everywhere: source coords affine in the tile element (any mode
    /// but `Symmetry`) and every conjunct monotone affine (no `Ne`).
    corners: bool,
}

/// An `IfSplit` guard lowered to box cuts.
#[derive(Debug)]
struct GuardInfo {
    /// Predicate index into `bc.preds`.
    pred: u32,
    /// The `IfSplit`'s empty-branch target (`IfElse` or `PopMask`).
    on_empty: u32,
    /// Whether an else branch follows (`on_empty` is an `IfElse`).
    has_else: bool,
    /// Per-condition lane coefficients `(dA, dB)` of `lhs − rhs`: the
    /// condition value at lane `(tx, ty)` is `d0 + dA·tx + dB·ty`.
    conds: Vec<(i64, i64)>,
}

/// Preflight dispatch at one pc.
#[derive(Clone, Copy, Debug)]
enum PfOp {
    /// Record statement `sid` over the current box, skip to its exit.
    Run(u32),
    /// Resolve stage origin and guard bits for statement `sid`.
    Stage(u32),
    /// Cut the box through guard `gix`, push the else box.
    Guard(u32),
    /// Divergent loop test `var < hi` with lane coefficients `(da, db)`
    /// of `var − hi`: cut the box, exit the loop when it empties.
    Test {
        var: u32,
        hi: u32,
        exit: u32,
        da: i64,
        db: i64,
    },
}

/// One lowered operation; loads/stores resolve their `(r, c)` during the
/// preflight (recorded in the trace), everything else is compile-time.
#[derive(Clone, Copy, Debug)]
enum NOp {
    Const {
        dst: u32,
        v: f32,
    },
    Load {
        dst: u32,
        row: AOp,
        col: AOp,
        src: NSrc,
    },
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    Fma {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        mul_first: bool,
    },
    Store {
        src: u32,
        row: AOp,
        col: AOp,
        x: u32,
        op: AssignOp,
    },
}

/// A load source with its compile-time lane structure.
#[derive(Clone, Copy, Debug)]
enum NSrc {
    /// Unwritten global; `(ra, rb)`/`(ca, cb)` are the row/col lane
    /// coefficients (the leading dimension is runtime).
    Global {
        g: u32,
        ra: i64,
        rb: i64,
        ca: i64,
        cb: i64,
    },
    /// Shared tile: arena offset, leading dimension and the flat per-tx
    /// / per-ty deltas, all compile-time.
    Shared {
        off: i64,
        ld: i64,
        dtx: i64,
        dty: i64,
    },
    /// Register tile at a lane-invariant element (lane-contiguous).
    Reg { x: u32 },
}

/// The fused accumulate `acc ±= a*b`: two loads, one multiply, one
/// register-tile read-modify-write, executed as a single pass.
#[derive(Clone, Copy, Debug)]
struct Hot {
    a: NSrc,
    b: NSrc,
    sub: bool,
    x: u32,
}

// ---------------------------------------------------------------------------
// Compile-time lowering: the pattern matcher.
// ---------------------------------------------------------------------------

/// A parse refusal: the pc of the offending instruction plus the reason.
type RErr = (usize, NativeReject);

/// Scan the instruction stream for lowerable loop nests.  Outer nests
/// that fail keep scanning inward, so a nest with an unsupported outer
/// construct still gets its inner register-tile nest; identical rejects
/// rediscovered by the inward scan are deduplicated.
pub(crate) fn lower(bc: &ByteCode) -> NativeTable {
    let mut entry = vec![u32::MAX; bc.code.len()];
    let mut regions = Vec::new();
    let mut rejects: Vec<(usize, NativeReject)> = Vec::new();
    let mut seen: HashSet<(usize, NativeReject)> = HashSet::new();
    let mut pc = 0usize;
    while pc < bc.code.len() {
        if matches!(bc.code[pc], Instr::LoopInit { .. }) {
            let mut b = RegionBuilder::new(bc);
            match b.parse_loop(pc) {
                Ok(resume) if b.has_store => {
                    entry[pc] = regions.len() as u32;
                    regions.push(b.finish(pc, resume));
                    pc = resume;
                    continue;
                }
                Ok(_) => {
                    if seen.insert((pc, NativeReject::NoStatement)) {
                        rejects.push((pc, NativeReject::NoStatement));
                    }
                }
                Err((at, r)) => {
                    if seen.insert((at, r)) {
                        rejects.push((at, r));
                    }
                }
            }
        }
        pc += 1;
    }
    NativeTable {
        entry,
        regions,
        rejects,
        entries: AtomicU64::new(0),
        fallbacks: AtomicU64::new(0),
    }
}

struct RegionBuilder<'a> {
    bc: &'a ByteCode,
    stmts: Vec<NStmt>,
    guards: Vec<GuardInfo>,
    pf: Vec<(usize, PfOp)>,
    writeback: Vec<(u32, i64, i64)>,
    has_store: bool,
}

impl<'a> RegionBuilder<'a> {
    fn new(bc: &'a ByteCode) -> Self {
        RegionBuilder {
            bc,
            stmts: Vec::new(),
            guards: Vec::new(),
            pf: Vec::new(),
            writeback: Vec::new(),
            has_store: false,
        }
    }

    fn finish(self, start: usize, resume: usize) -> Region {
        debug_assert!(
            self.pf.windows(2).all(|w| w[0].0 < w[1].0),
            "preflight map must be sorted by pc"
        );
        let mut pf_map = vec![0u32; resume - start];
        for (ix, &(pc, _)) in self.pf.iter().enumerate() {
            pf_map[pc - start] = ix as u32 + 1;
        }
        Region {
            start,
            resume,
            stmts: self.stmts,
            guards: self.guards,
            pf: self.pf,
            pf_map,
            writeback: self.writeback,
            affine_ok: true,
        }
    }

    /// Lane-affine class of a slot, or the reject for slots the affinity
    /// analysis could not classify.
    fn cls(&self, s: usize) -> Result<(i64, i64), NativeReject> {
        match self.bc.lane_cls[s] {
            Lane::Aff(a, b) => Ok((a, b)),
            _ => Err(NativeReject::NonAffineAddress),
        }
    }

    /// Lane-affine class of an address operand.
    fn aop_aff(&self, a: AOp) -> Result<(i64, i64), NativeReject> {
        match a {
            AOp::Const(_) => Ok((0, 0)),
            AOp::Slot(s) => self.cls(s as usize),
            AOp::Unit(u) => self.expr_aff(&self.bc.units[u as usize]),
        }
    }

    fn expr_aff(&self, e: &SlotExpr) -> Result<(i64, i64), NativeReject> {
        let mut aa = 0;
        let mut bb = 0;
        for &(s, c) in &e.terms {
            let (a1, b1) = self.cls(s)?;
            aa += c * a1;
            bb += c * b1;
        }
        Ok((aa, bb))
    }

    fn uniform_bound(&self, a: AOp) -> Result<(), NativeReject> {
        match self.aop_aff(a) {
            Ok((0, 0)) => Ok(()),
            _ => Err(NativeReject::NonUniformBounds),
        }
    }

    /// Record an integer slot the region writes; its lane-affine class
    /// becomes the writeback formula.
    fn note_write(&mut self, s: u32) -> Result<(), NativeReject> {
        if self.writeback.iter().any(|w| w.0 == s) {
            return Ok(());
        }
        match self.bc.lane_cls[s as usize] {
            Lane::Aff(a, b) => {
                self.writeback.push((s, a, b));
                Ok(())
            }
            _ => Err(NativeReject::NonAffineWriteback),
        }
    }

    /// Match one loop: `LoopInit` / init `Eval`s / `LoopTest`, body
    /// items, `LoopJump` + `PopMask` at the test's exit.  Barrier
    /// (`uniform`) loops need statically uniform bounds (the interpreter
    /// would otherwise raise a divergence error the native path must not
    /// skip); divergent loops need lane-affine classes for `var`/`hi`
    /// so the test becomes a runtime box cut.  Returns the pc just past
    /// the `PopMask`.
    fn parse_loop(&mut self, pc: usize) -> Result<usize, RErr> {
        let code = &self.bc.code;
        let Instr::LoopInit {
            var,
            hi,
            lo,
            hi_src,
            uniform,
            ..
        } = code[pc]
        else {
            return Err((pc, NativeReject::UnsupportedInstr));
        };
        if uniform {
            self.uniform_bound(lo).map_err(|e| (pc, e))?;
            self.uniform_bound(hi_src).map_err(|e| (pc, e))?;
        } else {
            self.aop_aff(lo)
                .map_err(|_| (pc, NativeReject::NonUniformBounds))?;
            self.aop_aff(hi_src)
                .map_err(|_| (pc, NativeReject::NonUniformBounds))?;
        }
        self.note_write(var).map_err(|e| (pc, e))?;
        self.note_write(hi).map_err(|e| (pc, e))?;
        let mut i = pc + 1;
        while let Instr::Eval { dst, .. } = code[i] {
            self.note_write(dst).map_err(|e| (i, e))?;
            i += 1;
        }
        let Instr::LoopTest {
            var: tvar,
            hi: thi,
            exit,
            uniform: tuni,
        } = code[i]
        else {
            return Err((i, NativeReject::UnsupportedInstr));
        };
        if !tuni {
            // Divergent trip counts: the test value `var − hi` must be
            // lane-affine so each iteration's survivor set is a box cut.
            let (va, vb) = self
                .cls(tvar as usize)
                .map_err(|_| (i, NativeReject::DivergentLoop))?;
            let (ha, hb) = self
                .cls(thi as usize)
                .map_err(|_| (i, NativeReject::DivergentLoop))?;
            self.pf.push((
                i,
                PfOp::Test {
                    var: tvar,
                    hi: thi,
                    exit,
                    da: va - ha,
                    db: vb - hb,
                },
            ));
        }
        let end = exit as usize;
        if end <= i + 1
            || end >= code.len()
            || !matches!(code[end], Instr::PopMask)
            || !matches!(code[end - 1], Instr::LoopJump { .. })
        {
            return Err((i, NativeReject::UnsupportedInstr));
        }
        self.parse_items(i + 1, end - 1)?;
        Ok(end + 1)
    }

    /// Match a loop body: slot updates, nested loops, shared-memory
    /// stages, guarded and bare floating-point statements.  Anything
    /// else rejects the nest.
    fn parse_items(&mut self, mut i: usize, hi: usize) -> Result<(), RErr> {
        let code = &self.bc.code;
        while i < hi {
            match code[i] {
                Instr::Eval { dst, .. } | Instr::StepAdd { dst, .. } => {
                    self.note_write(dst).map_err(|e| (i, e))?;
                    i += 1;
                }
                Instr::LoopInit { .. } => {
                    i = self.parse_loop(i)?;
                    if i > hi {
                        return Err((i - 1, NativeReject::UnsupportedInstr));
                    }
                }
                Instr::Stage { ix } => {
                    // Block-level macro: origin and guard are resolved
                    // scalar by the preflight, so no affinity constraint
                    // applies to its operands.
                    let st = &self.bc.stages[ix as usize];
                    let words = ((st.rows * st.cols) as usize).div_ceil(64);
                    let sp = &self.bc.preds[st.guard as usize];
                    let corners = st.mode != AllocMode::Symmetry
                        && sp.conds.iter().all(|c| c.op != CmpOp::Ne);
                    let sid = self.stmts.len() as u32;
                    self.pf.push((i, PfOp::Stage(sid)));
                    self.stmts.push(NStmt::Stage(NStage { ix, words, corners }));
                    i += 1;
                }
                Instr::IfSplit { .. } => {
                    i = self.parse_guard(i)?;
                    if i > hi {
                        return Err((i - 1, NativeReject::UnsupportedInstr));
                    }
                }
                Instr::FConst { .. }
                | Instr::FLoad { .. }
                | Instr::FBin { .. }
                | Instr::FFma { .. }
                | Instr::FStore { .. } => {
                    let mut j = i;
                    while j < hi && is_fop(&code[j]) {
                        j += 1;
                    }
                    self.push_run(i, j)?;
                    i = j;
                }
                _ => return Err((i, NativeReject::UnsupportedInstr)),
            }
        }
        Ok(())
    }

    /// Match an `IfSplit` guard: lane-affine conditions become box cuts.
    /// The then (and optional else) branch may hold F-runs, nested
    /// guards and integer slot updates — the interpreter executes
    /// `Eval`/`StepAdd` unmasked whenever the branch is *entered* (any
    /// lane active) and jumps past it otherwise, which is exactly the
    /// preflight's box-emptiness test, so walking the taken branches on
    /// the scalar environment reproduces lane 0 bit for bit.  Returns
    /// the pc just past the guard's `PopMask`.
    fn parse_guard(&mut self, pc: usize) -> Result<usize, RErr> {
        let code = &self.bc.code;
        let Instr::IfSplit { pred, on_empty } = code[pc] else {
            return Err((pc, NativeReject::UnsupportedInstr));
        };
        let sp = &self.bc.preds[pred as usize];
        if sp.thread0_only {
            return Err((pc, NativeReject::NonAffineGuard));
        }
        let mut conds = Vec::new();
        for c in &sp.conds {
            let (la, lb) = self
                .expr_aff(&c.lhs)
                .map_err(|_| (pc, NativeReject::NonAffineGuard))?;
            let (ra, rb) = self
                .expr_aff(&c.rhs)
                .map_err(|_| (pc, NativeReject::NonAffineGuard))?;
            conds.push((la - ra, lb - rb));
        }
        let oe = on_empty as usize;
        if oe <= pc || oe >= code.len() {
            return Err((pc, NativeReject::UnsupportedInstr));
        }
        let (has_else, ret) = match code[oe] {
            Instr::PopMask => (false, oe + 1),
            Instr::IfElse { done } => {
                let dn = done as usize;
                if dn <= oe || dn >= code.len() || !matches!(code[dn], Instr::PopMask) {
                    return Err((oe, NativeReject::UnsupportedInstr));
                }
                (true, dn + 1)
            }
            _ => return Err((pc, NativeReject::UnsupportedInstr)),
        };
        let gix = self.guards.len() as u32;
        self.pf.push((pc, PfOp::Guard(gix)));
        self.guards.push(GuardInfo {
            pred,
            on_empty,
            has_else,
            conds,
        });
        self.parse_branch(pc + 1, oe)?;
        if has_else {
            let Instr::IfElse { done } = code[oe] else {
                unreachable!("checked above");
            };
            self.parse_branch(oe + 1, done as usize)?;
        }
        Ok(ret)
    }

    /// Match a guard branch: F-runs, nested guards, nested loops and
    /// integer slot updates (conditional on the branch being entered —
    /// see [`Self::parse_guard`]).
    fn parse_branch(&mut self, mut i: usize, hi: usize) -> Result<(), RErr> {
        let code = &self.bc.code;
        while i < hi {
            match code[i] {
                Instr::Eval { dst, .. } | Instr::StepAdd { dst, .. } => {
                    self.note_write(dst).map_err(|e| (i, e))?;
                    i += 1;
                }
                Instr::LoopInit { .. } => {
                    i = self.parse_loop(i)?;
                    if i > hi {
                        return Err((i - 1, NativeReject::UnsupportedInstr));
                    }
                }
                Instr::IfSplit { .. } => {
                    i = self.parse_guard(i)?;
                    if i > hi {
                        return Err((i - 1, NativeReject::UnsupportedInstr));
                    }
                }
                Instr::FConst { .. }
                | Instr::FLoad { .. }
                | Instr::FBin { .. }
                | Instr::FFma { .. }
                | Instr::FStore { .. } => {
                    let mut j = i;
                    while j < hi && is_fop(&code[j]) {
                        j += 1;
                    }
                    self.push_run(i, j)?;
                    i = j;
                }
                _ => return Err((i, NativeReject::UnsupportedInstr)),
            }
        }
        Ok(())
    }

    /// Lower one run of F-instrs `code[lo..hi]`.
    fn push_run(&mut self, lo: usize, hi: usize) -> Result<(), RErr> {
        let mut ops = Vec::new();
        let mut n_addrs = 0usize;
        for k in lo..hi {
            match self.bc.code[k] {
                Instr::FConst { dst, v } => ops.push(NOp::Const { dst, v }),
                Instr::FLoad {
                    dst, arr, row, col, ..
                } => {
                    let (ra, rb) = self.aop_aff(row).map_err(|e| (k, e))?;
                    let (ca, cb) = self.aop_aff(col).map_err(|e| (k, e))?;
                    let src = match arr {
                        ArrRef::Global(g) => {
                            if self.bc.globals[g].written {
                                return Err((k, NativeReject::WrittenGlobalLoad));
                            }
                            NSrc::Global {
                                g: g as u32,
                                ra,
                                rb,
                                ca,
                                cb,
                            }
                        }
                        ArrRef::Shared(s) => {
                            let d = &self.bc.smem[s];
                            let ld = d.rows + d.pad;
                            NSrc::Shared {
                                off: self.bc.smem_off[s] as i64,
                                ld,
                                dtx: ra + ca * ld,
                                dty: rb + cb * ld,
                            }
                        }
                        ArrRef::Reg(x) => {
                            if (ra, rb, ca, cb) != (0, 0, 0, 0) {
                                return Err((k, NativeReject::NonAffineAddress));
                            }
                            NSrc::Reg { x: x as u32 }
                        }
                    };
                    n_addrs += 1;
                    ops.push(NOp::Load { dst, row, col, src });
                }
                Instr::FBin { op, dst, a, b } => ops.push(NOp::Bin { op, dst, a, b }),
                Instr::FFma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                } => ops.push(NOp::Fma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                }),
                Instr::FStore {
                    src,
                    arr,
                    row,
                    col,
                    op,
                    ..
                } => {
                    let ArrRef::Reg(x) = arr else {
                        return Err((k, NativeReject::StoreShape));
                    };
                    if self.aop_aff(row).map_err(|e| (k, e))? != (0, 0)
                        || self.aop_aff(col).map_err(|e| (k, e))? != (0, 0)
                    {
                        return Err((k, NativeReject::StoreShape));
                    }
                    self.has_store = true;
                    n_addrs += 1;
                    ops.push(NOp::Store {
                        src,
                        row,
                        col,
                        x: x as u32,
                        op,
                    });
                }
                _ => return Err((k, NativeReject::UnsupportedInstr)),
            }
        }

        let hot = detect_hot(&ops);
        let sid = self.stmts.len() as u32;
        self.pf.push((lo, PfOp::Run(sid)));
        self.stmts.push(NStmt::Run(NRun {
            ops,
            n_addrs,
            exit: hi,
            hot,
        }));
        Ok(())
    }
}

fn is_fop(i: &Instr) -> bool {
    matches!(
        i,
        Instr::FConst { .. }
            | Instr::FLoad { .. }
            | Instr::FBin { .. }
            | Instr::FFma { .. }
            | Instr::FStore { .. }
    )
}

/// Recognize the fused accumulate: `load a; load b; mul; acc ±= t`, with
/// both sources outside the register file (the accumulator may alias a
/// `Reg` source slice, so those stay on the generic path).
fn detect_hot(ops: &[NOp]) -> Option<Hot> {
    match *ops {
        [NOp::Load {
            dst: la, src: sa, ..
        }, NOp::Load {
            dst: lb, src: sb, ..
        }, NOp::Bin {
            op: BinOp::Mul,
            dst,
            a,
            b,
        }, NOp::Store { src, x, op, .. }]
            if a == la
                && b == lb
                && src == dst
                && !matches!(sa, NSrc::Reg { .. })
                && !matches!(sb, NSrc::Reg { .. })
                && matches!(op, AssignOp::AddAssign | AssignOp::SubAssign) =>
        {
            Some(Hot {
                a: sa,
                b: sb,
                sub: matches!(op, AssignOp::SubAssign),
                x,
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Box arithmetic: exact interval cuts over the lane box.
// ---------------------------------------------------------------------------

/// Refine `b` by the condition `op(d0 + da·tx + db·ty, 0)`.  Exact when
/// the condition varies along at most one axis (the survivor set is an
/// interval found by binary search); a two-axis condition is admitted
/// only with a uniform corner-interval verdict.  `None` means the
/// survivor set is not a box — abort to the interpreter.
fn apply_cut(b: LBox, d0: i64, da: i64, db: i64, op: CmpOp) -> Option<LBox> {
    if b.is_empty() {
        return Some(b);
    }
    if da == 0 && db == 0 {
        return Some(if op.eval(d0, 0) { b } else { LBox::EMPTY });
    }
    if db == 0 {
        let (lo, hi) = cut_axis(b.txl, b.txh, d0, da, op)?;
        return Some(LBox {
            txl: lo,
            txh: hi,
            ..b
        });
    }
    if da == 0 {
        let (lo, hi) = cut_axis(b.tyl, b.tyh, d0, db, op)?;
        return Some(LBox {
            tyl: lo,
            tyh: hi,
            ..b
        });
    }
    // Both axes vary: only a uniform verdict keeps the set a box.
    let corners = [
        d0 + da * b.txl + db * b.tyl,
        d0 + da * (b.txh - 1) + db * b.tyl,
        d0 + da * b.txl + db * (b.tyh - 1),
        d0 + da * (b.txh - 1) + db * (b.tyh - 1),
    ];
    let dmin = *corners.iter().min().expect("non-empty");
    let dmax = *corners.iter().max().expect("non-empty");
    let v = match op {
        CmpOp::Lt => verdict(dmax < 0, dmin >= 0),
        CmpOp::Le => verdict(dmax <= 0, dmin > 0),
        CmpOp::Gt => verdict(dmin > 0, dmax <= 0),
        CmpOp::Ge => verdict(dmin >= 0, dmax < 0),
        CmpOp::Eq => verdict(dmin == 0 && dmax == 0, dmax < 0 || dmin > 0),
        CmpOp::Ne => verdict(dmax < 0 || dmin > 0, dmin == 0 && dmax == 0),
    };
    match v {
        Some(true) => Some(b),
        Some(false) => Some(LBox::EMPTY),
        None => None,
    }
}

/// True-set of `op(d0 + k·t, 0)` over `t ∈ [lo, hi)` as a half-open
/// interval (`(lo, lo)` when empty).  Monotone comparisons always yield
/// a prefix or suffix; `Ne` with an interior hole is not an interval
/// (`None`).
fn cut_axis(lo: i64, hi: i64, d0: i64, k: i64, op: CmpOp) -> Option<(i64, i64)> {
    debug_assert!(lo < hi && k != 0);
    match op {
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let t = |x: i64| op.eval(d0 + k * x, 0);
            match (t(lo), t(hi - 1)) {
                (true, true) => Some((lo, hi)),
                (false, false) => Some((lo, lo)),
                (true, false) => {
                    // d0 + k·t is monotone, so the predicate flips once:
                    // binary-search the last true.
                    let (mut l, mut r) = (lo, hi - 1);
                    while r - l > 1 {
                        let m = l + (r - l) / 2;
                        if t(m) {
                            l = m;
                        } else {
                            r = m;
                        }
                    }
                    Some((lo, l + 1))
                }
                (false, true) => {
                    let (mut l, mut r) = (lo, hi - 1);
                    while r - l > 1 {
                        let m = l + (r - l) / 2;
                        if t(m) {
                            r = m;
                        } else {
                            l = m;
                        }
                    }
                    Some((r, hi))
                }
            }
        }
        CmpOp::Eq => {
            if d0 % k == 0 {
                let x = -d0 / k;
                if x >= lo && x < hi {
                    Some((x, x + 1))
                } else {
                    Some((lo, lo))
                }
            } else {
                Some((lo, lo))
            }
        }
        CmpOp::Ne => {
            if d0 % k != 0 {
                return Some((lo, hi));
            }
            let x = -d0 / k;
            if x < lo || x >= hi {
                Some((lo, hi))
            } else if x == lo {
                Some((lo + 1, hi))
            } else if x == hi - 1 {
                Some((lo, hi - 1))
            } else {
                None
            }
        }
    }
}

/// The else box `b ∖ t`, when it is itself a box: `t` must share `b`'s
/// extent on one axis and a boundary on the other.
fn complement(b: LBox, t: LBox) -> Option<LBox> {
    if t.is_empty() {
        return Some(b);
    }
    if t == b {
        return Some(LBox::EMPTY);
    }
    if (t.tyl, t.tyh) == (b.tyl, b.tyh) {
        if t.txl == b.txl {
            return Some(LBox { txl: t.txh, ..b });
        }
        if t.txh == b.txh {
            return Some(LBox { txh: t.txl, ..b });
        }
    }
    if (t.txl, t.txh) == (b.txl, b.txh) {
        if t.tyl == b.tyl {
            return Some(LBox { tyl: t.tyh, ..b });
        }
        if t.tyh == b.tyh {
            return Some(LBox { tyh: t.tyl, ..b });
        }
    }
    None
}

/// `Some(true)` / `Some(false)` when the interval proves the comparison
/// uniform, `None` when it straddles.
#[inline]
fn verdict(all_true: bool, all_false: bool) -> Option<bool> {
    if all_true {
        Some(true)
    } else if all_false {
        Some(false)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Runtime: preflight, trace replay, microkernels, writeback.
// ---------------------------------------------------------------------------

/// Per-worker native scratch (lives inside the interpreter's `VScratch`).
#[derive(Debug, Default)]
pub(crate) struct NativeScratch {
    /// Lane-0 integer frame column, interpreted scalar by the preflight.
    pub(crate) env: Vec<i64>,
    /// Resolved statement instances.  A run record is
    /// `[sid, txl, txh, tyl, tyh, r, c, …]`; a stage record is
    /// `[sid, r0, c0, guard-bit words…]`.
    pub(crate) trace: Vec<i64>,
    /// Preflight box stack: `(saved box, else box)` per open construct.
    pub(crate) bstack: Vec<(LBox, Option<LBox>)>,
}

fn aop_env(bc: &ByteCode, env: &[i64], a: AOp) -> i64 {
    match a {
        AOp::Const(c) => c,
        AOp::Slot(s) => env[s as usize],
        AOp::Unit(u) => bc.units[u as usize].eval(env),
    }
}

impl VBlock<'_> {
    /// Attempt to run region `rix` natively.  Returns the resume pc on
    /// success; `None` means nothing was mutated and the interpreter
    /// must execute the region itself.
    pub(crate) fn try_native(&mut self, nat: &NativeTable, rix: u32) -> Option<usize> {
        let region = &nat.regions[rix as usize];
        // The no-mis-lower guard: a region object only exists for nests
        // the affinity analysis fully accepted.
        debug_assert!(
            region.affine_ok,
            "native region selected for a nest the affinity analysis rejected"
        );
        if !self.mask_full() || !self.native_preflight(region) {
            nat.fallbacks.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        nat.entries.fetch_add(1, Ordering::Relaxed);
        self.native_replay(region);
        self.native_writeback(region);
        Some(region.resume)
    }

    /// Phase 1: interpret the region's integer control flow on lane 0's
    /// frame column while tracking the active-lane box, proving every
    /// guard and divergent loop test an exact box cut and recording
    /// every resolved address, box and stage guard bit.  Returns false
    /// (unrepresentable cut — abort, nothing mutated) or true with
    /// `nscratch.{env, trace}` filled.
    fn native_preflight(&mut self, region: &Region) -> bool {
        let bc = self.bc;
        let n = self.n;
        let (bxd, byd) = bc.block;
        let mut env = std::mem::take(&mut self.nscratch.env);
        let mut trace = std::mem::take(&mut self.nscratch.trace);
        let mut bstack = std::mem::take(&mut self.nscratch.bstack);
        env.clear();
        trace.clear();
        bstack.clear();
        for s in 0..bc.n_slots {
            env.push(self.frames[s * n]);
        }

        let end = region.resume - 1; // the outer PopMask
        let mut pc = region.start;
        let mut cur = LBox::full(bxd, byd);
        let mut ok = true;
        'walk: while pc != end {
            let pfix = region.pf_map[pc - region.start];
            if pfix != 0 {
                match region.pf[pfix as usize - 1].1 {
                    PfOp::Run(sid) => {
                        let NStmt::Run(run) = &region.stmts[sid as usize] else {
                            unreachable!("pf run points at a run statement");
                        };
                        trace.push(sid as i64);
                        trace.extend_from_slice(&[cur.txl, cur.txh, cur.tyl, cur.tyh]);
                        for op in &run.ops {
                            if let NOp::Load { row, col, .. } | NOp::Store { row, col, .. } = *op {
                                trace.push(aop_env(bc, &env, row));
                                trace.push(aop_env(bc, &env, col));
                            }
                        }
                        pc = run.exit;
                    }
                    PfOp::Stage(sid) => {
                        let NStmt::Stage(stg) = &region.stmts[sid as usize] else {
                            unreachable!("pf stage points at a stage statement");
                        };
                        let st = bc.stages[stg.ix as usize];
                        let r0 = aop_env(bc, &env, st.row0);
                        let c0 = aop_env(bc, &env, st.col0);
                        trace.push(sid as i64);
                        trace.push(r0);
                        trace.push(c0);
                        let base = trace.len();
                        trace.resize(base + stg.words, 0);
                        // Evaluate the stage guard exactly as the
                        // interpreter does (lane 0, thread0 = true,
                        // staging slots set before each test) — but only
                        // record the bits; nothing is mutated yet.  With
                        // affine source coords and monotone conjuncts,
                        // guard-true at all four tile corners proves the
                        // guard over the whole tile (an affine function
                        // on a rectangle takes its extremes at corners),
                        // so the common all-in-bounds stage skips the
                        // O(rows·cols) per-element sweep.
                        let sp = &bc.preds[st.guard as usize];
                        let mut full = stg.corners;
                        if full {
                            'corner: for &c in &[0, st.cols - 1] {
                                for &r in &[0, st.rows - 1] {
                                    let (gsr, gsc) =
                                        stage_src_coords(st.mode, st.src_fill, r0 + r, c0 + c);
                                    env[bc.sr_slot] = gsr;
                                    env[bc.sc_slot] = gsc;
                                    if !sp.eval(&env, true, self.blank_flags) {
                                        full = false;
                                        break 'corner;
                                    }
                                }
                            }
                        }
                        if full {
                            let total = (st.rows * st.cols) as usize;
                            for (w, slot) in trace[base..base + stg.words].iter_mut().enumerate() {
                                let bits = (total - w * 64).min(64) as u32;
                                *slot = (u64::MAX >> (64 - bits)) as i64;
                            }
                        } else {
                            let mut e = 0usize;
                            for c in 0..st.cols {
                                for r in 0..st.rows {
                                    let (gsr, gsc) =
                                        stage_src_coords(st.mode, st.src_fill, r0 + r, c0 + c);
                                    env[bc.sr_slot] = gsr;
                                    env[bc.sc_slot] = gsc;
                                    if sp.eval(&env, true, self.blank_flags) {
                                        trace[base + e / 64] |= 1i64 << (e % 64);
                                    }
                                    e += 1;
                                }
                            }
                        }
                        // The interpreter leaves the last element's
                        // source coords in the staging slots.
                        let (gsr, gsc) = stage_src_coords(
                            st.mode,
                            st.src_fill,
                            r0 + st.rows - 1,
                            c0 + st.cols - 1,
                        );
                        env[bc.sr_slot] = gsr;
                        env[bc.sc_slot] = gsc;
                        pc += 1;
                    }
                    PfOp::Guard(gix) => {
                        let g = &region.guards[gix as usize];
                        match self.guard_boxes(g, &env, cur) {
                            None => {
                                ok = false;
                                break 'walk;
                            }
                            Some((then_b, else_b)) => {
                                bstack.push((cur, else_b));
                                if then_b.is_empty() {
                                    pc = g.on_empty as usize;
                                } else {
                                    cur = then_b;
                                    pc += 1;
                                }
                            }
                        }
                    }
                    PfOp::Test {
                        var,
                        hi,
                        exit,
                        da,
                        db,
                    } => {
                        let d0 = env[var as usize] - env[hi as usize];
                        match apply_cut(cur, d0, da, db, CmpOp::Lt) {
                            None => {
                                ok = false;
                                break 'walk;
                            }
                            Some(nb) if nb.is_empty() => pc = exit as usize,
                            Some(nb) => {
                                cur = nb;
                                pc += 1;
                            }
                        }
                    }
                }
                continue;
            }
            match bc.code[pc] {
                Instr::Eval { dst, unit } => {
                    let v = bc.units[unit as usize].eval(&env);
                    env[dst as usize] = v;
                    pc += 1;
                }
                Instr::StepAdd { dst, imm } => {
                    env[dst as usize] += imm;
                    pc += 1;
                }
                Instr::LoopInit {
                    var,
                    hi,
                    lo,
                    hi_src,
                    ..
                } => {
                    env[var as usize] = aop_env(bc, &env, lo);
                    env[hi as usize] = aop_env(bc, &env, hi_src);
                    bstack.push((cur, None));
                    pc += 1;
                }
                Instr::LoopTest { var, hi, exit, .. } => {
                    // Non-uniform tests are pf entries; this arm is the
                    // statically uniform test on lane 0.
                    pc = if env[var as usize] < env[hi as usize] {
                        pc + 1
                    } else {
                        exit as usize
                    };
                }
                Instr::LoopJump { top } => pc = top as usize,
                Instr::IfElse { done } => {
                    let &(_, else_b) = bstack.last().expect("guard pushed its box");
                    let e = else_b.expect("else box computed at guard entry");
                    if e.is_empty() {
                        pc = done as usize;
                    } else {
                        cur = e;
                        pc += 1;
                    }
                }
                Instr::PopMask => {
                    cur = bstack.pop().expect("balanced mask stack").0;
                    pc += 1;
                }
                _ => unreachable!("unmodeled instruction inside a native region"),
            }
        }
        self.nscratch.env = env;
        self.nscratch.trace = trace;
        self.nscratch.bstack = bstack;
        ok
    }

    /// Resolve one guard at the current scalar environment into
    /// `(then box, else box)`.  `None` — a cut or the else complement is
    /// not representable as a box — aborts the region.
    fn guard_boxes(&self, g: &GuardInfo, env: &[i64], b: LBox) -> Option<(LBox, Option<LBox>)> {
        let sp = &self.bc.preds[g.pred as usize];
        let mut then_b = b;
        if let Some(ix) = sp.blank_flag {
            if self.blank_flags[ix] == sp.blank_negated {
                then_b = LBox::EMPTY;
            }
        }
        if !then_b.is_empty() {
            for (c, &(da, db)) in sp.conds.iter().zip(&g.conds) {
                let d0 = c.lhs.eval(env) - c.rhs.eval(env);
                then_b = apply_cut(then_b, d0, da, db, c.op)?;
                if then_b.is_empty() {
                    break;
                }
            }
        }
        let else_b = if g.has_else {
            Some(complement(b, then_b)?)
        } else {
            None
        };
        Some((then_b, else_b))
    }

    /// Phase 2: replay the recorded statement instances sequentially —
    /// exactly the interpreter's order, through vector kernels over each
    /// instance's recorded lane box.
    fn native_replay(&mut self, region: &Region) {
        let trace = std::mem::take(&mut self.nscratch.trace);
        let (bxd, byd) = self.bc.block;
        let mut off = 0;
        while off < trace.len() {
            match &region.stmts[trace[off] as usize] {
                NStmt::Run(run) => {
                    let b = LBox {
                        txl: trace[off + 1],
                        txh: trace[off + 2],
                        tyl: trace[off + 3],
                        tyh: trace[off + 4],
                    };
                    let addrs = &trace[off + 5..off + 5 + 2 * run.n_addrs];
                    if b.is_full(bxd, byd) {
                        if let Some(hot) = run.hot {
                            self.native_hot(hot, addrs);
                        } else {
                            self.native_generic(run, addrs);
                        }
                    } else if let Some(hot) = run.hot {
                        self.native_hot_boxed(hot, addrs, b);
                    } else {
                        self.native_generic_boxed(run, addrs, b);
                    }
                    off += 5 + 2 * run.n_addrs;
                }
                NStmt::Stage(stg) => {
                    let (r0, c0) = (trace[off + 1], trace[off + 2]);
                    let bits = &trace[off + 3..off + 3 + stg.words];
                    self.native_stage(stg.ix, r0, c0, bits);
                    off += 3 + stg.words;
                }
            }
        }
        self.nscratch.trace = trace;
    }

    /// The fused microkernel: one pass `acc[l] ±= a(l)·b(l)` with both
    /// gathers and the accumulate in a single loop, dispatched over the
    /// stride classes of the two sources.
    fn native_hot(&mut self, hot: Hot, addrs: &[i64]) {
        let n = self.n;
        let (bx, _) = self.bc.block;
        let d = &self.bc.regs[hot.x as usize];
        let base = (self.bc.reg_off[hot.x as usize] + (addrs[4] + addrs[5] * d.rows) as usize) * n;
        debug_assert!(
            addrs[4] >= 0 && addrs[4] < d.rows && addrs[5] >= 0 && addrs[5] < d.cols,
            "register tile index out of bounds"
        );
        // Field-disjoint reborrows: sources read smem / the global
        // snapshot, the accumulator mutates regs.
        let smem: &[f32] = self.smem;
        let mats = self.base;
        let regs: &mut [f32] = self.regs;
        let a = resolve_span(hot.a, addrs[0], addrs[1], smem, mats, n, bx);
        let b = resolve_span(hot.b, addrs[2], addrs[3], smem, mats, n, bx);
        let acc = &mut regs[base..base + n];
        if hot.sub {
            fused::<true>(acc, a, b, bx);
        } else {
            fused::<false>(acc, a, b, bx);
        }
    }

    /// The fused microkernel over a partial lane box: raw strided
    /// gathers restricted to the in-box lanes.  Addresses are lane-0
    /// extrapolations (lane `(0, 0)` may sit outside the box, so flat
    /// indices stay signed until each in-box element is touched).
    fn native_hot_boxed(&mut self, hot: Hot, addrs: &[i64], bxv: LBox) {
        let n = self.n;
        let (bxd, _) = self.bc.block;
        let d = &self.bc.regs[hot.x as usize];
        let base = (self.bc.reg_off[hot.x as usize] + (addrs[4] + addrs[5] * d.rows) as usize) * n;
        debug_assert!(
            addrs[4] >= 0 && addrs[4] < d.rows && addrs[5] >= 0 && addrs[5] < d.cols,
            "register tile index out of bounds"
        );
        let smem: &[f32] = self.smem;
        let mats = self.base;
        let regs: &mut [f32] = self.regs;
        let a = raw_span(hot.a, addrs[0], addrs[1], smem, mats);
        let b = raw_span(hot.b, addrs[2], addrs[3], smem, mats);
        let acc = &mut regs[base..base + n];
        for ty in bxv.tyl..bxv.tyh {
            let row = (ty * bxd) as usize;
            let ab = a.base + a.dty * ty;
            let bb = b.base + b.dty * ty;
            for tx in bxv.txl..bxv.txh {
                let t = a.data[(ab + a.dtx * tx) as usize] * b.data[(bb + b.dtx * tx) as usize];
                let x = &mut acc[row + tx as usize];
                if hot.sub {
                    *x -= t;
                } else {
                    *x += t;
                }
            }
        }
    }

    /// Generic vectorized statement: op-by-op over the virtual f32
    /// registers, with addresses taken from the trace instead of
    /// per-lane evaluation.
    fn native_generic(&mut self, run: &NRun, addrs: &[i64]) {
        let n = self.n;
        let (bx, _) = self.bc.block;
        let mut ai = 0usize;
        for op in &run.ops {
            match *op {
                NOp::Const { dst, v } => self.fregs[dst as usize * n..][..n].fill(v),
                NOp::Load { dst, src, .. } => {
                    let (r, c) = (addrs[ai], addrs[ai + 1]);
                    ai += 2;
                    let smem: &[f32] = self.smem;
                    let mats = self.base;
                    let span = match src {
                        NSrc::Reg { x } => {
                            let d = &self.bc.regs[x as usize];
                            debug_assert!(
                                r >= 0 && r < d.rows && c >= 0 && c < d.cols,
                                "register tile index out of bounds"
                            );
                            let base =
                                (self.bc.reg_off[x as usize] + (r + c * d.rows) as usize) * n;
                            Span::Slice(&self.regs[base..base + n])
                        }
                        _ => resolve_span(src, r, c, smem, mats, n, bx),
                    };
                    let dst = &mut self.fregs[dst as usize * n..][..n];
                    match span {
                        Span::Uni(v) => dst.fill(v),
                        Span::Slice(s) => dst.copy_from_slice(s),
                        Span::Step(data, b0, s) => {
                            for (l, x) in dst.iter_mut().enumerate() {
                                *x = data[(b0 + s * l as i64) as usize];
                            }
                        }
                        Span::Grid(data, b0, dtx, dty) => {
                            let mut tx = 0i64;
                            let mut ty = 0i64;
                            for x in dst.iter_mut() {
                                *x = data[(b0 + dtx * tx + dty * ty) as usize];
                                tx += 1;
                                if tx == bx {
                                    tx = 0;
                                    ty += 1;
                                }
                            }
                        }
                    }
                }
                NOp::Bin { op, dst, a, b } => self.vec_bin(op, dst, a, b),
                NOp::Fma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                } => self.vec_fma(op, dst, a, b, c, mul_first),
                NOp::Store { src, x, op, .. } => {
                    let (r, c) = (addrs[ai], addrs[ai + 1]);
                    ai += 2;
                    let d = &self.bc.regs[x as usize];
                    debug_assert!(
                        r >= 0 && r < d.rows && c >= 0 && c < d.cols,
                        "register tile index out of bounds"
                    );
                    let base = (self.bc.reg_off[x as usize] + (r + c * d.rows) as usize) * n;
                    let s = src as usize * n;
                    let lanes = self.regs[base..base + n]
                        .iter_mut()
                        .zip(&self.fregs[s..s + n]);
                    match op {
                        AssignOp::Assign => lanes.for_each(|(d, v)| *d = *v),
                        AssignOp::AddAssign => lanes.for_each(|(d, v)| *d += v),
                        AssignOp::SubAssign => lanes.for_each(|(d, v)| *d -= v),
                    }
                }
            }
        }
    }

    /// Generic statement over a partial lane box.  Loads and stores are
    /// box-restricted (out-of-box addresses may be invalid — that is
    /// exactly what the guard proves); pure arithmetic runs full-width,
    /// since out-of-box virtual registers are never stored.
    fn native_generic_boxed(&mut self, run: &NRun, addrs: &[i64], bv: LBox) {
        let n = self.n;
        let (bxd, _) = self.bc.block;
        let mut ai = 0usize;
        for op in &run.ops {
            match *op {
                NOp::Const { dst, v } => self.fregs[dst as usize * n..][..n].fill(v),
                NOp::Load { dst, src, .. } => {
                    let (r, c) = (addrs[ai], addrs[ai + 1]);
                    ai += 2;
                    let doff = dst as usize * n;
                    match src {
                        NSrc::Reg { x } => {
                            let d = &self.bc.regs[x as usize];
                            debug_assert!(
                                r >= 0 && r < d.rows && c >= 0 && c < d.cols,
                                "register tile index out of bounds"
                            );
                            let base =
                                (self.bc.reg_off[x as usize] + (r + c * d.rows) as usize) * n;
                            for ty in bv.tyl..bv.tyh {
                                let l0 = (ty * bxd + bv.txl) as usize;
                                let len = (bv.txh - bv.txl) as usize;
                                self.fregs[doff + l0..doff + l0 + len]
                                    .copy_from_slice(&self.regs[base + l0..base + l0 + len]);
                            }
                        }
                        _ => {
                            let smem: &[f32] = self.smem;
                            let mats = self.base;
                            let sp = raw_span(src, r, c, smem, mats);
                            let dsl = &mut self.fregs[doff..doff + n];
                            for ty in bv.tyl..bv.tyh {
                                let sb = sp.base + sp.dty * ty;
                                let l0 = (ty * bxd) as usize;
                                for tx in bv.txl..bv.txh {
                                    dsl[l0 + tx as usize] = sp.data[(sb + sp.dtx * tx) as usize];
                                }
                            }
                        }
                    }
                }
                NOp::Bin { op, dst, a, b } => self.vec_bin(op, dst, a, b),
                NOp::Fma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                } => self.vec_fma(op, dst, a, b, c, mul_first),
                NOp::Store { src, x, op, .. } => {
                    let (r, c) = (addrs[ai], addrs[ai + 1]);
                    ai += 2;
                    let d = &self.bc.regs[x as usize];
                    debug_assert!(
                        r >= 0 && r < d.rows && c >= 0 && c < d.cols,
                        "register tile index out of bounds"
                    );
                    let base = (self.bc.reg_off[x as usize] + (r + c * d.rows) as usize) * n;
                    let s = src as usize * n;
                    for ty in bv.tyl..bv.tyh {
                        let l0 = (ty * bxd + bv.txl) as usize;
                        let len = (bv.txh - bv.txl) as usize;
                        let lanes = self.regs[base + l0..base + l0 + len]
                            .iter_mut()
                            .zip(&self.fregs[s + l0..s + l0 + len]);
                        match op {
                            AssignOp::Assign => lanes.for_each(|(d, v)| *d = *v),
                            AssignOp::AddAssign => lanes.for_each(|(d, v)| *d += v),
                            AssignOp::SubAssign => lanes.for_each(|(d, v)| *d -= v),
                        }
                    }
                }
            }
        }
    }

    /// `freg[dst] = freg[a] op freg[b]`, all lanes.  Registers are
    /// statement-local and allocated operands-first, so `dst > a, b` and
    /// the split is safe.
    fn vec_bin(&mut self, op: BinOp, dst: u32, a: u32, b: u32) {
        let n = self.n;
        let (src, dsl) = self.fregs.split_at_mut(dst as usize * n);
        let dsl = &mut dsl[..n];
        let a = &src[a as usize * n..][..n];
        let b = &src[b as usize * n..][..n];
        let lanes = dsl.iter_mut().zip(a).zip(b);
        match op {
            BinOp::Add => lanes.for_each(|((d, a), b)| *d = a + b),
            BinOp::Sub => lanes.for_each(|((d, a), b)| *d = a - b),
            BinOp::Mul => lanes.for_each(|((d, a), b)| *d = a * b),
            BinOp::Div => lanes.for_each(|((d, a), b)| *d = a / b),
        }
    }

    /// Fused multiply-add, all lanes — two roundings, never `mul_add`,
    /// same as every tier.
    fn vec_fma(&mut self, op: BinOp, dst: u32, a: u32, b: u32, c: u32, mul_first: bool) {
        let n = self.n;
        let (src, dsl) = self.fregs.split_at_mut(dst as usize * n);
        let dsl = &mut dsl[..n];
        let a = &src[a as usize * n..][..n];
        let b = &src[b as usize * n..][..n];
        let c = &src[c as usize * n..][..n];
        let lanes = dsl.iter_mut().zip(a).zip(b).zip(c);
        match (op, mul_first) {
            (BinOp::Add, true) => lanes.for_each(|(((d, a), b), c)| *d = a * b + c),
            (BinOp::Add, false) => lanes.for_each(|(((d, a), b), c)| *d = c + a * b),
            (BinOp::Sub, true) => lanes.for_each(|(((d, a), b), c)| *d = a * b - c),
            (BinOp::Sub, false) => lanes.for_each(|(((d, a), b), c)| *d = c - a * b),
            _ => unreachable!("FFma is only built for Add/Sub"),
        }
    }

    /// Replay one shared-memory stage from its preflight record: whole
    /// columns `memcpy` when every guard bit is set and the source span
    /// is a plain in-bounds rectangle of an unwritten global, otherwise
    /// the exact per-element walk (guard-false elements stage `0.0`,
    /// exactly like the interpreter).
    fn native_stage(&mut self, ix: u32, r0: i64, c0: i64, bits: &[i64]) {
        let st = self.bc.stages[ix as usize];
        let n = self.n;
        let total = (st.rows * st.cols) as usize;
        let all = bits.iter().map(|w| w.count_ones() as usize).sum::<usize>() == total;
        let src_m = self.base[st.src];
        let fast = all
            && !self.bc.globals[st.src].written
            && st.mode != AllocMode::Symmetry
            && r0 >= 0
            && c0 >= 0
            && r0 + st.rows <= src_m.ld
            && c0 + st.cols <= src_m.cols;
        if fast && st.mode == AllocMode::NoChange {
            let d = &self.bc.smem[st.dst];
            let tld = (d.rows + d.pad) as usize;
            let doff = self.bc.smem_off[st.dst];
            let rows = st.rows as usize;
            for c in 0..st.cols {
                let s0 = (r0 + (c0 + c) * src_m.ld) as usize;
                let d0 = doff + c as usize * tld;
                self.smem[d0..d0 + rows].copy_from_slice(&src_m.data[s0..s0 + rows]);
            }
        } else if fast {
            // Transposed stage: each *source row* lands contiguously in
            // the destination tile, so walk rows and gather the strided
            // source column run directly (no per-element guard/coord
            // machinery).
            let d = &self.bc.smem[st.dst];
            let tld = (d.rows + d.pad) as usize;
            let doff = self.bc.smem_off[st.dst];
            let cols = st.cols as usize;
            for r in 0..st.rows {
                let s0 = r0 + r + c0 * src_m.ld;
                let dst = &mut self.smem[doff + r as usize * tld..][..cols];
                for (c, slot) in dst.iter_mut().enumerate() {
                    *slot = src_m.data[(s0 + c as i64 * src_m.ld) as usize];
                }
            }
        } else {
            let mut e = 0usize;
            for c in 0..st.cols {
                for r in 0..st.rows {
                    let set = (bits[e / 64] >> (e % 64)) & 1 != 0;
                    e += 1;
                    let v = if set {
                        let (gsr, gsc) = stage_src_coords(st.mode, st.src_fill, r0 + r, c0 + c);
                        self.gread(st.src, gsr, gsc)
                    } else {
                        0.0
                    };
                    let sx = match st.mode {
                        AllocMode::NoChange | AllocMode::Symmetry => self.smem_ix(st.dst, r, c),
                        AllocMode::Transpose => self.smem_ix(st.dst, c, r),
                    };
                    self.smem[sx] = v;
                }
            }
        }
        // The interpreter leaves the last element's source coords in the
        // lane-0 staging slots; reproduce that exactly.
        let (gsr, gsc) = stage_src_coords(st.mode, st.src_fill, r0 + st.rows - 1, c0 + st.cols - 1);
        self.frames[self.bc.sr_slot * n] = gsr;
        self.frames[self.bc.sc_slot * n] = gsc;
    }

    /// Phase 3: reconstruct every integer slot the region wrote, per
    /// lane, from the scalar environment and the slot's affine class.
    /// Exact even for divergent loops: the interpreter's slot updates
    /// write all lanes unmasked, so the affine lane relation holds at
    /// region exit.
    fn native_writeback(&mut self, region: &Region) {
        let n = self.n;
        let (bx, by) = self.bc.block;
        for &(s, a, b) in &region.writeback {
            let v0 = self.nscratch.env[s as usize];
            let col = &mut self.frames[s as usize * n..][..n];
            if a == 0 && b == 0 {
                col.fill(v0);
            } else {
                let mut l = 0usize;
                for ty in 0..by {
                    for tx in 0..bx {
                        col[l] = v0 + a * tx + b * ty;
                        l += 1;
                    }
                }
            }
        }
    }
}

/// A load source resolved to its per-lane access pattern for one
/// statement instance.
enum Span<'x> {
    /// Lane-invariant: one value broadcast.
    Uni(f32),
    /// Contiguous: `data[l]`.
    Slice(&'x [f32]),
    /// Constant stride: `data[base + s·l]`.
    Step(&'x [f32], i64, i64),
    /// Separate tx/ty strides: `data[base + dtx·tx + dty·ty]`.
    Grid(&'x [f32], i64, i64, i64),
}

/// A source as raw strided storage for box-restricted kernels: flat
/// element at `(tx, ty)` is `data[base + dtx·tx + dty·ty]`.  No bounds
/// reasoning — `base` extrapolates lane `(0, 0)`, which may sit outside
/// the box (and outside the array); only in-box elements are indexed.
struct RawSpan<'x> {
    data: &'x [f32],
    base: i64,
    dtx: i64,
    dty: i64,
}

fn raw_span<'x>(src: NSrc, r: i64, c: i64, smem: &'x [f32], mats: &[&'x Matrix]) -> RawSpan<'x> {
    match src {
        NSrc::Global { g, ra, rb, ca, cb } => {
            let m = mats[g as usize];
            RawSpan {
                data: &m.data,
                base: r + c * m.ld,
                dtx: ra + ca * m.ld,
                dty: rb + cb * m.ld,
            }
        }
        NSrc::Shared { off, ld, dtx, dty } => RawSpan {
            data: smem,
            base: off + r + c * ld,
            dtx,
            dty,
        },
        NSrc::Reg { .. } => unreachable!("register sources resolve to lane slices"),
    }
}

/// Classify a source at a resolved `(r, c)` into its stride class.
fn resolve_span<'x>(
    src: NSrc,
    r: i64,
    c: i64,
    smem: &'x [f32],
    mats: &[&'x Matrix],
    n: usize,
    bx: i64,
) -> Span<'x> {
    let (data, base, dtx, dty): (&[f32], i64, i64, i64) = match src {
        NSrc::Global { g, ra, rb, ca, cb } => {
            let m = mats[g as usize];
            debug_assert!(r >= 0 && c >= 0 && c < m.cols, "global index out of bounds");
            (&m.data, r + c * m.ld, ra + ca * m.ld, rb + cb * m.ld)
        }
        NSrc::Shared { off, ld, dtx, dty } => (smem, off + r + c * ld, dtx, dty),
        NSrc::Reg { .. } => unreachable!("register sources resolve to lane slices"),
    };
    if dtx == 0 && dty == 0 {
        return Span::Uni(data[base as usize]);
    }
    // A single lane-index stride exists when one block dimension is
    // degenerate or the ty stride is exactly bx rows of the tx stride.
    let step = if n as i64 == bx {
        Some(dtx)
    } else if bx == 1 {
        Some(dty)
    } else if dty == dtx * bx {
        Some(dtx)
    } else {
        None
    };
    match step {
        Some(1) => Span::Slice(&data[base as usize..base as usize + n]),
        Some(s) => Span::Step(data, base, s),
        None => Span::Grid(data, base, dtx, dty),
    }
}

/// The microkernel library: one monomorphized loop per (sign, stride
/// class, stride class) combination the generated kernels exhibit.  Each
/// body keeps the two-rounding contract (`t = a·b`, then `acc ± t`) and
/// iterates plain slices so the autovectorizer can lift it to SIMD.
fn fused<const SUB: bool>(acc: &mut [f32], a: Span, b: Span, bx: i64) {
    #[inline(always)]
    fn k1<const SUB: bool>(acc: &mut [f32], a: impl Fn(usize) -> f32, b: impl Fn(usize) -> f32) {
        for (l, x) in acc.iter_mut().enumerate() {
            let t = a(l) * b(l);
            if SUB {
                *x -= t;
            } else {
                *x += t;
            }
        }
    }
    #[inline(always)]
    fn k2<const SUB: bool>(
        acc: &mut [f32],
        bx: i64,
        a: impl Fn(i64, i64) -> f32,
        b: impl Fn(i64, i64) -> f32,
    ) {
        let mut tx = 0i64;
        let mut ty = 0i64;
        for x in acc.iter_mut() {
            let t = a(tx, ty) * b(tx, ty);
            if SUB {
                *x -= t;
            } else {
                *x += t;
            }
            tx += 1;
            if tx == bx {
                tx = 0;
                ty += 1;
            }
        }
    }
    use Span::{Grid, Slice, Step, Uni};
    match (a, b) {
        (Uni(av), Uni(bv)) => {
            let t = av * bv;
            for x in acc.iter_mut() {
                if SUB {
                    *x -= t;
                } else {
                    *x += t;
                }
            }
        }
        (Slice(s), Uni(v)) => k1::<SUB>(acc, |l| s[l], |_| v),
        (Uni(v), Slice(s)) => k1::<SUB>(acc, |_| v, |l| s[l]),
        (Slice(sa), Slice(sb)) => k1::<SUB>(acc, |l| sa[l], |l| sb[l]),
        (Step(d, b0, st), Uni(v)) => k1::<SUB>(acc, |l| d[(b0 + st * l as i64) as usize], |_| v),
        (Uni(v), Step(d, b0, st)) => k1::<SUB>(acc, |_| v, |l| d[(b0 + st * l as i64) as usize]),
        (Step(da, ba, sa), Step(db, bb, sb)) => k1::<SUB>(
            acc,
            |l| da[(ba + sa * l as i64) as usize],
            |l| db[(bb + sb * l as i64) as usize],
        ),
        (Step(d, b0, st), Slice(s)) => {
            k1::<SUB>(acc, |l| d[(b0 + st * l as i64) as usize], |l| s[l])
        }
        (Slice(s), Step(d, b0, st)) => {
            k1::<SUB>(acc, |l| s[l], |l| d[(b0 + st * l as i64) as usize])
        }
        (Grid(d, b0, dx, dy), Uni(v)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
            |_, _| v,
        ),
        (Uni(v), Grid(d, b0, dx, dy)) => k2::<SUB>(
            acc,
            bx,
            |_, _| v,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
        ),
        (Grid(da, ba, dxa, dya), Grid(db, bb, dxb, dyb)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| da[(ba + dxa * tx + dya * ty) as usize],
            |tx, ty| db[(bb + dxb * tx + dyb * ty) as usize],
        ),
        (Grid(d, b0, dx, dy), Slice(s)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
            |tx, ty| s[(tx + ty * bx) as usize],
        ),
        (Slice(s), Grid(d, b0, dx, dy)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| s[(tx + ty * bx) as usize],
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
        ),
        (Grid(d, b0, dx, dy), Step(ds, bs, st)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
            |tx, ty| ds[(bs + st * (tx + ty * bx)) as usize],
        ),
        (Step(ds, bs, st), Grid(d, b0, dx, dy)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| ds[(bs + st * (tx + ty * bx)) as usize],
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
        ),
    }
}
