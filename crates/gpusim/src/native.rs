//! Native microkernel engine: the fourth execution tier.
//!
//! The bytecode interpreter (`vexec`) still pays per-[`Instr`] dispatch
//! and per-lane address arithmetic inside the register-tile inner loop —
//! the FMA-fused accumulate over the K-tile that dominates every BLAS3
//! routine.  This module lowers a compiled [`ByteCode`] program one tier
//! further: it pattern-matches the optimizer's lane-affine inner loop
//! nests at compile time and executes each matched *region* through a
//! library of specialized host microkernels — monomorphized Rust loops
//! selected over (guard shape, accumulator target, stride class) whose
//! contiguous-slice FMA bodies the autovectorizer lifts to SIMD.
//!
//! The lowering is an *annotation*, not a rewrite: the bytecode stream is
//! left untouched, and a region that cannot be proven safe at compile
//! time (recorded in [`NativeTable::rejects`] with a [`NativeReject`]
//! reason) or at run time (a divergent mask, a guard the interval
//! analysis cannot resolve uniformly) simply falls back to interpreting
//! the very same instructions in place.  Fallbacks are therefore always
//! bit-identical by construction; the native path must then *also* be
//! bit-identical, which it achieves by:
//!
//! * **a scalar preflight** — lane 0's integer frame column is
//!   interpreted on a scratch environment, resolving every address and
//!   proving every guard uniformly true or false across the whole lane
//!   box via interval analysis over the lane-affine classes that
//!   [`ByteCode`]'s `mark_lanes` pass computed (`lane_cls`).  Any guard
//!   with a mixed verdict aborts to the interpreter before anything is
//!   mutated;
//! * **sequential trace replay** — statement instances execute in
//!   exactly the interpreter's order, each through a fused vector kernel
//!   (or a generic vectorized op-by-op path), so floating-point effects
//!   are reproduced operation for operation;
//! * **two-rounding FMA** — every kernel computes `t = a*b` (rounded),
//!   then `acc ± t` (rounded), never `mul_add`, matching the semantics
//!   every other engine pins;
//! * **exact frame writeback** — integer slots written inside the region
//!   are reconstructed per lane from `env[slot] + a·tx + b·ty`, the very
//!   invariant `mark_lanes` proved for them.

use std::sync::atomic::{AtomicU64, Ordering};

use oa_loopir::interp::{Bindings, Buffers, Matrix};
use oa_loopir::scalar::BinOp;
use oa_loopir::slots::SlotExpr;
use oa_loopir::stmt::AssignOp;
use oa_loopir::{CmpOp, Program};

use crate::bytecode::{AOp, ByteCode, Instr, Lane};
use crate::exec::ExecError;
use crate::tape::ArrRef;
use crate::vexec::VBlock;

/// A bytecode program plus its native-lowering side table: the artifact
/// the `native` engine compiles to.
#[derive(Debug)]
pub struct NativeProgram {
    bc: ByteCode,
    table: NativeTable,
}

impl NativeProgram {
    /// Compile a program for the native engine: bytecode lowering first,
    /// then the region matcher over the instruction stream.
    pub fn compile(p: &Program, bindings: &Bindings) -> Result<NativeProgram, ExecError> {
        Ok(NativeProgram::from_bytecode(ByteCode::compile(
            p, bindings,
        )?))
    }

    /// Annotate an already-compiled bytecode program.
    pub(crate) fn from_bytecode(bc: ByteCode) -> NativeProgram {
        let table = lower(&bc);
        NativeProgram { bc, table }
    }

    /// Execute on the given buffers: the interpreter drives, entering a
    /// native region whenever the program counter hits a matched entry
    /// point and the runtime checks pass.
    pub fn execute(&self, bufs: &mut Buffers) -> Result<(), ExecError> {
        self.bc.execute_with_native(bufs, &self.table)
    }

    /// Number of inner-loop regions the matcher lowered.
    pub fn region_count(&self) -> usize {
        self.table.regions.len()
    }

    /// Loop nests the matcher inspected but refused, with the reason —
    /// the structured fallback trace the lowering tests assert on.
    pub fn rejects(&self) -> &[(usize, NativeReject)] {
        &self.table.rejects
    }

    /// Runtime counters: `(entries, fallbacks)` — how often a lowered
    /// region actually ran natively vs. fell back to the interpreter.
    pub fn runtime_stats(&self) -> (u64, u64) {
        (
            self.table.entries.load(Ordering::Relaxed),
            self.table.fallbacks.load(Ordering::Relaxed),
        )
    }

    /// The underlying bytecode program the regions annotate.
    pub fn bytecode(&self) -> &ByteCode {
        &self.bc
    }
}

/// Why the pattern matcher refused to lower a loop nest.  A reject is
/// not an error: the region simply stays on the interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeReject {
    /// A loop bound is not provably lane-invariant.
    NonUniformBounds,
    /// The loop itself is divergent (per-lane trip counts).
    DivergentLoop,
    /// The nest contains an instruction the native tier does not model
    /// (barrier staging, register moves, nested else-branches, …).
    UnsupportedInstr,
    /// A guard is `thread0_only` or its condition is not lane-affine, so
    /// the interval analysis cannot classify it.
    NonAffineGuard,
    /// A load/store subscript has no lane-affine class (gather).
    NonAffineAddress,
    /// A store targets something other than a register tile at a
    /// lane-invariant element.
    StoreShape,
    /// A load reads a global the kernel also writes: the interpreter's
    /// overlay (read-your-write) semantics would be bypassed.
    WrittenGlobalLoad,
    /// An integer slot written in the nest has no lane-affine class, so
    /// the frame writeback could not be reconstructed.
    NonAffineWriteback,
    /// The nest matched but contains no accumulate statement — nothing
    /// to win, so it stays on the interpreter.
    NoStatement,
}

/// The lowering side table for one program.
#[derive(Debug)]
pub(crate) struct NativeTable {
    /// Per-pc region index (`u32::MAX` = no region starts here).
    pub(crate) entry: Vec<u32>,
    pub(crate) regions: Vec<Region>,
    /// `(pc, reason)` for every loop nest the matcher refused.
    pub(crate) rejects: Vec<(usize, NativeReject)>,
    /// Regions entered natively (runtime, relaxed).
    pub(crate) entries: AtomicU64,
    /// Runtime fallbacks to the interpreter (divergent mask or a guard
    /// the interval analysis could not resolve uniformly).
    pub(crate) fallbacks: AtomicU64,
}

/// One matched loop nest: an annotation over `code[start..resume]`.
#[derive(Debug)]
pub(crate) struct Region {
    /// pc of the outer `LoopInit`.
    pub(crate) start: usize,
    /// pc just past the outer `PopMask` — where the interpreter resumes.
    pub(crate) resume: usize,
    stmts: Vec<NStmt>,
    /// `(pc, stmt index)` sorted by pc — the preflight's statement map.
    stmt_entry: Vec<(usize, u32)>,
    /// Integer slots written inside the region, with their lane-affine
    /// class `(slot, a, b)`: lane value = `env[slot] + a·tx + b·ty`.
    writeback: Vec<(u32, i64, i64)>,
    /// Every slot/guard/address in this region passed the affinity
    /// analysis.  Always true for a constructed region — asserted at
    /// entry so the native path can never run on a rejected nest.
    pub(crate) affine_ok: bool,
}

/// One floating-point statement (a guarded or bare run of F-instrs).
#[derive(Debug)]
struct NStmt {
    /// Guard predicate index into `bc.preds`, if any.
    pred: Option<u32>,
    /// Per-condition interval slack `(lo_extra, hi_extra)`: the min/max
    /// of `A·tx + B·ty` over the lane box, where `(A, B)` are the
    /// lane-affine coefficients of `lhs − rhs`.
    conds: Vec<(i64, i64)>,
    ops: Vec<NOp>,
    /// Trace addresses per instance (one `(r, c)` pair per load/store).
    n_addrs: usize,
    /// pc just past the statement (past the guard's `PopMask`).
    exit: usize,
    /// The fused FMA-accumulate shape, when the ops match it exactly.
    hot: Option<Hot>,
}

/// One lowered operation; loads/stores resolve their `(r, c)` during the
/// preflight (recorded in the trace), everything else is compile-time.
#[derive(Clone, Copy, Debug)]
enum NOp {
    Const {
        dst: u32,
        v: f32,
    },
    Load {
        dst: u32,
        row: AOp,
        col: AOp,
        src: NSrc,
    },
    Bin {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
    },
    Fma {
        op: BinOp,
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        mul_first: bool,
    },
    Store {
        src: u32,
        row: AOp,
        col: AOp,
        x: u32,
        op: AssignOp,
    },
}

/// A load source with its compile-time lane structure.
#[derive(Clone, Copy, Debug)]
enum NSrc {
    /// Unwritten global; `(ra, rb)`/`(ca, cb)` are the row/col lane
    /// coefficients (the leading dimension is runtime).
    Global {
        g: u32,
        ra: i64,
        rb: i64,
        ca: i64,
        cb: i64,
    },
    /// Shared tile: arena offset, leading dimension and the flat per-tx
    /// / per-ty deltas, all compile-time.
    Shared {
        off: i64,
        ld: i64,
        dtx: i64,
        dty: i64,
    },
    /// Register tile at a lane-invariant element (lane-contiguous).
    Reg { x: u32 },
}

/// The fused accumulate `acc ±= a*b`: two loads, one multiply, one
/// register-tile read-modify-write, executed as a single pass.
#[derive(Clone, Copy, Debug)]
struct Hot {
    a: NSrc,
    b: NSrc,
    sub: bool,
    x: u32,
}

impl NStmt {
    fn record_len(&self) -> usize {
        1 + 2 * self.n_addrs
    }
}

// ---------------------------------------------------------------------------
// Compile-time lowering: the pattern matcher.
// ---------------------------------------------------------------------------

/// Scan the instruction stream for lowerable loop nests.  Outer nests
/// that fail keep scanning inward, so a GEMM whose K-block loop stages
/// shared memory (unsupported) still gets its inner register-tile nest.
pub(crate) fn lower(bc: &ByteCode) -> NativeTable {
    let mut entry = vec![u32::MAX; bc.code.len()];
    let mut regions = Vec::new();
    let mut rejects = Vec::new();
    let mut pc = 0usize;
    while pc < bc.code.len() {
        if matches!(bc.code[pc], Instr::LoopInit { .. }) {
            let mut b = RegionBuilder::new(bc);
            match b.parse_loop(pc) {
                Ok(resume) if b.has_store => {
                    entry[pc] = regions.len() as u32;
                    regions.push(b.finish(pc, resume));
                    pc = resume;
                    continue;
                }
                Ok(_) => rejects.push((pc, NativeReject::NoStatement)),
                Err(r) => rejects.push((pc, r)),
            }
        }
        pc += 1;
    }
    NativeTable {
        entry,
        regions,
        rejects,
        entries: AtomicU64::new(0),
        fallbacks: AtomicU64::new(0),
    }
}

struct RegionBuilder<'a> {
    bc: &'a ByteCode,
    stmts: Vec<NStmt>,
    stmt_entry: Vec<(usize, u32)>,
    writeback: Vec<(u32, i64, i64)>,
    has_store: bool,
}

impl<'a> RegionBuilder<'a> {
    fn new(bc: &'a ByteCode) -> Self {
        RegionBuilder {
            bc,
            stmts: Vec::new(),
            stmt_entry: Vec::new(),
            writeback: Vec::new(),
            has_store: false,
        }
    }

    fn finish(self, start: usize, resume: usize) -> Region {
        Region {
            start,
            resume,
            stmts: self.stmts,
            stmt_entry: self.stmt_entry,
            writeback: self.writeback,
            affine_ok: true,
        }
    }

    /// Lane-affine class of a slot, or the reject for slots the affinity
    /// analysis could not classify.
    fn cls(&self, s: usize) -> Result<(i64, i64), NativeReject> {
        match self.bc.lane_cls[s] {
            Lane::Aff(a, b) => Ok((a, b)),
            _ => Err(NativeReject::NonAffineAddress),
        }
    }

    /// Lane-affine class of an address operand.
    fn aop_aff(&self, a: AOp) -> Result<(i64, i64), NativeReject> {
        match a {
            AOp::Const(_) => Ok((0, 0)),
            AOp::Slot(s) => self.cls(s as usize),
            AOp::Unit(u) => self.expr_aff(&self.bc.units[u as usize]),
        }
    }

    fn expr_aff(&self, e: &SlotExpr) -> Result<(i64, i64), NativeReject> {
        let mut aa = 0;
        let mut bb = 0;
        for &(s, c) in &e.terms {
            let (a1, b1) = self.cls(s)?;
            aa += c * a1;
            bb += c * b1;
        }
        Ok((aa, bb))
    }

    fn uniform_bound(&self, a: AOp) -> Result<(), NativeReject> {
        match self.aop_aff(a) {
            Ok((0, 0)) => Ok(()),
            _ => Err(NativeReject::NonUniformBounds),
        }
    }

    /// Record an integer slot the region writes; its lane-affine class
    /// becomes the writeback formula.
    fn note_write(&mut self, s: u32) -> Result<(), NativeReject> {
        if self.writeback.iter().any(|w| w.0 == s) {
            return Ok(());
        }
        match self.bc.lane_cls[s as usize] {
            Lane::Aff(a, b) => {
                self.writeback.push((s, a, b));
                Ok(())
            }
            _ => Err(NativeReject::NonAffineWriteback),
        }
    }

    /// Match one loop: `LoopInit` / init `Eval`s / uniform `LoopTest`,
    /// body items, `LoopJump` + `PopMask` at the test's exit.  Returns
    /// the pc just past the `PopMask`.
    fn parse_loop(&mut self, pc: usize) -> Result<usize, NativeReject> {
        let code = &self.bc.code;
        let Instr::LoopInit {
            var,
            hi,
            lo,
            hi_src,
            ..
        } = code[pc]
        else {
            return Err(NativeReject::UnsupportedInstr);
        };
        self.uniform_bound(lo)?;
        self.uniform_bound(hi_src)?;
        self.note_write(var)?;
        self.note_write(hi)?;
        let mut i = pc + 1;
        while let Instr::Eval { dst, .. } = code[i] {
            self.note_write(dst)?;
            i += 1;
        }
        let Instr::LoopTest { exit, uniform, .. } = code[i] else {
            return Err(NativeReject::UnsupportedInstr);
        };
        if !uniform {
            return Err(NativeReject::DivergentLoop);
        }
        let end = exit as usize;
        if end <= i + 1
            || end >= code.len()
            || !matches!(code[end], Instr::PopMask)
            || !matches!(code[end - 1], Instr::LoopJump { .. })
        {
            return Err(NativeReject::UnsupportedInstr);
        }
        self.parse_items(i + 1, end - 1)?;
        Ok(end + 1)
    }

    /// Match a loop body: slot updates, nested loops, guarded and bare
    /// floating-point statements.  Anything else rejects the nest.
    fn parse_items(&mut self, mut i: usize, hi: usize) -> Result<(), NativeReject> {
        let code = &self.bc.code;
        while i < hi {
            match code[i] {
                Instr::Eval { dst, .. } | Instr::StepAdd { dst, .. } => {
                    self.note_write(dst)?;
                    i += 1;
                }
                Instr::LoopInit { .. } => i = self.parse_loop(i)?,
                Instr::IfSplit { pred, on_empty } => {
                    let end = on_empty as usize;
                    if end <= i || end > hi || !matches!(code[end], Instr::PopMask) {
                        return Err(NativeReject::UnsupportedInstr);
                    }
                    self.push_stmt(i, i + 1, end, Some(pred))?;
                    i = end + 1;
                }
                Instr::FConst { .. }
                | Instr::FLoad { .. }
                | Instr::FBin { .. }
                | Instr::FFma { .. }
                | Instr::FStore { .. } => {
                    let mut j = i;
                    while j < hi && is_fop(&code[j]) {
                        j += 1;
                    }
                    self.push_stmt(i, i, j, None)?;
                    i = j;
                }
                _ => return Err(NativeReject::UnsupportedInstr),
            }
        }
        Ok(())
    }

    /// Lower one statement: guard interval slack, then the op run.
    fn push_stmt(
        &mut self,
        entry_pc: usize,
        ops_lo: usize,
        ops_hi: usize,
        pred: Option<u32>,
    ) -> Result<(), NativeReject> {
        let mut conds = Vec::new();
        if let Some(p) = pred {
            let sp = &self.bc.preds[p as usize];
            if sp.thread0_only {
                return Err(NativeReject::NonAffineGuard);
            }
            let (bx, by) = self.bc.block;
            for c in &sp.conds {
                let (la, lb) = self
                    .expr_aff(&c.lhs)
                    .map_err(|_| NativeReject::NonAffineGuard)?;
                let (ra, rb) = self
                    .expr_aff(&c.rhs)
                    .map_err(|_| NativeReject::NonAffineGuard)?;
                let xt = (la - ra) * (bx - 1);
                let yt = (lb - rb) * (by - 1);
                conds.push((xt.min(0) + yt.min(0), xt.max(0) + yt.max(0)));
            }
        }

        let mut ops = Vec::new();
        let mut n_addrs = 0usize;
        for k in ops_lo..ops_hi {
            match self.bc.code[k] {
                Instr::FConst { dst, v } => ops.push(NOp::Const { dst, v }),
                Instr::FLoad {
                    dst, arr, row, col, ..
                } => {
                    let (ra, rb) = self.aop_aff(row)?;
                    let (ca, cb) = self.aop_aff(col)?;
                    let src = match arr {
                        ArrRef::Global(g) => {
                            if self.bc.globals[g].written {
                                return Err(NativeReject::WrittenGlobalLoad);
                            }
                            NSrc::Global {
                                g: g as u32,
                                ra,
                                rb,
                                ca,
                                cb,
                            }
                        }
                        ArrRef::Shared(s) => {
                            let d = &self.bc.smem[s];
                            let ld = d.rows + d.pad;
                            NSrc::Shared {
                                off: self.bc.smem_off[s] as i64,
                                ld,
                                dtx: ra + ca * ld,
                                dty: rb + cb * ld,
                            }
                        }
                        ArrRef::Reg(x) => {
                            if (ra, rb, ca, cb) != (0, 0, 0, 0) {
                                return Err(NativeReject::NonAffineAddress);
                            }
                            NSrc::Reg { x: x as u32 }
                        }
                    };
                    n_addrs += 1;
                    ops.push(NOp::Load { dst, row, col, src });
                }
                Instr::FBin { op, dst, a, b } => ops.push(NOp::Bin { op, dst, a, b }),
                Instr::FFma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                } => ops.push(NOp::Fma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                }),
                Instr::FStore {
                    src,
                    arr,
                    row,
                    col,
                    op,
                    ..
                } => {
                    let ArrRef::Reg(x) = arr else {
                        return Err(NativeReject::StoreShape);
                    };
                    if self.aop_aff(row)? != (0, 0) || self.aop_aff(col)? != (0, 0) {
                        return Err(NativeReject::StoreShape);
                    }
                    self.has_store = true;
                    n_addrs += 1;
                    ops.push(NOp::Store {
                        src,
                        row,
                        col,
                        x: x as u32,
                        op,
                    });
                }
                _ => return Err(NativeReject::UnsupportedInstr),
            }
        }

        let exit = if pred.is_some() { ops_hi + 1 } else { ops_hi };
        let hot = detect_hot(&ops);
        let id = self.stmts.len() as u32;
        self.stmt_entry.push((entry_pc, id));
        self.stmts.push(NStmt {
            pred,
            conds,
            ops,
            n_addrs,
            exit,
            hot,
        });
        Ok(())
    }
}

fn is_fop(i: &Instr) -> bool {
    matches!(
        i,
        Instr::FConst { .. }
            | Instr::FLoad { .. }
            | Instr::FBin { .. }
            | Instr::FFma { .. }
            | Instr::FStore { .. }
    )
}

/// Recognize the fused accumulate: `load a; load b; mul; acc ±= t`, with
/// both sources outside the register file (the accumulator may alias a
/// `Reg` source slice, so those stay on the generic path).
fn detect_hot(ops: &[NOp]) -> Option<Hot> {
    match *ops {
        [NOp::Load {
            dst: la, src: sa, ..
        }, NOp::Load {
            dst: lb, src: sb, ..
        }, NOp::Bin {
            op: BinOp::Mul,
            dst,
            a,
            b,
        }, NOp::Store { src, x, op, .. }]
            if a == la
                && b == lb
                && src == dst
                && !matches!(sa, NSrc::Reg { .. })
                && !matches!(sb, NSrc::Reg { .. })
                && matches!(op, AssignOp::AddAssign | AssignOp::SubAssign) =>
        {
            Some(Hot {
                a: sa,
                b: sb,
                sub: matches!(op, AssignOp::SubAssign),
                x,
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Runtime: preflight, trace replay, microkernels, writeback.
// ---------------------------------------------------------------------------

/// Per-worker native scratch (lives inside the interpreter's `VScratch`).
#[derive(Debug, Default)]
pub(crate) struct NativeScratch {
    /// Lane-0 integer frame column, interpreted scalar by the preflight.
    pub(crate) env: Vec<i64>,
    /// Resolved statement instances: `[stmt, r, c, r, c, …]` per record.
    pub(crate) trace: Vec<i64>,
}

fn aop_env(bc: &ByteCode, env: &[i64], a: AOp) -> i64 {
    match a {
        AOp::Const(c) => c,
        AOp::Slot(s) => env[s as usize],
        AOp::Unit(u) => bc.units[u as usize].eval(env),
    }
}

impl VBlock<'_> {
    /// Attempt to run region `rix` natively.  Returns the resume pc on
    /// success; `None` means nothing was mutated and the interpreter
    /// must execute the region itself.
    pub(crate) fn try_native(&mut self, nat: &NativeTable, rix: u32) -> Option<usize> {
        let region = &nat.regions[rix as usize];
        // The no-mis-lower guard: a region object only exists for nests
        // the affinity analysis fully accepted.
        debug_assert!(
            region.affine_ok,
            "native region selected for a nest the affinity analysis rejected"
        );
        if !self.mask_full() || !self.native_preflight(region) {
            nat.fallbacks.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        nat.entries.fetch_add(1, Ordering::Relaxed);
        self.native_replay(region);
        self.native_writeback(region);
        Some(region.resume)
    }

    /// Phase 1: interpret the region's integer control flow on lane 0's
    /// frame column, proving every guard uniform and recording every
    /// resolved address.  Returns false (mixed guard — abort, nothing
    /// mutated) or true with `nscratch.{env, trace}` filled.
    fn native_preflight(&mut self, region: &Region) -> bool {
        let bc = self.bc;
        let n = self.n;
        let mut env = std::mem::take(&mut self.nscratch.env);
        let mut trace = std::mem::take(&mut self.nscratch.trace);
        env.clear();
        trace.clear();
        for s in 0..bc.n_slots {
            env.push(self.frames[s * n]);
        }

        let end = region.resume - 1; // the outer PopMask
        let mut pc = region.start;
        let mut ok = true;
        while pc != end {
            if let Ok(ix) = region.stmt_entry.binary_search_by_key(&pc, |e| e.0) {
                let sid = region.stmt_entry[ix].1;
                let stmt = &region.stmts[sid as usize];
                match self.stmt_verdict(stmt, &env) {
                    Some(true) => {
                        trace.push(sid as i64);
                        for op in &stmt.ops {
                            if let NOp::Load { row, col, .. } | NOp::Store { row, col, .. } = *op {
                                trace.push(aop_env(bc, &env, row));
                                trace.push(aop_env(bc, &env, col));
                            }
                        }
                        pc = stmt.exit;
                    }
                    Some(false) => pc = stmt.exit,
                    None => {
                        ok = false;
                        break;
                    }
                }
                continue;
            }
            match bc.code[pc] {
                Instr::Eval { dst, unit } => {
                    let v = bc.units[unit as usize].eval(&env);
                    env[dst as usize] = v;
                    pc += 1;
                }
                Instr::StepAdd { dst, imm } => {
                    env[dst as usize] += imm;
                    pc += 1;
                }
                Instr::LoopInit {
                    var,
                    hi,
                    lo,
                    hi_src,
                    ..
                } => {
                    env[var as usize] = aop_env(bc, &env, lo);
                    env[hi as usize] = aop_env(bc, &env, hi_src);
                    pc += 1;
                }
                Instr::LoopTest { var, hi, exit, .. } => {
                    pc = if env[var as usize] < env[hi as usize] {
                        pc + 1
                    } else {
                        exit as usize
                    };
                }
                Instr::LoopJump { top } => pc = top as usize,
                Instr::PopMask => pc += 1,
                _ => unreachable!("unmodeled instruction inside a native region"),
            }
        }
        self.nscratch.env = env;
        self.nscratch.trace = trace;
        ok
    }

    /// Interval verdict for one guarded statement at the current scalar
    /// environment: `Some(true)` — every lane passes, `Some(false)` —
    /// every lane fails, `None` — mixed (abort to the interpreter).
    fn stmt_verdict(&self, stmt: &NStmt, env: &[i64]) -> Option<bool> {
        let Some(p) = stmt.pred else {
            return Some(true);
        };
        let sp = &self.bc.preds[p as usize];
        if let Some(ix) = sp.blank_flag {
            if self.blank_flags[ix] == sp.blank_negated {
                return Some(false);
            }
        }
        let mut all = true;
        for (c, &(lo_x, hi_x)) in sp.conds.iter().zip(&stmt.conds) {
            let d0 = c.lhs.eval(env) - c.rhs.eval(env);
            let (dmin, dmax) = (d0 + lo_x, d0 + hi_x);
            let v = match c.op {
                CmpOp::Lt => verdict(dmax < 0, dmin >= 0),
                CmpOp::Le => verdict(dmax <= 0, dmin > 0),
                CmpOp::Gt => verdict(dmin > 0, dmax <= 0),
                CmpOp::Ge => verdict(dmin >= 0, dmax < 0),
                CmpOp::Eq => verdict(dmin == 0 && dmax == 0, dmax < 0 || dmin > 0),
                CmpOp::Ne => verdict(dmax < 0 || dmin > 0, dmin == 0 && dmax == 0),
            };
            match v {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all = false,
            }
        }
        if all {
            Some(true)
        } else {
            None
        }
    }

    /// Phase 2: replay the recorded statement instances sequentially —
    /// exactly the interpreter's order, through vector kernels.
    fn native_replay(&mut self, region: &Region) {
        let trace = std::mem::take(&mut self.nscratch.trace);
        let mut off = 0;
        while off < trace.len() {
            let stmt = &region.stmts[trace[off] as usize];
            let addrs = &trace[off + 1..off + stmt.record_len()];
            if let Some(hot) = stmt.hot {
                self.native_hot(hot, addrs);
            } else {
                self.native_generic(stmt, addrs);
            }
            off += stmt.record_len();
        }
        self.nscratch.trace = trace;
    }

    /// The fused microkernel: one pass `acc[l] ±= a(l)·b(l)` with both
    /// gathers and the accumulate in a single loop, dispatched over the
    /// stride classes of the two sources.
    fn native_hot(&mut self, hot: Hot, addrs: &[i64]) {
        let n = self.n;
        let (bx, _) = self.bc.block;
        let d = &self.bc.regs[hot.x as usize];
        let base = (self.bc.reg_off[hot.x as usize] + (addrs[4] + addrs[5] * d.rows) as usize) * n;
        debug_assert!(
            addrs[4] >= 0 && addrs[4] < d.rows && addrs[5] >= 0 && addrs[5] < d.cols,
            "register tile index out of bounds"
        );
        // Field-disjoint reborrows: sources read smem / the global
        // snapshot, the accumulator mutates regs.
        let smem: &[f32] = self.smem;
        let mats = self.base;
        let regs: &mut [f32] = self.regs;
        let a = resolve_span(hot.a, addrs[0], addrs[1], smem, mats, n, bx);
        let b = resolve_span(hot.b, addrs[2], addrs[3], smem, mats, n, bx);
        let acc = &mut regs[base..base + n];
        if hot.sub {
            fused::<true>(acc, a, b, bx);
        } else {
            fused::<false>(acc, a, b, bx);
        }
    }

    /// Generic vectorized statement: op-by-op over the virtual f32
    /// registers, with addresses taken from the trace instead of
    /// per-lane evaluation.
    fn native_generic(&mut self, stmt: &NStmt, addrs: &[i64]) {
        let n = self.n;
        let (bx, _) = self.bc.block;
        let mut ai = 0usize;
        for op in &stmt.ops {
            match *op {
                NOp::Const { dst, v } => self.fregs[dst as usize * n..][..n].fill(v),
                NOp::Load { dst, src, .. } => {
                    let (r, c) = (addrs[ai], addrs[ai + 1]);
                    ai += 2;
                    let smem: &[f32] = self.smem;
                    let mats = self.base;
                    let span = match src {
                        NSrc::Reg { x } => {
                            let d = &self.bc.regs[x as usize];
                            debug_assert!(
                                r >= 0 && r < d.rows && c >= 0 && c < d.cols,
                                "register tile index out of bounds"
                            );
                            let base =
                                (self.bc.reg_off[x as usize] + (r + c * d.rows) as usize) * n;
                            Span::Slice(&self.regs[base..base + n])
                        }
                        _ => resolve_span(src, r, c, smem, mats, n, bx),
                    };
                    let dst = &mut self.fregs[dst as usize * n..][..n];
                    match span {
                        Span::Uni(v) => dst.fill(v),
                        Span::Slice(s) => dst.copy_from_slice(s),
                        Span::Step(data, b0, s) => {
                            for (l, x) in dst.iter_mut().enumerate() {
                                *x = data[(b0 + s * l as i64) as usize];
                            }
                        }
                        Span::Grid(data, b0, dtx, dty) => {
                            let mut tx = 0i64;
                            let mut ty = 0i64;
                            for x in dst.iter_mut() {
                                *x = data[(b0 + dtx * tx + dty * ty) as usize];
                                tx += 1;
                                if tx == bx {
                                    tx = 0;
                                    ty += 1;
                                }
                            }
                        }
                    }
                }
                NOp::Bin { op, dst, a, b } => {
                    // dst > a, b: statement-local registers are allocated
                    // operands-first, same as the interpreter's split.
                    let (src, dsl) = self.fregs.split_at_mut(dst as usize * n);
                    let dsl = &mut dsl[..n];
                    let a = &src[a as usize * n..][..n];
                    let b = &src[b as usize * n..][..n];
                    let lanes = dsl.iter_mut().zip(a).zip(b);
                    match op {
                        BinOp::Add => lanes.for_each(|((d, a), b)| *d = a + b),
                        BinOp::Sub => lanes.for_each(|((d, a), b)| *d = a - b),
                        BinOp::Mul => lanes.for_each(|((d, a), b)| *d = a * b),
                        BinOp::Div => lanes.for_each(|((d, a), b)| *d = a / b),
                    }
                }
                NOp::Fma {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    mul_first,
                } => {
                    let (src, dsl) = self.fregs.split_at_mut(dst as usize * n);
                    let dsl = &mut dsl[..n];
                    let a = &src[a as usize * n..][..n];
                    let b = &src[b as usize * n..][..n];
                    let c = &src[c as usize * n..][..n];
                    // Two roundings, never mul_add: same as every tier.
                    let lanes = dsl.iter_mut().zip(a).zip(b).zip(c);
                    match (op, mul_first) {
                        (BinOp::Add, true) => lanes.for_each(|(((d, a), b), c)| *d = a * b + c),
                        (BinOp::Add, false) => lanes.for_each(|(((d, a), b), c)| *d = c + a * b),
                        (BinOp::Sub, true) => lanes.for_each(|(((d, a), b), c)| *d = a * b - c),
                        (BinOp::Sub, false) => lanes.for_each(|(((d, a), b), c)| *d = c - a * b),
                        _ => unreachable!("FFma is only built for Add/Sub"),
                    }
                }
                NOp::Store { src, x, op, .. } => {
                    let (r, c) = (addrs[ai], addrs[ai + 1]);
                    ai += 2;
                    let d = &self.bc.regs[x as usize];
                    debug_assert!(
                        r >= 0 && r < d.rows && c >= 0 && c < d.cols,
                        "register tile index out of bounds"
                    );
                    let base = (self.bc.reg_off[x as usize] + (r + c * d.rows) as usize) * n;
                    let s = src as usize * n;
                    let lanes = self.regs[base..base + n]
                        .iter_mut()
                        .zip(&self.fregs[s..s + n]);
                    match op {
                        AssignOp::Assign => lanes.for_each(|(d, v)| *d = *v),
                        AssignOp::AddAssign => lanes.for_each(|(d, v)| *d += v),
                        AssignOp::SubAssign => lanes.for_each(|(d, v)| *d -= v),
                    }
                }
            }
        }
    }

    /// Phase 3: reconstruct every integer slot the region wrote, per
    /// lane, from the scalar environment and the slot's affine class.
    fn native_writeback(&mut self, region: &Region) {
        let n = self.n;
        let (bx, by) = self.bc.block;
        for &(s, a, b) in &region.writeback {
            let v0 = self.nscratch.env[s as usize];
            let col = &mut self.frames[s as usize * n..][..n];
            if a == 0 && b == 0 {
                col.fill(v0);
            } else {
                let mut l = 0usize;
                for ty in 0..by {
                    for tx in 0..bx {
                        col[l] = v0 + a * tx + b * ty;
                        l += 1;
                    }
                }
            }
        }
    }
}

/// `Some(true)` / `Some(false)` when the interval proves the comparison
/// uniform, `None` when it straddles.
#[inline]
fn verdict(all_true: bool, all_false: bool) -> Option<bool> {
    if all_true {
        Some(true)
    } else if all_false {
        Some(false)
    } else {
        None
    }
}

/// A load source resolved to its per-lane access pattern for one
/// statement instance.
enum Span<'x> {
    /// Lane-invariant: one value broadcast.
    Uni(f32),
    /// Contiguous: `data[l]`.
    Slice(&'x [f32]),
    /// Constant stride: `data[base + s·l]`.
    Step(&'x [f32], i64, i64),
    /// Separate tx/ty strides: `data[base + dtx·tx + dty·ty]`.
    Grid(&'x [f32], i64, i64, i64),
}

/// Classify a source at a resolved `(r, c)` into its stride class.
fn resolve_span<'x>(
    src: NSrc,
    r: i64,
    c: i64,
    smem: &'x [f32],
    mats: &[&'x Matrix],
    n: usize,
    bx: i64,
) -> Span<'x> {
    let (data, base, dtx, dty): (&[f32], i64, i64, i64) = match src {
        NSrc::Global { g, ra, rb, ca, cb } => {
            let m = mats[g as usize];
            debug_assert!(r >= 0 && c >= 0 && c < m.cols, "global index out of bounds");
            (&m.data, r + c * m.ld, ra + ca * m.ld, rb + cb * m.ld)
        }
        NSrc::Shared { off, ld, dtx, dty } => (smem, off + r + c * ld, dtx, dty),
        NSrc::Reg { .. } => unreachable!("register sources resolve to lane slices"),
    };
    if dtx == 0 && dty == 0 {
        return Span::Uni(data[base as usize]);
    }
    // A single lane-index stride exists when one block dimension is
    // degenerate or the ty stride is exactly bx rows of the tx stride.
    let step = if n as i64 == bx {
        Some(dtx)
    } else if bx == 1 {
        Some(dty)
    } else if dty == dtx * bx {
        Some(dtx)
    } else {
        None
    };
    match step {
        Some(1) => Span::Slice(&data[base as usize..base as usize + n]),
        Some(s) => Span::Step(data, base, s),
        None => Span::Grid(data, base, dtx, dty),
    }
}

/// The microkernel library: one monomorphized loop per (sign, stride
/// class, stride class) combination the generated kernels exhibit.  Each
/// body keeps the two-rounding contract (`t = a·b`, then `acc ± t`) and
/// iterates plain slices so the autovectorizer can lift it to SIMD.
fn fused<const SUB: bool>(acc: &mut [f32], a: Span, b: Span, bx: i64) {
    #[inline(always)]
    fn k1<const SUB: bool>(acc: &mut [f32], a: impl Fn(usize) -> f32, b: impl Fn(usize) -> f32) {
        for (l, x) in acc.iter_mut().enumerate() {
            let t = a(l) * b(l);
            if SUB {
                *x -= t;
            } else {
                *x += t;
            }
        }
    }
    #[inline(always)]
    fn k2<const SUB: bool>(
        acc: &mut [f32],
        bx: i64,
        a: impl Fn(i64, i64) -> f32,
        b: impl Fn(i64, i64) -> f32,
    ) {
        let mut tx = 0i64;
        let mut ty = 0i64;
        for x in acc.iter_mut() {
            let t = a(tx, ty) * b(tx, ty);
            if SUB {
                *x -= t;
            } else {
                *x += t;
            }
            tx += 1;
            if tx == bx {
                tx = 0;
                ty += 1;
            }
        }
    }
    use Span::{Grid, Slice, Step, Uni};
    match (a, b) {
        (Uni(av), Uni(bv)) => {
            let t = av * bv;
            for x in acc.iter_mut() {
                if SUB {
                    *x -= t;
                } else {
                    *x += t;
                }
            }
        }
        (Slice(s), Uni(v)) => k1::<SUB>(acc, |l| s[l], |_| v),
        (Uni(v), Slice(s)) => k1::<SUB>(acc, |_| v, |l| s[l]),
        (Slice(sa), Slice(sb)) => k1::<SUB>(acc, |l| sa[l], |l| sb[l]),
        (Step(d, b0, st), Uni(v)) => k1::<SUB>(acc, |l| d[(b0 + st * l as i64) as usize], |_| v),
        (Uni(v), Step(d, b0, st)) => k1::<SUB>(acc, |_| v, |l| d[(b0 + st * l as i64) as usize]),
        (Step(da, ba, sa), Step(db, bb, sb)) => k1::<SUB>(
            acc,
            |l| da[(ba + sa * l as i64) as usize],
            |l| db[(bb + sb * l as i64) as usize],
        ),
        (Step(d, b0, st), Slice(s)) => {
            k1::<SUB>(acc, |l| d[(b0 + st * l as i64) as usize], |l| s[l])
        }
        (Slice(s), Step(d, b0, st)) => {
            k1::<SUB>(acc, |l| s[l], |l| d[(b0 + st * l as i64) as usize])
        }
        (Grid(d, b0, dx, dy), Uni(v)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
            |_, _| v,
        ),
        (Uni(v), Grid(d, b0, dx, dy)) => k2::<SUB>(
            acc,
            bx,
            |_, _| v,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
        ),
        (Grid(da, ba, dxa, dya), Grid(db, bb, dxb, dyb)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| da[(ba + dxa * tx + dya * ty) as usize],
            |tx, ty| db[(bb + dxb * tx + dyb * ty) as usize],
        ),
        (Grid(d, b0, dx, dy), Slice(s)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
            |tx, ty| s[(tx + ty * bx) as usize],
        ),
        (Slice(s), Grid(d, b0, dx, dy)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| s[(tx + ty * bx) as usize],
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
        ),
        (Grid(d, b0, dx, dy), Step(ds, bs, st)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
            |tx, ty| ds[(bs + st * (tx + ty * bx)) as usize],
        ),
        (Step(ds, bs, st), Grid(d, b0, dx, dy)) => k2::<SUB>(
            acc,
            bx,
            |tx, ty| ds[(bs + st * (tx + ty * bx)) as usize],
            |tx, ty| d[(b0 + dx * tx + dy * ty) as usize],
        ),
    }
}
