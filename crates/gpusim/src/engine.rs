//! Engine selection: one entry point over the four executors.
//!
//! The simulator has four semantically identical engines, in increasing
//! order of compilation effort and execution speed:
//!
//! 1. **oracle** — the tree-walking reference executor
//!    ([`exec_program`](crate::exec::exec_program));
//! 2. **tape** — the slot-resolved compiled tape ([`Tape`]);
//! 3. **bytecode** — the tape lowered to optimized linear bytecode and
//!    run on the lane-vectorized interpreter ([`ByteCode`]);
//! 4. **native** — the bytecode further lowered to specialized host
//!    microkernels for its lane-affine inner loop nests, falling back to
//!    the interpreter everywhere else ([`NativeProgram`]).
//!
//! [`exec_program_fast`] is the fast path used by the composer's legality
//! filter, the BLAS3 verifier and the autotuner. It defaults to the
//! bytecode engine; set `OA_EXEC_ENGINE=oracle|tape|bytecode|native` to
//! pin a specific engine (an unrecognized value falls back to the
//! default, so stale scripts keep working).
//!
//! `OA_EXEC_ENGINE` is the *top-level default only*, read once per process
//! by [`select`].  Code that needs a specific engine (tests, benchmarks,
//! the tuner's engine-invariance checks) passes an explicit [`ExecEngine`]
//! through [`exec_program_on`] / the `*_on` pipeline entry points instead
//! of mutating the environment — `std::env::set_var` is process-global and
//! racy under the parallel test harness (and denied by clippy in this
//! workspace, see `clippy.toml`).

use oa_loopir::interp::{Bindings, Buffers};
use oa_loopir::Program;
use std::sync::OnceLock;

use crate::bytecode::ByteCode;
use crate::exec::ExecError;
use crate::native::NativeProgram;
use crate::tape::Tape;

/// Which executor to run a program on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecEngine {
    /// Tree-walking reference interpreter (slow, zero compilation).
    Oracle,
    /// Compiled kernel tape (PR 1 fast path).
    Tape,
    /// Optimized linear bytecode on the lane-vectorized interpreter
    /// (default).
    Bytecode,
    /// Bytecode with lane-affine inner loop nests lowered to native host
    /// microkernels (fastest; interpreter fallback elsewhere).
    Native,
}

impl ExecEngine {
    /// Parse an engine name; `None` for unrecognized input.
    pub fn parse(name: &str) -> Option<ExecEngine> {
        match name {
            "oracle" => Some(ExecEngine::Oracle),
            "tape" => Some(ExecEngine::Tape),
            "bytecode" => Some(ExecEngine::Bytecode),
            "native" => Some(ExecEngine::Native),
            _ => None,
        }
    }

    /// The engine's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ExecEngine::Oracle => "oracle",
            ExecEngine::Tape => "tape",
            ExecEngine::Bytecode => "bytecode",
            ExecEngine::Native => "native",
        }
    }

    /// All engines, oracle first (the differential-test iteration order).
    pub const ALL: [ExecEngine; 4] = [
        ExecEngine::Oracle,
        ExecEngine::Tape,
        ExecEngine::Bytecode,
        ExecEngine::Native,
    ];
}

/// The process-wide default engine: `OA_EXEC_ENGINE`, read **once** on
/// first use.  Unset or unrecognized values select
/// [`ExecEngine::Bytecode`] (so stale scripts keep working).
///
/// This is the only place the environment influences engine choice; every
/// other selection point takes an explicit [`ExecEngine`] parameter.
pub fn select() -> ExecEngine {
    static DEFAULT: OnceLock<ExecEngine> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("OA_EXEC_ENGINE")
            .ok()
            .and_then(|v| ExecEngine::parse(&v))
            .unwrap_or(ExecEngine::Bytecode)
    })
}

/// Execute `p` on `bufs` with the given engine.
///
/// Compilation errors (unmapped program, missing buffer) and barrier
/// divergence surface as [`ExecError`] regardless of engine; results are
/// bit-identical across engines for every kernel this framework
/// generates.
pub fn exec_program_on(
    engine: ExecEngine,
    p: &Program,
    bindings: &Bindings,
    bufs: &mut Buffers,
) -> Result<(), ExecError> {
    match engine {
        ExecEngine::Oracle => crate::exec::exec_program(p, bindings, bufs),
        ExecEngine::Tape => Tape::compile(p, bindings)?.execute(bufs),
        ExecEngine::Bytecode => ByteCode::compile(p, bindings)?.execute(bufs),
        ExecEngine::Native => NativeProgram::compile(p, bindings)?.execute(bufs),
    }
}

/// Compile and execute `p` on the fast path: the process-default engine
/// ([`select`]), normally the optimized bytecode interpreter.
pub fn exec_program_fast(
    p: &Program,
    bindings: &Bindings,
    bufs: &mut Buffers,
) -> Result<(), ExecError> {
    exec_program_on(select(), p, bindings, bufs)
}

/// Run `p` through **every** engine on its own clone of `bufs`, in
/// parallel (one OS thread per engine — each engine is internally
/// deterministic, and they never share state, so the parallelism cannot
/// change any result).  Results come back in [`ExecEngine::ALL`] order —
/// oracle first — each carrying the engine's private output buffers or
/// its error.
///
/// This is the differential cross-check primitive: the fuzzer and the
/// cross-engine tests call it once per case and then compare the four
/// outcomes for bit-identical buffers or identically-classified errors
/// ([`ExecError::class`]).
pub fn exec_all_engines(
    p: &Program,
    bindings: &Bindings,
    bufs: &Buffers,
) -> [(ExecEngine, Result<Buffers, ExecError>); 4] {
    let run = |engine: ExecEngine| {
        let mut mine = bufs.clone();
        exec_program_on(engine, p, bindings, &mut mine).map(|()| mine)
    };
    let [a, b, c, d] = ExecEngine::ALL;
    let (ra, rb, rc, rd) = std::thread::scope(|s| {
        let hb = s.spawn(|| run(b));
        let hc = s.spawn(|| run(c));
        let hd = s.spawn(|| run(d));
        let ra = run(a);
        (
            ra,
            hb.join().expect("engine thread panicked"),
            hc.join().expect("engine thread panicked"),
            hd.join().expect("engine thread panicked"),
        )
    });
    [(a, ra), (b, rb), (c, rc), (d, rd)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_loopir::builder::gemm_nn_like;
    use oa_loopir::interp::alloc_buffers;
    use oa_loopir::transform::{loop_tiling, sm_alloc, thread_grouping, TileParams};

    fn mapped_gemm() -> Program {
        let mut p = gemm_nn_like("g");
        let params = TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", params).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        p
    }

    #[test]
    fn all_engines_agree() {
        let p = mapped_gemm();
        let b = Bindings::square(32);
        let mut outs = Vec::new();
        for engine in ExecEngine::ALL {
            let mut bufs = alloc_buffers(&p, &b, 11);
            exec_program_on(engine, &p, &b, &mut bufs).expect("exec");
            outs.push(
                bufs["C"]
                    .data
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(outs[0], outs[1], "oracle vs tape");
        assert_eq!(outs[0], outs[2], "oracle vs bytecode");
        assert_eq!(outs[0], outs[3], "oracle vs native");
    }

    #[test]
    fn unmapped_program_fails_on_every_engine() {
        let p = gemm_nn_like("g");
        let b = Bindings::square(8);
        for engine in ExecEngine::ALL {
            let mut bufs = alloc_buffers(&p, &b, 1);
            let err = exec_program_on(engine, &p, &b, &mut bufs).unwrap_err();
            assert!(matches!(err, ExecError::Launch(_)), "{engine:?}");
        }
    }
}
