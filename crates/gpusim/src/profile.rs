//! Profile counters in the vocabulary of `cuda_profile` (Tables I–III).
//!
//! * CC 1.0 reports `gld_incoherent`/`gld_coherent` (and `gst_*`) —
//!   Table I's smoking gun for CUBLAS SYMM;
//! * CC 1.3 reports everything as coherent (Table II's zeros);
//! * CC 2.0 reports per-warp `gld_request`/`gst_request` plus
//!   local-memory spills (Table III).
//!
//! Counts are kept as `f64` because the performance model derives them
//! from stratified samples with fractional weights.

use std::fmt;
use std::ops::AddAssign;

/// Hardware event counters accumulated by the performance model.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProfileCounters {
    /// Coalesced global-load transactions (CC 1.x).
    pub gld_coherent: f64,
    /// Non-coalesced global-load transactions (CC 1.0 only; zero on 1.3+).
    pub gld_incoherent: f64,
    /// Coalesced global-store transactions.
    pub gst_coherent: f64,
    /// Non-coalesced global-store transactions.
    pub gst_incoherent: f64,
    /// Per-warp global-load requests (CC 2.0).
    pub gld_request: f64,
    /// Per-warp global-store requests (CC 2.0).
    pub gst_request: f64,
    /// Local-memory (register spill) loads, per warp (CC 2.0).
    pub local_load: f64,
    /// Local-memory stores, per warp.
    pub local_store: f64,
    /// Shared-memory load accesses, per warp (replays included separately).
    pub smem_load: f64,
    /// Shared-memory store accesses, per warp.
    pub smem_store: f64,
    /// Shared-memory conflict replays (extra issue slots).
    pub smem_replays: f64,
    /// Dynamic warp instructions issued.
    pub instructions: f64,
    /// Bytes moved over the global-memory bus.
    pub gmem_bytes: f64,
    /// Floating-point operations executed (thread granularity).
    pub flops: f64,
}

impl ProfileCounters {
    /// Scale every counter (stratified-sampling weight).
    pub fn scaled(&self, w: f64) -> ProfileCounters {
        ProfileCounters {
            gld_coherent: self.gld_coherent * w,
            gld_incoherent: self.gld_incoherent * w,
            gst_coherent: self.gst_coherent * w,
            gst_incoherent: self.gst_incoherent * w,
            gld_request: self.gld_request * w,
            gst_request: self.gst_request * w,
            local_load: self.local_load * w,
            local_store: self.local_store * w,
            smem_load: self.smem_load * w,
            smem_store: self.smem_store * w,
            smem_replays: self.smem_replays * w,
            instructions: self.instructions * w,
            gmem_bytes: self.gmem_bytes * w,
            flops: self.flops * w,
        }
    }

    /// Total global-memory transactions.
    pub fn gmem_transactions(&self) -> f64 {
        self.gld_coherent + self.gld_incoherent + self.gst_coherent + self.gst_incoherent
    }
}

impl AddAssign for ProfileCounters {
    fn add_assign(&mut self, o: ProfileCounters) {
        self.gld_coherent += o.gld_coherent;
        self.gld_incoherent += o.gld_incoherent;
        self.gst_coherent += o.gst_coherent;
        self.gst_incoherent += o.gst_incoherent;
        self.gld_request += o.gld_request;
        self.gst_request += o.gst_request;
        self.local_load += o.local_load;
        self.local_store += o.local_store;
        self.smem_load += o.smem_load;
        self.smem_store += o.smem_store;
        self.smem_replays += o.smem_replays;
        self.instructions += o.instructions;
        self.gmem_bytes += o.gmem_bytes;
        self.flops += o.flops;
    }
}

/// Render a count the way the paper's tables do (`127M`, `0.42M`).
pub fn fmt_millions(v: f64) -> String {
    let m = v / 1.0e6;
    if m == 0.0 {
        "0".to_string()
    } else if m < 10.0 {
        format!("{m:.2}M")
    } else {
        format!("{m:.0}M")
    }
}

impl fmt::Display for ProfileCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gld_incoherent  {}", fmt_millions(self.gld_incoherent))?;
        writeln!(f, "gld_coherent    {}", fmt_millions(self.gld_coherent))?;
        writeln!(f, "gst_incoherent  {}", fmt_millions(self.gst_incoherent))?;
        writeln!(f, "gst_coherent    {}", fmt_millions(self.gst_coherent))?;
        writeln!(f, "gld_request     {}", fmt_millions(self.gld_request))?;
        writeln!(f, "gst_request     {}", fmt_millions(self.gst_request))?;
        writeln!(f, "local_load      {}", fmt_millions(self.local_load))?;
        writeln!(f, "local_store     {}", fmt_millions(self.local_store))?;
        write!(f, "instructions    {}", fmt_millions(self.instructions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_and_addition() {
        let mut a = ProfileCounters {
            gld_coherent: 2.0,
            instructions: 10.0,
            ..Default::default()
        };
        let b = a.scaled(3.0);
        assert_eq!(b.gld_coherent, 6.0);
        a += b;
        assert_eq!(a.instructions, 40.0);
        assert_eq!(a.gmem_transactions(), 8.0);
    }

    #[test]
    fn millions_formatting() {
        assert_eq!(fmt_millions(127.0e6), "127M");
        assert_eq!(fmt_millions(0.42e6), "0.42M");
        assert_eq!(fmt_millions(0.0), "0");
    }
}
