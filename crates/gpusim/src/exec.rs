//! Functional (barrier-stepped) kernel executor.
//!
//! Executes a lowered program with real CUDA-like semantics: blocks are
//! independent; threads within a block run in lockstep *segments* delimited
//! by `__syncthreads()`.  Statement subtrees containing no barrier execute
//! per-thread to completion; loops or guards enclosing a barrier advance
//! all threads together (guards must then be uniform — divergent barriers
//! are reported as errors, as on real hardware they deadlock).
//!
//! This is the correctness oracle for *final* kernels, including the
//! cross-thread `binding_triangular` solve that the sequential `oa-loopir`
//! interpreter cannot express.

use oa_loopir::arrays::{AllocMode, MemSpace};
use oa_loopir::expr::{AffineExpr, Predicate};
use oa_loopir::interp::{blank_is_zero, run_map_kernel, Bindings, Buffers, Matrix};
use oa_loopir::scalar::{Access, ScalarExpr};
use oa_loopir::stmt::{stage_src_coords, AssignOp, SharedStage, Stmt};
use oa_loopir::Program;
use std::collections::HashMap;
use std::fmt;

use crate::launch::{extract_launch, LaunchError};

/// Execution errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// Launch extraction failed.
    Launch(LaunchError),
    /// Threads of one block diverged at a barrier-enclosing guard.
    BarrierDivergence(String),
    /// A referenced buffer is missing.
    MissingBuffer(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Launch(e) => write!(f, "launch: {e}"),
            ExecError::BarrierDivergence(m) => write!(f, "barrier divergence: {m}"),
            ExecError::MissingBuffer(m) => write!(f, "missing buffer: {m}"),
        }
    }
}

impl ExecError {
    /// A short stable class label mirroring
    /// [`EvalError::class`](crate::perf::EvalError::class): two engines
    /// that reject a case must reject it with the *same class* for the
    /// differential tests (and the fuzzer) to call the rejection
    /// identical.
    pub fn class(&self) -> &'static str {
        match self {
            ExecError::Launch(LaunchError::NotMapped) => "launch/not-mapped",
            ExecError::Launch(LaunchError::Malformed(_)) => "launch/malformed",
            ExecError::Launch(LaunchError::SizeConstraint { .. }) => "launch/size",
            ExecError::BarrierDivergence(_) => "barrier-divergence",
            ExecError::MissingBuffer(_) => "missing-buffer",
        }
    }
}

impl std::error::Error for ExecError {}

impl From<LaunchError> for ExecError {
    fn from(e: LaunchError) -> Self {
        ExecError::Launch(e)
    }
}

/// Does this subtree contain a barrier or cooperative stage?
fn has_barrier(s: &Stmt) -> bool {
    match s {
        Stmt::Sync | Stmt::Stage(_) => true,
        Stmt::Loop(l) => l.body.iter().any(has_barrier),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => then_body.iter().any(has_barrier) || else_body.iter().any(has_barrier),
        _ => false,
    }
}

/// Run a lowered program on the given buffers with GPU semantics:
/// prologue `GM_map` kernels, blank-zero checks, then the main kernel.
pub fn exec_program(p: &Program, bindings: &Bindings, bufs: &mut Buffers) -> Result<(), ExecError> {
    let resolve = |n: &str| p.resolve(n, bindings);
    for mk in &p.prologues {
        run_map_kernel(mk, bufs, &resolve);
    }
    let mut blank_flags: HashMap<String, bool> = HashMap::new();
    for chk in &p.blank_checks {
        let decl = p
            .array(&chk.array)
            .ok_or_else(|| ExecError::MissingBuffer(chk.array.clone()))?;
        let m = bufs
            .get(&chk.array)
            .ok_or_else(|| ExecError::MissingBuffer(chk.array.clone()))?;
        blank_flags.insert(chk.array.clone(), blank_is_zero(m, decl.fill));
    }

    let launch = extract_launch(p, bindings)?;
    let mut engine = Engine {
        program: p,
        bindings,
        blank_flags,
        smem: HashMap::new(),
        regs: HashMap::new(),
    };
    for by in 0..launch.grid.1 {
        for bx in 0..launch.grid.0 {
            engine.reset_block_state(bufs);
            let threads: Vec<ThreadEnv> = (0..launch.block.1)
                .flat_map(|ty| (0..launch.block.0).map(move |tx| (tx, ty)))
                .map(|(tx, ty)| {
                    let mut env: HashMap<String, i64> =
                        launch.bind_env(bx, by, tx, ty).into_iter().collect();
                    env.insert("__tx".into(), tx);
                    env.insert("__ty".into(), ty);
                    ThreadEnv {
                        vars: env,
                        tid: tx + ty * launch.block.0,
                    }
                })
                .collect();
            engine.lockstep(&launch.inner, &threads, bufs)?;
        }
    }
    Ok(())
}

#[derive(Clone)]
struct ThreadEnv {
    vars: HashMap<String, i64>,
    tid: i64,
}

struct Engine<'a> {
    program: &'a Program,
    bindings: &'a Bindings,
    blank_flags: HashMap<String, bool>,
    /// Per-block shared tiles (reset at block start).
    smem: HashMap<String, Matrix>,
    /// Per-thread register tiles, keyed by (array, tid).
    regs: HashMap<(String, i64), Matrix>,
}

impl<'a> Engine<'a> {
    fn reset_block_state(&mut self, _bufs: &Buffers) {
        self.smem.clear();
        self.regs.clear();
        for a in &self.program.arrays {
            if a.space == MemSpace::Shared {
                let rows = a.rows.as_const().expect("shared dims are constant");
                let cols = a.cols.as_const().expect("shared dims are constant");
                self.smem
                    .insert(a.name.clone(), Matrix::zeros_padded(rows, cols, a.pad));
            }
        }
    }

    fn reg_tile(&mut self, name: &str, tid: i64) -> &mut Matrix {
        if !self.regs.contains_key(&(name.to_string(), tid)) {
            let decl = self.program.array(name).expect("register array declared");
            let rows = decl.rows.as_const().expect("reg dims constant");
            let cols = decl.cols.as_const().expect("reg dims constant");
            self.regs
                .insert((name.to_string(), tid), Matrix::zeros(rows, cols));
        }
        self.regs.get_mut(&(name.to_string(), tid)).unwrap()
    }

    fn eval(&self, e: &AffineExpr, env: &HashMap<String, i64>) -> i64 {
        e.eval(&|n| {
            env.get(n)
                .copied()
                .unwrap_or_else(|| self.program.resolve(n, self.bindings))
        })
    }

    fn eval_pred(&self, pred: &Predicate, env: &HashMap<String, i64>) -> bool {
        let thread0 = env.get("__tx") == Some(&0) && env.get("__ty") == Some(&0);
        let blank = pred
            .blank_zero
            .as_ref()
            .map(|a| *self.blank_flags.get(a).unwrap_or(&false))
            .unwrap_or(false);
        pred.eval(
            &|n| {
                env.get(n)
                    .copied()
                    .unwrap_or_else(|| self.program.resolve(n, self.bindings))
            },
            thread0,
            blank,
        )
    }

    /// Lockstep execution of a statement list by all threads of a block.
    fn lockstep(
        &mut self,
        stmts: &[Stmt],
        threads: &[ThreadEnv],
        bufs: &mut Buffers,
    ) -> Result<(), ExecError> {
        for s in stmts {
            if !has_barrier(s) {
                for t in threads {
                    let mut env = t.vars.clone();
                    self.exec_thread(s, &mut env, t.tid, bufs)?;
                }
                continue;
            }
            match s {
                Stmt::Sync => {} // all threads are here by construction
                Stmt::Stage(st) => self.exec_stage(st, &threads[0].vars, bufs)?,
                Stmt::Loop(l) => {
                    // Barrier-enclosing loop: bounds must be uniform.
                    let lo = self.eval(&l.lower, &threads[0].vars);
                    let hi = self.eval(&l.upper, &threads[0].vars);
                    for t in threads {
                        if self.eval(&l.lower, &t.vars) != lo || self.eval(&l.upper, &t.vars) != hi
                        {
                            return Err(ExecError::BarrierDivergence(format!(
                                "loop {} bounds differ across threads",
                                l.label
                            )));
                        }
                    }
                    let mut iter_threads = threads.to_vec();
                    for v in lo..hi {
                        for t in &mut iter_threads {
                            t.vars.insert(l.var.clone(), v);
                        }
                        self.lockstep(&l.body, &iter_threads, bufs)?;
                    }
                }
                Stmt::If {
                    pred,
                    then_body,
                    else_body,
                } => {
                    let first = self.eval_pred(pred, &threads[0].vars);
                    for t in threads {
                        if self.eval_pred(pred, &t.vars) != first {
                            return Err(ExecError::BarrierDivergence(
                                "guard enclosing a barrier diverges".into(),
                            ));
                        }
                    }
                    let body = if first { then_body } else { else_body };
                    self.lockstep(body, threads, bufs)?;
                }
                _ => unreachable!("has_barrier only flags Sync/Stage/Loop/If"),
            }
        }
        Ok(())
    }

    /// Cooperative staging: semantically a single whole-tile copy per block.
    fn exec_stage(
        &mut self,
        st: &SharedStage,
        block_env: &HashMap<String, i64>,
        bufs: &Buffers,
    ) -> Result<(), ExecError> {
        let r0 = self.eval(&st.src_row0, block_env);
        let c0 = self.eval(&st.src_col0, block_env);
        let src = bufs
            .get(&st.src)
            .ok_or_else(|| ExecError::MissingBuffer(st.src.clone()))?
            .clone();
        for c in 0..st.cols {
            for r in 0..st.rows {
                // Symmetry mode reads blank-side elements from their global
                // mirror (the logical value of a packed symmetric source).
                let (sr, sc) = stage_src_coords(st.mode, st.src_fill, r0 + r, c0 + c);
                let mut env = block_env.clone();
                env.insert("__sr".into(), sr);
                env.insert("__sc".into(), sc);
                let v = if self.eval_pred(&st.guard, &env) {
                    src.get(sr, sc)
                } else {
                    0.0
                };
                let dst = self
                    .smem
                    .get_mut(&st.dst)
                    .ok_or_else(|| ExecError::MissingBuffer(st.dst.clone()))?;
                match st.mode {
                    AllocMode::NoChange | AllocMode::Symmetry => dst.set(r, c, v),
                    AllocMode::Transpose => dst.set(c, r, v),
                }
            }
        }
        Ok(())
    }

    /// Fully sequential execution of a barrier-free subtree by one thread.
    fn exec_thread(
        &mut self,
        s: &Stmt,
        env: &mut HashMap<String, i64>,
        tid: i64,
        bufs: &mut Buffers,
    ) -> Result<(), ExecError> {
        match s {
            Stmt::Loop(l) => {
                let lo = self.eval(&l.lower, env);
                let hi = self.eval(&l.upper, env);
                for v in lo..hi {
                    env.insert(l.var.clone(), v);
                    for inner in &l.body {
                        self.exec_thread(inner, env, tid, bufs)?;
                    }
                }
                env.remove(&l.var);
            }
            Stmt::Assign(a) => {
                let v = self.eval_scalar(&a.rhs, env, tid, bufs)?;
                let r = self.eval(&a.lhs.row, env);
                let c = self.eval(&a.lhs.col, env);
                let old = self.read_elem(&a.lhs.array, r, c, tid, bufs)?;
                let new = match a.op {
                    AssignOp::Assign => v,
                    AssignOp::AddAssign => old + v,
                    AssignOp::SubAssign => old - v,
                };
                self.write_elem(&a.lhs.array, r, c, new, tid, bufs)?;
            }
            Stmt::If {
                pred,
                then_body,
                else_body,
            } => {
                let body = if self.eval_pred(pred, env) {
                    then_body
                } else {
                    else_body
                };
                for inner in body {
                    self.exec_thread(inner, env, tid, bufs)?;
                }
            }
            Stmt::RegLoad(rt) | Stmt::RegStore(rt) => {
                let load = matches!(s, Stmt::RegLoad(_));
                let r0 = self.eval(&rt.row0, env);
                let c0 = self.eval(&rt.col0, env);
                for c in 0..rt.cols {
                    for r in 0..rt.rows {
                        let gr = r0 + r * rt.row_stride;
                        let gc = c0 + c * rt.col_stride;
                        env.insert("__gr".into(), gr);
                        env.insert("__gc".into(), gc);
                        let ok = self.eval_pred(&rt.guard, env);
                        env.remove("__gr");
                        env.remove("__gc");
                        if !ok {
                            continue;
                        }
                        if load {
                            let v = bufs
                                .get(&rt.global)
                                .ok_or_else(|| ExecError::MissingBuffer(rt.global.clone()))?
                                .get(gr, gc);
                            self.reg_tile(&rt.reg, tid).set(r, c, v);
                        } else {
                            let v = self.reg_tile(&rt.reg, tid).get(r, c);
                            bufs.get_mut(&rt.global)
                                .ok_or_else(|| ExecError::MissingBuffer(rt.global.clone()))?
                                .set(gr, gc, v);
                        }
                    }
                }
            }
            Stmt::RegZero(rt) => {
                self.reg_tile(&rt.reg, tid).data.fill(0.0);
            }
            Stmt::Sync | Stmt::Stage(_) => {
                unreachable!("barrier statements handled in lockstep")
            }
        }
        Ok(())
    }

    fn space_of(&self, name: &str) -> MemSpace {
        self.program
            .array(name)
            .map(|d| d.space)
            .unwrap_or(MemSpace::Global)
    }

    fn read_elem(
        &mut self,
        name: &str,
        r: i64,
        c: i64,
        tid: i64,
        bufs: &Buffers,
    ) -> Result<f32, ExecError> {
        Ok(match self.space_of(name) {
            MemSpace::Global => bufs
                .get(name)
                .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))?
                .get(r, c),
            MemSpace::Shared => self
                .smem
                .get(name)
                .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))?
                .get(r, c),
            MemSpace::Reg => self.reg_tile(name, tid).get(r, c),
        })
    }

    fn write_elem(
        &mut self,
        name: &str,
        r: i64,
        c: i64,
        v: f32,
        tid: i64,
        bufs: &mut Buffers,
    ) -> Result<(), ExecError> {
        match self.space_of(name) {
            MemSpace::Global => bufs
                .get_mut(name)
                .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))?
                .set(r, c, v),
            MemSpace::Shared => self
                .smem
                .get_mut(name)
                .ok_or_else(|| ExecError::MissingBuffer(name.to_string()))?
                .set(r, c, v),
            MemSpace::Reg => self.reg_tile(name, tid).set(r, c, v),
        }
        Ok(())
    }

    fn eval_scalar(
        &mut self,
        e: &ScalarExpr,
        env: &HashMap<String, i64>,
        tid: i64,
        bufs: &Buffers,
    ) -> Result<f32, ExecError> {
        Ok(match e {
            ScalarExpr::Load(acc) => self.read_access(acc, env, tid, bufs)?,
            ScalarExpr::Lit(v) => *v,
            ScalarExpr::Param(p) => *self
                .bindings
                .scalars
                .get(p)
                .unwrap_or_else(|| panic!("unbound scalar parameter {p}")),
            ScalarExpr::Bin(op, l, r) => {
                let a = self.eval_scalar(l, env, tid, bufs)?;
                let b = self.eval_scalar(r, env, tid, bufs)?;
                op.apply(a, b)
            }
        })
    }

    fn read_access(
        &mut self,
        acc: &Access,
        env: &HashMap<String, i64>,
        tid: i64,
        bufs: &Buffers,
    ) -> Result<f32, ExecError> {
        let r = self.eval(&acc.row, env);
        let c = self.eval(&acc.col, env);
        self.read_elem(&acc.array, r, c, tid, bufs)
    }
}

/// Run a program on freshly allocated buffers (pseudo-random global data)
/// and return them — the GPU-side analogue of `interp::run_fresh`.
///
/// Uses the fast path ([`crate::engine::exec_program_fast`] —
/// `OA_EXEC_ENGINE`-selectable, bytecode by default); results are
/// bit-identical to the tree-walking oracle, which remains available as
/// [`run_fresh_gpu_ref`].
pub fn run_fresh_gpu(p: &Program, bindings: &Bindings, seed: u64) -> Result<Buffers, ExecError> {
    let mut bufs = oa_loopir::interp::alloc_buffers(p, bindings, seed);
    crate::engine::exec_program_fast(p, bindings, &mut bufs)?;
    Ok(bufs)
}

/// [`run_fresh_gpu`] on the tree-walking reference engine — the oracle
/// side of the differential tests.
pub fn run_fresh_gpu_ref(
    p: &Program,
    bindings: &Bindings,
    seed: u64,
) -> Result<Buffers, ExecError> {
    let mut bufs = oa_loopir::interp::alloc_buffers(p, bindings, seed);
    exec_program(p, bindings, &mut bufs)?;
    Ok(bufs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_loopir::builder::{gemm_nn_like, trmm_ll_like};
    use oa_loopir::interp::run_fresh;
    use oa_loopir::transform::{loop_tiling, reg_alloc, sm_alloc, thread_grouping, TileParams};

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    /// Compare GPU execution of a transformed program against the
    /// sequential interpretation of its reference.
    fn assert_gpu_matches(reference: &Program, transformed: &Program, n: i64, seed: u64, tol: f32) {
        let b = Bindings::square(n);
        let ref_out = run_fresh(reference, &b, seed);
        let gpu_out = run_fresh_gpu(transformed, &b, seed).expect("exec");
        for a in reference.assignments() {
            let name = &a.lhs.array;
            if reference
                .array(name)
                .map(|d| d.space == MemSpace::Global)
                .unwrap_or(false)
            {
                let d = ref_out[name].max_abs_diff(&gpu_out[name]);
                assert!(d <= tol, "array {name} differs by {d}");
            }
        }
    }

    #[test]
    fn gemm_full_scheme_on_gpu() {
        let reference = gemm_nn_like("g");
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        reg_alloc(&mut p, "C").unwrap();
        assert_gpu_matches(&reference, &p, 16, 3, 1e-4);
        assert_gpu_matches(&reference, &p, 32, 7, 1e-4);
    }

    #[test]
    fn trmm_scheme_on_gpu() {
        let reference = trmm_ll_like("t");
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        oa_loopir::transform::peel_triangular(&mut p, "A").unwrap();
        assert_gpu_matches(&reference, &p, 16, 5, 1e-4);
    }

    #[test]
    fn trsm_with_binding_on_gpu() {
        use oa_loopir::scalar::{Access, BinOp, ScalarExpr};
        use oa_loopir::stmt::{AssignOp, AssignStmt, Loop};
        // Build the TRSM-like solver program.
        let mut reference = gemm_nn_like("trsm");
        reference.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("B", "i", "j"),
                AssignOp::SubAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "i", "k")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            vec![
                Stmt::Loop(Box::new(lk)),
                Stmt::Assign(AssignStmt::new(
                    Access::idx("B", "i", "j"),
                    AssignOp::Assign,
                    ScalarExpr::Bin(
                        BinOp::Div,
                        Box::new(ScalarExpr::load(Access::idx("B", "i", "j"))),
                        Box::new(ScalarExpr::load(Access::idx("A", "i", "i"))),
                    ),
                )),
            ]
        });
        let mut p = reference.clone();
        // Solver distribution: one column per thread (TX == thr_j).
        let sp = TileParams {
            ty: 8,
            tx: 4,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", sp).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        oa_loopir::transform::binding_triangular(&mut p, "A", 0).unwrap();
        // The bound version communicates across threads: only the GPU
        // executor gets this right.
        assert_gpu_matches(&reference, &p, 16, 11, 2e-3);
        assert_gpu_matches(&reference, &p, 32, 13, 2e-3);
    }

    #[test]
    fn grouping_only_runs_on_gpu() {
        let reference = gemm_nn_like("g");
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        assert_gpu_matches(&reference, &p, 19, 23, 1e-4);
    }

    #[test]
    fn unmapped_program_fails_launch() {
        let p = gemm_nn_like("g");
        let err = run_fresh_gpu(&p, &Bindings::square(8), 1).unwrap_err();
        assert!(matches!(err, ExecError::Launch(_)));
    }
}
