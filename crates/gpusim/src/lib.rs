//! # oa-gpusim — the simulated GPU substrate
//!
//! No NVIDIA hardware is available to this reproduction, so the three
//! evaluation platforms of the paper (GeForce 9800, GTX 285, Fermi Tesla
//! C2050) are modeled by this crate:
//!
//! * [`device`] — architectural parameters of the three GPUs;
//! * [`launch`] — lowering: launch-configuration extraction from a
//!   transformed loop nest (the nvcc stand-in);
//! * [`exec`] — a functional, barrier-stepped executor used as the
//!   correctness oracle for final kernels;
//! * [`tape`] — the same semantics compiled once into a slot-resolved
//!   kernel tape and executed block-parallel with rayon;
//! * [`bytecode`] / [`vexec`] — the tape lowered to an optimized flat
//!   bytecode (constant folding, invariant hoisting, strength reduction,
//!   FMA fusion) and run on a lane-vectorized interpreter;
//! * [`native`] — the fastest path: the bytecode's lane-affine inner
//!   loop nests pattern-matched at compile time and executed through
//!   specialized host SIMD microkernels, interpreter fallback elsewhere;
//! * [`engine`] — selection among the four engines
//!   (`OA_EXEC_ENGINE=oracle|tape|bytecode|native`, default bytecode);
//! * [`dispatch`] — batched-execution building blocks: compile-once
//!   programs, the bounded LRU program store, and the shared-queue worker
//!   pool behind `oa_core::dispatch`'s routine registry;
//! * [`events`] — per-warp coalescing and bank-conflict classification;
//! * [`perf`] — the sampled performance model producing GFLOPS estimates
//!   and `cuda_profile`-style counters ([`profile`]).
//!
//! The design principle: the counters of Tables I–III must *emerge* from
//! the address streams of the generated kernels, so both the OA-generated
//! kernels and the CUBLAS-like baselines run through exactly the same
//! machinery.

#![warn(missing_docs)]

pub mod bytecode;
pub mod cudagen;
pub mod device;
pub mod dispatch;
pub mod engine;
pub mod events;
pub mod exec;
pub mod launch;
pub mod native;
pub mod perf;
pub mod profile;
pub mod tape;
pub mod vexec;

pub use bytecode::ByteCode;
pub use cudagen::to_cuda_source;
pub use device::{ComputeCapability, DeviceSpec};
pub use dispatch::{run_jobs, Coalescer, CompiledProgram, Lru, LruStats, Pool};
pub use engine::{
    exec_all_engines, exec_program_fast, exec_program_on, select as select_engine, ExecEngine,
};
pub use exec::{exec_program, run_fresh_gpu, run_fresh_gpu_ref, ExecError};
pub use launch::{extract_launch, Launch, LaunchError};
pub use native::{NativeCoverage, NativeProgram, NativeReject};
pub use perf::{evaluate, EvalError, PerfReport};
pub use profile::ProfileCounters;
pub use tape::Tape;
