//! Kernel-launch extraction — the "lowering" stage standing in for nvcc.
//!
//! A transformed [`Program`] has a prefix chain of mapped loops
//! (`BlockY`/`BlockX` outermost, then `ThreadX`/`ThreadY`).  This module
//! derives the CUDA launch configuration from that chain: grid and block
//! dimensions, the binding of each mapped loop variable to a builtin index,
//! and the per-thread body.

use oa_loopir::interp::Bindings;
use oa_loopir::stmt::{LoopMapping, Stmt};
use oa_loopir::transform::GroupingStyle;
use oa_loopir::Program;
use std::fmt;

/// Which CUDA builtin a mapped loop variable binds to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Builtin {
    /// `blockIdx.x`
    BlockX,
    /// `blockIdx.y`
    BlockY,
    /// `threadIdx.x`
    ThreadX,
    /// `threadIdx.y`
    ThreadY,
}

/// An extracted launch configuration.
#[derive(Clone, Debug)]
pub struct Launch {
    /// Grid dimensions `(gx, gy)`.
    pub grid: (i64, i64),
    /// Block dimensions `(bx, by)` in threads.
    pub block: (i64, i64),
    /// Mapped loop variables and their builtins, outermost first.
    pub binds: Vec<(String, Builtin)>,
    /// The per-thread body (the innermost mapped loop's body).
    pub inner: Vec<Stmt>,
}

/// Lowering errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// The program has no mapped loops (thread_grouping never ran).
    NotMapped,
    /// Mapped loops are malformed (non-zero lower bound, duplicated axis,
    /// non-constant thread extent, interleaved unmapped loops…).
    Malformed(String),
    /// A problem dimension violates a launch-time divisibility constraint
    /// of the kernel shape (e.g. the solver schemes' column tile: every
    /// thread of a block must reach the cooperative barriers, so the tile
    /// must divide the dimension exactly).
    SizeConstraint {
        /// The offending size parameter (`N`, `M`…).
        param: String,
        /// Its bound value.
        size: i64,
        /// The required divisor (the column-tile width).
        multiple: i64,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::NotMapped => write!(f, "program has no block/thread-mapped loops"),
            LaunchError::Malformed(m) => write!(f, "malformed mapping: {m}"),
            LaunchError::SizeConstraint {
                param,
                size,
                multiple,
            } => write!(
                f,
                "size constraint: dimension {param} = {size} must be a multiple of \
                 the {multiple}-wide column tile (barrier-synchronized solver block)"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Does this subtree contain a cooperative barrier (`__syncthreads()` or a
/// shared-memory stage, which barriers on both sides)?
fn contains_barrier(s: &Stmt) -> bool {
    match s {
        Stmt::Sync | Stmt::Stage(_) => true,
        Stmt::Loop(l) => l.body.iter().any(contains_barrier),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => then_body.iter().any(contains_barrier) || else_body.iter().any(contains_barrier),
        Stmt::Assign(_) | Stmt::RegLoad(_) | Stmt::RegZero(_) | Stmt::RegStore(_) => false,
    }
}

/// Extract the launch configuration of a transformed program under
/// concrete size bindings.
///
/// Besides deriving grid/block shapes this is where launch-time *size
/// constraints* are enforced: a `Solver1D` kernel whose per-thread body
/// contains a barrier guards the whole body behind `j < N`, so the last
/// block's guard is non-uniform — and the barrier diverges — whenever the
/// column tile does not divide `N`.  That case is rejected here, by every
/// engine identically, as [`LaunchError::SizeConstraint`] naming the
/// offending dimension, instead of surfacing later as a generic runtime
/// failure.
pub fn extract_launch(p: &Program, bindings: &Bindings) -> Result<Launch, LaunchError> {
    let mut grid = (1i64, 1i64);
    let mut block = (1i64, 1i64);
    let mut binds = Vec::new();
    let mut cursor: &[Stmt] = &p.body;
    let mut block_tile: Option<(String, i64)> = None;

    loop {
        // The chain must be a single mapped loop at each level.
        let lp = match cursor {
            [Stmt::Loop(l)] if l.mapping != LoopMapping::Seq => l,
            _ => break,
        };
        if lp.lower.as_const() != Some(0) {
            return Err(LaunchError::Malformed(format!(
                "mapped loop {} must be zero-based",
                lp.label
            )));
        }
        let extent = lp
            .upper
            .vars()
            .next()
            .map(|_| {
                // Symbolic: resolve via derived params / bindings.
                lp.upper.eval(&|n| p.resolve(n, bindings))
            })
            .or(lp.upper.as_const())
            .ok_or_else(|| LaunchError::Malformed(format!("loop {} extent", lp.label)))?;
        if extent <= 0 {
            return Err(LaunchError::Malformed(format!(
                "loop {} has non-positive extent {extent}",
                lp.label
            )));
        }
        let builtin = match lp.mapping {
            LoopMapping::BlockX => {
                grid.0 = extent;
                // Remember which size parameter this block loop tiles
                // (its upper bound is a derived ceil-div parameter).
                if let Some(v) = lp.upper.vars().next() {
                    block_tile = p
                        .derived
                        .iter()
                        .find(|d| d.name == v)
                        .map(|d| (d.base.clone(), d.div));
                }
                Builtin::BlockX
            }
            LoopMapping::BlockY => {
                grid.1 = extent;
                Builtin::BlockY
            }
            LoopMapping::ThreadX => {
                block.0 = extent;
                Builtin::ThreadX
            }
            LoopMapping::ThreadY => {
                block.1 = extent;
                Builtin::ThreadY
            }
            LoopMapping::Seq => unreachable!(),
        };
        if binds.iter().any(|(_, b)| *b == builtin) {
            return Err(LaunchError::Malformed(format!(
                "axis {builtin:?} mapped twice (loop {})",
                lp.label
            )));
        }
        binds.push((lp.var.clone(), builtin));
        cursor = &lp.body;
    }

    if binds.is_empty() {
        return Err(LaunchError::NotMapped);
    }
    // Solver kernels hide their row-of-threads guard (`j < N`) *around*
    // the whole per-thread body; if that body barriers, the guard must be
    // block-uniform, i.e. the column tile must divide the dimension.
    if p.tiling
        .as_ref()
        .is_some_and(|t| t.style == GroupingStyle::Solver1D)
        && cursor.iter().any(contains_barrier)
    {
        if let Some((param, multiple)) = &block_tile {
            let size = bindings.size(param);
            if size % multiple != 0 {
                return Err(LaunchError::SizeConstraint {
                    param: param.clone(),
                    size,
                    multiple: *multiple,
                });
            }
        }
    }
    Ok(Launch {
        grid,
        block,
        binds,
        inner: cursor.to_vec(),
    })
}

impl Launch {
    /// Threads per block.
    pub fn threads_per_block(&self) -> i64 {
        self.block.0 * self.block.1
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> i64 {
        self.grid.0 * self.grid.1
    }

    /// The value each mapped variable takes for a given (block, thread).
    pub fn bind_env(&self, bx: i64, by: i64, tx: i64, ty: i64) -> Vec<(String, i64)> {
        self.binds
            .iter()
            .map(|(var, b)| {
                let v = match b {
                    Builtin::BlockX => bx,
                    Builtin::BlockY => by,
                    Builtin::ThreadX => tx,
                    Builtin::ThreadY => ty,
                };
                (var.clone(), v)
            })
            .collect()
    }
}

/// Estimate the per-thread register footprint of a program: a fixed base
/// for addresses/indices plus the register tiles `Reg_alloc` introduced and
/// temporaries proportional to the unrolled accumulator width.
pub fn estimate_regs_per_thread(p: &Program) -> u32 {
    let mut regs = 14u32;
    for a in &p.arrays {
        if a.space == oa_loopir::MemSpace::Reg {
            let rows = a.rows.as_const().unwrap_or(1) as u32;
            let cols = a.cols.as_const().unwrap_or(1) as u32;
            regs += rows * cols + rows.max(cols); // tile + operand staging
        }
    }
    regs
}

/// Shared-memory bytes per block: the padded footprint of every shared
/// array (f32 elements).
pub fn smem_bytes_per_block(p: &Program) -> u32 {
    let mut bytes = 0u32;
    for a in &p.arrays {
        if a.space == oa_loopir::MemSpace::Shared {
            let ld = a.rows.as_const().unwrap_or(0) + a.pad;
            let cols = a.cols.as_const().unwrap_or(0);
            bytes += (ld * cols) as u32 * 4;
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_loopir::builder::gemm_nn_like;
    use oa_loopir::transform::{loop_tiling, thread_grouping, TileParams};

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    #[test]
    fn gemm_launch_shape() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let launch = extract_launch(&p, &Bindings::square(32)).unwrap();
        // 32/8 = 4 blocks each way; threads 4x4.
        assert_eq!(launch.grid, (4, 4));
        assert_eq!(launch.block, (4, 4));
        assert_eq!(launch.threads_per_block(), 16);
        assert_eq!(launch.total_blocks(), 16);
        // Binds: ib->BlockY, jb->BlockX, it->ThreadX, jt->ThreadY.
        assert_eq!(launch.binds.len(), 4);
        let env = launch.bind_env(1, 2, 3, 0);
        assert!(env.contains(&("ib".to_string(), 2)));
        assert!(env.contains(&("jb".to_string(), 1)));
        assert!(env.contains(&("it".to_string(), 3)));
        assert!(env.contains(&("jt".to_string(), 0)));
    }

    #[test]
    fn unmapped_program_rejected() {
        let p = gemm_nn_like("g");
        assert_eq!(
            extract_launch(&p, &Bindings::square(8)).unwrap_err(),
            LaunchError::NotMapped
        );
    }

    #[test]
    fn ragged_sizes_round_up() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        let launch = extract_launch(&p, &Bindings::square(13)).unwrap();
        assert_eq!(launch.grid, (2, 2)); // ceil(13/8)
    }

    #[test]
    fn solver_size_constraint_is_classified_and_names_the_dimension() {
        use oa_loopir::expr::AffineExpr;
        use oa_loopir::scalar::{Access, ScalarExpr};
        use oa_loopir::stmt::{AssignOp, AssignStmt, Loop};

        // A TRSM-like dependent nest: Lk's bound depends on i, so
        // thread_grouping picks the Solver1D distribution.
        let mut p = gemm_nn_like("trsm-like");
        p.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("B", "i", "j"),
                AssignOp::SubAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "i", "k")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            vec![Stmt::Loop(Box::new(lk))]
        });
        let solver_params = TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 8,
            kb: 4,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", solver_params).unwrap();
        // Give the per-thread body a cooperative barrier (as
        // binding_triangular / SM_alloc would).
        p.rewrite_loop("Ljj", &mut |mut l: Loop| {
            l.body.push(Stmt::Sync);
            vec![Stmt::Loop(Box::new(l))]
        });

        // Tile-multiple size: launches fine.
        assert!(extract_launch(&p, &Bindings::square(32)).is_ok());

        // Ragged size: a *classified* rejection naming the dimension.
        let err = extract_launch(&p, &Bindings::square(29)).unwrap_err();
        assert_eq!(
            err,
            LaunchError::SizeConstraint {
                param: "N".into(),
                size: 29,
                multiple: 8,
            }
        );
        assert_eq!(
            err.to_string(),
            "size constraint: dimension N = 29 must be a multiple of the 8-wide \
             column tile (barrier-synchronized solver block)"
        );
        // And the perf model buckets it under its own failure class.
        assert_eq!(crate::perf::EvalError::Launch(err).class(), "launch/size");
    }

    #[test]
    fn barrier_free_solver_body_keeps_ragged_sizes() {
        use oa_loopir::expr::AffineExpr;
        use oa_loopir::scalar::{Access, ScalarExpr};
        use oa_loopir::stmt::{AssignOp, AssignStmt, Loop};

        let mut p = gemm_nn_like("trsm-like");
        p.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("B", "i", "j"),
                AssignOp::SubAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "i", "k")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            vec![Stmt::Loop(Box::new(lk))]
        });
        let solver_params = TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 8,
            kb: 4,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", solver_params).unwrap();
        // No barrier in the body: the row guard handles ragged sizes.
        let launch = extract_launch(&p, &Bindings::square(29)).unwrap();
        assert_eq!(launch.grid.0, 4); // ceil(29/8)
    }

    #[test]
    fn resource_estimates() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        oa_loopir::transform::sm_alloc(&mut p, "B", oa_loopir::AllocMode::Transpose).unwrap();
        oa_loopir::transform::reg_alloc(&mut p, "C").unwrap();
        // sB is 8x4 unpadded -> 128 bytes.
        assert_eq!(smem_bytes_per_block(&p), 8 * 4 * 4);
        // rC is 2x2 -> 14 + 4 + 2 = 20.
        assert_eq!(estimate_regs_per_thread(&p), 20);
    }
}
