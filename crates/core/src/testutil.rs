//! Shared deterministic test helpers.
//!
//! The repo's property and dispatch suites all need the same two things:
//! a seedable generator whose sequences are stable forever (golden
//! digests depend on them) and representative mixed-routine request
//! batches.  The generator is the MMIX [`Lcg`] that also drives
//! `Matrix::fill_pseudo` — re-exported here so tests stop carrying
//! copy-pasted constants.

use crate::dispatch::Request;
use oa_blas3::types::RoutineId;
pub use oa_loopir::interp::Lcg;

/// A deterministic mixed batch: `count` requests cycling through every
/// routine in the catalog with varied sizes and seeds drawn from `seed`.
///
/// Same `(count, seed)` → same batch, on any machine — the concurrency
/// suite replays one batch across thread counts and submission orders
/// and demands identical outcomes.
///
/// The triangular solvers only draw tile-multiple sizes: the generated
/// TRSM kernels serialize along their 64-wide column tile and reject
/// other sizes at launch (classified `launch/size` constraint naming the
/// offending dimension), so arbitrary sizes would make every batch carry
/// the same known failures.
pub fn mixed_requests(count: usize, seed: u64) -> Vec<Request> {
    let all = RoutineId::all24();
    let sizes = [48, 64, 80, 96];
    let solver_sizes = [64, 128];
    let mut g = Lcg::new(seed);
    (0..count)
        .map(|i| {
            let routine = all[i % all.len()];
            let n = if matches!(routine, RoutineId::Trsm(..)) {
                solver_sizes[g.range(0, solver_sizes.len() as i64) as usize]
            } else {
                sizes[g.range(0, sizes.len() as i64) as usize]
            };
            Request {
                routine,
                n,
                seed: g.next(),
                zero_blanks: true,
                tenant: None,
            }
        })
        .collect()
}

/// The tuning-cache file the dispatch test binaries share, under the
/// system temp directory.  The cache's lock file makes concurrent test
/// processes safe, and sharing it means the 24-routine sweep runs once
/// per machine instead of once per binary.
pub fn shared_tune_cache_path() -> std::path::PathBuf {
    std::env::temp_dir().join("oa-dispatch-tests-cache-v1.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_sequences_are_stable() {
        // Golden values: the MMIX LCG with the premixed seed.  These pin
        // the exact sequences `fill_pseudo` and the test generators
        // produce — changing them invalidates every golden digest.
        let mut g = Lcg::new(0);
        assert_eq!(g.next(), 59561395757566);
        let mut g = Lcg::new(42);
        let first = g.next();
        let mut again = Lcg::new(42);
        assert_eq!(again.next(), first);

        let mut g = Lcg::new(7);
        for _ in 0..100 {
            let v = g.range(3, 9);
            assert!((3..9).contains(&v));
            let f = g.unit_f32();
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mixed_requests_is_deterministic_and_covers_the_catalog() {
        let a = mixed_requests(48, 0xBEEF);
        let b = mixed_requests(48, 0xBEEF);
        assert_eq!(a, b);
        assert_ne!(a, mixed_requests(48, 0xBEE0));
        let routines: std::collections::HashSet<String> =
            a.iter().map(|r| r.routine.name()).collect();
        assert_eq!(routines.len(), RoutineId::all24().len());
    }
}
