//! # oa-core — the OA framework
//!
//! The public face of this reproduction of *"Automatic Library Generation
//! for BLAS3 on GPUs"* (IPPS 2011): a script-controlled compilation
//! framework that tunes BLAS3 routines for (simulated) NVIDIA GPUs by
//! reusing the GEMM-NN optimization scheme through adaptors.
//!
//! ```no_run
//! use oa_core::{OaFramework, RoutineId, Trans};
//! use oa_gpusim::DeviceSpec;
//!
//! let oa = OaFramework::new(DeviceSpec::gtx285());
//! let tuned = oa.tune(RoutineId::Gemm(Trans::N, Trans::N), 4096).unwrap();
//! println!("best script:\n{}", tuned.script);
//! println!("{:.0} GFLOPS (model)", tuned.report.gflops);
//! ```
//!
//! The pipeline underneath: routine source ([`oa_blas3::routines`]) →
//! composer ([`oa_composer`]) mixes the Fig. 3 GEMM script with the
//! routine's adaptor(s) → EPOD translator ([`oa_epod`]) applies each
//! generated script over the loop IR ([`oa_loopir`]) → the search
//! ([`oa_autotune`]) sweeps variants × tile parameters on the simulator's
//! performance model ([`oa_gpusim`]) and the best performer wins.

#![warn(missing_docs)]

pub mod dag;
pub mod dispatch;
pub mod serve;
pub mod testutil;
pub mod trace;

pub use oa_adl as adl;
pub use oa_autotune as autotune;
pub use oa_blas3 as blas3;
pub use oa_composer as composer;
pub use oa_epod as epod;
pub use oa_fuzz as fuzz;
pub use oa_gpusim as gpusim;
pub use oa_loopir as loopir;

pub use dag::{admit_dag, DagOutcome, DagRequest, DagStatus};
pub use dispatch::{BatchReport, Registry, Request, RequestOutcome, RequestStatus};
pub use oa_autotune::{
    CacheIssue, FailureTable, TuneCache, TuneError, TuneEvent, TunedKernel, TunedRecord,
};
pub use oa_blas3::types::{RoutineId, Side, Trans, Uplo};
pub use oa_gpusim::{DeviceSpec, PerfReport};
pub use serve::{serve_stream, spawn_server, Listener, ServeConfig, Server};
pub use trace::TraceMode;

use oa_loopir::interp::Bindings;

/// The OA framework bound to one device.
pub struct OaFramework {
    /// The target (simulated) GPU.
    pub device: DeviceSpec,
}

/// A routine measurement triple: OA vs. the library baselines.
#[derive(Clone, Debug)]
pub struct RoutineComparison {
    /// The routine.
    pub routine: RoutineId,
    /// Problem size.
    pub n: i64,
    /// OA's tuned result.
    pub oa: PerfReport,
    /// The CUBLAS-3.2-like baseline.
    pub cublas: PerfReport,
    /// The MAGMA-v0.2-like baseline, where MAGMA had the routine.
    pub magma: Option<PerfReport>,
    /// The winning EPOD script.
    pub script: oa_epod::Script,
}

impl RoutineComparison {
    /// OA speedup over the CUBLAS-like baseline.
    pub fn speedup(&self) -> f64 {
        self.oa.gflops / self.cublas.gflops
    }
}

impl OaFramework {
    /// Bind the framework to a device.
    pub fn new(device: DeviceSpec) -> Self {
        Self { device }
    }

    /// Tune one routine at problem size `n` (composer + search).
    pub fn tune(&self, r: RoutineId, n: i64) -> Result<TunedKernel, TuneError> {
        oa_autotune::tune(r, &self.device, n)
    }

    /// [`OaFramework::tune`] with a trace observer: the tuner reports one
    /// span per pipeline stage and one terminal outcome per candidate
    /// (render them with [`trace::stderr_observer`] or any callback).
    pub fn tune_observed(
        &self,
        r: RoutineId,
        n: i64,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> Result<TunedKernel, TuneError> {
        oa_autotune::tune_observed(r, &self.device, n, obs)
    }

    /// Evaluate the CUBLAS-like baseline.
    pub fn cublas_baseline(&self, r: RoutineId, n: i64) -> PerfReport {
        oa_autotune::baseline_perf(r, &self.device, n)
    }

    /// Evaluate the MAGMA-like baseline (GEMM/TRSM only).
    pub fn magma_baseline(&self, r: RoutineId, n: i64) -> Option<PerfReport> {
        oa_autotune::magma_perf(r, &self.device, n)
    }

    /// Tune + measure baselines for one routine.
    pub fn compare(&self, r: RoutineId, n: i64) -> Result<RoutineComparison, TuneError> {
        let tuned = self.tune(r, n)?;
        Ok(RoutineComparison {
            routine: r,
            n,
            cublas: self.cublas_baseline(r, n),
            magma: self.magma_baseline(r, n),
            script: tuned.script.clone(),
            oa: tuned.report,
        })
    }

    /// Re-evaluate a cached tuning record at another problem size
    /// (used by the Fig. 13 scaling study).
    pub fn evaluate_record(
        &self,
        rec: &TunedRecord,
        r: RoutineId,
        n: i64,
    ) -> Result<PerfReport, String> {
        let src = oa_blas3::routines::source(r);
        let script = oa_epod::parse_script(&rec.script).map_err(|e| e.to_string())?;
        let outcome = oa_epod::translator::apply_lenient(&src, &script, rec.tile_params())
            .map_err(|e| e.to_string())?;
        oa_gpusim::perf::evaluate(
            &outcome.program,
            &Bindings::square(n),
            &self.device,
            r.flops(n),
            true,
        )
        .map_err(|e| e.to_string())
    }

    /// Verify a tuned kernel against the CPU reference on the functional
    /// executor at a small size; returns the max element error.
    pub fn verify(&self, t: &TunedKernel, n: i64, seed: u64) -> Result<f32, String> {
        let rep = oa_blas3::verify::verify_against_reference(t.routine, &t.program, n, seed, true)
            .map_err(|e| e.to_string())?;
        Ok(rep.max_abs_diff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_gemm_tt_tuned_and_verified() {
        let oa = OaFramework::new(DeviceSpec::geforce_9800());
        let t = oa.tune(RoutineId::Gemm(Trans::T, Trans::T), 512).unwrap();
        // Functional verification at a tile-multiple size.
        let err = oa.verify(&t, 64, 0x5EED).unwrap();
        assert!(err < 2e-3, "GEMM-TT tuned kernel wrong by {err}");
    }

    #[test]
    fn comparison_includes_magma_only_for_gemm_trsm() {
        let oa = OaFramework::new(DeviceSpec::gtx285());
        let c = oa
            .compare(RoutineId::Gemm(Trans::N, Trans::N), 512)
            .unwrap();
        assert!(c.magma.is_some());
        assert!(c.speedup() > 0.5);
        let s = oa
            .compare(RoutineId::Symm(Side::Left, Uplo::Lower), 512)
            .unwrap();
        assert!(s.magma.is_none());
    }
}
