//! Expression-DAG requests: schema, admission, and registry execution.
//!
//! A JSONL request whose top level carries a `"dag"` array names a small
//! expression DAG — each node a routine call whose operands may reference
//! an **earlier** node's output with `"@id"`:
//!
//! ```json
//! {"dag": [{"id": "mm", "routine": "GEMM-NN", "a": "A", "b": "B", "c": "C"},
//!          {"id": "sum", "routine": "ADD", "a": "@mm", "b": "E"}],
//!  "n": 64, "seed": 7, "tenant": "team-a", "fuse": true}
//! ```
//!
//! References are backward-only by construction, so the schema cannot
//! even spell a cycle — a self or forward reference is rejected at
//! admission as `admission/dag-cycle`, an unknown id as
//! `admission/dag-ref`, and structural violations (missing/duplicate
//! ids, empty or oversized DAGs, operands a routine does not take) as
//! `admission/dag`.  Solver size constraints apply to **every** node,
//! intermediates included (`admission/size-constraint`), before any
//! planning or tuning is spent.
//!
//! Execution goes through [`Registry::run_dag_observed`]: the fusion
//! planner ([`oa_autotune::fuse`]) pairs legal producer→consumer edges,
//! the tuned fused programs are resolved through the registry's
//! DAG-shape-keyed plan cache, and the whole DAG executes as **one
//! unit** (a DAG request is never split across scheduler batches).

use crate::dispatch::{solver_tile, Registry};
use oa_autotune::fuse::{DagNode, FuseEnv, Operand, ResolveMode};
use oa_autotune::json::Json;
use oa_autotune::TuneEvent;
use oa_blas3::types::{RoutineId, Trans};
use std::collections::BTreeMap;
use std::time::Instant;

/// Largest DAG a request may carry; beyond this the request is rejected
/// at admission (`admission/dag`) — the planner is linear but the serve
/// layer promises bounded per-request work.
pub const MAX_DAG_NODES: usize = 8;

/// One parsed DAG request.
#[derive(Clone, Debug, PartialEq)]
pub struct DagRequest {
    /// The nodes, in declaration order (references point backward).
    pub nodes: Vec<DagNode>,
    /// Square problem size shared by every node.
    pub n: i64,
    /// Input-generation seed (external buffers derive from it by name).
    pub seed: u64,
    /// The submitting tenant (scheduling metadata, result-invariant).
    pub tenant: Option<String>,
    /// Whether the planner may fuse legal edges (`false` forces the
    /// sequenced plan — the differential baseline).
    pub fuse: bool,
}

/// A structured DAG rejection: stable class plus human-readable reason.
#[derive(Clone, Debug, PartialEq)]
pub struct DagError {
    /// Stable failure class (`admission/dag`, `admission/dag-ref`,
    /// `admission/dag-cycle`, `admission/size`,
    /// `admission/size-constraint`).
    pub class: &'static str,
    /// Human-readable cause.
    pub reason: String,
}

fn dag_err(class: &'static str, reason: impl Into<String>) -> DagError {
    DagError {
        class,
        reason: reason.into(),
    }
}

impl DagRequest {
    /// The tenant this request bills to.
    pub fn tenant_name(&self) -> &str {
        self.tenant.as_deref().unwrap_or("default")
    }

    /// Canonical shape of the DAG — the plan-cache / coalescing key.
    pub fn shape(&self) -> String {
        oa_autotune::fuse::shape_key(&self.nodes)
    }

    /// Parse a JSONL DAG request (the document must carry a `"dag"`
    /// array).  Violations come back as structured `admission/*`
    /// rejections, never bare strings.
    pub fn from_json(doc: &Json) -> Result<DagRequest, DagError> {
        let arr = match doc.get("dag") {
            Some(Json::Arr(a)) => a,
            Some(_) => return Err(dag_err("admission/dag", "field `dag` is not an array")),
            None => return Err(dag_err("admission/dag", "missing `dag` field")),
        };
        if arr.is_empty() {
            return Err(dag_err("admission/dag", "`dag` has no nodes"));
        }
        if arr.len() > MAX_DAG_NODES {
            return Err(dag_err(
                "admission/dag",
                format!("`dag` has {} nodes (max {MAX_DAG_NODES})", arr.len()),
            ));
        }

        // First pass: collect ids (for ref classification) and routines.
        let mut ids: Vec<String> = Vec::with_capacity(arr.len());
        for (i, node) in arr.iter().enumerate() {
            let id = node
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| dag_err("admission/dag", format!("node {i}: missing `id`")))?;
            if id.is_empty() || id.starts_with('@') {
                return Err(dag_err(
                    "admission/dag",
                    format!("node {i}: invalid id `{id}`"),
                ));
            }
            if ids.iter().any(|x| x == id) {
                return Err(dag_err(
                    "admission/dag",
                    format!("duplicate node id `{id}`"),
                ));
            }
            ids.push(id.to_string());
        }

        // Second pass: routines and operand resolution.
        let mut nodes: Vec<DagNode> = Vec::with_capacity(arr.len());
        for (i, node) in arr.iter().enumerate() {
            let id = &ids[i];
            let rname = node.get("routine").and_then(Json::as_str).ok_or_else(|| {
                dag_err("admission/dag", format!("node `{id}`: missing `routine`"))
            })?;
            // `SYRK` is sugar for a symmetric rank update: GEMM-NT with
            // both operands the same buffer.
            let (routine, syrk) = if rname == "SYRK" {
                (RoutineId::Gemm(Trans::N, Trans::T), true)
            } else {
                match RoutineId::parse(rname) {
                    Some(r) => (r, false),
                    None => {
                        return Err(dag_err(
                            "admission/dag",
                            format!("node `{id}`: unknown routine `{rname}`"),
                        ))
                    }
                }
            };

            let operand = |slot: &str, default: String| -> Result<Operand, DagError> {
                let raw = match node.get(slot) {
                    None => return Ok(Operand::Buf(default)),
                    Some(v) => v.as_str().ok_or_else(|| {
                        dag_err(
                            "admission/dag",
                            format!("node `{id}`: field `{slot}` is not a string"),
                        )
                    })?,
                };
                match raw.strip_prefix('@') {
                    None => {
                        if raw.is_empty() {
                            return Err(dag_err(
                                "admission/dag",
                                format!("node `{id}`: empty buffer name in `{slot}`"),
                            ));
                        }
                        Ok(Operand::Buf(raw.to_string()))
                    }
                    Some(target) => match ids.iter().position(|x| x == target) {
                        None => Err(dag_err(
                            "admission/dag-ref",
                            format!("node `{id}`: `{slot}` references unknown node `@{target}`"),
                        )),
                        Some(t) if t == i => Err(dag_err(
                            "admission/dag-cycle",
                            format!("node `{id}`: `{slot}` references itself"),
                        )),
                        Some(t) if t > i => Err(dag_err(
                            "admission/dag-cycle",
                            format!(
                                "node `{id}`: `{slot}` references later node `@{target}` \
                                 (references must point backward)"
                            ),
                        )),
                        Some(t) => Ok(Operand::Node(t)),
                    },
                }
            };

            let a = operand("a", format!("A{i}"))?;
            let b = if syrk {
                if node.get("b").is_some() {
                    return Err(dag_err(
                        "admission/dag",
                        format!("node `{id}`: SYRK takes one operand `a` (`b` is implied)"),
                    ));
                }
                a.clone()
            } else {
                operand("b", format!("B{i}"))?
            };
            let takes_c = matches!(
                routine,
                RoutineId::Gemm(..) | RoutineId::Symm(..) | RoutineId::Trmm(..)
            );
            let c = if takes_c {
                Some(operand("c", format!("C{i}"))?)
            } else {
                if node.get("c").is_some() {
                    return Err(dag_err(
                        "admission/dag",
                        format!("node `{id}`: `{}` takes no `c` operand", routine.name()),
                    ));
                }
                None
            };
            nodes.push(DagNode {
                id: id.clone(),
                routine,
                a,
                b,
                c,
            });
        }

        let n = match doc.get("n") {
            None => 64,
            Some(v) => v
                .as_i64()
                .ok_or_else(|| dag_err("admission/dag", "field `n` is not an integer"))?,
        };
        let seed = match doc.get("seed") {
            None => 0xD15,
            Some(v) => {
                let s = v
                    .as_i64()
                    .ok_or_else(|| dag_err("admission/dag", "field `seed` is not an integer"))?;
                u64::try_from(s).map_err(|_| {
                    dag_err("admission/dag", format!("field `seed` is negative ({s})"))
                })?
            }
        };
        let tenant = match doc.get("tenant") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| dag_err("admission/dag", "field `tenant` is not a string"))?
                    .to_string(),
            ),
        };
        let fuse = match doc.get("fuse") {
            None => true,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(dag_err("admission/dag", "field `fuse` is not a boolean")),
        };
        Ok(DagRequest {
            nodes,
            n,
            seed,
            tenant,
            fuse,
        })
    }

    /// The request as a JSONL object (round-trips through
    /// [`DagRequest::from_json`]).
    pub fn to_json(&self) -> Json {
        let op = |o: &Operand| match o {
            Operand::Buf(b) => Json::Str(b.clone()),
            Operand::Node(i) => Json::Str(format!("@{}", self.nodes[*i].id)),
        };
        let nodes: Vec<Json> = self
            .nodes
            .iter()
            .map(|nd| {
                let mut fields = BTreeMap::from([
                    ("id".to_string(), Json::Str(nd.id.clone())),
                    ("routine".to_string(), Json::Str(nd.routine.name())),
                    ("a".to_string(), op(&nd.a)),
                    ("b".to_string(), op(&nd.b)),
                ]);
                if let Some(c) = &nd.c {
                    fields.insert("c".to_string(), op(c));
                }
                Json::Obj(fields)
            })
            .collect();
        let mut fields = BTreeMap::from([
            ("dag".to_string(), Json::Arr(nodes)),
            ("n".to_string(), Json::Int(self.n)),
            ("seed".to_string(), Json::Int(self.seed as i64)),
            ("fuse".to_string(), Json::Bool(self.fuse)),
        ]);
        if let Some(t) = &self.tenant {
            fields.insert("tenant".to_string(), Json::Str(t.clone()));
        }
        Json::Obj(fields)
    }
}

/// Validate a parsed DAG request against launch-time constraints that
/// are knowable up front — the solver column-tile divisibility applies
/// to every node, **including ones fed by intermediates** (an illegal
/// intermediate size would otherwise surface as a launch failure after
/// tuning already ran).
pub fn admit_dag(req: &DagRequest) -> Result<(), DagError> {
    if req.n < 1 {
        return Err(dag_err(
            "admission/size",
            format!("problem size {} out of range", req.n),
        ));
    }
    for node in &req.nodes {
        if let Some(tile) = solver_tile(node.routine) {
            if req.n % tile != 0 {
                return Err(dag_err(
                    "admission/size-constraint",
                    format!(
                        "node `{}`: {} requires n to be a multiple of the {tile}-wide \
                         column tile (barrier-synchronized solver block); got n = {}",
                        node.id,
                        node.routine.name(),
                        req.n
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// A successful DAG execution.
#[derive(Clone, Debug, PartialEq)]
pub struct DagOk {
    /// Combined digest over the sink outputs.
    pub digest: u64,
    /// Per-sink digests `(node id, digest)`, sorted by id.
    pub sinks: Vec<(String, u64)>,
    /// Fused edges `(producer id, consumer id, kind)`.
    pub fused: Vec<(String, String, String)>,
    /// Rejected/demoted edges `(producer id, consumer id, reason)`.
    pub rejected: Vec<(String, String, String)>,
    /// Execution units after planning.
    pub units: usize,
    /// Whether this DAG shape's plan was already warm in the registry.
    pub cache_hit: bool,
    /// Modeled global-memory traffic summed over units.
    pub gmem_bytes: Option<f64>,
    /// Combined useful GFLOPS over modeled time.
    pub model_gflops: Option<f64>,
    /// Wall time (plan + resolve + execute), milliseconds.
    pub ms: f64,
}

/// Terminal status of one DAG request.
#[derive(Clone, Debug, PartialEq)]
pub enum DagStatus {
    /// Executed; fusion decisions and digest attached.
    Ok(DagOk),
    /// Rejected at admission or failed in resolution/execution.
    Failed {
        /// Stable failure class.
        class: &'static str,
        /// Human-readable cause.
        reason: String,
    },
}

/// One DAG request plus its terminal status.
#[derive(Clone, Debug, PartialEq)]
pub struct DagOutcome {
    /// The request as submitted.
    pub request: DagRequest,
    /// What happened.
    pub status: DagStatus,
}

impl DagOutcome {
    /// The outcome as a JSONL object; `id` is the submission index.
    pub fn to_json(&self, id: usize) -> Json {
        let edges = |es: &[(String, String, String)]| {
            Json::Arr(
                es.iter()
                    .map(|(p, c, k)| {
                        Json::Obj(BTreeMap::from([
                            ("producer".to_string(), Json::Str(p.clone())),
                            ("consumer".to_string(), Json::Str(c.clone())),
                            ("kind".to_string(), Json::Str(k.clone())),
                        ]))
                    })
                    .collect(),
            )
        };
        let mut fields = BTreeMap::from([
            ("id".to_string(), Json::Int(id as i64)),
            ("dag".to_string(), Json::Str(self.request.shape())),
            ("n".to_string(), Json::Int(self.request.n)),
            ("seed".to_string(), Json::Int(self.request.seed as i64)),
        ]);
        if let Some(t) = &self.request.tenant {
            fields.insert("tenant".to_string(), Json::Str(t.clone()));
        }
        match &self.status {
            DagStatus::Ok(ok) => {
                fields.insert("status".to_string(), Json::Str("ok".into()));
                fields.insert(
                    "digest".to_string(),
                    Json::Str(format!("{:016x}", ok.digest)),
                );
                fields.insert(
                    "sinks".to_string(),
                    Json::Obj(
                        ok.sinks
                            .iter()
                            .map(|(id, d)| (id.clone(), Json::Str(format!("{d:016x}"))))
                            .collect(),
                    ),
                );
                fields.insert("fused".to_string(), edges(&ok.fused));
                fields.insert("rejected".to_string(), edges(&ok.rejected));
                fields.insert("units".to_string(), Json::Int(ok.units as i64));
                fields.insert(
                    "cache".to_string(),
                    Json::Str(if ok.cache_hit { "hit" } else { "miss" }.into()),
                );
                if let Some(b) = ok.gmem_bytes {
                    fields.insert("gmem_bytes".to_string(), Json::Num(b));
                }
                if let Some(g) = ok.model_gflops {
                    fields.insert("model_gflops".to_string(), Json::Num(g));
                }
                fields.insert("ms".to_string(), Json::Num(ok.ms));
            }
            DagStatus::Failed { class, reason } => {
                fields.insert("status".to_string(), Json::Str("error".into()));
                fields.insert("class".to_string(), Json::Str((*class).into()));
                fields.insert("reason".to_string(), Json::Str(reason.clone()));
            }
        }
        Json::Obj(fields)
    }
}

impl Registry {
    /// Execute one DAG request end to end: admission → fusion planning →
    /// tuned resolution (memoized under the DAG-shape key) → execution as
    /// one unit → sink digest.
    pub fn run_dag(&self, req: &DagRequest) -> DagOutcome {
        self.run_dag_observed(req, &mut |_| {})
    }

    /// [`Registry::run_dag`] with a trace observer — one
    /// [`TuneEvent::Fuse`] line carries every per-edge fuse/reject
    /// decision.
    pub fn run_dag_observed(&self, req: &DagRequest, obs: &mut dyn FnMut(TuneEvent)) -> DagOutcome {
        let t0 = Instant::now();
        let fail = |e: DagError| DagOutcome {
            request: req.clone(),
            status: DagStatus::Failed {
                class: e.class,
                reason: e.reason,
            },
        };
        if let Err(e) = admit_dag(req) {
            return fail(e);
        }
        // The whole DAG runs under the env lock: fused plans, tuned
        // singles and the pair cache live inside the env, and a DAG is
        // dispatched as one indivisible unit.
        let mut guard = self.dag_env().lock().expect("unpoisoned dag env");
        let env = guard.get_or_insert_with(|| {
            FuseEnv::new(self.engine(), self.device().clone(), ResolveMode::Tuned)
        });
        let cache_hit = {
            let key = (req.shape(), req.n);
            let mut plans = self.dag_plans().lock().expect("unpoisoned dag plans");
            let hit = plans.get(&key).is_some();
            if !hit {
                plans.insert(key, ());
            }
            hit
        };
        match env.run_dag_observed(&req.nodes, req.n, req.seed, req.fuse, obs) {
            Ok(run) => DagOutcome {
                request: req.clone(),
                status: DagStatus::Ok(DagOk {
                    digest: run.digest,
                    sinks: run.sinks,
                    fused: run
                        .fused
                        .into_iter()
                        .map(|(p, c, k)| (p, c, k.to_string()))
                        .collect(),
                    rejected: run.rejects,
                    units: run.units,
                    cache_hit,
                    gmem_bytes: run.gmem_bytes,
                    model_gflops: run.gflops,
                    ms: t0.elapsed().as_secs_f64() * 1e3,
                }),
            },
            Err(reason) => fail(dag_err("exec", reason)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_gpusim::{DeviceSpec, ExecEngine};

    fn parse(line: &str) -> Result<DagRequest, DagError> {
        let doc = oa_autotune::json::parse(line).expect("valid JSON");
        DagRequest::from_json(&doc)
    }

    const CHAIN: &str = r#"{"dag": [
        {"id": "mm", "routine": "GEMM-NN", "a": "A", "b": "B", "c": "C"},
        {"id": "sum", "routine": "ADD", "a": "@mm", "b": "E"}], "n": 64, "seed": 7}"#;

    #[test]
    fn parses_chain_and_round_trips() {
        let req = parse(CHAIN).unwrap();
        assert_eq!(req.nodes.len(), 2);
        assert_eq!(req.nodes[1].a, Operand::Node(0));
        assert_eq!(req.shape(), "GEMM-NN(A,B,C);ADD(@0,E)");
        assert!(req.fuse);
        let again = DagRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(again, req);
    }

    #[test]
    fn syrk_sugar_expands_to_symmetric_rank_update() {
        let req = parse(
            r#"{"dag": [{"id": "rk", "routine": "SYRK", "a": "F", "c": "S"},
                {"id": "tri", "routine": "TRSM-LL-N", "a": "L", "b": "@rk"}], "n": 64}"#,
        )
        .unwrap();
        assert_eq!(req.nodes[0].routine, RoutineId::Gemm(Trans::N, Trans::T));
        assert_eq!(req.nodes[0].a, req.nodes[0].b);
        assert!(req.nodes[0].is_syrk());
    }

    #[test]
    fn unknown_reference_rejects_as_dag_ref() {
        let err =
            parse(r#"{"dag": [{"id": "sum", "routine": "ADD", "a": "@nope", "b": "E"}], "n": 64}"#)
                .unwrap_err();
        assert_eq!(err.class, "admission/dag-ref");
        assert!(err.reason.contains("@nope"), "{}", err.reason);
    }

    #[test]
    fn self_and_forward_references_reject_as_dag_cycle() {
        let selfref =
            parse(r#"{"dag": [{"id": "x", "routine": "ADD", "a": "@x", "b": "E"}], "n": 64}"#)
                .unwrap_err();
        assert_eq!(selfref.class, "admission/dag-cycle");
        let forward = parse(
            r#"{"dag": [{"id": "x", "routine": "ADD", "a": "@y", "b": "E"},
                {"id": "y", "routine": "ADD", "a": "X", "b": "E"}], "n": 64}"#,
        )
        .unwrap_err();
        assert_eq!(forward.class, "admission/dag-cycle");
        assert!(forward.reason.contains("backward"), "{}", forward.reason);
    }

    #[test]
    fn structural_violations_reject_as_dag() {
        for (line, what) in [
            (r#"{"dag": [], "n": 64}"#, "empty"),
            (r#"{"dag": "x", "n": 64}"#, "non-array"),
            (
                r#"{"dag": [{"id": "a", "routine": "ADD"}, {"id": "a", "routine": "ADD"}]}"#,
                "duplicate id",
            ),
            (r#"{"dag": [{"routine": "ADD"}]}"#, "missing id"),
            (
                r#"{"dag": [{"id": "a", "routine": "NOPE"}]}"#,
                "bad routine",
            ),
            (
                r#"{"dag": [{"id": "a", "routine": "TRSM-LL-N", "c": "C"}]}"#,
                "c on a solver",
            ),
            (
                r#"{"dag": [{"id": "a", "routine": "SYRK", "a": "F", "b": "G"}]}"#,
                "explicit b on SYRK",
            ),
        ] {
            let err = parse(line).unwrap_err();
            assert_eq!(err.class, "admission/dag", "{what}: {}", err.reason);
        }
        let mut many = String::from(r#"{"dag": ["#);
        for i in 0..=MAX_DAG_NODES {
            if i > 0 {
                many.push(',');
            }
            many.push_str(&format!(r#"{{"id": "n{i}", "routine": "ADD"}}"#));
        }
        many.push_str("]}");
        assert_eq!(parse(&many).unwrap_err().class, "admission/dag");
    }

    #[test]
    fn solver_size_constraint_applies_to_intermediates() {
        let req = parse(
            r#"{"dag": [{"id": "rk", "routine": "SYRK", "a": "F", "c": "S"},
                {"id": "tri", "routine": "TRSM-LL-N", "a": "L", "b": "@rk"}], "n": 96}"#,
        )
        .unwrap();
        let err = admit_dag(&req).unwrap_err();
        assert_eq!(err.class, "admission/size-constraint");
        assert!(err.reason.contains("`tri`"), "{}", err.reason);
        assert!(admit_dag(&parse(CHAIN).unwrap()).is_ok());
    }

    #[test]
    fn registry_runs_chain_fused_with_plan_cache_provenance() {
        let registry = Registry::new(DeviceSpec::gtx285()).with_engine(ExecEngine::Bytecode);
        let req = parse(CHAIN).unwrap();
        let first = registry.run_dag(&req);
        let ok = match &first.status {
            DagStatus::Ok(ok) => ok.clone(),
            DagStatus::Failed { class, reason } => panic!("{class}: {reason}"),
        };
        assert_eq!(ok.units, 1, "epilogue chain is one fused unit");
        assert_eq!(ok.fused.len(), 1);
        assert!(!ok.cache_hit);
        assert!(ok.gmem_bytes.is_some());

        // Same shape again: warm plan, identical digest.
        let second = registry.run_dag(&req);
        match &second.status {
            DagStatus::Ok(ok2) => {
                assert!(ok2.cache_hit);
                assert_eq!(ok2.digest, ok.digest);
            }
            DagStatus::Failed { class, reason } => panic!("{class}: {reason}"),
        }

        // The sequenced plan matches bit for bit and moves strictly more
        // global memory — the fusion contract, end to end through the
        // registry.
        let mut unfused = req.clone();
        unfused.fuse = false;
        match registry.run_dag(&unfused).status {
            DagStatus::Ok(plain) => {
                assert_eq!(plain.digest, ok.digest, "fusion changed bits");
                assert_eq!(plain.units, 2);
                assert!(
                    plain.gmem_bytes.unwrap() > ok.gmem_bytes.unwrap(),
                    "fused traffic {} !< unfused {}",
                    ok.gmem_bytes.unwrap(),
                    plain.gmem_bytes.unwrap()
                );
            }
            DagStatus::Failed { class, reason } => panic!("{class}: {reason}"),
        }
    }

    #[test]
    fn dag_outcome_json_carries_fusion_decisions() {
        let registry = Registry::new(DeviceSpec::gtx285()).with_engine(ExecEngine::Bytecode);
        let req = parse(CHAIN).unwrap();
        let line = registry.run_dag(&req).to_json(3).compact();
        for needle in [
            "\"status\":\"ok\"",
            "\"dag\":\"GEMM-NN(A,B,C);ADD(@0,E)\"",
            "\"kind\":\"epilogue\"",
            "\"units\":1",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        let rejected = registry.run_dag(&DagRequest {
            n: 97,
            ..parse(
                r#"{"dag": [{"id": "rk", "routine": "SYRK", "a": "F"},
                    {"id": "tri", "routine": "TRSM-LL-N", "a": "L", "b": "@rk"}]}"#,
            )
            .unwrap()
        });
        let line = rejected.to_json(4).compact();
        assert!(
            line.contains("\"class\":\"admission/size-constraint\""),
            "{line}"
        );
    }
}
