//! The batched routine-dispatch layer: tuned once, called many times.
//!
//! The paper's endgame (Sec. V) is a *library* — each routine tuned once
//! per device, then invoked repeatedly.  Everything below `oa-core`
//! executes one request end to end; this module adds the layer that
//! serves **many independent requests against already-tuned scripts**:
//!
//! * [`Registry`] — per [`DeviceSpec`], resolves a routine through the
//!   tuning cache (tune-on-miss via `tune_fresh_on`), lowers the winning
//!   script **once** through tape→bytecode, and memoizes the compiled
//!   program in a bounded LRU keyed by
//!   `(routine, device, param-point, size)`;
//! * [`Registry::run_batch`] — a batch of mixed [`Request`]s drained by
//!   the shared-queue worker pool ([`oa_gpusim::dispatch::run_jobs`])
//!   with compile-once/run-many semantics and **deterministic
//!   per-request results regardless of scheduling order** (the dispatch
//!   test battery runs the same batch across engines, thread counts,
//!   submission orders and LRU capacities and demands bit-identical
//!   digests);
//! * [`BatchStats`] — per-batch hits/misses/evictions and requests/sec,
//!   emitted as a [`TuneEvent::Batch`] through the same observer channel
//!   the tuner traces through (`OA_TRACE`, `oa trace-check`).
//!
//! Two size notions keep tuning amortized without compromising
//! correctness: routines are *tuned* per [`size_class`] (problem sizes
//! bucketed to a power of two, so a thousand nearby sizes share one
//! sweep) but *compiled* per exact request size (the winning script is
//! re-applied under the request's own bindings — the same replay the
//! Fig. 13 scaling study performs), so results are bit-identical to a
//! direct `engine::exec_program_on` run of the same script/params.
//!
//! The CLI face is `oa serve` (JSONL requests in, JSONL results out);
//! the throughput harness is `bench_dispatch` (`BENCH_dispatch.json`).

use oa_autotune::json::Json;
use oa_autotune::report::BatchStats;
use oa_autotune::{
    model_path_from_env, sibling_model_path, tune_fresh_modeled, validate_record, CacheIssue,
    CostModel, ModelCtx, ModelMode, TuneCache, TuneEvent, TunedRecord,
};
use oa_blas3::types::RoutineId;
use oa_blas3::verify::prepare_buffers;
use oa_epod::translator::apply_lenient;
use oa_epod::Script;
use oa_gpusim::dispatch::{run_jobs, CompiledProgram, Lru};
use oa_gpusim::{DeviceSpec, ExecEngine};
use oa_loopir::interp::{Bindings, Buffers};
use oa_loopir::transform::TileParams;
use oa_loopir::Program;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// One dispatch request: execute `routine` at problem size `n` on inputs
/// deterministically generated from `seed`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    /// The BLAS3 routine.
    pub routine: RoutineId,
    /// Square problem size.
    pub n: i64,
    /// Input-generation seed (see `oa_blas3::verify::prepare_buffers`).
    pub seed: u64,
    /// Zero the blank triangle of `A` (the storage contract the packed
    /// routines promise).
    pub zero_blanks: bool,
    /// The submitting tenant (`oa serve --listen` fairness/quota unit).
    /// Pure scheduling metadata: it never reaches the engines, so results
    /// are tenant-invariant.  `None` means the anonymous default tenant.
    pub tenant: Option<String>,
}

impl Request {
    /// A request with the serve defaults (`seed` 0xD15, blanks zeroed,
    /// anonymous tenant).
    pub fn new(routine: RoutineId, n: i64) -> Request {
        Request {
            routine,
            n,
            seed: 0xD15,
            zero_blanks: true,
            tenant: None,
        }
    }

    /// The tenant this request bills to (the fairness/quota bucket);
    /// anonymous requests share one default bucket.
    pub fn tenant_name(&self) -> &str {
        self.tenant.as_deref().unwrap_or("default")
    }

    /// Parse one JSONL request line:
    /// `{"routine": "GEMM-NN", "n": 64, "seed": 7, "zero_blanks": true,
    /// "tenant": "team-a"}` (`routine` required; `n` defaults to 64,
    /// `seed` to 0xD15, `zero_blanks` to true, `tenant` to anonymous).
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let name = doc
            .get("routine")
            .and_then(Json::as_str)
            .ok_or("missing `routine` field")?;
        let routine = RoutineId::parse(name).ok_or_else(|| format!("unknown routine `{name}`"))?;
        let n = match doc.get("n") {
            None => 64,
            Some(v) => v.as_i64().ok_or("field `n` is not an integer")?,
        };
        if n < 1 {
            return Err(format!("problem size {n} out of range"));
        }
        // A negative seed must be rejected, not wrapped: `-1 as u64` is
        // 2^64-1, which would silently serve a different input set than
        // the client asked for.
        let seed = match doc.get("seed") {
            None => 0xD15,
            Some(v) => {
                let s = v.as_i64().ok_or("field `seed` is not an integer")?;
                u64::try_from(s).map_err(|_| format!("field `seed` is negative ({s})"))?
            }
        };
        let zero_blanks = match doc.get("zero_blanks") {
            None => true,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("field `zero_blanks` is not a boolean".into()),
        };
        let tenant = match doc.get("tenant") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("field `tenant` is not a string")?
                    .to_string(),
            ),
        };
        Ok(Request {
            routine,
            n,
            seed,
            zero_blanks,
            tenant,
        })
    }

    /// The request as a JSONL object (the `oa serve` input format).
    pub fn to_json(&self) -> Json {
        let mut fields = BTreeMap::from([
            ("routine".to_string(), Json::Str(self.routine.name())),
            ("n".to_string(), Json::Int(self.n)),
            ("seed".to_string(), Json::Int(self.seed as i64)),
            ("zero_blanks".to_string(), Json::Bool(self.zero_blanks)),
        ]);
        if let Some(t) = &self.tenant {
            fields.insert("tenant".to_string(), Json::Str(t.clone()));
        }
        Json::Obj(fields)
    }
}

/// The column-tile width `routine`'s generated kernels serialize along,
/// when they carry one.  The triangular-solver schemes substitute down a
/// barrier-synchronized 64-wide column block, so TRSM problem sizes must
/// be a multiple of 64 — anything else is rejected **at admission**
/// (see [`admit`]) instead of surfacing as a launch failure deep in the
/// engine after tuning already ran.
pub fn solver_tile(routine: RoutineId) -> Option<i64> {
    match routine {
        RoutineId::Trsm(..) => Some(64),
        _ => None,
    }
}

/// Validate a request against launch-time constraints that are knowable
/// up front.  Returns the structured failure (`admission/...` class) the
/// request would otherwise hit much later in the pipeline.
pub fn admit(req: &Request) -> Result<(), RequestStatus> {
    if req.n < 1 {
        return Err(RequestStatus::Failed {
            class: "admission/size",
            reason: format!("problem size {} out of range", req.n),
        });
    }
    if let Some(tile) = solver_tile(req.routine) {
        if req.n % tile != 0 {
            return Err(RequestStatus::Failed {
                class: "admission/size-constraint",
                reason: format!(
                    "{} requires n to be a multiple of the {tile}-wide column tile \
                     (barrier-synchronized solver block); got n = {}",
                    req.routine.name(),
                    req.n
                ),
            });
        }
    }
    Ok(())
}

/// A successful request execution.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestOk {
    /// The routine's output buffer (`B` for TRSM, `C` otherwise).
    pub output: &'static str,
    /// FNV-1a digest over **every** buffer's bit pattern after execution
    /// ([`digest_buffers`]) — the value the differential and concurrency
    /// suites compare.
    pub digest: u64,
    /// Whether the compiled program came from the LRU (`true`) or was
    /// compiled by this request (`false`).
    pub cache_hit: bool,
    /// Performance-model GFLOPS of the compiled kernel at this size,
    /// when the model could evaluate it.
    pub model_gflops: Option<f64>,
    /// Wall time of this request (resolve + execute), milliseconds.
    pub ms: f64,
    /// The size class the serving script was *tuned* at (execution is
    /// still exact-size).
    pub tuned_class: i64,
    /// Whether `tuned_class` was **clamped** to a boundary class
    /// (`n < 64` or `n > 1024`): the params were tuned for a different
    /// size regime than requested.  Surfaced so clients and metrics see
    /// the quality signal instead of silently absorbing it.
    pub clamped: bool,
    /// The cost-model artifact's per-family engine pick hint (fastest
    /// composer engine at train time), when an artifact is loaded.
    /// Advisory metadata only: results are engine-invariant.
    pub engine_hint: Option<String>,
}

/// Terminal status of one request.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestStatus {
    /// Executed; digest and cache provenance attached.
    Ok(RequestOk),
    /// Failed in resolution, compilation or execution.
    Failed {
        /// Stable failure class (`resolve`, `compile/translate`,
        /// `compile/lower`, `exec`).
        class: &'static str,
        /// Human-readable cause.
        reason: String,
    },
}

/// One request plus its terminal status, in submission order.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestOutcome {
    /// The request as submitted.
    pub request: Request,
    /// What happened.
    pub status: RequestStatus,
}

impl RequestOutcome {
    /// The outcome as a JSONL object (the `oa serve` output format);
    /// `id` is the request's submission index.
    pub fn to_json(&self, id: usize) -> Json {
        let mut fields = BTreeMap::from([
            ("id".to_string(), Json::Int(id as i64)),
            (
                "routine".to_string(),
                Json::Str(self.request.routine.name()),
            ),
            ("n".to_string(), Json::Int(self.request.n)),
            ("seed".to_string(), Json::Int(self.request.seed as i64)),
        ]);
        if let Some(t) = &self.request.tenant {
            fields.insert("tenant".to_string(), Json::Str(t.clone()));
        }
        match &self.status {
            RequestStatus::Ok(ok) => {
                fields.insert("status".to_string(), Json::Str("ok".into()));
                fields.insert("output".to_string(), Json::Str(ok.output.into()));
                fields.insert(
                    "digest".to_string(),
                    Json::Str(format!("{:016x}", ok.digest)),
                );
                fields.insert(
                    "cache".to_string(),
                    Json::Str(if ok.cache_hit { "hit" } else { "miss" }.into()),
                );
                if let Some(g) = ok.model_gflops {
                    fields.insert("model_gflops".to_string(), Json::Num(g));
                }
                fields.insert("ms".to_string(), Json::Num(ok.ms));
                fields.insert("tuned_class".to_string(), Json::Int(ok.tuned_class));
                if ok.clamped {
                    fields.insert("clamped".to_string(), Json::Bool(true));
                }
                if let Some(h) = &ok.engine_hint {
                    fields.insert("engine_hint".to_string(), Json::Str(h.clone()));
                }
            }
            RequestStatus::Failed { class, reason } => {
                fields.insert("status".to_string(), Json::Str("error".into()));
                fields.insert("class".to_string(), Json::Str((*class).into()));
                fields.insert("reason".to_string(), Json::Str(reason.clone()));
            }
        }
        Json::Obj(fields)
    }
}

/// A batch's outcomes (submission order) plus its accounting.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per request, aligned with the submitted slice.
    pub outcomes: Vec<RequestOutcome>,
    /// The batch counters also emitted as [`TuneEvent::Batch`].
    pub stats: BatchStats,
}

/// The size class a problem size is *tuned* at: the next power of two,
/// clamped to `[64, 1024]`.  Requests inside one class share a single
/// tuning sweep; compilation still happens at the exact request size, so
/// size classes never change results — only how often the tuner runs.
pub fn size_class(n: i64) -> i64 {
    size_class_info(n).0
}

/// [`size_class`] plus whether the class was **clamped** to a boundary
/// (`true` when the natural next-power-of-two class fell outside
/// `[64, 1024]`, i.e. `n < 33` or `n > 1024`).  A clamped request is
/// served with parameters tuned for a different size regime — still
/// correct, but a quality signal worth surfacing, so it is carried into
/// [`RequestOk::clamped`], the outcome JSON, and the server metrics.
pub fn size_class_info(n: i64) -> (i64, bool) {
    let natural = (n.max(1) as u64).next_power_of_two() as i64;
    let class = natural.clamp(64, 1024);
    (class, class != natural)
}

/// FNV-1a fingerprint over every buffer (sorted by name): shapes and the
/// exact bit pattern of every element, inputs included — two executions
/// agree on this digest iff they are bit-identical observably.
pub fn digest_buffers(bufs: &Buffers) -> u64 {
    let mut names: Vec<&String> = bufs.keys().collect();
    names.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for name in names {
        let m = &bufs[name];
        eat(name.as_bytes());
        eat(&m.rows.to_le_bytes());
        eat(&m.cols.to_le_bytes());
        for v in &m.data {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// A routine resolved through the tuning cache: the winning script and
/// tile-parameter point, shared by every size in the class.
#[derive(Clone, Debug)]
pub struct TunedEntry {
    /// The winning EPOD script.
    pub script: Script,
    /// The winning tile parameters (the LRU key's param-point).
    pub params: TileParams,
}

/// A compiled program plus everything needed to serve requests with it.
pub struct CompiledEntry {
    /// The transformed program (buffer allocation needs its array
    /// declarations).
    pub program: Program,
    /// The engine-lowered, ready-to-run form.
    pub compiled: CompiledProgram,
    /// Performance-model GFLOPS at this size, when evaluable.
    pub model_gflops: Option<f64>,
}

/// `(routine, device, param-point, size)` — the precompiled-program LRU
/// key.  The param-point pins the exact winning script application; the
/// size is the request's exact `n` (programs are size-specialized — see
/// [`size_class`] for the coarser *tuning* granularity).
type ProgramKey = (String, String, (i64, i64, i64, i64, i64, usize), i64);

/// One tuned-table slot: either a terminal resolution or a tune in
/// flight on some thread — waiters block on the shard's condvar instead
/// of launching a duplicate multi-second sweep.
enum TunedSlot {
    InFlight,
    Done(Result<Arc<TunedEntry>, String>),
}

/// One shard of the tuned-script table.  Sharding means a thread
/// resolving routine A never touches the lock a thread serving routine B
/// holds — tuning one routine cannot block serving another (the mutex is
/// only ever held for map ops; the sweep itself runs outside it).
struct TunedShard {
    map: Mutex<HashMap<(String, i64), TunedSlot>>,
    cv: Condvar,
}

/// Owns an `InFlight` claim on a tuned-table key.  On drop it publishes
/// the resolution (or, on a panic before [`InFlightGuard::publish`],
/// removes the claim so a later resolver retries instead of every
/// waiter deadlocking on a slot nobody will fill) and wakes all waiters.
struct InFlightGuard<'a> {
    shard: &'a TunedShard,
    key: &'a (String, i64),
    result: Option<Result<Arc<TunedEntry>, String>>,
}

impl InFlightGuard<'_> {
    fn publish(mut self, res: Result<Arc<TunedEntry>, String>) {
        self.result = Some(res);
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut map = self.shard.map.lock().expect("unpoisoned registry");
        match self.result.take() {
            Some(res) => {
                map.insert(self.key.clone(), TunedSlot::Done(res));
            }
            None => {
                map.remove(self.key);
            }
        }
        drop(map);
        self.shard.cv.notify_all();
    }
}

/// Shard counts.  Tuned shards spread `(routine, class)` keys (48-ish
/// live keys in a full catalog — collisions are rare and harmless);
/// program shards only apply to the unbounded store, where eviction
/// accounting cannot observe the split.
const TUNED_SHARDS: usize = 16;
const PROGRAM_SHARDS: usize = 8;

fn shard_of<K: Hash>(key: &K, shards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % shards
}

/// The routine registry: one per device, engine-pinned, holding the
/// tuned-script table and the bounded precompiled-program LRU.
///
/// Thread-safe by construction (`&self` everywhere): the batch executor's
/// workers resolve and execute through one shared registry.  Both hot
/// tables are sharded so the persistent server's concurrency holds up:
///
/// * the tuned-script table is [`TUNED_SHARDS`] independent shards with
///   **in-flight deduplication** — the first thread to miss a
///   `(routine, class)` key runs the sweep, concurrent requests for the
///   *same* key wait on the shard condvar for the one result, and
///   requests for *any other* key proceed untouched;
/// * the compiled-program store is [`PROGRAM_SHARDS`] shards when
///   unbounded (the server default), or a single exact-capacity LRU when
///   bounded (so `with_capacity(Some(c))` keeps its precise global
///   bound — the property suite pins `capacity 1 → at most 1 live
///   program`).
pub struct Registry {
    device: DeviceSpec,
    engine: ExecEngine,
    tune_cache_path: Option<PathBuf>,
    tune_cache: Mutex<TuneCache>,
    tuned: Vec<TunedShard>,
    programs: Vec<Mutex<Lru<ProgramKey, Arc<CompiledEntry>>>>,
    /// How cold-path sweeps use the learned cost model (`OA_TUNE_MODEL`).
    model_mode: ModelMode,
    /// The cost-model artifact, loaded **once** at construction and
    /// shared by every cold tune (order-only: winners are unchanged).
    model: Option<Arc<CostModel>>,
    /// Artifact-load issues, surfaced through the first cold tune's
    /// observer instead of being swallowed (drained after emission).
    model_issues: Mutex<Vec<CacheIssue>>,
    /// Serializes fresh tunes *for trace emission only*: a tune emits a
    /// multi-line `begin…summary` span, and two interleaved spans would
    /// be rejected by `oa trace-check`.  Serving never takes this lock —
    /// only fresh sweeps (cold path) and the server's own event lines.
    trace_gate: Mutex<()>,
    /// The DAG fusion environment (lazy: engine/device are pinned after
    /// construction).  Holds the tuned singles and fused-pair plans a
    /// DAG request resolves through; the lock also makes each DAG an
    /// indivisible execution unit (see `crate::dag`).
    dag_env: Mutex<Option<oa_autotune::fuse::FuseEnv>>,
    /// Warm-plan provenance for DAG requests, keyed by
    /// `(DAG shape, n)` — the `cache: hit|miss` field of DAG outcomes.
    dag_plans: Mutex<Lru<(String, i64), ()>>,
}

fn tuned_shards() -> Vec<TunedShard> {
    (0..TUNED_SHARDS)
        .map(|_| TunedShard {
            map: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        })
        .collect()
}

fn program_shards(capacity: Option<usize>) -> Vec<Mutex<Lru<ProgramKey, Arc<CompiledEntry>>>> {
    match capacity {
        // A bounded store keeps its exact global capacity: one shard.
        Some(c) => vec![Mutex::new(Lru::new(Some(c)))],
        None => (0..PROGRAM_SHARDS)
            .map(|_| Mutex::new(Lru::new(None)))
            .collect(),
    }
}

/// Load the cost-model artifact at `path` (when ranking is on at all);
/// corruption is classified, never fatal — the registry degrades to
/// exact sweeps.
fn load_model(mode: ModelMode, path: Option<PathBuf>) -> (Option<Arc<CostModel>>, Vec<CacheIssue>) {
    match (mode, path) {
        (ModelMode::Off, _) | (_, None) => (None, Vec::new()),
        (_, Some(path)) => {
            let (model, issues) = CostModel::load_reporting(&path);
            (model.map(Arc::new), issues)
        }
    }
}

impl Registry {
    /// A registry for `device` with the process-default engine, an
    /// unbounded program store and no persistent tuning cache.  The cost
    /// model is resolved from the environment (`OA_TUNE_MODEL`,
    /// `OA_TUNE_MODEL_PATH` / sibling of `OA_TUNE_CACHE`).
    pub fn new(device: DeviceSpec) -> Registry {
        let model_mode = ModelMode::from_env();
        let (model, model_issues) = load_model(model_mode, model_path_from_env());
        Registry {
            device,
            engine: oa_gpusim::select_engine(),
            tune_cache_path: None,
            tune_cache: Mutex::new(TuneCache::new()),
            tuned: tuned_shards(),
            programs: program_shards(None),
            model_mode,
            model,
            model_issues: Mutex::new(model_issues),
            trace_gate: Mutex::new(()),
            dag_env: Mutex::new(None),
            dag_plans: Mutex::new(Lru::new(None)),
        }
    }

    /// The lazily-initialized DAG fusion environment (see `crate::dag`).
    pub(crate) fn dag_env(&self) -> &Mutex<Option<oa_autotune::fuse::FuseEnv>> {
        &self.dag_env
    }

    /// The DAG warm-plan table (shape-keyed provenance).
    pub(crate) fn dag_plans(&self) -> &Mutex<Lru<(String, i64), ()>> {
        &self.dag_plans
    }

    /// Pin the execution engine (tests and the engine-differential suite;
    /// results are engine-invariant, throughput is not).
    pub fn with_engine(mut self, engine: ExecEngine) -> Registry {
        self.engine = engine;
        self
    }

    /// Bound the precompiled-program LRU (`None` = unbounded).  Eviction
    /// never changes results — only the hit rate (the property suite
    /// replays batches at capacity 1 vs unbounded and demands equal
    /// outputs).
    pub fn with_capacity(mut self, capacity: Option<usize>) -> Registry {
        self.programs = program_shards(capacity);
        self
    }

    /// Resolve tuning through the persistent JSON cache at `path`
    /// (loaded now; tune-on-miss winners are merged back best-effort
    /// under the cache's lock file).  The cost-model artifact is
    /// re-resolved next to this path (`OA_TUNE_MODEL_PATH` overrides).
    pub fn with_tune_cache(mut self, path: PathBuf) -> Registry {
        let (cache, _issues) = TuneCache::load_reporting(&path);
        self.tune_cache = Mutex::new(cache);
        let model_path = std::env::var_os("OA_TUNE_MODEL_PATH")
            .map(PathBuf::from)
            .unwrap_or_else(|| sibling_model_path(&path));
        let (model, issues) = load_model(self.model_mode, Some(model_path));
        self.model = model;
        self.model_issues = Mutex::new(issues);
        self.tune_cache_path = Some(path);
        self
    }

    /// The model artifact's per-family engine pick hint for `routine`
    /// (fastest composer engine measured at train time) — advisory
    /// metadata surfaced in request outcomes; never changes results.
    pub fn engine_hint(&self, routine: RoutineId) -> Option<String> {
        self.model
            .as_ref()
            .and_then(|m| m.engine_hint(routine.family()))
            .map(str::to_string)
    }

    /// The registry's device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The registry's pinned engine.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Cumulative program-store counters (summed across shards).
    pub fn program_stats(&self) -> oa_gpusim::LruStats {
        let mut total = oa_gpusim::LruStats::default();
        for shard in &self.programs {
            let s = shard.lock().expect("unpoisoned registry").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Live compiled programs (summed across shards).
    pub fn programs_len(&self) -> usize {
        self.programs
            .iter()
            .map(|s| s.lock().expect("unpoisoned registry").len())
            .sum()
    }

    /// Drop every compiled program (tuned scripts survive) — the cold
    /// path of `bench_dispatch`.
    pub fn clear_programs(&self) {
        for shard in &self.programs {
            shard.lock().expect("unpoisoned registry").clear();
        }
    }

    /// The registry's trace-emission gate.  Any multi-line event span
    /// written to a shared trace sink from concurrent threads must hold
    /// this lock while emitting, so `oa trace-check` never sees two
    /// interleaved spans.  Fresh tunes inside [`Registry::resolve_observed`]
    /// take it automatically; the server takes it around its own
    /// `Batch`/`Serve` event lines.
    pub fn trace_gate(&self) -> MutexGuard<'_, ()> {
        self.trace_gate.lock().expect("unpoisoned registry")
    }

    /// Resolve `routine` at `n`'s size class through the tuning cache,
    /// sweeping on a miss and reporting every tuner/cache event through
    /// `obs`.  The resolution is memoized — failures too, so a routine
    /// the tuner cannot handle fails every request fast instead of
    /// re-sweeping per request.
    pub fn resolve_observed(
        &self,
        routine: RoutineId,
        n: i64,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> Result<Arc<TunedEntry>, String> {
        let class = size_class(n);
        let key = (routine.name(), class);
        let shard = &self.tuned[shard_of(&key, TUNED_SHARDS)];

        // Fast path / claim: either return a memoized resolution, wait
        // for an in-flight sweep on the same key, or claim the key and
        // become the sweeping thread ourselves.
        {
            let mut map = shard.map.lock().expect("unpoisoned registry");
            loop {
                match map.get(&key) {
                    Some(TunedSlot::Done(res)) => return res.clone(),
                    Some(TunedSlot::InFlight) => {
                        map = shard.cv.wait(map).expect("unpoisoned registry");
                    }
                    None => {
                        map.insert(key.clone(), TunedSlot::InFlight);
                        break;
                    }
                }
            }
        }
        // From here on we own the in-flight slot; any early return or
        // panic must release it or every waiter deadlocks.
        let guard = InFlightGuard {
            shard,
            key: &key,
            result: None,
        };

        // Consult the tuning cache (stale records are reported and fall
        // through to a fresh sweep, exactly like `tune_at`).
        let mut replayed: Option<(TunedEntry, f64)> = None;
        {
            let cache = self.tune_cache.lock().expect("unpoisoned registry");
            if let Some(rec) = cache.get(routine, &self.device, class) {
                match validate_record(routine, rec) {
                    Ok(script) => {
                        replayed = Some((
                            TunedEntry {
                                script,
                                params: rec.tile_params(),
                            },
                            rec.gflops,
                        ));
                    }
                    Err(issue) => obs(TuneEvent::Cache(issue)),
                }
            }
        }
        let res: Result<Arc<TunedEntry>, String> = match replayed {
            Some((entry, gflops)) => {
                obs(TuneEvent::Replayed {
                    routine: routine.name(),
                    gflops,
                });
                Ok(Arc::new(entry))
            }
            None => {
                // A fresh sweep emits a multi-line begin…summary span;
                // hold the trace gate so concurrent sweeps of *different*
                // keys cannot interleave their spans in the trace stream.
                let _trace = self.trace_gate.lock().expect("unpoisoned registry");
                // The cold path is where the learned cost model earns its
                // keep: rank the sweep with the shared artifact, seed the
                // order from this routine's already-tuned size classes,
                // and surface any artifact-load issues exactly once.
                let ctx = ModelCtx {
                    mode: Some(self.model_mode),
                    model: self.model.clone(),
                    transfer: self
                        .tune_cache
                        .lock()
                        .expect("unpoisoned registry")
                        .records_for(routine, &self.device),
                    issues: std::mem::take(
                        &mut *self.model_issues.lock().expect("unpoisoned registry"),
                    ),
                };
                match tune_fresh_modeled(self.engine, routine, &self.device, class, &ctx, obs) {
                    Ok(t) => {
                        let rec = TunedRecord::from_kernel(&t);
                        self.tune_cache
                            .lock()
                            .expect("unpoisoned registry")
                            .insert(rec.clone());
                        // Persistence is best-effort (under the cache's lock
                        // file); an unwritable path degrades to re-tuning in
                        // the next process, never to a wrong result.
                        if let Some(path) = &self.tune_cache_path {
                            let _ = TuneCache::update(path, |c| c.insert(rec));
                        }
                        Ok(Arc::new(TunedEntry {
                            script: t.script,
                            params: t.params,
                        }))
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
        };

        guard.publish(res.clone());
        res
    }

    /// [`Registry::resolve_observed`] without a trace observer.
    pub fn resolve(&self, routine: RoutineId, n: i64) -> Result<Arc<TunedEntry>, String> {
        self.resolve_observed(routine, n, &mut |_| {})
    }

    /// Fetch (or compile) the program for `(routine, entry, n)` through
    /// the LRU.  Returns the entry and whether it was a cache hit.
    fn compiled(
        &self,
        routine: RoutineId,
        entry: &TunedEntry,
        n: i64,
    ) -> Result<(Arc<CompiledEntry>, bool), (&'static str, String)> {
        let p = entry.params;
        let key: ProgramKey = (
            routine.name(),
            self.device.name.to_string(),
            (p.ty, p.tx, p.thr_i, p.thr_j, p.kb, p.unroll),
            n,
        );
        let shard = &self.programs[shard_of(&key, self.programs.len())];
        if let Some(e) = shard.lock().expect("unpoisoned registry").get(&key) {
            return Ok((e.clone(), true));
        }
        // Compile outside the lock: a slow lowering must not serialize
        // the whole pool.  Two workers racing on one key both compile
        // (both counted as misses) and the last insert wins — the
        // compilation is deterministic, so the copies are identical.
        let src = oa_blas3::routines::source(routine);
        let outcome = apply_lenient(&src, &entry.script, entry.params)
            .map_err(|e| ("compile/translate", e.to_string()))?;
        let bindings = Bindings::square(n);
        let compiled = CompiledProgram::compile(self.engine, &outcome.program, &bindings)
            .map_err(|e| ("compile/lower", e.to_string()))?;
        let model_gflops = oa_gpusim::perf::evaluate(
            &outcome.program,
            &bindings,
            &self.device,
            routine.flops(n),
            true,
        )
        .ok()
        .map(|rep| rep.gflops);
        let e = Arc::new(CompiledEntry {
            program: outcome.program,
            compiled,
            model_gflops,
        });
        shard
            .lock()
            .expect("unpoisoned registry")
            .insert(key, e.clone());
        Ok((e, false))
    }

    /// Execute one request end to end, optionally returning the executed
    /// buffers (the differential suite compares them bit-for-bit against
    /// a direct engine run).  [`admit`] runs first, so constraint
    /// violations (TRSM sizes off the 64-wide solver tile) fail with a
    /// structured `admission/...` outcome before any tuning or
    /// compilation is spent on them.
    pub fn run_one_buffers(&self, req: &Request) -> (RequestOutcome, Option<Buffers>) {
        self.run_one_buffers_observed(req, &mut |_| {})
    }

    /// [`Registry::run_one_buffers`] with a trace observer for any
    /// tuning the request triggers.
    pub fn run_one_buffers_observed(
        &self,
        req: &Request,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> (RequestOutcome, Option<Buffers>) {
        let t0 = Instant::now();
        let fail = |status: RequestStatus| RequestOutcome {
            request: req.clone(),
            status,
        };
        if let Err(status) = admit(req) {
            return (fail(status), None);
        }
        let entry = match self.resolve_observed(req.routine, req.n, obs) {
            Ok(e) => e,
            Err(reason) => {
                return (
                    fail(RequestStatus::Failed {
                        class: "resolve",
                        reason,
                    }),
                    None,
                )
            }
        };
        let (ce, cache_hit) = match self.compiled(req.routine, &entry, req.n) {
            Ok(x) => x,
            Err((class, reason)) => return (fail(RequestStatus::Failed { class, reason }), None),
        };
        self.finish_one(req, &ce, cache_hit, t0)
    }

    /// Prepare inputs, execute a compiled program, and build the
    /// terminal outcome — the tail every execution path shares.
    fn finish_one(
        &self,
        req: &Request,
        ce: &CompiledEntry,
        cache_hit: bool,
        t0: Instant,
    ) -> (RequestOutcome, Option<Buffers>) {
        let mut bufs = prepare_buffers(&ce.program, req.n, req.seed, req.zero_blanks);
        if let Err(e) = ce.compiled.execute(&mut bufs) {
            return (
                RequestOutcome {
                    request: req.clone(),
                    status: RequestStatus::Failed {
                        class: "exec",
                        reason: e.to_string(),
                    },
                },
                None,
            );
        }
        let (tuned_class, clamped) = size_class_info(req.n);
        let outcome = RequestOutcome {
            request: req.clone(),
            status: RequestStatus::Ok(RequestOk {
                output: match req.routine {
                    RoutineId::Trsm(..) => "B",
                    _ => "C",
                },
                digest: digest_buffers(&bufs),
                cache_hit,
                model_gflops: ce.model_gflops,
                ms: t0.elapsed().as_secs_f64() * 1e3,
                tuned_class,
                clamped,
                engine_hint: self.engine_hint(req.routine),
            }),
        };
        (outcome, Some(bufs))
    }

    /// Execute one request end to end.
    pub fn run_one(&self, req: &Request) -> RequestOutcome {
        self.run_one_buffers(req).0
    }

    /// Execute one request with a trace observer.
    pub fn run_one_observed(
        &self,
        req: &Request,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> RequestOutcome {
        self.run_one_buffers_observed(req, obs).0
    }

    /// Execute a coalesced group of requests sharing one
    /// `(routine, n)` — the dynamic-batching hot path of
    /// `oa serve --listen`.  The tuned script is resolved and the
    /// program fetched/compiled **once**; every member then executes
    /// against the shared compiled entry with its own seed/buffers.
    /// Outcomes are in group order, identical to running each request
    /// through [`Registry::run_one`] (the first member carries the real
    /// cache provenance; later members are hits by construction).
    pub fn run_group(&self, reqs: &[Request]) -> Vec<RequestOutcome> {
        self.run_group_observed(reqs, &mut |_| {})
    }

    /// [`Registry::run_group`] with a trace observer.
    pub fn run_group_observed(
        &self,
        reqs: &[Request],
        obs: &mut dyn FnMut(TuneEvent),
    ) -> Vec<RequestOutcome> {
        let mut out = Vec::with_capacity(reqs.len());
        let mut shared: Option<(RoutineId, i64, Arc<CompiledEntry>)> = None;
        for req in reqs {
            let t0 = Instant::now();
            if let Err(status) = admit(req) {
                out.push(RequestOutcome {
                    request: req.clone(),
                    status,
                });
                continue;
            }
            let (ce, cache_hit) = match &shared {
                // Every request after the first reuses the group's
                // compiled program: a cache hit by construction.  The
                // key check keeps a mis-coalesced group correct (it
                // falls back to its own resolve) instead of running the
                // wrong program.
                Some((r, n, ce)) if *r == req.routine && *n == req.n => (ce.clone(), true),
                _ => {
                    let entry = match self.resolve_observed(req.routine, req.n, obs) {
                        Ok(e) => e,
                        Err(reason) => {
                            out.push(RequestOutcome {
                                request: req.clone(),
                                status: RequestStatus::Failed {
                                    class: "resolve",
                                    reason,
                                },
                            });
                            continue;
                        }
                    };
                    match self.compiled(req.routine, &entry, req.n) {
                        Ok((ce, hit)) => {
                            shared = Some((req.routine, req.n, ce.clone()));
                            (ce, hit)
                        }
                        Err((class, reason)) => {
                            out.push(RequestOutcome {
                                request: req.clone(),
                                status: RequestStatus::Failed { class, reason },
                            });
                            continue;
                        }
                    }
                }
            };
            out.push(self.finish_one(req, &ce, cache_hit, t0).0);
        }
        out
    }

    /// Pre-resolve every distinct `(routine, size class)` a batch needs,
    /// in submission order, on the calling thread.  This is where tuning
    /// happens — sequentially, so the trace stream stays a well-formed
    /// series of `begin…summary` tunes instead of an interleaved mess
    /// from concurrent workers.
    pub fn warm(&self, reqs: &[Request], obs: &mut dyn FnMut(TuneEvent)) {
        for req in reqs {
            let _ = self.resolve_observed(req.routine, req.n, obs);
        }
    }

    /// Execute a batch on `threads` workers with compile-once/run-many
    /// semantics: warm (tune anything unresolved), drain the requests
    /// through the shared-queue pool, account the batch, and emit
    /// [`TuneEvent::Batch`].  Outcomes are in submission order and
    /// bit-identical for any `threads` value.
    pub fn run_batch(
        &self,
        reqs: &[Request],
        threads: usize,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> BatchReport {
        self.warm(reqs, obs);
        let before = self.program_stats();
        let t0 = Instant::now();
        let outcomes = run_jobs(threads, reqs, |_, r| self.run_one(r));
        let wall = t0.elapsed().as_secs_f64();
        let delta = self.program_stats().since(&before);
        let ok = outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Ok(_)))
            .count();
        let stats = BatchStats {
            requests: reqs.len(),
            ok,
            failed: reqs.len() - ok,
            hits: delta.hits,
            misses: delta.misses,
            evictions: delta.evictions,
            threads: threads.max(1).min(reqs.len().max(1)),
            wall_ms: wall * 1e3,
            requests_per_sec: reqs.len() as f64 / wall.max(1e-9),
        };
        obs(TuneEvent::Batch(stats));
        BatchReport { outcomes, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_blas3::types::Trans;

    #[test]
    fn size_class_buckets() {
        assert_eq!(size_class(1), 64);
        assert_eq!(size_class(48), 64);
        assert_eq!(size_class(64), 64);
        assert_eq!(size_class(65), 128);
        assert_eq!(size_class(512), 512);
        assert_eq!(size_class(4096), 1024);
    }

    #[test]
    fn request_json_roundtrip_and_defaults() {
        let r = Request {
            routine: RoutineId::Gemm(Trans::N, Trans::T),
            n: 96,
            seed: 7,
            zero_blanks: false,
            tenant: Some("team-a".into()),
        };
        let back = Request::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.tenant_name(), "team-a");

        let minimal = oa_autotune::json::parse(r#"{"routine": "SYMM-LL"}"#).unwrap();
        let req = Request::from_json(&minimal).unwrap();
        assert_eq!(req.n, 64);
        assert_eq!(req.seed, 0xD15);
        assert!(req.zero_blanks);
        assert_eq!(req.tenant, None);
        assert_eq!(req.tenant_name(), "default");

        assert!(Request::from_json(&oa_autotune::json::parse("{}").unwrap()).is_err());
        assert!(Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "GEMM-NN", "n": 0}"#).unwrap()
        )
        .is_err());
        assert!(Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "NOPE-XX"}"#).unwrap()
        )
        .is_err());
        assert!(Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "GEMM-NN", "tenant": 3}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn negative_seed_is_rejected_not_wrapped() {
        // Pre-fix, `-1 as u64` wrapped to 2^64-1 and silently served a
        // different input set; the parser must refuse instead.
        let err = Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "GEMM-NN", "seed": -1}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("negative"), "unexpected error: {err}");
        let err = Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "GEMM-NN", "seed": 1.5}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("integer"), "unexpected error: {err}");
        // Boundary: zero and large positive seeds still parse.
        let ok = Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "GEMM-NN", "seed": 0}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(ok.seed, 0);
    }

    #[test]
    fn admission_rejects_off_tile_trsm() {
        // TRSM kernels serialize down a 64-wide column tile; any n not a
        // multiple of 64 used to die at kernel launch after tuning spent
        // seconds — admission now front-loads the rejection.
        use oa_blas3::types::{Side, Uplo};
        let bad = Request::new(RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N), 96);
        match admit(&bad) {
            Err(RequestStatus::Failed { class, reason }) => {
                assert_eq!(class, "admission/size-constraint");
                assert!(
                    reason.contains("64"),
                    "reason should name the tile: {reason}"
                );
            }
            other => panic!("expected admission failure, got {other:?}"),
        }
        let good = Request::new(RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N), 128);
        assert!(admit(&good).is_ok());
        // GEMM has no tile constraint at odd sizes.
        assert!(admit(&Request::new(RoutineId::Gemm(Trans::N, Trans::N), 97)).is_ok());
        assert!(matches!(
            admit(&Request::new(RoutineId::Gemm(Trans::N, Trans::N), 0)),
            Err(RequestStatus::Failed {
                class: "admission/size",
                ..
            })
        ));
    }

    #[test]
    fn size_class_info_reports_clamping() {
        // Inside [64, 1024]: natural class, not clamped.
        assert_eq!(size_class_info(64), (64, false));
        assert_eq!(size_class_info(48), (64, false)); // next pow2 is 64
        assert_eq!(size_class_info(1000), (1024, false));
        // Below: n <= 32 has natural class < 64 — clamped up.
        assert_eq!(size_class_info(16), (64, true));
        assert_eq!(size_class_info(32), (64, true));
        assert_eq!(size_class_info(33), (64, false));
        // Above: n > 1024 — clamped down.
        assert_eq!(size_class_info(2048), (1024, true));
        assert_eq!(size_class_info(1025), (1024, true));
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        use oa_loopir::interp::Matrix;
        let mut a = Buffers::new();
        let mut m1 = Matrix::zeros(4, 4);
        m1.fill_pseudo(1);
        let mut m2 = Matrix::zeros(4, 4);
        m2.fill_pseudo(2);
        a.insert("A".into(), m1.clone());
        a.insert("B".into(), m2.clone());
        // Same content, different insertion order: equal digest
        // (HashMap iteration order must not leak).
        let mut b = Buffers::new();
        b.insert("B".into(), m2.clone());
        b.insert("A".into(), m1.clone());
        assert_eq!(digest_buffers(&a), digest_buffers(&b));
        // One flipped bit: different digest.
        let v = b.get_mut("A").unwrap().get(0, 0);
        b.get_mut("A").unwrap().set(0, 0, v + 1.0);
        assert_ne!(digest_buffers(&a), digest_buffers(&b));
    }

    #[test]
    fn outcome_json_has_stable_status_fields() {
        let mut req = Request::new(RoutineId::Gemm(Trans::N, Trans::N), 64);
        req.tenant = Some("acme".into());
        let ok = RequestOutcome {
            request: req.clone(),
            status: RequestStatus::Ok(RequestOk {
                output: "C",
                digest: 0xABCD,
                cache_hit: true,
                model_gflops: Some(123.0),
                ms: 1.5,
                tuned_class: 64,
                clamped: false,
                engine_hint: Some("native".into()),
            }),
        };
        let line = ok.to_json(3).compact();
        assert!(line.contains("\"id\":3"));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"cache\":\"hit\""));
        assert!(line.contains("000000000000abcd"));
        assert!(line.contains("\"tenant\":\"acme\""));
        assert!(line.contains("\"tuned_class\":64"));
        assert!(line.contains("\"engine_hint\":\"native\""));
        // `clamped` only appears when true.
        assert!(!line.contains("clamped"));

        let mut clamped_ok = ok.clone();
        if let RequestStatus::Ok(ref mut o) = clamped_ok.status {
            o.clamped = true;
        }
        assert!(clamped_ok.to_json(3).compact().contains("\"clamped\":true"));

        let bad = RequestOutcome {
            request: req,
            status: RequestStatus::Failed {
                class: "resolve",
                reason: "no variants".into(),
            },
        };
        let line = bad.to_json(0).compact();
        assert!(line.contains("\"status\":\"error\""));
        assert!(line.contains("\"class\":\"resolve\""));
    }
}
