//! The batched routine-dispatch layer: tuned once, called many times.
//!
//! The paper's endgame (Sec. V) is a *library* — each routine tuned once
//! per device, then invoked repeatedly.  Everything below `oa-core`
//! executes one request end to end; this module adds the layer that
//! serves **many independent requests against already-tuned scripts**:
//!
//! * [`Registry`] — per [`DeviceSpec`], resolves a routine through the
//!   tuning cache (tune-on-miss via `tune_fresh_on`), lowers the winning
//!   script **once** through tape→bytecode, and memoizes the compiled
//!   program in a bounded LRU keyed by
//!   `(routine, device, param-point, size)`;
//! * [`Registry::run_batch`] — a batch of mixed [`Request`]s drained by
//!   the shared-queue worker pool ([`oa_gpusim::dispatch::run_jobs`])
//!   with compile-once/run-many semantics and **deterministic
//!   per-request results regardless of scheduling order** (the dispatch
//!   test battery runs the same batch across engines, thread counts,
//!   submission orders and LRU capacities and demands bit-identical
//!   digests);
//! * [`BatchStats`] — per-batch hits/misses/evictions and requests/sec,
//!   emitted as a [`TuneEvent::Batch`] through the same observer channel
//!   the tuner traces through (`OA_TRACE`, `oa trace-check`).
//!
//! Two size notions keep tuning amortized without compromising
//! correctness: routines are *tuned* per [`size_class`] (problem sizes
//! bucketed to a power of two, so a thousand nearby sizes share one
//! sweep) but *compiled* per exact request size (the winning script is
//! re-applied under the request's own bindings — the same replay the
//! Fig. 13 scaling study performs), so results are bit-identical to a
//! direct `engine::exec_program_on` run of the same script/params.
//!
//! The CLI face is `oa serve` (JSONL requests in, JSONL results out);
//! the throughput harness is `bench_dispatch` (`BENCH_dispatch.json`).

use oa_autotune::json::Json;
use oa_autotune::report::BatchStats;
use oa_autotune::{tune_fresh_on, validate_record, TuneCache, TuneEvent, TunedRecord};
use oa_blas3::types::RoutineId;
use oa_blas3::verify::prepare_buffers;
use oa_epod::translator::apply_lenient;
use oa_epod::Script;
use oa_gpusim::dispatch::{run_jobs, CompiledProgram, Lru};
use oa_gpusim::{DeviceSpec, ExecEngine};
use oa_loopir::interp::{Bindings, Buffers};
use oa_loopir::transform::TileParams;
use oa_loopir::Program;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One dispatch request: execute `routine` at problem size `n` on inputs
/// deterministically generated from `seed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Request {
    /// The BLAS3 routine.
    pub routine: RoutineId,
    /// Square problem size.
    pub n: i64,
    /// Input-generation seed (see `oa_blas3::verify::prepare_buffers`).
    pub seed: u64,
    /// Zero the blank triangle of `A` (the storage contract the packed
    /// routines promise).
    pub zero_blanks: bool,
}

impl Request {
    /// A request with the serve defaults (`seed` 0xD15, blanks zeroed).
    pub fn new(routine: RoutineId, n: i64) -> Request {
        Request {
            routine,
            n,
            seed: 0xD15,
            zero_blanks: true,
        }
    }

    /// Parse one JSONL request line:
    /// `{"routine": "GEMM-NN", "n": 64, "seed": 7, "zero_blanks": true}`
    /// (`routine` required; `n` defaults to 64, `seed` to 0xD15,
    /// `zero_blanks` to true).
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let name = doc
            .get("routine")
            .and_then(Json::as_str)
            .ok_or("missing `routine` field")?;
        let routine = RoutineId::parse(name).ok_or_else(|| format!("unknown routine `{name}`"))?;
        let n = match doc.get("n") {
            None => 64,
            Some(v) => v.as_i64().ok_or("field `n` is not an integer")?,
        };
        if n < 1 {
            return Err(format!("problem size {n} out of range"));
        }
        let seed = match doc.get("seed") {
            None => 0xD15,
            Some(v) => v.as_i64().ok_or("field `seed` is not an integer")? as u64,
        };
        let zero_blanks = match doc.get("zero_blanks") {
            None => true,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("field `zero_blanks` is not a boolean".into()),
        };
        Ok(Request {
            routine,
            n,
            seed,
            zero_blanks,
        })
    }

    /// The request as a JSONL object (the `oa serve` input format).
    pub fn to_json(&self) -> Json {
        Json::Obj(BTreeMap::from([
            ("routine".to_string(), Json::Str(self.routine.name())),
            ("n".to_string(), Json::Int(self.n)),
            ("seed".to_string(), Json::Int(self.seed as i64)),
            ("zero_blanks".to_string(), Json::Bool(self.zero_blanks)),
        ]))
    }
}

/// A successful request execution.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestOk {
    /// The routine's output buffer (`B` for TRSM, `C` otherwise).
    pub output: &'static str,
    /// FNV-1a digest over **every** buffer's bit pattern after execution
    /// ([`digest_buffers`]) — the value the differential and concurrency
    /// suites compare.
    pub digest: u64,
    /// Whether the compiled program came from the LRU (`true`) or was
    /// compiled by this request (`false`).
    pub cache_hit: bool,
    /// Performance-model GFLOPS of the compiled kernel at this size,
    /// when the model could evaluate it.
    pub model_gflops: Option<f64>,
    /// Wall time of this request (resolve + execute), milliseconds.
    pub ms: f64,
}

/// Terminal status of one request.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestStatus {
    /// Executed; digest and cache provenance attached.
    Ok(RequestOk),
    /// Failed in resolution, compilation or execution.
    Failed {
        /// Stable failure class (`resolve`, `compile/translate`,
        /// `compile/lower`, `exec`).
        class: &'static str,
        /// Human-readable cause.
        reason: String,
    },
}

/// One request plus its terminal status, in submission order.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestOutcome {
    /// The request as submitted.
    pub request: Request,
    /// What happened.
    pub status: RequestStatus,
}

impl RequestOutcome {
    /// The outcome as a JSONL object (the `oa serve` output format);
    /// `id` is the request's submission index.
    pub fn to_json(&self, id: usize) -> Json {
        let mut fields = BTreeMap::from([
            ("id".to_string(), Json::Int(id as i64)),
            (
                "routine".to_string(),
                Json::Str(self.request.routine.name()),
            ),
            ("n".to_string(), Json::Int(self.request.n)),
            ("seed".to_string(), Json::Int(self.request.seed as i64)),
        ]);
        match &self.status {
            RequestStatus::Ok(ok) => {
                fields.insert("status".to_string(), Json::Str("ok".into()));
                fields.insert("output".to_string(), Json::Str(ok.output.into()));
                fields.insert(
                    "digest".to_string(),
                    Json::Str(format!("{:016x}", ok.digest)),
                );
                fields.insert(
                    "cache".to_string(),
                    Json::Str(if ok.cache_hit { "hit" } else { "miss" }.into()),
                );
                if let Some(g) = ok.model_gflops {
                    fields.insert("model_gflops".to_string(), Json::Num(g));
                }
                fields.insert("ms".to_string(), Json::Num(ok.ms));
            }
            RequestStatus::Failed { class, reason } => {
                fields.insert("status".to_string(), Json::Str("error".into()));
                fields.insert("class".to_string(), Json::Str((*class).into()));
                fields.insert("reason".to_string(), Json::Str(reason.clone()));
            }
        }
        Json::Obj(fields)
    }
}

/// A batch's outcomes (submission order) plus its accounting.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per request, aligned with the submitted slice.
    pub outcomes: Vec<RequestOutcome>,
    /// The batch counters also emitted as [`TuneEvent::Batch`].
    pub stats: BatchStats,
}

/// The size class a problem size is *tuned* at: the next power of two,
/// clamped to `[64, 1024]`.  Requests inside one class share a single
/// tuning sweep; compilation still happens at the exact request size, so
/// size classes never change results — only how often the tuner runs.
pub fn size_class(n: i64) -> i64 {
    (n.max(1) as u64).next_power_of_two().clamp(64, 1024) as i64
}

/// FNV-1a fingerprint over every buffer (sorted by name): shapes and the
/// exact bit pattern of every element, inputs included — two executions
/// agree on this digest iff they are bit-identical observably.
pub fn digest_buffers(bufs: &Buffers) -> u64 {
    let mut names: Vec<&String> = bufs.keys().collect();
    names.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for name in names {
        let m = &bufs[name];
        eat(name.as_bytes());
        eat(&m.rows.to_le_bytes());
        eat(&m.cols.to_le_bytes());
        for v in &m.data {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    h
}

/// A routine resolved through the tuning cache: the winning script and
/// tile-parameter point, shared by every size in the class.
#[derive(Clone, Debug)]
pub struct TunedEntry {
    /// The winning EPOD script.
    pub script: Script,
    /// The winning tile parameters (the LRU key's param-point).
    pub params: TileParams,
}

/// A compiled program plus everything needed to serve requests with it.
pub struct CompiledEntry {
    /// The transformed program (buffer allocation needs its array
    /// declarations).
    pub program: Program,
    /// The engine-lowered, ready-to-run form.
    pub compiled: CompiledProgram,
    /// Performance-model GFLOPS at this size, when evaluable.
    pub model_gflops: Option<f64>,
}

/// `(routine, device, param-point, size)` — the precompiled-program LRU
/// key.  The param-point pins the exact winning script application; the
/// size is the request's exact `n` (programs are size-specialized — see
/// [`size_class`] for the coarser *tuning* granularity).
type ProgramKey = (String, String, (i64, i64, i64, i64, i64, usize), i64);

type TunedMap = HashMap<(String, i64), Result<Arc<TunedEntry>, String>>;

/// The routine registry: one per device, engine-pinned, holding the
/// tuned-script table and the bounded precompiled-program LRU.
///
/// Thread-safe by construction (`&self` everywhere): the batch executor's
/// workers resolve and execute through one shared registry.
pub struct Registry {
    device: DeviceSpec,
    engine: ExecEngine,
    tune_cache_path: Option<PathBuf>,
    tune_cache: Mutex<TuneCache>,
    tuned: Mutex<TunedMap>,
    programs: Mutex<Lru<ProgramKey, Arc<CompiledEntry>>>,
}

impl Registry {
    /// A registry for `device` with the process-default engine, an
    /// unbounded program store and no persistent tuning cache.
    pub fn new(device: DeviceSpec) -> Registry {
        Registry {
            device,
            engine: oa_gpusim::select_engine(),
            tune_cache_path: None,
            tune_cache: Mutex::new(TuneCache::new()),
            tuned: Mutex::new(HashMap::new()),
            programs: Mutex::new(Lru::new(None)),
        }
    }

    /// Pin the execution engine (tests and the engine-differential suite;
    /// results are engine-invariant, throughput is not).
    pub fn with_engine(mut self, engine: ExecEngine) -> Registry {
        self.engine = engine;
        self
    }

    /// Bound the precompiled-program LRU (`None` = unbounded).  Eviction
    /// never changes results — only the hit rate (the property suite
    /// replays batches at capacity 1 vs unbounded and demands equal
    /// outputs).
    pub fn with_capacity(mut self, capacity: Option<usize>) -> Registry {
        self.programs = Mutex::new(Lru::new(capacity));
        self
    }

    /// Resolve tuning through the persistent JSON cache at `path`
    /// (loaded now; tune-on-miss winners are merged back best-effort
    /// under the cache's lock file).
    pub fn with_tune_cache(mut self, path: PathBuf) -> Registry {
        let (cache, _issues) = TuneCache::load_reporting(&path);
        self.tune_cache = Mutex::new(cache);
        self.tune_cache_path = Some(path);
        self
    }

    /// The registry's device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The registry's pinned engine.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Cumulative program-store counters.
    pub fn program_stats(&self) -> oa_gpusim::LruStats {
        self.programs.lock().expect("unpoisoned registry").stats()
    }

    /// Live compiled programs.
    pub fn programs_len(&self) -> usize {
        self.programs.lock().expect("unpoisoned registry").len()
    }

    /// Drop every compiled program (tuned scripts survive) — the cold
    /// path of `bench_dispatch`.
    pub fn clear_programs(&self) {
        self.programs.lock().expect("unpoisoned registry").clear();
    }

    /// Resolve `routine` at `n`'s size class through the tuning cache,
    /// sweeping on a miss and reporting every tuner/cache event through
    /// `obs`.  The resolution is memoized — failures too, so a routine
    /// the tuner cannot handle fails every request fast instead of
    /// re-sweeping per request.
    pub fn resolve_observed(
        &self,
        routine: RoutineId,
        n: i64,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> Result<Arc<TunedEntry>, String> {
        let class = size_class(n);
        let key = (routine.name(), class);
        if let Some(res) = self.tuned.lock().expect("unpoisoned registry").get(&key) {
            return res.clone();
        }

        // Consult the tuning cache (stale records are reported and fall
        // through to a fresh sweep, exactly like `tune_at`).
        let mut replayed: Option<(TunedEntry, f64)> = None;
        {
            let cache = self.tune_cache.lock().expect("unpoisoned registry");
            if let Some(rec) = cache.get(routine, &self.device, class) {
                match validate_record(routine, rec) {
                    Ok(script) => {
                        replayed = Some((
                            TunedEntry {
                                script,
                                params: rec.tile_params(),
                            },
                            rec.gflops,
                        ));
                    }
                    Err(issue) => obs(TuneEvent::Cache(issue)),
                }
            }
        }
        let res: Result<Arc<TunedEntry>, String> = match replayed {
            Some((entry, gflops)) => {
                obs(TuneEvent::Replayed {
                    routine: routine.name(),
                    gflops,
                });
                Ok(Arc::new(entry))
            }
            None => match tune_fresh_on(self.engine, routine, &self.device, class, obs) {
                Ok(t) => {
                    let rec = TunedRecord::from_kernel(&t);
                    self.tune_cache
                        .lock()
                        .expect("unpoisoned registry")
                        .insert(rec.clone());
                    // Persistence is best-effort (under the cache's lock
                    // file); an unwritable path degrades to re-tuning in
                    // the next process, never to a wrong result.
                    if let Some(path) = &self.tune_cache_path {
                        let _ = TuneCache::update(path, |c| c.insert(rec));
                    }
                    Ok(Arc::new(TunedEntry {
                        script: t.script,
                        params: t.params,
                    }))
                }
                Err(e) => Err(e.to_string()),
            },
        };

        // First writer wins, so a racing double-resolution (both threads
        // missed before either inserted) memoizes one deterministic
        // entry — the sweep itself is deterministic, so either copy is
        // the same winner.
        let mut tuned = self.tuned.lock().expect("unpoisoned registry");
        tuned.entry(key).or_insert(res.clone());
        res
    }

    /// [`Registry::resolve_observed`] without a trace observer.
    pub fn resolve(&self, routine: RoutineId, n: i64) -> Result<Arc<TunedEntry>, String> {
        self.resolve_observed(routine, n, &mut |_| {})
    }

    /// Fetch (or compile) the program for `(routine, entry, n)` through
    /// the LRU.  Returns the entry and whether it was a cache hit.
    fn compiled(
        &self,
        routine: RoutineId,
        entry: &TunedEntry,
        n: i64,
    ) -> Result<(Arc<CompiledEntry>, bool), (&'static str, String)> {
        let p = entry.params;
        let key: ProgramKey = (
            routine.name(),
            self.device.name.to_string(),
            (p.ty, p.tx, p.thr_i, p.thr_j, p.kb, p.unroll),
            n,
        );
        if let Some(e) = self.programs.lock().expect("unpoisoned registry").get(&key) {
            return Ok((e.clone(), true));
        }
        // Compile outside the lock: a slow lowering must not serialize
        // the whole pool.  Two workers racing on one key both compile
        // (both counted as misses) and the last insert wins — the
        // compilation is deterministic, so the copies are identical.
        let src = oa_blas3::routines::source(routine);
        let outcome = apply_lenient(&src, &entry.script, entry.params)
            .map_err(|e| ("compile/translate", e.to_string()))?;
        let bindings = Bindings::square(n);
        let compiled = CompiledProgram::compile(self.engine, &outcome.program, &bindings)
            .map_err(|e| ("compile/lower", e.to_string()))?;
        let model_gflops = oa_gpusim::perf::evaluate(
            &outcome.program,
            &bindings,
            &self.device,
            routine.flops(n),
            true,
        )
        .ok()
        .map(|rep| rep.gflops);
        let e = Arc::new(CompiledEntry {
            program: outcome.program,
            compiled,
            model_gflops,
        });
        self.programs
            .lock()
            .expect("unpoisoned registry")
            .insert(key, e.clone());
        Ok((e, false))
    }

    /// Execute one request end to end, optionally returning the executed
    /// buffers (the differential suite compares them bit-for-bit against
    /// a direct engine run).
    pub fn run_one_buffers(&self, req: &Request) -> (RequestOutcome, Option<Buffers>) {
        let t0 = Instant::now();
        let fail = |class: &'static str, reason: String| RequestOutcome {
            request: *req,
            status: RequestStatus::Failed { class, reason },
        };
        let entry = match self.resolve(req.routine, req.n) {
            Ok(e) => e,
            Err(reason) => return (fail("resolve", reason), None),
        };
        let (ce, cache_hit) = match self.compiled(req.routine, &entry, req.n) {
            Ok(x) => x,
            Err((class, reason)) => return (fail(class, reason), None),
        };
        let mut bufs = prepare_buffers(&ce.program, req.n, req.seed, req.zero_blanks);
        if let Err(e) = ce.compiled.execute(&mut bufs) {
            return (fail("exec", e.to_string()), None);
        }
        let outcome = RequestOutcome {
            request: *req,
            status: RequestStatus::Ok(RequestOk {
                output: match req.routine {
                    RoutineId::Trsm(..) => "B",
                    _ => "C",
                },
                digest: digest_buffers(&bufs),
                cache_hit,
                model_gflops: ce.model_gflops,
                ms: t0.elapsed().as_secs_f64() * 1e3,
            }),
        };
        (outcome, Some(bufs))
    }

    /// Execute one request end to end.
    pub fn run_one(&self, req: &Request) -> RequestOutcome {
        self.run_one_buffers(req).0
    }

    /// Pre-resolve every distinct `(routine, size class)` a batch needs,
    /// in submission order, on the calling thread.  This is where tuning
    /// happens — sequentially, so the trace stream stays a well-formed
    /// series of `begin…summary` tunes instead of an interleaved mess
    /// from concurrent workers.
    pub fn warm(&self, reqs: &[Request], obs: &mut dyn FnMut(TuneEvent)) {
        for req in reqs {
            let _ = self.resolve_observed(req.routine, req.n, obs);
        }
    }

    /// Execute a batch on `threads` workers with compile-once/run-many
    /// semantics: warm (tune anything unresolved), drain the requests
    /// through the shared-queue pool, account the batch, and emit
    /// [`TuneEvent::Batch`].  Outcomes are in submission order and
    /// bit-identical for any `threads` value.
    pub fn run_batch(
        &self,
        reqs: &[Request],
        threads: usize,
        obs: &mut dyn FnMut(TuneEvent),
    ) -> BatchReport {
        self.warm(reqs, obs);
        let before = self.program_stats();
        let t0 = Instant::now();
        let outcomes = run_jobs(threads, reqs, |_, r| self.run_one(r));
        let wall = t0.elapsed().as_secs_f64();
        let delta = self.program_stats().since(&before);
        let ok = outcomes
            .iter()
            .filter(|o| matches!(o.status, RequestStatus::Ok(_)))
            .count();
        let stats = BatchStats {
            requests: reqs.len(),
            ok,
            failed: reqs.len() - ok,
            hits: delta.hits,
            misses: delta.misses,
            evictions: delta.evictions,
            threads: threads.max(1).min(reqs.len().max(1)),
            wall_ms: wall * 1e3,
            requests_per_sec: reqs.len() as f64 / wall.max(1e-9),
        };
        obs(TuneEvent::Batch(stats));
        BatchReport { outcomes, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_blas3::types::Trans;

    #[test]
    fn size_class_buckets() {
        assert_eq!(size_class(1), 64);
        assert_eq!(size_class(48), 64);
        assert_eq!(size_class(64), 64);
        assert_eq!(size_class(65), 128);
        assert_eq!(size_class(512), 512);
        assert_eq!(size_class(4096), 1024);
    }

    #[test]
    fn request_json_roundtrip_and_defaults() {
        let r = Request {
            routine: RoutineId::Gemm(Trans::N, Trans::T),
            n: 96,
            seed: 7,
            zero_blanks: false,
        };
        let back = Request::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);

        let minimal = oa_autotune::json::parse(r#"{"routine": "SYMM-LL"}"#).unwrap();
        let req = Request::from_json(&minimal).unwrap();
        assert_eq!(req.n, 64);
        assert_eq!(req.seed, 0xD15);
        assert!(req.zero_blanks);

        assert!(Request::from_json(&oa_autotune::json::parse("{}").unwrap()).is_err());
        assert!(Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "GEMM-NN", "n": 0}"#).unwrap()
        )
        .is_err());
        assert!(Request::from_json(
            &oa_autotune::json::parse(r#"{"routine": "NOPE-XX"}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        use oa_loopir::interp::Matrix;
        let mut a = Buffers::new();
        let mut m1 = Matrix::zeros(4, 4);
        m1.fill_pseudo(1);
        let mut m2 = Matrix::zeros(4, 4);
        m2.fill_pseudo(2);
        a.insert("A".into(), m1.clone());
        a.insert("B".into(), m2.clone());
        // Same content, different insertion order: equal digest
        // (HashMap iteration order must not leak).
        let mut b = Buffers::new();
        b.insert("B".into(), m2.clone());
        b.insert("A".into(), m1.clone());
        assert_eq!(digest_buffers(&a), digest_buffers(&b));
        // One flipped bit: different digest.
        let v = b.get_mut("A").unwrap().get(0, 0);
        b.get_mut("A").unwrap().set(0, 0, v + 1.0);
        assert_ne!(digest_buffers(&a), digest_buffers(&b));
    }

    #[test]
    fn outcome_json_has_stable_status_fields() {
        let req = Request::new(RoutineId::Gemm(Trans::N, Trans::N), 64);
        let ok = RequestOutcome {
            request: req,
            status: RequestStatus::Ok(RequestOk {
                output: "C",
                digest: 0xABCD,
                cache_hit: true,
                model_gflops: Some(123.0),
                ms: 1.5,
            }),
        };
        let line = ok.to_json(3).compact();
        assert!(line.contains("\"id\":3"));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"cache\":\"hit\""));
        assert!(line.contains("000000000000abcd"));

        let bad = RequestOutcome {
            request: req,
            status: RequestStatus::Failed {
                class: "resolve",
                reason: "no variants".into(),
            },
        };
        let line = bad.to_json(0).compact();
        assert!(line.contains("\"status\":\"error\""));
        assert!(line.contains("\"class\":\"resolve\""));
    }
}
