//! The `OA_TRACE` rendering sink for the tuner's structured events.
//!
//! The tuner emits [`TuneEvent`]s through an observer callback (the event
//! types live in `oa_autotune::report`, below this crate in the
//! dependency graph); this module turns them into a human-readable
//! (`pretty`) or machine-readable (`json`, one object per line) stream on
//! **stderr** — stdout stays reserved for the command's own output, so
//! `oa tune ... --trace json 2> trace.jsonl` captures a clean JSONL file.
//!
//! Every JSON line carries an `"event"` discriminator; candidate lines
//! carry a terminal `"outcome"` label (`won`, `lost`, `pruned`,
//! `skipped`, `degenerated`, `errored`).  [`check_stream`] validates a
//! captured stream: well-formed lines, one span per pipeline stage, a
//! terminal outcome on every candidate, at most one `model` line per tune
//! with consistent predicted-vs-actual accounting, and summary counts
//! that add up — the invariant CI asserts.

use oa_autotune::json::{parse, Json};
use oa_autotune::report::{CandidateFate, CandidateOutcome, Stage, TuneEvent};
use std::collections::BTreeMap;
use std::io::Write;

/// How trace events are rendered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No trace output.
    #[default]
    Off,
    /// One JSON object per event, one per line, on stderr.
    Json,
    /// Aligned human-readable lines on stderr.
    Pretty,
}

impl TraceMode {
    /// Parse a mode name (`off`, `json`, `pretty`).
    pub fn parse(name: &str) -> Option<TraceMode> {
        match name.to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TraceMode::Off),
            "json" => Some(TraceMode::Json),
            "pretty" | "1" => Some(TraceMode::Pretty),
            _ => None,
        }
    }

    /// The mode selected by the `OA_TRACE` environment variable
    /// (unset or unrecognized = off).
    pub fn from_env() -> TraceMode {
        std::env::var("OA_TRACE")
            .ok()
            .and_then(|v| TraceMode::parse(&v))
            .unwrap_or(TraceMode::Off)
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

fn candidate_json(o: &CandidateOutcome) -> Json {
    let mut fields = vec![
        ("event", Json::Str("candidate".into())),
        ("outcome", Json::Str(o.fate.label().into())),
        (
            "script",
            o.script.map_or(Json::Null, |s| Json::Int(s as i64)),
        ),
        (
            "params",
            o.params.map_or(Json::Null, |p| {
                Json::Arr(
                    [p.ty, p.tx, p.thr_i, p.thr_j, p.kb, p.unroll as i64]
                        .iter()
                        .map(|&v| Json::Int(v))
                        .collect(),
                )
            }),
        ),
        ("gflops", opt_num(o.gflops)),
    ];
    match &o.fate {
        CandidateFate::Pruned { reason } => {
            fields.push(("reason", Json::Str(reason.clone())));
        }
        CandidateFate::Skipped { predicted } => {
            fields.push(("predicted", Json::Num(*predicted)));
        }
        CandidateFate::Degenerated { component, reason } => {
            fields.push(("component", Json::Str(component.clone())));
            fields.push(("reason", Json::Str(reason.clone())));
        }
        CandidateFate::Errored {
            stage,
            class,
            reason,
        } => {
            fields.push(("stage", Json::Str(stage.name().into())));
            fields.push(("class", Json::Str(class.clone())));
            fields.push(("reason", Json::Str(reason.clone())));
        }
        CandidateFate::Won | CandidateFate::Lost => {}
    }
    obj(fields)
}

/// One event as the JSON object written in `json` mode.
pub fn event_json(e: &TuneEvent) -> Json {
    match e {
        TuneEvent::Begin {
            routine,
            device,
            n,
            engine,
        } => obj(vec![
            ("event", Json::Str("begin".into())),
            ("routine", Json::Str(routine.clone())),
            ("device", Json::Str(device.clone())),
            ("n", Json::Int(*n)),
            ("engine", Json::Str((*engine).into())),
        ]),
        TuneEvent::Span { stage, ms, items } => obj(vec![
            ("event", Json::Str("span".into())),
            ("stage", Json::Str(stage.name().into())),
            ("ms", Json::Num(*ms)),
            ("items", Json::Int(*items as i64)),
        ]),
        TuneEvent::Candidate(o) => candidate_json(o),
        TuneEvent::Cache(issue) => obj(vec![
            ("event", Json::Str("cache".into())),
            ("issue", Json::Str(issue.to_string())),
        ]),
        TuneEvent::Replayed { routine, gflops } => obj(vec![
            ("event", Json::Str("replayed".into())),
            ("routine", Json::Str(routine.clone())),
            ("gflops", Json::Num(*gflops)),
        ]),
        TuneEvent::Model(m) => obj(vec![
            ("event", Json::Str("model".into())),
            ("mode", Json::Str(m.mode.into())),
            ("considered", Json::Int(m.considered as i64)),
            ("evaluated", Json::Int(m.evaluated as i64)),
            ("skipped", Json::Int(m.skipped as i64)),
            ("transfer", Json::Bool(m.transfer)),
            (
                "predicted_winner_gflops",
                opt_num(m.predicted_winner_gflops),
            ),
            ("actual_winner_gflops", opt_num(m.actual_winner_gflops)),
        ]),
        TuneEvent::Summary {
            variants,
            points,
            evaluated,
            pruned,
            degenerated,
            errored,
            skipped,
            winner_gflops,
        } => obj(vec![
            ("event", Json::Str("summary".into())),
            ("variants", Json::Int(*variants as i64)),
            ("points", Json::Int(*points as i64)),
            ("evaluated", Json::Int(*evaluated as i64)),
            ("pruned", Json::Int(*pruned as i64)),
            ("degenerated", Json::Int(*degenerated as i64)),
            ("errored", Json::Int(*errored as i64)),
            ("skipped", Json::Int(*skipped as i64)),
            ("winner_gflops", opt_num(*winner_gflops)),
        ]),
        TuneEvent::Batch(b) => obj(vec![
            ("event", Json::Str("batch".into())),
            ("requests", Json::Int(b.requests as i64)),
            ("ok", Json::Int(b.ok as i64)),
            ("failed", Json::Int(b.failed as i64)),
            ("hits", Json::Int(b.hits as i64)),
            ("misses", Json::Int(b.misses as i64)),
            ("evictions", Json::Int(b.evictions as i64)),
            ("threads", Json::Int(b.threads as i64)),
            ("wall_ms", Json::Num(b.wall_ms)),
            ("requests_per_sec", Json::Num(b.requests_per_sec)),
        ]),
        TuneEvent::Serve(s) => obj(vec![
            ("event", Json::Str("serve".into())),
            ("admitted", Json::Int(s.admitted as i64)),
            ("completed", Json::Int(s.completed as i64)),
            ("ok", Json::Int(s.ok as i64)),
            ("failed", Json::Int(s.failed as i64)),
            ("rejected", Json::Int(s.rejected as i64)),
            ("clamped", Json::Int(s.clamped as i64)),
            ("batches", Json::Int(s.batches as i64)),
            ("max_batch", Json::Int(s.max_batch as i64)),
            ("mean_batch", Json::Num(s.mean_batch)),
            ("p50_ms", Json::Num(s.p50_ms)),
            ("p99_ms", Json::Num(s.p99_ms)),
            ("hits", Json::Int(s.hits as i64)),
            ("misses", Json::Int(s.misses as i64)),
            ("tenants", Json::Int(s.tenants as i64)),
            ("wall_ms", Json::Num(s.wall_ms)),
        ]),
        TuneEvent::NativeCoverage(c) => obj(vec![
            ("event", Json::Str("native_coverage".into())),
            ("routine", Json::Str(c.routine.clone())),
            ("regions", Json::Int(c.regions as i64)),
            ("entries", Json::Int(c.entries as i64)),
            ("fallbacks", Json::Int(c.fallbacks as i64)),
            (
                "rejects",
                Json::Obj(
                    c.rejects
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                        .collect::<BTreeMap<_, _>>(),
                ),
            ),
        ]),
        TuneEvent::Fuse(f) => {
            let edges = |es: &[(String, String, String)]| {
                Json::Arr(
                    es.iter()
                        .map(|(p, c, k)| {
                            obj(vec![
                                ("producer", Json::Str(p.clone())),
                                ("consumer", Json::Str(c.clone())),
                                ("kind", Json::Str(k.clone())),
                            ])
                        })
                        .collect(),
                )
            };
            obj(vec![
                ("event", Json::Str("fuse".into())),
                ("shape", Json::Str(f.shape.clone())),
                ("n", Json::Int(f.n)),
                ("nodes", Json::Int(f.nodes as i64)),
                ("units", Json::Int(f.units as i64)),
                ("fused", edges(&f.fused)),
                ("rejected", edges(&f.rejected)),
            ])
        }
    }
}

/// One event as the aligned line written in `pretty` mode.
pub fn event_pretty(e: &TuneEvent) -> String {
    match e {
        TuneEvent::Begin {
            routine,
            device,
            n,
            engine,
        } => format!("tune  {routine} on {device} (n = {n}, engine {engine})"),
        TuneEvent::Span { stage, ms, items } => {
            format!("span  {:<9} {items:>5} items  {ms:>8.1} ms", stage.name())
        }
        TuneEvent::Candidate(o) => {
            let place = match (o.script, &o.params) {
                (Some(s), Some(p)) => format!(
                    "script {s} ({},{},{},{},{},{})",
                    p.ty, p.tx, p.thr_i, p.thr_j, p.kb, p.unroll
                ),
                _ => "compose".to_string(),
            };
            let detail = match &o.fate {
                CandidateFate::Won | CandidateFate::Lost => {
                    o.gflops.map_or(String::new(), |g| format!("{g:.1} GFLOPS"))
                }
                CandidateFate::Pruned { reason } => reason.clone(),
                CandidateFate::Skipped { predicted } => {
                    format!("predicted {predicted:.1} GFLOPS (early exit)")
                }
                CandidateFate::Degenerated { component, reason } => {
                    format!("{component}: {reason}")
                }
                CandidateFate::Errored { class, reason, .. } => format!("{class}: {reason}"),
            };
            format!("cand  {:<11} {place}  {detail}", o.fate.label())
        }
        TuneEvent::Cache(issue) => format!("cache {issue}"),
        TuneEvent::Replayed { routine, gflops } => {
            format!("tune  {routine} replayed from cache ({gflops:.1} GFLOPS)")
        }
        TuneEvent::Model(m) => format!(
            "model {} ranked {} points: {} evaluated, {} skipped{}{}",
            m.mode,
            m.considered,
            m.evaluated,
            m.skipped,
            if m.transfer { " (transfer-seeded)" } else { "" },
            match (m.predicted_winner_gflops, m.actual_winner_gflops) {
                (Some(p), Some(a)) => format!(" — winner predicted {p:.1}, actual {a:.1} GFLOPS"),
                _ => String::new(),
            }
        ),
        TuneEvent::Summary {
            variants,
            points,
            evaluated,
            pruned,
            degenerated,
            errored,
            skipped,
            winner_gflops,
        } => format!(
            "done  {variants} variants, {points} points: {evaluated} evaluated, \
             {pruned} pruned, {degenerated} degenerated, {errored} errored, \
             {skipped} skipped{}",
            winner_gflops.map_or(String::new(), |g| format!(" — winner {g:.1} GFLOPS"))
        ),
        TuneEvent::Batch(b) => format!(
            "batch {} requests ({} ok, {} failed) on {} thread(s): \
             {} hits, {} misses, {} evictions, {:.1} ms ({:.0} req/s)",
            b.requests,
            b.ok,
            b.failed,
            b.threads,
            b.hits,
            b.misses,
            b.evictions,
            b.wall_ms,
            b.requests_per_sec
        ),
        TuneEvent::Serve(s) => format!(
            "serve {} admitted ({} ok, {} failed, {} rejected, {} clamped) in \
             {} batch(es, max {}, mean {:.1}): p50 {:.2} ms, p99 {:.2} ms, \
             {} hits, {} misses, {} tenant(s), {:.1} ms up",
            s.admitted,
            s.ok,
            s.failed,
            s.rejected,
            s.clamped,
            s.batches,
            s.max_batch,
            s.mean_batch,
            s.p50_ms,
            s.p99_ms,
            s.hits,
            s.misses,
            s.tenants,
            s.wall_ms
        ),
        TuneEvent::NativeCoverage(c) => {
            let rejects = if c.rejects.is_empty() {
                "none".to_string()
            } else {
                c.rejects
                    .iter()
                    .map(|(k, v)| format!("{k}×{v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            format!(
                "nativ {} {} region(s): {} entries, {} fallbacks, rejects {rejects}",
                c.routine, c.regions, c.entries, c.fallbacks
            )
        }
        TuneEvent::Fuse(f) => {
            let list = |es: &[(String, String, String)]| {
                es.iter()
                    .map(|(p, c, k)| format!("{p}->{c} ({k})"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            format!(
                "fuse  {} (n = {}): {} node(s) in {} unit(s), fused [{}], rejected [{}]",
                f.shape,
                f.n,
                f.nodes,
                f.units,
                list(&f.fused),
                list(&f.rejected)
            )
        }
    }
}

/// Write one event to `out` in the given mode (no-op when `Off`).
pub fn emit(mode: TraceMode, e: &TuneEvent, out: &mut dyn Write) {
    let line = match mode {
        TraceMode::Off => return,
        TraceMode::Json => event_json(e).compact(),
        TraceMode::Pretty => event_pretty(e),
    };
    let _ = writeln!(out, "{line}");
}

/// An observer callback rendering every event to **stderr** in `mode` —
/// the argument `oa tune --trace ...` hands to the tuner.
pub fn stderr_observer(mode: TraceMode) -> impl FnMut(TuneEvent) {
    move |e| emit(mode, &e, &mut std::io::stderr().lock())
}

/// Validate a captured `json`-mode trace stream (the CI check).
///
/// Checks, per tune (`begin` ... `summary`):
/// * every non-empty line parses as a JSON object with an `"event"` field;
/// * a fresh tune has exactly one span per pipeline stage;
/// * every candidate line has a terminal outcome label and, for errors, a
///   failure class;
/// * at most one `model` line per tune, inside the tune, with a known
///   mode and `evaluated + skipped = considered`;
/// * the summary's buckets add up:
///   `evaluated + pruned + errored + skipped = points` (a stream without
///   a `skipped` field — pre-model traces — counts it as zero),
///   `evaluated` = the won + lost candidate lines, skipped candidates
///   only appear when a `model` line announced the ranking, and exactly
///   one candidate won when anything was evaluated;
/// * `batch` lines (the dispatch executor's accounting) sit between
///   tunes, their `ok + failed` equals `requests`, and their
///   `hits + misses` never exceeds `requests` (each resolved request
///   performs exactly one program-store lookup);
/// * `serve` lines (the persistent server's end-of-life record) sit
///   between tunes, `ok + failed = completed = admitted` (the event is
///   emitted after the graceful drain), latency percentiles are ordered
///   (`p50 <= p99`), `hits + misses` never exceeds `completed`, and any
///   completed work implies at least one dispatched batch;
/// * `native_coverage` lines (the bench harness's native-tier
///   accounting) name a routine and cannot count entries without a
///   lowered region.
///
/// Returns a short human-readable report, or the first violation.
pub fn check_stream(text: &str) -> Result<String, String> {
    const OUTCOMES: [&str; 6] = ["won", "lost", "pruned", "skipped", "degenerated", "errored"];
    let mut tunes = 0usize;
    let mut replays = 0usize;
    let mut batches = 0usize;
    let mut serves = 0usize;
    let mut models = 0usize;
    let mut fuses = 0usize;
    // Per-tune accounting, reset at `begin`.
    let mut spans: Vec<String> = Vec::new();
    let mut won = 0usize;
    let mut ranked = 0usize; // won + lost
    let mut sweep_candidates = 0usize; // outcomes tied to a sweep point
    let mut degenerated_seen = 0usize;
    let mut skipped_seen = 0usize;
    let mut model_seen = false;
    let mut in_tune = false;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let doc = parse(line).ok_or_else(|| at(format!("not valid JSON: {line}")))?;
        let event = doc
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing `event` field".to_string()))?;
        match event {
            "begin" => {
                if in_tune {
                    return Err(at("`begin` before previous tune's `summary`".into()));
                }
                in_tune = true;
                tunes += 1;
                spans.clear();
                won = 0;
                ranked = 0;
                sweep_candidates = 0;
                degenerated_seen = 0;
                skipped_seen = 0;
                model_seen = false;
            }
            "span" => {
                let stage = doc
                    .get("stage")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("span without `stage`".into()))?;
                spans.push(stage.to_string());
            }
            "candidate" => {
                let outcome = doc
                    .get("outcome")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("candidate without `outcome`".into()))?;
                if !OUTCOMES.contains(&outcome) {
                    return Err(at(format!("unknown outcome `{outcome}`")));
                }
                if outcome == "errored" && doc.get("class").and_then(Json::as_str).is_none() {
                    return Err(at("errored candidate without `class`".into()));
                }
                match outcome {
                    "won" => {
                        won += 1;
                        ranked += 1;
                        sweep_candidates += 1;
                    }
                    "lost" => {
                        ranked += 1;
                        sweep_candidates += 1;
                    }
                    "degenerated" => degenerated_seen += 1,
                    "skipped" => {
                        skipped_seen += 1;
                        sweep_candidates += 1;
                    }
                    _ => sweep_candidates += 1,
                }
            }
            "model" => {
                if !in_tune {
                    return Err(at("`model` outside a tune".into()));
                }
                if model_seen {
                    return Err(at("more than one `model` line in a tune".into()));
                }
                model_seen = true;
                models += 1;
                let mode = doc
                    .get("mode")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("model without `mode`".into()))?;
                if !["rank", "rank+exit"].contains(&mode) {
                    return Err(at(format!("unknown model mode `{mode}`")));
                }
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_i64)
                        .ok_or_else(|| at(format!("model missing `{k}`")))
                };
                let considered = field("considered")?;
                let evaluated = field("evaluated")?;
                let skipped = field("skipped")?;
                if evaluated + skipped != considered {
                    return Err(at(format!(
                        "model buckets don't add up: {evaluated} + {skipped} != {considered}"
                    )));
                }
                if mode == "rank" && skipped != 0 {
                    return Err(at(format!(
                        "rank mode (no early exit) skipped {skipped} point(s)"
                    )));
                }
            }
            "summary" => {
                if !in_tune {
                    return Err(at("`summary` without `begin`".into()));
                }
                in_tune = false;
                for stage in Stage::ALL {
                    let count = spans.iter().filter(|s| *s == stage.name()).count();
                    if count != 1 {
                        return Err(at(format!(
                            "expected exactly one `{}` span, saw {count}",
                            stage.name()
                        )));
                    }
                }
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_i64)
                        .map(|v| v as usize)
                        .ok_or_else(|| at(format!("summary missing `{k}`")))
                };
                let points = field("points")?;
                let evaluated = field("evaluated")?;
                let pruned = field("pruned")?;
                let errored = field("errored")?;
                let degenerated = field("degenerated")?;
                // Pre-model traces have no `skipped` field: count zero.
                let skipped = doc
                    .get("skipped")
                    .and_then(Json::as_i64)
                    .map_or(0, |v| v as usize);
                if evaluated + pruned + errored + skipped != points {
                    return Err(at(format!(
                        "summary buckets don't add up: \
                         {evaluated} + {pruned} + {errored} + {skipped} != {points}"
                    )));
                }
                if evaluated != ranked {
                    return Err(at(format!(
                        "summary says {evaluated} evaluated but stream ranked {ranked}"
                    )));
                }
                if sweep_candidates != points {
                    return Err(at(format!(
                        "{points} sweep points but {sweep_candidates} candidate outcomes"
                    )));
                }
                if degenerated != degenerated_seen {
                    return Err(at(format!(
                        "summary says {degenerated} degenerated but stream has {degenerated_seen}"
                    )));
                }
                if skipped != skipped_seen {
                    return Err(at(format!(
                        "summary says {skipped} skipped but stream has {skipped_seen}"
                    )));
                }
                if skipped_seen > 0 && !model_seen {
                    return Err(at(format!(
                        "{skipped_seen} skipped candidate(s) with no `model` line"
                    )));
                }
                if evaluated > 0 && won != 1 {
                    return Err(at(format!("expected exactly one winner, saw {won}")));
                }
            }
            "replayed" => replays += 1,
            "cache" => {}
            "fuse" => {
                fuses += 1;
                doc.get("shape")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("fuse without `shape`".into()))?;
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_i64)
                        .ok_or_else(|| at(format!("fuse missing `{k}`")))
                };
                let nodes = field("nodes")?;
                let units = field("units")?;
                let edges = |k: &str| -> Result<i64, String> {
                    let arr = doc
                        .get(k)
                        .and_then(Json::as_arr)
                        .ok_or_else(|| at(format!("fuse missing `{k}` array")))?;
                    for e in arr {
                        for f in ["producer", "consumer"] {
                            e.get(f)
                                .and_then(Json::as_str)
                                .ok_or_else(|| at(format!("fuse `{k}` edge without `{f}`")))?;
                        }
                    }
                    Ok(arr.len() as i64)
                };
                let fused = edges("fused")?;
                edges("rejected")?;
                // Every fused edge collapses two nodes into one unit;
                // everything else runs as a single.
                if units + fused != nodes {
                    return Err(at(format!(
                        "fuse accounting broken: {units} units + {fused} fused edges != {nodes} nodes"
                    )));
                }
                if units == 0 || nodes == 0 {
                    return Err(at("fuse event for an empty DAG".into()));
                }
            }
            "native_coverage" => {
                doc.get("routine")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("native_coverage without `routine`".into()))?;
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_i64)
                        .ok_or_else(|| at(format!("native_coverage missing `{k}`")))
                };
                let regions = field("regions")?;
                let entries = field("entries")?;
                if regions == 0 && entries > 0 {
                    return Err(at(format!(
                        "native_coverage counts {entries} entries with no lowered region"
                    )));
                }
            }
            "batch" => {
                if in_tune {
                    return Err(at("`batch` inside a tune (before its `summary`)".into()));
                }
                batches += 1;
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_i64)
                        .ok_or_else(|| at(format!("batch missing `{k}`")))
                };
                let requests = field("requests")?;
                let ok = field("ok")?;
                let failed = field("failed")?;
                let hits = field("hits")?;
                let misses = field("misses")?;
                if ok + failed != requests {
                    return Err(at(format!(
                        "batch buckets don't add up: {ok} + {failed} != {requests}"
                    )));
                }
                if hits + misses > requests {
                    return Err(at(format!(
                        "batch counts {hits} hits + {misses} misses for {requests} requests"
                    )));
                }
            }
            "serve" => {
                if in_tune {
                    return Err(at("`serve` inside a tune (before its `summary`)".into()));
                }
                serves += 1;
                let field = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_i64)
                        .ok_or_else(|| at(format!("serve missing `{k}`")))
                };
                let admitted = field("admitted")?;
                let completed = field("completed")?;
                let ok = field("ok")?;
                let failed = field("failed")?;
                let hits = field("hits")?;
                let misses = field("misses")?;
                let batch_count = field("batches")?;
                if ok + failed != completed {
                    return Err(at(format!(
                        "serve buckets don't add up: {ok} + {failed} != {completed}"
                    )));
                }
                if admitted != completed {
                    return Err(at(format!(
                        "serve emitted before drain: {admitted} admitted, {completed} completed"
                    )));
                }
                if hits + misses > completed {
                    return Err(at(format!(
                        "serve counts {hits} hits + {misses} misses for {completed} completed"
                    )));
                }
                if completed > 0 && batch_count == 0 {
                    return Err(at(format!(
                        "serve completed {completed} request(s) with no dispatched batch"
                    )));
                }
                let num = |k: &str| {
                    doc.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| at(format!("serve missing `{k}`")))
                };
                let p50 = num("p50_ms")?;
                let p99 = num("p99_ms")?;
                if p50 > p99 {
                    return Err(at(format!(
                        "serve latency percentiles out of order: p50 {p50} > p99 {p99}"
                    )));
                }
            }
            other => return Err(at(format!("unknown event `{other}`"))),
        }
    }
    if in_tune {
        return Err("stream ends inside a tune (no terminal `summary`)".to_string());
    }
    if tunes == 0 && replays == 0 && batches == 0 && serves == 0 {
        return Err("stream contains no `begin`, `replayed`, `batch` or `serve` event".to_string());
    }
    Ok(format!(
        "trace ok: {tunes} tune(s), {replays} replay(s), {batches} batch(es), \
         {serves} serve(s), {models} model ranking(s), {fuses} fuse plan(s), \
         every candidate terminal"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_autotune::tune_fresh_observed;
    use oa_blas3::types::{RoutineId, Trans};
    use oa_gpusim::DeviceSpec;

    #[test]
    fn mode_parsing() {
        assert_eq!(TraceMode::parse("json"), Some(TraceMode::Json));
        assert_eq!(TraceMode::parse("PRETTY"), Some(TraceMode::Pretty));
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("bogus"), None);
    }

    /// A real tune's JSON stream is well-formed end to end: every line
    /// parses, every stage has a span, every candidate is terminal —
    /// exactly what the CI step asserts on the shipped binary.
    #[test]
    fn real_tune_stream_passes_check() {
        let dev = DeviceSpec::gtx285();
        let mut buf: Vec<u8> = Vec::new();
        tune_fresh_observed(RoutineId::Gemm(Trans::N, Trans::N), &dev, 512, &mut |e| {
            emit(TraceMode::Json, &e, &mut buf)
        })
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().count() > 5);
        let report = check_stream(&text).unwrap();
        assert!(report.contains("trace ok"), "{report}");
    }

    #[test]
    fn check_rejects_malformed_streams() {
        assert!(check_stream("not json\n").is_err());
        assert!(check_stream("{\"event\":\"nope\"}\n").is_err());
        // A tune with no summary.
        let begin =
            r#"{"event":"begin","routine":"GEMM-NN","device":"d","n":512,"engine":"bytecode"}"#;
        assert!(check_stream(&format!("{begin}\n")).is_err());
        // Missing spans.
        let summary = r#"{"event":"summary","variants":1,"points":0,"evaluated":0,"pruned":0,"degenerated":0,"errored":0,"winner_gflops":null}"#;
        assert!(check_stream(&format!("{begin}\n{summary}\n"))
            .unwrap_err()
            .contains("span"));
        // Empty stream.
        assert!(check_stream("").is_err());
    }

    /// A ranked tune's stream — with a `model` line and `skipped`
    /// candidates — renders and validates; broken model accounting is
    /// rejected.
    #[test]
    fn model_events_render_and_validate() {
        use oa_autotune::model::{CostModel, ModelMode};
        use oa_autotune::tuner::{sweep_samples, tune_fresh_modeled, ModelCtx};
        use std::sync::Arc;

        let dev = DeviceSpec::gtx285();
        let r = RoutineId::Gemm(Trans::N, Trans::N);
        let engine = oa_gpusim::select_engine();
        let samples = sweep_samples(engine, r, &dev, 512).unwrap();
        let model = Arc::new(CostModel::train(&samples, 3));
        let ctx = ModelCtx::with_model(ModelMode::RankExit, model);
        let mut buf: Vec<u8> = Vec::new();
        tune_fresh_modeled(engine, r, &dev, 512, &ctx, &mut |e| {
            emit(TraceMode::Json, &e, &mut buf)
        })
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"event\":\"model\""));
        assert!(text.contains("\"mode\":\"rank+exit\""));
        let report = check_stream(&text).unwrap();
        assert!(report.contains("1 model ranking(s)"), "{report}");

        // Tearing the model's accounting must be caught...
        let model_line = text
            .lines()
            .find(|l| l.contains("\"event\":\"model\""))
            .unwrap();
        let considered: i64 = oa_autotune::json::parse(model_line)
            .unwrap()
            .get("considered")
            .and_then(Json::as_i64)
            .unwrap();
        let bad = text.replace(
            &format!("\"considered\":{considered}"),
            &format!("\"considered\":{}", considered + 1),
        );
        assert!(check_stream(&bad).unwrap_err().contains("add up"));
        // ...a duplicated model line too...
        let bad = text.replace(
            &format!("{model_line}\n"),
            &format!("{model_line}\n{model_line}\n"),
        );
        assert!(check_stream(&bad)
            .unwrap_err()
            .contains("more than one `model`"));
        // ...and `rank` mode (no early exit) may not report skips.
        if text.contains("\"outcome\":\"skipped\"") {
            let bad = text.replace("\"mode\":\"rank+exit\"", "\"mode\":\"rank\"");
            assert!(check_stream(&bad).unwrap_err().contains("rank mode"));
        }
    }

    #[test]
    fn batch_events_render_and_validate() {
        let stats = oa_autotune::report::BatchStats {
            requests: 8,
            ok: 7,
            failed: 1,
            hits: 5,
            misses: 2,
            evictions: 1,
            threads: 4,
            wall_ms: 12.5,
            requests_per_sec: 640.0,
        };
        let e = TuneEvent::Batch(stats);
        let line = event_json(&e).compact();
        assert!(line.contains("\"event\":\"batch\""));
        assert!(line.contains("\"requests\":8"));
        assert!(event_pretty(&e).contains("5 hits"));

        // A batch-only stream is a valid trace (the serve smoke path).
        let report = check_stream(&format!("{line}\n")).unwrap();
        assert!(report.contains("1 batch(es)"), "{report}");

        // ok + failed must equal requests...
        let bad = line.replace("\"ok\":7", "\"ok\":8");
        assert!(check_stream(&bad).unwrap_err().contains("add up"));
        // ...and hits + misses must not exceed requests.
        let bad = line.replace("\"hits\":5", "\"hits\":50");
        assert!(check_stream(&bad).unwrap_err().contains("hits"));
    }

    #[test]
    fn serve_events_render_and_validate() {
        let stats = oa_autotune::report::ServeStats {
            admitted: 32,
            completed: 32,
            ok: 30,
            failed: 2,
            rejected: 4,
            clamped: 6,
            batches: 5,
            max_batch: 12,
            mean_batch: 6.4,
            p50_ms: 1.2,
            p99_ms: 9.5,
            hits: 28,
            misses: 4,
            tenants: 3,
            wall_ms: 250.0,
        };
        let e = TuneEvent::Serve(stats);
        let line = event_json(&e).compact();
        assert!(line.contains("\"event\":\"serve\""));
        assert!(line.contains("\"admitted\":32"));
        assert!(line.contains("\"rejected\":4"));
        let pretty = event_pretty(&e);
        assert!(pretty.contains("32 admitted"));
        assert!(pretty.contains("4 rejected"));

        // A serve-only stream is a valid trace (the server smoke path).
        let report = check_stream(&format!("{line}\n")).unwrap();
        assert!(report.contains("1 serve(s)"), "{report}");

        // ok + failed must equal completed...
        let bad = line.replace("\"ok\":30", "\"ok\":31");
        assert!(check_stream(&bad).unwrap_err().contains("add up"));
        // ...the event is post-drain, so admitted == completed...
        let bad = line.replace("\"admitted\":32", "\"admitted\":33");
        assert!(check_stream(&bad).unwrap_err().contains("drain"));
        // ...percentiles are ordered...
        let bad = line.replace("\"p50_ms\":1.2", "\"p50_ms\":99.0");
        assert!(check_stream(&bad).unwrap_err().contains("percentiles"));
        // ...completed work needs at least one batch...
        let bad = line.replace("\"batches\":5", "\"batches\":0");
        assert!(check_stream(&bad).unwrap_err().contains("batch"));
        // ...and lookups never exceed completed requests.
        let bad = line.replace("\"hits\":28", "\"hits\":280");
        assert!(check_stream(&bad).unwrap_err().contains("hits"));

        // A serve line inside an open tune is malformed.
        let begin =
            r#"{"event":"begin","routine":"GEMM-NN","device":"d","n":512,"engine":"bytecode"}"#;
        assert!(check_stream(&format!("{begin}\n{line}\n"))
            .unwrap_err()
            .contains("inside a tune"));
    }

    #[test]
    fn native_coverage_events_render_and_validate() {
        let e = TuneEvent::NativeCoverage(oa_autotune::report::NativeCoverageStats {
            routine: "TRMM-LL-N".into(),
            regions: 1,
            entries: 4,
            fallbacks: 0,
            rejects: vec![("store-shape".into(), 2)],
        });
        let line = event_json(&e).compact();
        assert!(line.contains("\"event\":\"native_coverage\""));
        assert!(line.contains("\"entries\":4"));
        assert!(line.contains("\"store-shape\":2"));
        assert!(event_pretty(&e).contains("store-shape×2"));

        // Standalone coverage lines pass alongside a batch event …
        let batch = r#"{"event":"batch","requests":1,"ok":1,"failed":0,"hits":1,"misses":0,"evictions":0,"threads":1,"wall_ms":1.0,"requests_per_sec":1.0}"#;
        assert!(check_stream(&format!("{batch}\n{line}\n")).is_ok());
        // … but entries without any lowered region are a violation.
        let bad = line.replace("\"regions\":1", "\"regions\":0");
        assert!(check_stream(&format!("{batch}\n{bad}\n"))
            .unwrap_err()
            .contains("no lowered region"));
    }

    #[test]
    fn pretty_lines_name_the_outcome() {
        let e = TuneEvent::Candidate(oa_autotune::report::CandidateOutcome {
            script: Some(2),
            params: None,
            fate: oa_autotune::report::CandidateFate::Errored {
                stage: Stage::Translate,
                class: "translate/component:peel".into(),
                reason: "no k tiling".into(),
            },
            gflops: None,
        });
        let line = event_pretty(&e);
        assert!(line.contains("errored"));
        assert!(line.contains("translate/component:peel"));
        let json = event_json(&e).compact();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"outcome\":\"errored\""));
    }
}
