//! `oa` — the command-line face of the framework.
//!
//! ```text
//! oa list                                  # routines and devices
//! oa tune SYMM-LL --device gtx285 --n 1024 # full pipeline for one routine
//! oa tune GEMM-NN --trace json             # + JSONL trace stream on stderr
//! oa compare TRSM-LL-N                     # OA vs CUBLAS-like vs MAGMA-like
//! oa variants TRMM-LL-N                    # the composer's generated scripts
//! oa cuda GEMM-NN --n 1024                 # emit the tuned kernel's CUDA source
//! oa trace-check trace.jsonl               # validate a captured trace stream
//! oa serve batch.jsonl --threads 8         # batched dispatch: JSONL in, JSONL out
//! oa fuzz --seed 5 --iters 200             # differential fuzz: 4 engines + reference
//! oa explain --native TRSM-LL-N --n 256    # native-tier region map + reject table
//! oa model train trace.jsonl               # fit the tuner's learned cost model
//! oa model eval trace.jsonl --min-hit 0.9  # held-out top-5 hit rate gate
//! oa model explain                         # artifact summary + importances
//! ```
//!
//! `--trace` overrides the `OA_TRACE` environment variable; the trace
//! stream goes to stderr so stdout stays clean.
//!
//! `serve` reads one JSON request per line from a file (or stdin when
//! the path is `-`), executes each as soon as it arrives through the
//! routine registry, and streams one JSON result per line to stdout in
//! submission order (flushed per line — a slow producer sees results
//! flow, not silence until EOF).
//! `--threads`/`--capacity` fall back to `OA_DISPATCH_THREADS` /
//! `OA_DISPATCH_CAPACITY` (capacity 0 = unbounded program store), and
//! `OA_TUNE_CACHE` names a persistent tuning-cache file.
//!
//! `serve --listen ADDR` instead starts the **persistent multi-tenant
//! server**: same JSONL protocol over TCP (`host:port`) or a Unix
//! socket (`unix:/path`), with bounded admission queues, per-tenant
//! fairness, dynamic batching, and `{"op": "metrics"}` /
//! `{"op": "health"}` / `{"op": "shutdown"}` introspection ops.
//! `--queue-cap`, `--tenant-quota`, `--batch-max` and
//! `--batch-window-ms` tune it (env fallbacks `OA_SERVE_*`).

use oa_core::dispatch::Registry;
use oa_core::trace::{check_stream, stderr_observer, TraceMode};
use oa_core::{DeviceSpec, OaFramework, RoutineId, TuneError};

fn device_by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "9800" | "geforce9800" | "geforce-9800" => Some(DeviceSpec::geforce_9800()),
        "gtx285" | "285" => Some(DeviceSpec::gtx285()),
        "fermi" | "c2050" | "fermi-c2050" => Some(DeviceSpec::fermi_c2050()),
        _ => None,
    }
}

struct Args {
    cmd: String,
    routine: Option<String>,
    /// Third positional (e.g. `oa model train <trace.jsonl>`).
    extra: Option<String>,
    /// `--model` — cost-model artifact path (defaults to
    /// `OA_TUNE_MODEL_PATH`, else `tune_model.json` next to
    /// `OA_TUNE_CACHE`, else `tune_model.json`).
    model_path: Option<String>,
    /// `--min-hit` — `oa model eval`'s top-5 hit-rate floor.
    min_hit: f64,
    device: DeviceSpec,
    n: i64,
    trace: TraceMode,
    threads: Option<usize>,
    capacity: Option<usize>,
    seed: u64,
    iters: usize,
    corpus: Option<String>,
    native: bool,
    listen: Option<String>,
    queue_cap: Option<usize>,
    tenant_quota: Option<usize>,
    batch_max: Option<usize>,
    batch_window_ms: Option<usize>,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut routine = None;
    let mut extra = None;
    let mut model_path = None;
    let mut min_hit = 0.9f64;
    let mut device = DeviceSpec::gtx285();
    let mut n = 1024i64;
    let mut trace = TraceMode::from_env();
    let mut threads = env_usize("OA_DISPATCH_THREADS");
    let mut capacity = env_usize("OA_DISPATCH_CAPACITY");
    let mut seed = 0u64;
    let mut iters = env_usize("OA_FUZZ_ITERS").unwrap_or(200);
    let mut corpus = None;
    let mut native = false;
    let mut listen = None;
    let mut queue_cap = None;
    let mut tenant_quota = None;
    let mut batch_max = None;
    let mut batch_window_ms = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--device" => {
                let v = it.next().ok_or("--device needs a value")?;
                device = device_by_name(&v).ok_or(format!("unknown device `{v}`"))?;
            }
            "--n" => {
                let v = it.next().ok_or("--n needs a value")?;
                n = v.parse().map_err(|_| format!("bad size `{v}`"))?;
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a value (json|pretty|off)")?;
                trace = TraceMode::parse(&v).ok_or(format!("unknown trace mode `{v}`"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                threads = Some(v.parse().map_err(|_| format!("bad thread count `{v}`"))?);
            }
            "--capacity" => {
                let v = it
                    .next()
                    .ok_or("--capacity needs a value (0 = unbounded)")?;
                capacity = Some(v.parse().map_err(|_| format!("bad capacity `{v}`"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                iters = v
                    .parse()
                    .map_err(|_| format!("bad iteration count `{v}`"))?;
            }
            "--corpus" => {
                corpus = Some(it.next().ok_or("--corpus needs a directory")?);
            }
            "--model" => {
                model_path = Some(it.next().ok_or("--model needs a file path")?);
            }
            "--min-hit" => {
                let v = it.next().ok_or("--min-hit needs a value in [0, 1]")?;
                min_hit = v.parse().map_err(|_| format!("bad hit rate `{v}`"))?;
            }
            "--native" => native = true,
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or("--listen needs an address (host:port or unix:/path)")?,
                );
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                queue_cap = Some(v.parse().map_err(|_| format!("bad queue cap `{v}`"))?);
            }
            "--tenant-quota" => {
                let v = it.next().ok_or("--tenant-quota needs a value")?;
                tenant_quota = Some(v.parse().map_err(|_| format!("bad tenant quota `{v}`"))?);
            }
            "--batch-max" => {
                let v = it.next().ok_or("--batch-max needs a value")?;
                batch_max = Some(v.parse().map_err(|_| format!("bad batch size `{v}`"))?);
            }
            "--batch-window-ms" => {
                let v = it.next().ok_or("--batch-window-ms needs a value")?;
                batch_window_ms = Some(v.parse().map_err(|_| format!("bad window `{v}`"))?);
            }
            other if cmd.is_none() => cmd = Some(other.to_string()),
            other if routine.is_none() => routine = Some(other.to_string()),
            other if extra.is_none() => extra = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args {
        cmd: cmd.unwrap_or_else(|| "help".into()),
        routine,
        extra,
        model_path,
        min_hit,
        device,
        n,
        trace,
        threads,
        capacity,
        seed,
        iters,
        corpus,
        native,
        listen,
        queue_cap,
        tenant_quota,
        batch_max,
        batch_window_ms,
    })
}

/// One replayed tune from a `--trace json` stream: routine, size, and
/// every sweep-point candidate line with a measured label.
struct TracedTune {
    routine: RoutineId,
    n: i64,
    /// `(script index, params, gflops, won)` per point, trace order.
    points: Vec<(usize, oa_core::loopir::transform::TileParams, f64, bool)>,
}

/// Parse the tunes out of a captured JSONL trace.  Lines that are not
/// tune candidates (spans, cache, batch, serve, …) are skipped; `skipped`
/// candidates carry no measured label and are excluded from training.
fn parse_trace_tunes(text: &str) -> Result<Vec<TracedTune>, String> {
    use oa_core::autotune::json::{parse, Json};
    use oa_core::loopir::transform::TileParams;
    let mut tunes: Vec<TracedTune> = Vec::new();
    let mut cur: Option<TracedTune> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        let doc = parse(line).ok_or_else(|| at("not valid JSON"))?;
        match doc.get("event").and_then(Json::as_str) {
            Some("begin") => {
                let name = doc
                    .get("routine")
                    .and_then(Json::as_str)
                    .ok_or_else(|| at("begin without `routine`"))?;
                let routine = RoutineId::parse(name)
                    .ok_or_else(|| at(&format!("unknown routine `{name}`")))?;
                let n = doc
                    .get("n")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| at("begin without `n`"))?;
                cur = Some(TracedTune {
                    routine,
                    n,
                    points: Vec::new(),
                });
            }
            Some("candidate") => {
                let Some(t) = cur.as_mut() else { continue };
                let outcome = doc.get("outcome").and_then(Json::as_str).unwrap_or("");
                if outcome == "skipped" || outcome == "degenerated" {
                    continue;
                }
                let (Some(si), Some(arr)) = (
                    doc.get("script").and_then(Json::as_i64),
                    doc.get("params").and_then(Json::as_arr),
                ) else {
                    continue;
                };
                let v: Vec<i64> = arr.iter().filter_map(Json::as_i64).collect();
                if v.len() != 6 || si < 0 {
                    return Err(at("malformed candidate `params`"));
                }
                let params = TileParams {
                    ty: v[0],
                    tx: v[1],
                    thr_i: v[2],
                    thr_j: v[3],
                    kb: v[4],
                    unroll: v[5] as usize,
                };
                let gflops = doc.get("gflops").and_then(Json::as_f64).unwrap_or(0.0);
                t.points
                    .push((si as usize, params, gflops, outcome == "won"));
            }
            Some("summary") => {
                if let Some(t) = cur.take() {
                    tunes.push(t);
                }
            }
            _ => {}
        }
    }
    Ok(tunes)
}

/// Resolve the model-artifact path: `--model`, else `OA_TUNE_MODEL_PATH`
/// / sibling of `OA_TUNE_CACHE`, else `tune_model.json` in the cwd.
fn resolve_model_path(args: &Args) -> std::path::PathBuf {
    args.model_path
        .as_ref()
        .map(std::path::PathBuf::from)
        .or_else(oa_core::autotune::model_path_from_env)
        .unwrap_or_else(|| oa_core::autotune::MODEL_FILE.into())
}

/// Rebuild training/eval samples from a trace file (recomposing each
/// routine's script variants to recover features).
fn trace_samples(path: &str) -> Result<Vec<oa_core::autotune::Sample>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let tunes = parse_trace_tunes(&text)?;
    if tunes.is_empty() {
        return Ok(Vec::new());
    }
    let engine = oa_core::gpusim::select_engine();
    let mut samples = Vec::new();
    for t in &tunes {
        samples.extend(
            oa_core::autotune::samples_from_trace(engine, t.routine, t.n, &t.points)
                .map_err(|e| e.to_string())?,
        );
    }
    Ok(samples)
}

/// Per-(routine, n) top-5 hit accounting for `oa model eval`.
fn eval_hit_rate(
    model: &oa_core::autotune::CostModel,
    samples: &[oa_core::autotune::Sample],
) -> (usize, usize, Vec<String>) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, i64), Vec<&oa_core::autotune::Sample>> = BTreeMap::new();
    for s in samples {
        groups.entry((s.routine.clone(), s.n)).or_default().push(s);
    }
    let mut hits = 0;
    let mut total = 0;
    let mut lines = Vec::new();
    for ((routine, n), group) in &groups {
        if !group.iter().any(|s| s.won) {
            continue; // no measured winner to find
        }
        total += 1;
        let mut ranked: Vec<(usize, f64)> = group
            .iter()
            .enumerate()
            .map(|(i, s)| (i, model.predict(&s.features)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let hit = ranked.iter().take(5).any(|&(i, _)| group[i].won);
        if hit {
            hits += 1;
        }
        lines.push(format!(
            "  {routine:<10} n={n:<5} {} ({} candidates)",
            if hit { "top-5 hit " } else { "MISS      " },
            group.len()
        ));
    }
    (hits, total, lines)
}

fn need_routine(a: &Args) -> Result<RoutineId, String> {
    let name = a
        .routine
        .as_deref()
        .ok_or("missing routine name (try `oa list`)")?;
    RoutineId::parse(name).ok_or(format!("unknown routine `{name}` (try `oa list`)"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let oa = OaFramework::new(args.device.clone());
    match args.cmd.as_str() {
        "list" => {
            println!("devices: geforce9800, gtx285, fermi");
            println!("routines:");
            for r in RoutineId::all24() {
                println!("  {}", r.name());
            }
            Ok(())
        }
        "tune" => {
            let r = need_routine(args)?;
            let mut obs = stderr_observer(args.trace);
            let t = oa.tune_observed(r, args.n, &mut obs).map_err(|e| {
                // The failure taxonomy: print the per-class table, not a
                // bare error string, when the search came up empty.
                if let TuneError::NothingEvaluated { routine, failures } = &e {
                    eprintln!("no evaluable candidate for {routine}; failures by class:");
                    eprint!("{failures}");
                }
                e.to_string()
            })?;
            println!(
                "{} on {} (n = {}, {} candidates evaluated)",
                r.name(),
                args.device.name,
                args.n,
                t.evaluated
            );
            println!("\nbest EPOD script:\n{}", t.script);
            println!("parameters: {:?}", t.params);
            println!(
                "model: {:.1} GFLOPS | occupancy {:.0}% | regs/thread {} | smem {} B",
                t.report.gflops,
                t.report.occupancy * 100.0,
                t.report.regs_per_thread,
                t.report.smem_bytes
            );
            let err = oa.verify(&t, 64, 7)?;
            println!("verified vs CPU reference at n = 64: max |err| = {err:.2e}");
            Ok(())
        }
        "compare" => {
            let r = need_routine(args)?;
            let c = oa.compare(r, args.n).map_err(|e| e.to_string())?;
            println!("{} on {} (n = {})", r.name(), args.device.name, args.n);
            println!("  OA          {:>8.1} GFLOPS", c.oa.gflops);
            println!(
                "  CUBLAS-like {:>8.1} GFLOPS  ({:.2}x speedup)",
                c.cublas.gflops,
                c.speedup()
            );
            match &c.magma {
                Some(m) => println!("  MAGMA-like  {:>8.1} GFLOPS", m.gflops),
                None => println!("  MAGMA-like  (routine absent in MAGMA v0.2)"),
            }
            Ok(())
        }
        "variants" => {
            let r = need_routine(args)?;
            let scheme = oa_core::blas3::schemes::oa_scheme(r);
            let src = oa_core::blas3::routines::source(r);
            for (bi, base) in scheme.bases.iter().enumerate() {
                let variants = oa_core::composer::compose(
                    &src,
                    base,
                    &scheme.apps,
                    oa_core::autotune::default_params(scheme.solver),
                )
                .map_err(|e| e.to_string())?;
                for (i, v) in variants.iter().enumerate() {
                    println!(
                        "---- base {bi}, variant {i} (rules {:?}) ----",
                        v.rule_choice
                    );
                    println!("{}", v.script);
                }
            }
            Ok(())
        }
        "cuda" => {
            let r = need_routine(args)?;
            let t = oa.tune(r, args.n).map_err(|e| e.to_string())?;
            let src = oa_core::gpusim::to_cuda_source(
                &t.program,
                &oa_core::loopir::interp::Bindings::square(args.n),
            )
            .map_err(|e| e.to_string())?;
            println!("{src}");
            Ok(())
        }
        "serve" => {
            let mut registry = Registry::new(args.device.clone());
            if let Some(cap) = args.capacity {
                registry = registry.with_capacity(if cap == 0 { None } else { Some(cap) });
            }
            if let Ok(cache) = std::env::var("OA_TUNE_CACHE") {
                registry = registry.with_tune_cache(cache.into());
            }
            let threads = args
                .threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));

            if let Some(addr) = &args.listen {
                // Persistent multi-tenant server mode.
                let mut cfg = oa_core::ServeConfig::from_env();
                cfg.threads = threads;
                if let Some(v) = args.queue_cap {
                    cfg.queue_cap = v.max(1);
                }
                if let Some(v) = args.tenant_quota {
                    cfg.tenant_quota = v.max(1);
                }
                if let Some(v) = args.batch_max {
                    cfg.batch_max = v.max(1);
                }
                if let Some(v) = args.batch_window_ms {
                    cfg.batch_window = std::time::Duration::from_millis(v as u64);
                }
                let listener =
                    oa_core::Listener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
                let server =
                    oa_core::spawn_server(std::sync::Arc::new(registry), listener, cfg, args.trace);
                // On stdout (and flushed): stderr must stay a clean
                // JSONL stream in `--trace json` mode, and launch
                // scripts wait for this line to learn the bound port.
                println!("oa serve: listening on {}", server.addr());
                use std::io::Write;
                let _ = std::io::stdout().flush();
                // Runs until a client sends {"op": "shutdown"}.
                let stats = server.join();
                if args.trace != TraceMode::Json {
                    eprintln!(
                        "oa serve: drained — {} admitted, {} ok, {} failed, \
                         {} rejected, {} batch(es), p50 {:.2} ms, p99 {:.2} ms",
                        stats.admitted,
                        stats.ok,
                        stats.failed,
                        stats.rejected,
                        stats.batches,
                        stats.p50_ms,
                        stats.p99_ms
                    );
                }
                return Ok(());
            }

            // One-shot mode: the routine slot is the request file
            // (`-` = stdin), streamed line by line with incremental
            // output — no slurping the whole input first.
            let path = args
                .routine
                .as_deref()
                .ok_or("serve needs a JSONL request file (or `-` for stdin), or --listen")?;
            let stats = {
                // `Stdout` (not the non-`Send` lock): each line is
                // written and flushed whole, so interleaving is moot.
                let mut out = std::io::stdout();
                if path == "-" {
                    let mut input = std::io::stdin().lock();
                    oa_core::serve_stream(&registry, &mut input, &mut out, threads, args.trace)?
                } else {
                    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                    let mut input = std::io::BufReader::new(f);
                    oa_core::serve_stream(&registry, &mut input, &mut out, threads, args.trace)?
                }
            };
            // In json trace mode stderr is a machine-readable stream and
            // the batch event already carries these numbers — keep it
            // clean for `oa trace-check`.
            if args.trace != TraceMode::Json {
                eprintln!(
                    "served {} request(s) ({} ok, {} failed) on {} thread(s): \
                     {:.1} ms, {:.0} req/s",
                    stats.requests,
                    stats.ok,
                    stats.failed,
                    stats.threads,
                    stats.wall_ms,
                    stats.requests_per_sec
                );
            }
            if stats.failed > 0 {
                return Err(format!("{} request(s) failed", stats.failed));
            }
            Ok(())
        }
        "fuzz" => {
            let mut cfg = oa_core::fuzz::FuzzConfig::new(args.seed, args.iters);
            cfg.corpus_dir = args.corpus.as_ref().map(std::path::PathBuf::from);
            // The CLI runs the full battery: engine cross-checks plus the
            // tuner model stripe (exact vs rank+exit winner invariance)
            // and the DAG stripe (fused vs sequenced plans, bit for bit).
            cfg.model_stripe = true;
            cfg.dag_stripe = true;
            let report = oa_core::fuzz::run_fuzz(&cfg);
            println!(
                "fuzz: seed {} | {} iterations | {} coverage features | fingerprint {:#018x}",
                args.seed,
                args.iters,
                report.coverage.len(),
                report.fingerprint()
            );
            for (kind, count) in &report.verdicts {
                println!("  {kind:<12} {count}");
            }
            for d in &report.divergences {
                eprintln!("divergence at iteration {}: {}", d.iter, d.detail);
                eprintln!("  original: {}", d.original.id_line());
                eprintln!("  minimal:  {}", d.minimal.id_line());
                if let Some(p) = &d.repro_path {
                    eprintln!("  repro written to {}", p.display());
                }
            }
            for d in &report.dag_divergences {
                eprintln!("dag divergence at iteration {}: {}", d.iter, d.detail);
                eprintln!("  original: {}", d.original.id_line());
                eprintln!("  minimal:  {}", d.minimal.id_line());
                if let Some(p) = &d.repro_path {
                    eprintln!("  repro written to {}", p.display());
                }
            }
            let found = report.divergences.len() + report.dag_divergences.len();
            if found == 0 {
                Ok(())
            } else {
                Err(format!("{found} divergence(s) found"))
            }
        }
        "explain" => {
            // Matcher-tuning dump: region map, annotated disassembly and
            // the deduplicated reject table for one routine's baseline
            // kernel, with runtime counters from one execution at --n.
            let r = need_routine(args)?;
            if !args.native {
                return Err("explain currently supports only `--native`".into());
            }
            let p = oa_core::blas3::baselines::cublas_like(r, &args.device);
            let b = oa_core::loopir::interp::Bindings::square(args.n);
            let np = oa_core::gpusim::NativeProgram::compile(&p, &b).map_err(|e| e.to_string())?;
            let mut bufs = oa_core::loopir::interp::alloc_buffers(&p, &b, 7);
            np.execute(&mut bufs).map_err(|e| e.to_string())?;
            println!("{} on {} (n = {})", r.name(), args.device.name, args.n);
            println!("{}", np.explain());
            Ok(())
        }
        "model" => {
            // Subcommand rides in the routine slot: train | eval | explain.
            let sub = args
                .routine
                .as_deref()
                .ok_or("model needs a subcommand: train | eval | explain")?;
            let path = resolve_model_path(args);
            match sub {
                "train" => {
                    let trace = args
                        .extra
                        .as_deref()
                        .ok_or("model train needs a trace file (JSONL from `--trace json`)")?;
                    let samples = trace_samples(trace)?;
                    let mut model = oa_core::autotune::CostModel::train(&samples, args.seed);
                    model.engine_hints = oa_core::autotune::measure_engine_hints();
                    let issues = model
                        .save(&path)
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                    for issue in issues {
                        eprintln!("model: {issue}");
                    }
                    match &model.refused {
                        Some(reason) => println!(
                            "model: refuses to rank ({reason}); artifact written to {} — \
                             sweeps stay exact",
                            path.display()
                        ),
                        None => println!(
                            "model: trained on {} sample(s) across {} sweep(s) \
                             (safety x{:.2}); artifact written to {}",
                            model.samples,
                            model.groups,
                            model.safety,
                            path.display()
                        ),
                    }
                    Ok(())
                }
                "eval" => {
                    let trace = args
                        .extra
                        .as_deref()
                        .ok_or("model eval needs a trace file (JSONL from `--trace json`)")?;
                    let (model, issues) = oa_core::autotune::CostModel::load_reporting(&path);
                    for issue in &issues {
                        eprintln!("model: {issue}");
                    }
                    let model = model
                        .ok_or_else(|| format!("no usable model artifact at {}", path.display()))?;
                    if let Some(reason) = &model.refused {
                        return Err(format!("model refuses to rank: {reason}"));
                    }
                    let samples = trace_samples(trace)?;
                    let (hits, total, lines) = eval_hit_rate(&model, &samples);
                    for l in &lines {
                        println!("{l}");
                    }
                    if total == 0 {
                        return Err("trace holds no completed sweep with a winner".into());
                    }
                    let rate = hits as f64 / total as f64;
                    println!("top-5 hit rate: {hits}/{total} = {:.0}%", rate * 100.0);
                    if rate < args.min_hit {
                        return Err(format!(
                            "hit rate {rate:.2} below --min-hit {:.2}",
                            args.min_hit
                        ));
                    }
                    Ok(())
                }
                "explain" => {
                    let (model, issues) = oa_core::autotune::CostModel::load_reporting(&path);
                    for issue in &issues {
                        eprintln!("model: {issue}");
                    }
                    let model = model
                        .ok_or_else(|| format!("no usable model artifact at {}", path.display()))?;
                    println!("cost model at {}", path.display());
                    match &model.refused {
                        Some(reason) => println!("  refuses to rank: {reason}"),
                        None => {
                            println!(
                                "  trained on {} sample(s) across {} sweep(s); safety x{:.2}",
                                model.samples, model.groups, model.safety
                            );
                            println!("  top feature importances:");
                            for (name, w) in model.importances().into_iter().take(12) {
                                println!("    {name:<22} {w:.3}");
                            }
                        }
                    }
                    if !model.engine_hints.is_empty() {
                        println!("  engine hints (fastest composer engine per family):");
                        for (fam, e) in &model.engine_hints {
                            println!("    {fam:<6} {e}");
                        }
                    }
                    Ok(())
                }
                other => Err(format!(
                    "unknown model subcommand `{other}` (train | eval | explain)"
                )),
            }
        }
        "trace-check" => {
            // The routine slot doubles as the file path for this command.
            let path = args
                .routine
                .as_deref()
                .ok_or("trace-check needs a trace file (JSONL on stderr of `--trace json`)")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let report = check_stream(&text)?;
            println!("{report}");
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!(
                "usage: oa <list|tune|compare|variants|cuda|explain|trace-check|serve|fuzz|model> \
                 [ROUTINE|FILE] [--device D] [--n N] [--trace json|pretty|off] \
                 [--threads T] [--capacity C] \
                 [--listen ADDR] [--queue-cap Q] [--tenant-quota K] \
                 [--batch-max B] [--batch-window-ms W] \
                 [--seed S] [--iters I] [--corpus DIR] [--native] \
                 [--model FILE] [--min-hit R]\n\
                 \n\
                 oa model train TRACE.jsonl   # fit the tuner's cost model from a trace\n\
                 oa model eval TRACE.jsonl    # held-out top-5 hit rate (fails < --min-hit)\n\
                 oa model explain             # artifact summary + feature importances"
            );
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `oa help`)")),
    }
}
