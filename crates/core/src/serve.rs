//! The persistent, multi-tenant dispatch server behind
//! `oa serve --listen`, plus the streaming one-shot pipeline behind
//! plain `oa serve`.
//!
//! The paper's endgame is a *library*; a library that tunes once and is
//! then consulted repeatedly wants to be a long-lived process, not a
//! batch job.  This module turns the routine [`Registry`] into exactly
//! that:
//!
//! * [`Listener`] — one JSONL protocol over TCP (`host:port`) or a Unix
//!   domain socket (`unix:/path`);
//! * [`Admission`] — a bounded, tenant-fair admission queue: a global
//!   queue cap and a per-tenant in-flight quota, both answered with a
//!   structured JSONL rejection (`admission/overload`,
//!   `admission/shutdown`) instead of unbounded buffering, and a
//!   round-robin dequeue so one flooding tenant cannot starve the rest;
//! * dynamic batching — admitted requests are coalesced by
//!   `(routine, n)` in a small time/size window
//!   ([`oa_gpusim::dispatch::Coalescer`]) and dispatched as one group
//!   through [`Registry::run_group_observed`], so a burst of identical
//!   requests resolves and compiles **once** and hits the warm program
//!   LRU for the rest;
//! * [`Metrics`] — live counters (queue depth, batch sizes, LRU hit
//!   rate, per-tenant completions, p50/p99 latency) served over the same
//!   socket via `{"op": "metrics"}` / `{"op": "health"}`, and folded
//!   into one terminal [`TuneEvent::Serve`] record after the graceful
//!   drain — the durable trace line `oa trace-check` validates;
//! * [`serve_stream`] — the one-shot mode, rewritten from
//!   slurp-everything to a streaming pipeline (reader → bounded channel
//!   → workers → order-restoring writer) that emits each result line as
//!   soon as it is ready, so piping requests in over a slow producer
//!   gets incremental output instead of silence until EOF.
//!
//! Scheduling metadata (the `tenant` field) never reaches the engines:
//! results served concurrently, batched, under any tenant mix are
//! bit-identical to a sequential one-shot run of the same requests —
//! the server test battery pins this digest-for-digest.

use crate::dag::{DagRequest, DagStatus};
use crate::dispatch::{Registry, Request};
use crate::trace::{emit, stderr_observer, TraceMode};
use oa_autotune::json::Json;
use oa_autotune::report::{BatchStats, ServeStats};
use oa_autotune::TuneEvent;
use oa_gpusim::dispatch::{Coalescer, Pool};
use oa_gpusim::LruStats;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a blocked socket read or idle scheduler wait may last before
/// re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Server tuning knobs.  [`ServeConfig::from_env`] reads the
/// `OA_SERVE_*` environment overrides; the CLI flags override both.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing dynamic batches.
    pub threads: usize,
    /// Global admission-queue bound: requests beyond this many queued
    /// are rejected (`admission/overload`), never buffered unboundedly.
    pub queue_cap: usize,
    /// Per-tenant in-flight bound (queued + executing).
    pub tenant_quota: usize,
    /// Largest dynamic batch the coalescer forms.
    pub batch_max: usize,
    /// How long the coalescer holds an under-full group open waiting
    /// for same-`(routine, n)` company.
    pub batch_window: Duration,
    /// Latency samples kept for the p50/p99 estimate (a ring: the
    /// percentiles track the most recent window, not the full history).
    pub latency_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: std::thread::available_parallelism().map_or(2, |p| p.get()),
            queue_cap: 1024,
            tenant_quota: 32,
            batch_max: 16,
            batch_window: Duration::from_millis(2),
            latency_window: 4096,
        }
    }
}

impl ServeConfig {
    /// The defaults with `OA_SERVE_THREADS`, `OA_SERVE_QUEUE_CAP`,
    /// `OA_SERVE_TENANT_QUOTA`, `OA_SERVE_BATCH_MAX` and
    /// `OA_SERVE_BATCH_WINDOW_MS` applied.
    pub fn from_env() -> ServeConfig {
        let mut c = ServeConfig::default();
        if let Some(v) = env_usize("OA_SERVE_THREADS") {
            c.threads = v.max(1);
        }
        if let Some(v) = env_usize("OA_SERVE_QUEUE_CAP") {
            c.queue_cap = v.max(1);
        }
        if let Some(v) = env_usize("OA_SERVE_TENANT_QUOTA") {
            c.tenant_quota = v.max(1);
        }
        if let Some(v) = env_usize("OA_SERVE_BATCH_MAX") {
            c.batch_max = v.max(1);
        }
        if let Some(v) = env_usize("OA_SERVE_BATCH_WINDOW_MS") {
            c.batch_window = Duration::from_millis(v as u64);
        }
        c
    }
}

// ---------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------

/// A bound server socket: TCP or Unix domain.
pub enum Listener {
    /// A TCP listener (`host:port`; port 0 picks a free port).
    Tcp(TcpListener),
    /// A Unix-domain listener and its socket path (unlinked on exit).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Bind `addr`: `unix:/path/to.sock` for a Unix domain socket
    /// (a stale socket file is replaced), anything else as a TCP
    /// `host:port`.
    pub fn bind(addr: &str) -> std::io::Result<Listener> {
        if let Some(path) = addr.strip_prefix("unix:") {
            let path = PathBuf::from(path);
            let _ = std::fs::remove_file(&path);
            Ok(Listener::Unix(UnixListener::bind(&path)?, path))
        } else {
            Ok(Listener::Tcp(TcpListener::bind(addr)?))
        }
    }

    /// The bound address, in the same syntax [`Listener::bind`] accepts
    /// (TCP with the real port, so binding port 0 is test-friendly).
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into()),
            Listener::Unix(_, p) => format!("unix:{}", p.display()),
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The write half of one connection, shared between the reader (for
/// immediate rejections) and every worker serving that connection's
/// requests.  Lines are written atomically under the lock; a client
/// that hung up just makes writes no-ops (the request still completes
/// and is accounted — results are never silently dropped server-side).
struct ConnOut {
    w: Mutex<Box<dyn Write + Send>>,
}

impl ConnOut {
    fn send_line(&self, line: &str) {
        let mut w = self.w.lock().expect("unpoisoned connection");
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
        let _ = w.flush();
    }
}

// ---------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------

/// Why a request was refused at admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Stable class for the JSONL error line (`admission/overload`,
    /// `admission/shutdown`).
    pub class: &'static str,
    /// Human-readable cause.
    pub reason: String,
}

struct AdmissionInner<T> {
    queues: HashMap<String, VecDeque<T>>,
    /// Tenant round-robin order (first-seen).  Tenants are never
    /// removed: the set is small (it is bounded by distinct `tenant`
    /// strings seen) and keeping them preserves fairness position.
    order: Vec<String>,
    cursor: usize,
    queued: usize,
    /// Queued + executing, per tenant — the quota denominator.
    inflight: HashMap<String, usize>,
    draining: bool,
}

/// The bounded, tenant-fair admission queue.
///
/// `push` never blocks: over the global cap or the tenant quota it
/// returns a [`Rejection`] for the caller to answer immediately —
/// backpressure is explicit and bounded, the server cannot OOM on a
/// flood.  `pop` dequeues round-robin across tenants, so tenants share
/// dequeue bandwidth evenly no matter how unevenly they submit.
pub struct Admission<T> {
    inner: Mutex<AdmissionInner<T>>,
    cv: Condvar,
    queue_cap: usize,
    tenant_quota: usize,
}

impl<T> Admission<T> {
    /// An empty queue with the given global and per-tenant bounds.
    pub fn new(queue_cap: usize, tenant_quota: usize) -> Admission<T> {
        Admission {
            inner: Mutex::new(AdmissionInner {
                queues: HashMap::new(),
                order: Vec::new(),
                cursor: 0,
                queued: 0,
                inflight: HashMap::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            queue_cap: queue_cap.max(1),
            tenant_quota: tenant_quota.max(1),
        }
    }

    /// Admit one item for `tenant`, or reject it with a structured
    /// reason.  Admission raises the tenant's in-flight count; the
    /// caller must pair every admitted item with one [`Admission::complete`].
    pub fn push(&self, tenant: &str, item: T) -> Result<(), Rejection> {
        let mut g = self.inner.lock().expect("unpoisoned admission");
        if g.draining {
            return Err(Rejection {
                class: "admission/shutdown",
                reason: "server is draining".into(),
            });
        }
        if g.queued >= self.queue_cap {
            return Err(Rejection {
                class: "admission/overload",
                reason: format!("admission queue full ({} queued)", g.queued),
            });
        }
        let inflight = g.inflight.get(tenant).copied().unwrap_or(0);
        if inflight >= self.tenant_quota {
            return Err(Rejection {
                class: "admission/overload",
                reason: format!(
                    "tenant `{tenant}` over its in-flight quota ({inflight}/{})",
                    self.tenant_quota
                ),
            });
        }
        if !g.queues.contains_key(tenant) {
            g.order.push(tenant.to_string());
            g.queues.insert(tenant.to_string(), VecDeque::new());
        }
        g.queues
            .get_mut(tenant)
            .expect("tenant queue")
            .push_back(item);
        *g.inflight.entry(tenant.to_string()).or_insert(0) += 1;
        g.queued += 1;
        drop(g);
        self.cv.notify_all();
        Ok(())
    }

    /// Dequeue the next item round-robin across tenants (non-blocking).
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("unpoisoned admission");
        if g.queued == 0 || g.order.is_empty() {
            return None;
        }
        let tenants = g.order.len();
        for step in 0..tenants {
            let idx = (g.cursor + step) % tenants;
            let tenant = g.order[idx].clone();
            if let Some(item) = g.queues.get_mut(&tenant).and_then(VecDeque::pop_front) {
                g.cursor = (idx + 1) % tenants;
                g.queued -= 1;
                return Some(item);
            }
        }
        None
    }

    /// Mark one admitted item finished, releasing its tenant-quota slot.
    pub fn complete(&self, tenant: &str) {
        let mut g = self.inner.lock().expect("unpoisoned admission");
        if let Some(c) = g.inflight.get_mut(tenant) {
            *c = c.saturating_sub(1);
        }
    }

    /// Refuse all future pushes (`admission/shutdown`); already-queued
    /// items still drain through [`Admission::pop`].
    pub fn begin_drain(&self) {
        self.inner.lock().expect("unpoisoned admission").draining = true;
        self.cv.notify_all();
    }

    /// Items currently queued (not yet dequeued by the scheduler).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("unpoisoned admission").queued
    }

    /// No items queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block up to `timeout` for the queue to become non-empty.
    pub fn wait_for_work(&self, timeout: Duration) {
        let g = self.inner.lock().expect("unpoisoned admission");
        if g.queued > 0 || g.draining {
            return;
        }
        let _ = self
            .cv
            .wait_timeout_while(g, timeout, |g| g.queued == 0 && !g.draining)
            .expect("unpoisoned admission");
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

struct LatencyRing {
    cap: usize,
    buf: Vec<f64>,
    next: usize,
}

impl LatencyRing {
    fn record(&mut self, ms: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(ms);
        } else {
            self.buf[self.next] = ms;
        }
        self.next = (self.next + 1) % self.cap.max(1);
    }

    fn percentiles(&self) -> (f64, f64) {
        let mut v = self.buf.clone();
        if v.is_empty() {
            return (0.0, 0.0);
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        (percentile(&v, 50.0), percentile(&v, 99.0))
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Live server counters, shared by the workers (writes), the `metrics`
/// introspection op (reads) and the terminal [`TuneEvent::Serve`] record.
pub struct Metrics {
    started: Instant,
    admitted: AtomicUsize,
    completed: AtomicUsize,
    ok: AtomicUsize,
    failed: AtomicUsize,
    rejected: AtomicUsize,
    clamped: AtomicUsize,
    batches: AtomicUsize,
    max_batch: AtomicUsize,
    latencies: Mutex<LatencyRing>,
    /// Completions per tenant (the fairness audit trail).
    tenants: Mutex<BTreeMap<String, u64>>,
    /// Program-store counters at server start: lifetime deltas are
    /// relative to this, so a pre-warmed registry doesn't inflate the
    /// server's own hit rate.
    base_lru: LruStats,
}

impl Metrics {
    fn new(latency_window: usize, base_lru: LruStats) -> Metrics {
        Metrics {
            started: Instant::now(),
            admitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            ok: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            clamped: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
            max_batch: AtomicUsize::new(0),
            latencies: Mutex::new(LatencyRing {
                cap: latency_window.max(1),
                buf: Vec::new(),
                next: 0,
            }),
            tenants: Mutex::new(BTreeMap::new()),
            base_lru,
        }
    }

    fn note_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(size, Ordering::Relaxed);
    }

    fn note_outcome(&self, tenant: &str, ok: bool, clamped: bool, latency_ms: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if ok {
            self.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        if clamped {
            self.clamped.fetch_add(1, Ordering::Relaxed);
        }
        self.latencies
            .lock()
            .expect("unpoisoned metrics")
            .record(latency_ms);
        *self
            .tenants
            .lock()
            .expect("unpoisoned metrics")
            .entry(tenant.to_string())
            .or_insert(0) += 1;
    }

    fn stats(&self, lru: LruStats) -> ServeStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let (p50, p99) = self
            .latencies
            .lock()
            .expect("unpoisoned metrics")
            .percentiles();
        let delta = lru.since(&self.base_lru);
        ServeStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed,
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            clamped: self.clamped.load(Ordering::Relaxed),
            batches,
            max_batch: self.max_batch.load(Ordering::Relaxed),
            mean_batch: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            p50_ms: p50,
            p99_ms: p99,
            hits: delta.hits,
            misses: delta.misses,
            tenants: self.tenants.lock().expect("unpoisoned metrics").len(),
            wall_ms: self.started.elapsed().as_secs_f64() * 1e3,
        }
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// One admitted unit of work: a single routine request, or a whole
/// expression DAG — a DAG is scheduled, dispatched and executed as one
/// indivisible unit (never split across batches).
enum Work {
    Single(Request),
    Dag(DagRequest),
}

impl Work {
    fn tenant_name(&self) -> &str {
        match self {
            Work::Single(r) => r.tenant_name(),
            Work::Dag(d) => d.tenant_name(),
        }
    }

    /// The dynamic-batching key: singles coalesce by `(routine, n)`,
    /// DAGs by `(shape, n)`.  The `dag:` prefix keeps the key spaces
    /// disjoint; same-shape DAGs share a group but each member still
    /// executes as its own unit.
    fn coalesce_key(&self) -> (String, i64) {
        match self {
            Work::Single(r) => (r.routine.name(), r.n),
            Work::Dag(d) => (format!("dag:{}", d.shape()), d.n),
        }
    }
}

struct Pending {
    id: u64,
    work: Work,
    conn: Arc<ConnOut>,
    admitted_at: Instant,
}

struct ServerCtx {
    registry: Arc<Registry>,
    admission: Admission<Pending>,
    metrics: Metrics,
    shutdown: AtomicBool,
    threads: usize,
    conns: AtomicU64,
}

impl ServerCtx {
    fn metrics_json(&self, op: &str) -> Json {
        let s = self.metrics.stats(self.registry.program_stats());
        let lru = self.registry.program_stats().since(&self.metrics.base_lru);
        let tenants = Json::Obj(
            self.metrics
                .tenants
                .lock()
                .expect("unpoisoned metrics")
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                .collect::<BTreeMap<_, _>>(),
        );
        Json::Obj(BTreeMap::from([
            ("op".to_string(), Json::Str(op.into())),
            ("status".to_string(), Json::Str("ok".into())),
            ("uptime_ms".to_string(), Json::Num(s.wall_ms)),
            (
                "queue_depth".to_string(),
                Json::Int(self.admission.len() as i64),
            ),
            ("admitted".to_string(), Json::Int(s.admitted as i64)),
            ("completed".to_string(), Json::Int(s.completed as i64)),
            ("ok".to_string(), Json::Int(s.ok as i64)),
            ("failed".to_string(), Json::Int(s.failed as i64)),
            ("rejected".to_string(), Json::Int(s.rejected as i64)),
            ("clamped".to_string(), Json::Int(s.clamped as i64)),
            ("batches".to_string(), Json::Int(s.batches as i64)),
            ("max_batch".to_string(), Json::Int(s.max_batch as i64)),
            ("mean_batch".to_string(), Json::Num(s.mean_batch)),
            ("p50_ms".to_string(), Json::Num(s.p50_ms)),
            ("p99_ms".to_string(), Json::Num(s.p99_ms)),
            ("lru_hits".to_string(), Json::Int(lru.hits as i64)),
            ("lru_misses".to_string(), Json::Int(lru.misses as i64)),
            ("lru_evictions".to_string(), Json::Int(lru.evictions as i64)),
            (
                "programs".to_string(),
                Json::Int(self.registry.programs_len() as i64),
            ),
            ("threads".to_string(), Json::Int(self.threads as i64)),
            ("tenants".to_string(), tenants),
        ]))
    }

    fn health_json(&self) -> Json {
        let draining = self.shutdown.load(Ordering::SeqCst);
        Json::Obj(BTreeMap::from([
            ("op".to_string(), Json::Str("health".into())),
            (
                "status".to_string(),
                Json::Str(if draining { "draining" } else { "ok" }.into()),
            ),
            (
                "uptime_ms".to_string(),
                Json::Num(self.metrics.started.elapsed().as_secs_f64() * 1e3),
            ),
            (
                "queue_depth".to_string(),
                Json::Int(self.admission.len() as i64),
            ),
            (
                "connections".to_string(),
                Json::Int(self.conns.load(Ordering::Relaxed) as i64),
            ),
        ]))
    }
}

fn error_line(id: Option<u64>, class: &str, reason: &str) -> String {
    let mut fields = BTreeMap::from([
        ("status".to_string(), Json::Str("error".into())),
        ("class".to_string(), Json::Str(class.into())),
        ("reason".to_string(), Json::Str(reason.into())),
    ]);
    if let Some(id) = id {
        fields.insert("id".to_string(), Json::Int(id as i64));
    }
    Json::Obj(fields).compact()
}

/// One connection's reader loop: split the byte stream into lines
/// (tolerating partial reads — the read timeout exists so the thread
/// can notice a shutdown), answer admin ops inline, and admit requests.
fn handle_conn(stream: Stream, ctx: Arc<ServerCtx>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let out = match stream.try_clone() {
        Ok(w) => Arc::new(ConnOut {
            w: Mutex::new(Box::new(w) as Box<dyn Write + Send>),
        }),
        Err(_) => return,
    };
    ctx.conns.fetch_add(1, Ordering::Relaxed);
    let mut stream = stream;
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut next_id: u64 = 0;
    'conn: loop {
        match stream.read(&mut chunk) {
            Ok(0) => break 'conn,
            Ok(n) => {
                acc.extend_from_slice(&chunk[..n]);
                while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = acc.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if handle_line(line, &mut next_id, &out, &ctx) {
                        break 'conn;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle: a drained server closes readers; a live one
                // keeps waiting for the next line.
                if ctx.shutdown.load(Ordering::SeqCst) && ctx.admission.is_empty() {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }
    ctx.conns.fetch_sub(1, Ordering::Relaxed);
}

/// Process one input line; returns `true` when the connection should
/// close (a `shutdown` op).
fn handle_line(line: &str, next_id: &mut u64, out: &Arc<ConnOut>, ctx: &Arc<ServerCtx>) -> bool {
    let doc = match oa_autotune::json::parse(line) {
        Some(d) => d,
        None => {
            let id = *next_id;
            *next_id += 1;
            ctx.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            out.send_line(&error_line(Some(id), "parse", "not valid JSON"));
            return false;
        }
    };
    if let Some(op) = doc.get("op").and_then(Json::as_str) {
        match op {
            "metrics" => out.send_line(&ctx.metrics_json("metrics").compact()),
            "health" => out.send_line(&ctx.health_json().compact()),
            "shutdown" => {
                ctx.shutdown.store(true, Ordering::SeqCst);
                ctx.admission.begin_drain();
                out.send_line(
                    &Json::Obj(BTreeMap::from([
                        ("op".to_string(), Json::Str("shutdown".into())),
                        ("status".to_string(), Json::Str("draining".into())),
                    ]))
                    .compact(),
                );
            }
            other => out.send_line(&error_line(None, "op", &format!("unknown op `{other}`"))),
        }
        return false;
    }
    let id = *next_id;
    *next_id += 1;
    // A `dag` field selects the DAG schema; its violations carry their
    // own structured `admission/dag*` classes.
    let work = if doc.get("dag").is_some() {
        match DagRequest::from_json(&doc) {
            Ok(d) => Work::Dag(d),
            Err(e) => {
                ctx.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                out.send_line(&error_line(Some(id), e.class, &e.reason));
                return false;
            }
        }
    } else {
        match Request::from_json(&doc) {
            Ok(r) => Work::Single(r),
            Err(e) => {
                ctx.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                out.send_line(&error_line(Some(id), "parse", &e));
                return false;
            }
        }
    };
    let tenant = work.tenant_name().to_string();
    let pending = Pending {
        id,
        work,
        conn: out.clone(),
        admitted_at: Instant::now(),
    };
    match ctx.admission.push(&tenant, pending) {
        Ok(()) => {
            ctx.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        }
        Err(rej) => {
            ctx.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            out.send_line(&error_line(Some(id), rej.class, &rej.reason));
        }
    }
    false
}

/// Dispatch one coalesced group to the worker pool.
fn dispatch_group(
    ctx: &Arc<ServerCtx>,
    pool: &Pool,
    jobs: &Arc<(Mutex<usize>, Condvar)>,
    trace: TraceMode,
    items: Vec<Pending>,
) {
    ctx.metrics.note_batch(items.len());
    *jobs.0.lock().expect("unpoisoned job counter") += 1;
    let ctx = ctx.clone();
    let jobs = jobs.clone();
    pool.spawn(move || {
        let mut obs = stderr_observer(trace);
        // A group's key is homogeneous, but resolve generically: singles
        // run through the shared-compile group path, each DAG runs as
        // one indivisible unit through the fusion registry.
        let single_reqs: Vec<Request> = items
            .iter()
            .filter_map(|p| match &p.work {
                Work::Single(r) => Some(r.clone()),
                Work::Dag(_) => None,
            })
            .collect();
        let mut single_outcomes = ctx
            .registry
            .run_group_observed(&single_reqs, &mut obs)
            .into_iter();
        for p in &items {
            let latency_ms = p.admitted_at.elapsed().as_secs_f64() * 1e3;
            let (line, ok, clamped) = match &p.work {
                Work::Single(_) => {
                    let outcome = single_outcomes.next().expect("one outcome per single");
                    let (ok, clamped) = match &outcome.status {
                        crate::dispatch::RequestStatus::Ok(o) => (true, o.clamped),
                        crate::dispatch::RequestStatus::Failed { .. } => (false, false),
                    };
                    (outcome.to_json(p.id as usize).compact(), ok, clamped)
                }
                Work::Dag(d) => {
                    let outcome = ctx.registry.run_dag_observed(d, &mut obs);
                    let ok = matches!(outcome.status, DagStatus::Ok(_));
                    (outcome.to_json(p.id as usize).compact(), ok, false)
                }
            };
            ctx.metrics
                .note_outcome(p.work.tenant_name(), ok, clamped, latency_ms);
            p.conn.send_line(&line);
            ctx.admission.complete(p.work.tenant_name());
        }
        let (lock, cv) = &*jobs;
        *lock.lock().expect("unpoisoned job counter") -= 1;
        cv.notify_all();
    });
}

/// A running server.  Dropping the handle does **not** stop it; call
/// [`Server::shutdown_and_join`] (or send `{"op": "shutdown"}` over any
/// connection and join).
pub struct Server {
    addr: String,
    ctx: Arc<ServerCtx>,
    handle: std::thread::JoinHandle<ServeStats>,
}

impl Server {
    /// The bound address ([`Listener::local_addr`] syntax).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Begin the graceful drain (stop admitting, finish everything
    /// admitted) and block until the server exits, returning its
    /// lifetime totals.
    pub fn shutdown_and_join(self) -> ServeStats {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        self.ctx.admission.begin_drain();
        self.handle.join().expect("server thread panicked")
    }

    /// Block until the server exits on its own (a client `shutdown` op).
    pub fn join(self) -> ServeStats {
        self.handle.join().expect("server thread panicked")
    }
}

/// Start the persistent server on `listener`.
///
/// The returned [`Server`] runs until a `shutdown` op arrives or
/// [`Server::shutdown_and_join`] is called; either way the shutdown is
/// a **graceful drain** — every admitted request is answered, late
/// arrivals are rejected with `admission/shutdown`, and the lifetime
/// [`ServeStats`] are emitted as one [`TuneEvent::Serve`] trace line
/// (under the registry's trace gate, so the stream stays well-formed).
pub fn spawn_server(
    registry: Arc<Registry>,
    listener: Listener,
    cfg: ServeConfig,
    trace: TraceMode,
) -> Server {
    let addr = listener.local_addr();
    let base_lru = registry.program_stats();
    let ctx = Arc::new(ServerCtx {
        registry,
        admission: Admission::new(cfg.queue_cap, cfg.tenant_quota),
        metrics: Metrics::new(cfg.latency_window, base_lru),
        shutdown: AtomicBool::new(false),
        threads: cfg.threads.max(1),
        conns: AtomicU64::new(0),
    });

    // Accept loop: non-blocking so it can observe the shutdown flag.
    let accept_ctx = ctx.clone();
    let accept = std::thread::spawn(move || {
        let unix_path = match &listener {
            Listener::Unix(_, p) => Some(p.clone()),
            Listener::Tcp(_) => None,
        };
        let set_nonblocking = match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true),
            Listener::Unix(l, _) => l.set_nonblocking(true),
        };
        if set_nonblocking.is_err() {
            return;
        }
        while !accept_ctx.shutdown.load(Ordering::SeqCst) {
            let accepted = match &listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            match accepted {
                Ok(stream) => {
                    let conn_ctx = accept_ctx.clone();
                    std::thread::spawn(move || handle_conn(stream, conn_ctx));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => break,
            }
        }
        if let Some(p) = unix_path {
            let _ = std::fs::remove_file(p);
        }
    });

    // Scheduler: admission → coalescer → worker pool, then drain.
    let sched_ctx = ctx.clone();
    let handle = std::thread::spawn(move || {
        let ctx = sched_ctx;
        let pool = Pool::new(ctx.threads);
        let jobs: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let mut coal: Coalescer<(String, i64), Pending> =
            Coalescer::new(cfg.batch_max, cfg.batch_window);
        loop {
            while let Some(p) = ctx.admission.pop() {
                coal.push(p.work.coalesce_key(), p, Instant::now());
            }
            while let Some((_k, items)) = coal.pop_ready(Instant::now()) {
                dispatch_group(&ctx, &pool, &jobs, trace, items);
            }
            if ctx.shutdown.load(Ordering::SeqCst) {
                ctx.admission.begin_drain();
                while let Some(p) = ctx.admission.pop() {
                    coal.push(p.work.coalesce_key(), p, Instant::now());
                }
                while let Some((_k, items)) = coal.pop_oldest() {
                    dispatch_group(&ctx, &pool, &jobs, trace, items);
                }
                break;
            }
            let now = Instant::now();
            let sleep = coal
                .next_deadline()
                .map(|d| d.saturating_duration_since(now))
                .unwrap_or(POLL_INTERVAL)
                .min(POLL_INTERVAL);
            if sleep > Duration::ZERO {
                ctx.admission.wait_for_work(sleep);
            }
        }
        // Wait for every dispatched group to finish, then stop the pool.
        {
            let (lock, cv) = &*jobs;
            let mut count = lock.lock().expect("unpoisoned job counter");
            while *count > 0 {
                count = cv.wait(count).expect("unpoisoned job counter");
            }
        }
        drop(pool);
        let stats = ctx.metrics.stats(ctx.registry.program_stats());
        {
            // The gate keeps this multi-field (single-line) record from
            // splicing into any tune a stray late resolver might emit.
            let _gate = ctx.registry.trace_gate();
            emit(
                trace,
                &TuneEvent::Serve(stats.clone()),
                &mut std::io::stderr().lock(),
            );
        }
        let _ = accept.join();
        stats
    });

    Server { addr, ctx, handle }
}

// ---------------------------------------------------------------------
// Streaming one-shot mode
// ---------------------------------------------------------------------

/// Serve a JSONL request stream **incrementally**: lines are parsed as
/// they arrive, executed by `threads` workers, and each result line is
/// written (in submission order) and flushed as soon as it is ready —
/// a slow producer piping requests in sees results flow, not silence
/// until EOF.
///
/// Invalid lines become structured `{"status":"error","class":"parse"}`
/// results (counted as failed) instead of aborting the stream.  One
/// terminal [`TuneEvent::Batch`] is emitted through `obs` with the run's
/// accounting, which is also returned.
pub fn serve_stream(
    registry: &Registry,
    input: &mut dyn BufRead,
    output: &mut (dyn Write + Send),
    threads: usize,
    trace: TraceMode,
) -> Result<BatchStats, String> {
    let threads = threads.max(1);
    let before = registry.program_stats();
    let t0 = Instant::now();
    let ok_count = AtomicUsize::new(0);
    let failed_count = AtomicUsize::new(0);
    let mut submitted = 0usize;
    let io_err: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|s| {
        let (tx_req, rx_req) = mpsc::sync_channel::<(usize, Work)>(threads * 4);
        let (tx_out, rx_out) = mpsc::channel::<(usize, String)>();
        let rx_req = Arc::new(Mutex::new(rx_req));

        // Workers: pull requests, execute, hand the rendered line to the
        // order-restoring writer.  Tuning events go straight to stderr;
        // the registry's trace gate keeps concurrent tune spans whole.
        for _ in 0..threads {
            let rx_req = rx_req.clone();
            let tx_out = tx_out.clone();
            let ok_count = &ok_count;
            let failed_count = &failed_count;
            s.spawn(move || {
                let mut obs = stderr_observer(trace);
                loop {
                    let job = rx_req.lock().expect("unpoisoned channel").recv();
                    let (id, work) = match job {
                        Ok(j) => j,
                        Err(_) => break,
                    };
                    let (line, ok) = match work {
                        Work::Single(req) => {
                            let outcome = registry.run_one_observed(&req, &mut obs);
                            let ok =
                                matches!(outcome.status, crate::dispatch::RequestStatus::Ok(_));
                            (outcome.to_json(id).compact(), ok)
                        }
                        Work::Dag(dag) => {
                            let outcome = registry.run_dag_observed(&dag, &mut obs);
                            let ok = matches!(outcome.status, DagStatus::Ok(_));
                            (outcome.to_json(id).compact(), ok)
                        }
                    };
                    if ok {
                        ok_count.fetch_add(1, Ordering::Relaxed);
                    } else {
                        failed_count.fetch_add(1, Ordering::Relaxed);
                    }
                    if tx_out.send((id, line)).is_err() {
                        break;
                    }
                }
            });
        }

        // Writer: restore submission order with a reorder buffer and
        // flush per line — the incremental-output contract.
        let writer = s.spawn(move || -> Result<(), String> {
            let mut pendingq: BTreeMap<usize, String> = BTreeMap::new();
            let mut next = 0usize;
            while let Ok((id, line)) = rx_out.recv() {
                pendingq.insert(id, line);
                while let Some(line) = pendingq.remove(&next) {
                    writeln!(output, "{line}").map_err(|e| format!("output: {e}"))?;
                    output.flush().map_err(|e| format!("output: {e}"))?;
                    next += 1;
                }
            }
            Ok(())
        });

        // Reader (this thread): split lines, parse, feed the workers.
        let mut line = String::new();
        loop {
            line.clear();
            match input.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => {
                    *io_err.lock().expect("unpoisoned error slot") = Some(format!("input: {e}"));
                    break;
                }
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let id = submitted;
            submitted += 1;
            let parsed = match oa_autotune::json::parse(trimmed) {
                // The `dag` field selects the DAG schema with its own
                // structured `admission/dag*` error classes.
                Some(doc) if doc.get("dag").is_some() => DagRequest::from_json(&doc)
                    .map(Work::Dag)
                    .map_err(|e| (e.class, e.reason)),
                Some(doc) => Request::from_json(&doc)
                    .map(Work::Single)
                    .map_err(|e| ("parse", e)),
                None => Err(("parse", "not valid JSON".to_string())),
            };
            match parsed {
                Ok(work) => {
                    if tx_req.send((id, work)).is_err() {
                        break;
                    }
                }
                Err((class, e)) => {
                    failed_count.fetch_add(1, Ordering::Relaxed);
                    if tx_out
                        .send((id, error_line(Some(id as u64), class, &e)))
                        .is_err()
                    {
                        break;
                    }
                }
            }
        }
        drop(tx_req);
        drop(tx_out);
        if let Err(e) = writer.join().expect("writer thread panicked") {
            let mut slot = io_err.lock().expect("unpoisoned error slot");
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    });

    if let Some(e) = io_err.into_inner().expect("unpoisoned error slot") {
        return Err(e);
    }
    let wall = t0.elapsed().as_secs_f64();
    let delta = registry.program_stats().since(&before);
    let stats = BatchStats {
        requests: submitted,
        ok: ok_count.into_inner(),
        failed: failed_count.into_inner(),
        hits: delta.hits,
        misses: delta.misses,
        evictions: delta.evictions,
        threads: threads.min(submitted.max(1)),
        wall_ms: wall * 1e3,
        requests_per_sec: submitted as f64 / wall.max(1e-9),
    };
    {
        let _gate = registry.trace_gate();
        emit(
            trace,
            &TuneEvent::Batch(stats),
            &mut std::io::stderr().lock(),
        );
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_bounds_queue_and_tenant_quota() {
        let adm: Admission<u32> = Admission::new(3, 2);
        assert!(adm.push("a", 1).is_ok());
        assert!(adm.push("a", 2).is_ok());
        // Tenant `a` at quota.
        let rej = adm.push("a", 3).unwrap_err();
        assert_eq!(rej.class, "admission/overload");
        assert!(rej.reason.contains("quota"), "{}", rej.reason);
        // Other tenants still admitted, up to the global cap.
        assert!(adm.push("b", 4).is_ok());
        let rej = adm.push("c", 5).unwrap_err();
        assert!(rej.reason.contains("queue full"), "{}", rej.reason);
        // Completion frees quota but the queue is still full until pops.
        assert_eq!(adm.len(), 3);
        let _ = adm.pop().unwrap();
        assert!(adm.push("c", 5).is_ok());
    }

    #[test]
    fn admission_dequeues_round_robin_across_tenants() {
        let adm: Admission<&'static str> = Admission::new(100, 100);
        // Tenant `flood` submits 4, `a` and `b` one each.
        for item in ["f1", "f2", "f3", "f4"] {
            adm.push("flood", item).unwrap();
        }
        adm.push("a", "a1").unwrap();
        adm.push("b", "b1").unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| adm.pop()).collect();
        // Round-robin: each tenant yields one per cycle, so `a1` and
        // `b1` surface long before the flood drains.
        assert_eq!(order, vec!["f1", "a1", "b1", "f2", "f3", "f4"]);
    }

    #[test]
    fn admission_drain_rejects_new_work_but_pops_old() {
        let adm: Admission<u32> = Admission::new(10, 10);
        adm.push("t", 1).unwrap();
        adm.begin_drain();
        let rej = adm.push("t", 2).unwrap_err();
        assert_eq!(rej.class, "admission/shutdown");
        assert_eq!(adm.pop(), Some(1));
        assert_eq!(adm.pop(), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn latency_ring_wraps_and_keeps_recent_window() {
        let mut r = LatencyRing {
            cap: 4,
            buf: Vec::new(),
            next: 0,
        };
        for ms in [100.0, 100.0, 100.0, 100.0] {
            r.record(ms);
        }
        // Overwrite the window with fast samples: percentiles follow.
        for ms in [1.0, 1.0, 1.0, 1.0] {
            r.record(ms);
        }
        assert_eq!(r.percentiles(), (1.0, 1.0));
        assert_eq!(r.buf.len(), 4);
    }

    #[test]
    fn serve_config_env_overrides() {
        // Not using set_var churn (tests run concurrently); just check
        // the default floor logic.
        let c = ServeConfig::default();
        assert!(c.threads >= 1);
        assert!(c.queue_cap >= 1);
        assert!(c.batch_max >= 1);
    }

    #[test]
    fn listener_binds_tcp_and_unix() {
        let tcp = Listener::bind("127.0.0.1:0").unwrap();
        let addr = tcp.local_addr();
        assert!(addr.contains(':'), "{addr}");
        let path = std::env::temp_dir().join(format!("oa-serve-test-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let unix = Listener::bind(&addr).unwrap();
        assert_eq!(unix.local_addr(), addr);
        drop(unix);
        let _ = std::fs::remove_file(&path);
    }
}
