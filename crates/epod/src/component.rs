//! The optimization-component registry: which pool each component belongs
//! to and the location constraints the composer's mixer must respect.

use std::fmt;

/// Which pool a component lives in (Fig. 2).  The splitter routes
/// memory-allocation components to the allocator; everything else is
/// sequence-ordered and participates in mixing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pool {
    /// Loop transformations on the polyhedral representation.
    Polyhedral,
    /// Components applied on the compiler IR after loop restructuring.
    Traditional,
}

/// Registry entry for one component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ComponentInfo {
    /// Canonical name as written in scripts.
    pub name: &'static str,
    /// Pool membership.
    pub pool: Pool,
    /// Must be the first component of any sequence (`GM_map`, Sec. IV.A.1:
    /// "GM_map is valid only when it is the first optimization in an
    /// optimization sequence").
    pub must_be_first: bool,
    /// Memory-allocation component, handled by the composer's allocator
    /// rather than the mixer (`SM_alloc`, `Reg_alloc`).
    pub is_allocation: bool,
    /// Number of loop labels the component returns (script output arity).
    pub returns: usize,
}

/// All components of our two pools.
pub const COMPONENTS: &[ComponentInfo] = &[
    ComponentInfo {
        name: "thread_grouping",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 2,
    },
    ComponentInfo {
        name: "loop_tiling",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 3,
    },
    ComponentInfo {
        name: "loop_interchange",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "loop_fission",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "loop_fusion",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "GM_map",
        pool: Pool::Polyhedral,
        must_be_first: true,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "format_iteration",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "peel_triangular",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "padding_triangular",
        pool: Pool::Polyhedral,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "loop_unroll",
        pool: Pool::Traditional,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
    ComponentInfo {
        name: "SM_alloc",
        pool: Pool::Traditional,
        must_be_first: false,
        is_allocation: true,
        returns: 0,
    },
    ComponentInfo {
        name: "reg_alloc",
        pool: Pool::Traditional,
        must_be_first: false,
        is_allocation: true,
        returns: 0,
    },
    ComponentInfo {
        name: "binding_triangular",
        pool: Pool::Traditional,
        must_be_first: false,
        is_allocation: false,
        returns: 0,
    },
];

/// Look up a component by script name (case-sensitive, with the paper's
/// capitalization quirks tolerated: `Reg_alloc`/`reg_alloc`,
/// `SM_alloc`/`sm_alloc`).
pub fn lookup(name: &str) -> Option<&'static ComponentInfo> {
    let canonical = match name {
        "Reg_alloc" => "reg_alloc",
        "sm_alloc" => "SM_alloc",
        "gm_map" => "GM_map",
        other => other,
    };
    COMPONENTS.iter().find(|c| c.name == canonical)
}

/// Unknown-component error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownComponent(pub String);

impl fmt::Display for UnknownComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown optimization component `{}`", self.0)
    }
}

impl std::error::Error for UnknownComponent {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lookup_and_aliases() {
        assert!(lookup("thread_grouping").is_some());
        assert_eq!(lookup("Reg_alloc").unwrap().name, "reg_alloc");
        assert_eq!(lookup("gm_map").unwrap().name, "GM_map");
        assert!(lookup("warp_specialize").is_none());
    }

    #[test]
    fn constraints() {
        assert!(lookup("GM_map").unwrap().must_be_first);
        assert!(lookup("SM_alloc").unwrap().is_allocation);
        assert!(lookup("reg_alloc").unwrap().is_allocation);
        assert!(!lookup("loop_unroll").unwrap().is_allocation);
        assert_eq!(lookup("thread_grouping").unwrap().returns, 2);
        assert_eq!(lookup("loop_tiling").unwrap().returns, 3);
    }

    #[test]
    fn pools() {
        assert_eq!(lookup("peel_triangular").unwrap().pool, Pool::Polyhedral);
        assert_eq!(lookup("loop_unroll").unwrap().pool, Pool::Traditional);
        assert_eq!(
            lookup("binding_triangular").unwrap().pool,
            Pool::Traditional
        );
    }
}
