//! EPOD script AST: the optimization-scheme notation of Fig. 3 / Fig. 14.
//!
//! ```text
//! (Lii, Ljj) = thread_grouping((Li, Lj));
//! (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
//! loop_unroll(Ljjj, Lkkk);
//! SM_alloc(B, Transpose);
//! reg_alloc(C);
//! ```

use oa_loopir::AllocMode;
use std::fmt;

/// One argument of a component invocation.  Scripts are untyped at parse
/// time; the translator resolves identifiers to loop labels, array names or
/// allocation modes according to the component's signature.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Arg {
    /// An identifier (loop label, script variable, array name, or mode).
    Ident(String),
    /// An integer literal.
    Int(i64),
}

impl Arg {
    /// The identifier, if any.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Arg::Ident(s) => Some(s),
            Arg::Int(_) => None,
        }
    }

    /// Interpret as an allocation mode.
    pub fn as_mode(&self) -> Option<AllocMode> {
        match self.ident()? {
            "NoChange" => Some(AllocMode::NoChange),
            "Transpose" => Some(AllocMode::Transpose),
            "Symmetry" => Some(AllocMode::Symmetry),
            _ => None,
        }
    }
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arg::Ident(s) => f.write_str(s),
            Arg::Int(v) => write!(f, "{v}"),
        }
    }
}

/// A component invocation, optionally binding returned loop labels:
/// `(Lii, Ljj) = thread_grouping((Li, Lj));`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Invocation {
    /// Script variables bound to the component's returned labels.
    pub outputs: Vec<String>,
    /// Component name (`thread_grouping`, `SM_alloc`, …).
    pub component: String,
    /// Arguments.
    pub args: Vec<Arg>,
}

impl Invocation {
    /// An invocation without output bindings.
    pub fn call(component: &str, args: &[Arg]) -> Self {
        Self {
            outputs: Vec::new(),
            component: component.to_string(),
            args: args.to_vec(),
        }
    }

    /// Convenience: identifier arguments only.
    pub fn idents(component: &str, args: &[&str]) -> Self {
        Self::call(
            component,
            &args
                .iter()
                .map(|a| Arg::Ident(a.to_string()))
                .collect::<Vec<_>>(),
        )
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.outputs.is_empty() {
            write!(f, "({}) = ", self.outputs.join(", "))?;
        }
        write!(f, "{}(", self.component)?;
        // thread_grouping conventionally parenthesizes its loop pair, as in
        // the paper's figures.
        if self.component == "thread_grouping" {
            write!(
                f,
                "({})",
                self.args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        } else {
            write!(
                f,
                "{}",
                self.args
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        write!(f, ");")
    }
}

/// A whole EPOD script: an ordered optimization sequence.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Script {
    /// Invocations, in application order.
    pub stmts: Vec<Invocation>,
}

impl Script {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an invocation (builder style).
    pub fn then(mut self, inv: Invocation) -> Self {
        self.stmts.push(inv);
        self
    }

    /// Component names, in order — handy for composer tests.
    pub fn component_names(&self) -> Vec<&str> {
        self.stmts.iter().map(|s| s.component.as_str()).collect()
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let inv = Invocation {
            outputs: vec!["Lii".into(), "Ljj".into()],
            component: "thread_grouping".into(),
            args: vec![Arg::Ident("Li".into()), Arg::Ident("Lj".into())],
        };
        assert_eq!(inv.to_string(), "(Lii, Ljj) = thread_grouping((Li, Lj));");
        let sm = Invocation::idents("SM_alloc", &["B", "Transpose"]);
        assert_eq!(sm.to_string(), "SM_alloc(B, Transpose);");
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(
            Arg::Ident("Transpose".into()).as_mode(),
            Some(AllocMode::Transpose)
        );
        assert_eq!(
            Arg::Ident("Symmetry".into()).as_mode(),
            Some(AllocMode::Symmetry)
        );
        assert_eq!(Arg::Ident("B".into()).as_mode(), None);
        assert_eq!(Arg::Int(3).as_mode(), None);
    }
}
