//! The EPOD translator: applies a script's optimization sequence to a
//! labeled source program (Sec. III.A), dispatching each invocation to the
//! corresponding `oa-loopir` component.
//!
//! Script variables bound by output lists (`(Lii, Ljj) = …`) are tracked in
//! an environment, so later invocations may reference either original
//! source labels or bound variables.
//!
//! Two application modes are provided:
//!
//! * [`apply_strict`] — any component failure aborts (used when a script is
//!   known-good, e.g. re-applying a tuned scheme);
//! * [`apply_lenient`] — failing components are *dropped* and recorded, the
//!   degeneration behaviour the composer's filter relies on (Sec. IV.B.2).

use crate::ast::{Arg, Invocation, Script};
use crate::component::lookup;
use oa_loopir::transform::{self, TileParams, TransformError};
use oa_loopir::{AllocMode, Program};
use std::collections::HashMap;

/// Errors raised by strict application.
#[derive(Clone, Debug, PartialEq)]
pub enum TranslateError {
    /// The component does not exist.
    Unknown(String),
    /// The invocation's arguments don't fit the component's signature.
    Signature(String),
    /// The component itself failed.
    Component(String, TransformError),
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::Unknown(n) => write!(f, "unknown component `{n}`"),
            TranslateError::Signature(m) => write!(f, "bad invocation: {m}"),
            TranslateError::Component(n, e) => write!(f, "`{n}` failed: {e}"),
        }
    }
}

impl TranslateError {
    /// A short stable class label for failure-table bucketing: the error
    /// kind plus the offending component where one is known
    /// (`translate/unknown`, `translate/signature`,
    /// `translate/component:loop_unroll`, …).
    pub fn class(&self) -> String {
        match self {
            TranslateError::Unknown(_) => "translate/unknown".to_string(),
            TranslateError::Signature(_) => "translate/signature".to_string(),
            TranslateError::Component(n, _) => format!("translate/component:{n}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Result of lenient application.
#[derive(Clone, Debug)]
pub struct LenientOutcome {
    /// The transformed program.
    pub program: Program,
    /// Components applied, by script position.
    pub applied: Vec<Invocation>,
    /// Components dropped, with the reason.
    pub dropped: Vec<(Invocation, TransformError)>,
}

/// The translator.
pub struct Translator {
    /// Tile/thread-shape parameters used by `thread_grouping`/`loop_tiling`.
    pub params: TileParams,
    env: HashMap<String, String>,
}

impl Translator {
    /// A translator with the given tunable parameters.
    pub fn new(params: TileParams) -> Self {
        Self {
            params,
            env: HashMap::new(),
        }
    }

    /// Resolve a script identifier to a loop label through the variable
    /// environment.
    fn label(&self, arg: &Arg) -> Result<String, TranslateError> {
        let id = arg.ident().ok_or_else(|| {
            TranslateError::Signature(format!("expected a loop label, got {arg}"))
        })?;
        Ok(self.env.get(id).cloned().unwrap_or_else(|| id.to_string()))
    }

    fn array(&self, arg: &Arg) -> Result<String, TranslateError> {
        arg.ident()
            .map(str::to_string)
            .ok_or_else(|| TranslateError::Signature(format!("expected an array name, got {arg}")))
    }

    fn mode(&self, arg: &Arg) -> Result<AllocMode, TranslateError> {
        arg.as_mode().ok_or_else(|| {
            TranslateError::Signature(format!("expected an allocation mode, got {arg}"))
        })
    }

    /// Apply one invocation.
    pub fn apply_one(&mut self, p: &mut Program, inv: &Invocation) -> Result<(), TranslateError> {
        let info =
            lookup(&inv.component).ok_or_else(|| TranslateError::Unknown(inv.component.clone()))?;
        let fail = |e: TransformError| TranslateError::Component(info.name.to_string(), e);
        match info.name {
            "thread_grouping" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "thread_grouping((Li, Lj)) takes two loops".into(),
                    ));
                }
                let li = self.label(&inv.args[0])?;
                let lj = self.label(&inv.args[1])?;
                let (lii, ljj) =
                    transform::thread_grouping(p, &li, &lj, self.params).map_err(fail)?;
                self.bind_outputs(inv, &[lii, ljj])?;
            }
            "loop_tiling" => {
                if inv.args.len() != 3 {
                    return Err(TranslateError::Signature(
                        "loop_tiling(Lii, Ljj, Lk) takes three loops".into(),
                    ));
                }
                let a = self.label(&inv.args[0])?;
                let b = self.label(&inv.args[1])?;
                let c = self.label(&inv.args[2])?;
                let (x, y, z) = transform::loop_tiling(p, &a, &b, &c).map_err(fail)?;
                self.bind_outputs(inv, &[x, y, z])?;
            }
            "loop_unroll" => {
                let labels: Vec<String> = inv
                    .args
                    .iter()
                    .map(|a| self.label(a))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
                transform::loop_unroll(p, &refs, self.params.unroll).map_err(fail)?;
            }
            "loop_interchange" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "loop_interchange takes two loops".into(),
                    ));
                }
                let a = self.label(&inv.args[0])?;
                let b = self.label(&inv.args[1])?;
                transform::loop_interchange(p, &a, &b).map_err(fail)?;
            }
            "loop_fission" => {
                if inv.args.len() != 1 {
                    return Err(TranslateError::Signature(
                        "loop_fission takes one loop".into(),
                    ));
                }
                let a = self.label(&inv.args[0])?;
                transform::loop_fission(p, &a).map_err(fail)?;
            }
            "loop_fusion" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "loop_fusion takes two loops".into(),
                    ));
                }
                let a = self.label(&inv.args[0])?;
                let b = self.label(&inv.args[1])?;
                transform::loop_fusion(p, &a, &b).map_err(fail)?;
            }
            "GM_map" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "GM_map(X, mode) takes two args".into(),
                    ));
                }
                let arr = self.array(&inv.args[0])?;
                let mode = self.mode(&inv.args[1])?;
                transform::gm_map(p, &arr, mode).map_err(fail)?;
            }
            "format_iteration" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "format_iteration(X, mode) takes two args".into(),
                    ));
                }
                let arr = self.array(&inv.args[0])?;
                let mode = self.mode(&inv.args[1])?;
                transform::format_iteration(p, &arr, mode).map_err(fail)?;
            }
            "peel_triangular" => {
                let arr = self.array(&inv.args[0])?;
                transform::peel_triangular(p, &arr).map_err(fail)?;
            }
            "padding_triangular" => {
                let arr = self.array(&inv.args[0])?;
                transform::padding_triangular(p, &arr).map_err(fail)?;
            }
            "binding_triangular" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "binding_triangular(X, tid) takes two args".into(),
                    ));
                }
                let arr = self.array(&inv.args[0])?;
                let tid = match inv.args[1] {
                    Arg::Int(v) => v as u32,
                    _ => {
                        return Err(TranslateError::Signature(
                            "binding_triangular thread id must be an integer".into(),
                        ))
                    }
                };
                transform::binding_triangular(p, &arr, tid).map_err(fail)?;
            }
            "SM_alloc" => {
                if inv.args.len() != 2 {
                    return Err(TranslateError::Signature(
                        "SM_alloc(X, mode) takes two args".into(),
                    ));
                }
                let arr = self.array(&inv.args[0])?;
                let mode = self.mode(&inv.args[1])?;
                transform::sm_alloc(p, &arr, mode).map_err(fail)?;
            }
            "reg_alloc" => {
                if inv.args.len() != 1 {
                    return Err(TranslateError::Signature(
                        "reg_alloc(X) takes one array".into(),
                    ));
                }
                let arr = self.array(&inv.args[0])?;
                transform::reg_alloc(p, &arr).map_err(fail)?;
            }
            other => return Err(TranslateError::Unknown(other.to_string())),
        }
        Ok(())
    }

    fn bind_outputs(&mut self, inv: &Invocation, labels: &[String]) -> Result<(), TranslateError> {
        if !inv.outputs.is_empty() && inv.outputs.len() != labels.len() {
            return Err(TranslateError::Signature(format!(
                "`{}` returns {} labels but {} were bound",
                inv.component,
                labels.len(),
                inv.outputs.len()
            )));
        }
        for (var, label) in inv.outputs.iter().zip(labels) {
            self.env.insert(var.clone(), label.clone());
        }
        Ok(())
    }
}

/// Apply a script strictly: the first failure aborts.
pub fn apply_strict(
    source: &Program,
    script: &Script,
    params: TileParams,
) -> Result<Program, TranslateError> {
    let mut p = source.clone();
    let mut tr = Translator::new(params);
    for inv in &script.stmts {
        tr.apply_one(&mut p, inv)?;
    }
    Ok(p)
}

/// Apply a script leniently: failing components degenerate out of the
/// sequence (recorded in the outcome), signature/unknown errors still
/// abort.
pub fn apply_lenient(
    source: &Program,
    script: &Script,
    params: TileParams,
) -> Result<LenientOutcome, TranslateError> {
    let mut p = source.clone();
    let mut tr = Translator::new(params);
    let mut applied = Vec::new();
    let mut dropped = Vec::new();
    for inv in &script.stmts {
        let mut attempt = p.clone();
        match tr.apply_one(&mut attempt, inv) {
            Ok(()) => {
                p = attempt;
                applied.push(inv.clone());
            }
            Err(TranslateError::Component(_, e)) => {
                dropped.push((inv.clone(), e));
            }
            Err(hard) => return Err(hard),
        }
    }
    Ok(LenientOutcome {
        program: p,
        applied,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use oa_loopir::builder::{gemm_nn_like, trmm_ll_like};
    use oa_loopir::interp::{equivalent_on, Bindings};

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    const FIG3: &str = "
        (Lii, Ljj) = thread_grouping((Li, Lj));
        (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
        loop_unroll(Ljjj, Lkkk);
        SM_alloc(B, Transpose);
        reg_alloc(C);
    ";

    #[test]
    fn fig3_script_applies_and_preserves_semantics() {
        let source = gemm_nn_like("GEMM-NN");
        let script = parse_script(FIG3).unwrap();
        let out = apply_strict(&source, &script, params()).unwrap();
        assert!(out.array("sB").is_some());
        assert!(out.array("rC").is_some());
        assert_eq!(out.find_loop("Lkkk").unwrap().unroll, 0);
        assert!(equivalent_on(&source, &out, &Bindings::square(16), 3, 1e-4));
    }

    #[test]
    fn variable_binding_resolves_renamed_labels() {
        // After tiling, the register loops are relabeled Liii/Ljjj; the
        // script refers to them through its bound variables.
        let source = gemm_nn_like("GEMM-NN");
        let script = parse_script(
            "(a, b) = thread_grouping((Li, Lj));
             (c, d, e) = loop_tiling(a, b, Lk);
             loop_unroll(d, e);",
        )
        .unwrap();
        let out = apply_strict(&source, &script, params()).unwrap();
        assert_eq!(out.find_loop("Ljjj").unwrap().unroll, 0);
    }

    #[test]
    fn strict_fails_on_inapplicable_component() {
        // Unrolling the triangular Lk fails (un-uniform bounds).
        let source = trmm_ll_like("TRMM");
        let script = parse_script("loop_unroll(Lk);").unwrap();
        let err = apply_strict(&source, &script, params()).unwrap_err();
        assert!(matches!(err, TranslateError::Component(_, _)));
    }

    #[test]
    fn lenient_drops_inapplicable_components() {
        // peel before tiling fails and is dropped; the rest applies — the
        // degeneration behaviour of the filter example (Sec. IV.B.2).
        let source = trmm_ll_like("TRMM");
        let script = parse_script(
            "peel_triangular(A);
             (Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);",
        )
        .unwrap();
        let out = apply_lenient(&source, &script, params()).unwrap();
        assert_eq!(out.dropped.len(), 1);
        assert_eq!(out.dropped[0].0.component, "peel_triangular");
        assert_eq!(out.applied.len(), 2);
        assert!(equivalent_on(
            &source,
            &out.program,
            &Bindings::square(16),
            9,
            1e-4
        ));
    }

    #[test]
    fn unknown_component_is_hard_error_even_leniently() {
        let source = gemm_nn_like("g");
        let script = parse_script("definitely_not_real(A);").unwrap();
        assert!(matches!(
            apply_lenient(&source, &script, params()),
            Err(TranslateError::Unknown(_))
        ));
    }

    #[test]
    fn trmm_peel_script_end_to_end() {
        let source = trmm_ll_like("TRMM-LL-N");
        let script = parse_script(
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             peel_triangular(A);
             loop_unroll(Ljjj, Lkkk);
             SM_alloc(B, Transpose);
             reg_alloc(C);",
        )
        .unwrap();
        let out = apply_strict(&source, &script, params()).unwrap();
        assert!(out.find_loop("Lkk_diag").is_some());
        assert!(equivalent_on(&source, &out, &Bindings::square(16), 5, 1e-4));
    }

    #[test]
    fn capitalization_aliases_accepted() {
        let source = gemm_nn_like("g");
        let script = parse_script(
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             Reg_alloc(C);",
        )
        .unwrap();
        let out = apply_strict(&source, &script, params()).unwrap();
        assert!(out.array("rC").is_some());
    }
}
