//! Deterministic EPOD-script mutation — the generator half of the
//! differential fuzzer (`oa fuzz`).
//!
//! Mutations are *structural*: reorder, drop or duplicate whole component
//! invocations, perturb their arguments, or splice in arbitrary (but
//! signature-plausible) invocations.  None of them aim to stay legal —
//! illegal sequences are exactly as interesting to the fuzzer as legal
//! ones, because the contract under test is that every engine classifies
//! an illegal case *identically* (lenient translation drops it, or launch
//! extraction rejects it with the same error class).
//!
//! Everything is driven by the workspace's [`Lcg`]: same seed, same
//! mutation stream — the determinism contract the fuzzer's replay and
//! shrinking depend on.

use oa_loopir::interp::Lcg;

use crate::ast::{Arg, Invocation, Script};
use crate::component::COMPONENTS;

/// Loop labels a mutated script may reference: the source labels of every
/// built-in scheme plus the labels the grouping/tiling components bind.
const LABELS: &[&str] = &[
    "Li", "Lj", "Lk", "Lii", "Ljj", "Liii", "Ljjj", "Lkkk", "Lzz",
];

/// Array operands of the BLAS3 sources.
const ARRAYS: &[&str] = &["A", "B", "C"];

/// Allocation / mapping modes.
const MODES: &[&str] = &["NoChange", "Transpose", "Symmetry"];

fn pick<'a>(rng: &mut Lcg, xs: &[&'a str]) -> &'a str {
    xs[rng.range(0, xs.len() as i64) as usize]
}

/// A random invocation of a random registered component, with arguments
/// shaped like the component's signature (labels where it wants labels,
/// arrays/modes where it wants those) but drawn blindly — the translator
/// decides whether the result means anything.
pub fn arbitrary_invocation(rng: &mut Lcg) -> Invocation {
    let info = &COMPONENTS[rng.range(0, COMPONENTS.len() as i64) as usize];
    match info.name {
        "thread_grouping" => Invocation {
            outputs: vec!["Lii".into(), "Ljj".into()],
            component: "thread_grouping".into(),
            args: vec![
                Arg::Ident(pick(rng, LABELS).into()),
                Arg::Ident(pick(rng, LABELS).into()),
            ],
        },
        "loop_tiling" => Invocation {
            outputs: vec!["Liii".into(), "Ljjj".into(), "Lkkk".into()],
            component: "loop_tiling".into(),
            args: vec![
                Arg::Ident(pick(rng, LABELS).into()),
                Arg::Ident(pick(rng, LABELS).into()),
                Arg::Ident(pick(rng, LABELS).into()),
            ],
        },
        "loop_unroll" => {
            let n = rng.range(1, 3);
            Invocation::call(
                "loop_unroll",
                &(0..n)
                    .map(|_| Arg::Ident(pick(rng, LABELS).into()))
                    .collect::<Vec<_>>(),
            )
        }
        "GM_map" | "format_iteration" | "SM_alloc" => Invocation::call(
            info.name,
            &[
                Arg::Ident(pick(rng, ARRAYS).into()),
                Arg::Ident(pick(rng, MODES).into()),
            ],
        ),
        "reg_alloc" => Invocation::call("reg_alloc", &[Arg::Ident(pick(rng, ARRAYS).into())]),
        "binding_triangular" => Invocation::call(
            "binding_triangular",
            &[
                Arg::Ident(pick(rng, ARRAYS).into()),
                Arg::Int(rng.range(0, 4)),
            ],
        ),
        "loop_fission" => Invocation::call("loop_fission", &[Arg::Ident(pick(rng, LABELS).into())]),
        // loop_interchange / loop_fusion and anything future: two labels.
        other => Invocation::call(
            other,
            &[
                Arg::Ident(pick(rng, LABELS).into()),
                Arg::Ident(pick(rng, LABELS).into()),
            ],
        ),
    }
}

/// A from-scratch random script of `len` arbitrary invocations.
pub fn arbitrary_script(rng: &mut Lcg, len: usize) -> Script {
    let mut s = Script::new();
    for _ in 0..len {
        s.stmts.push(arbitrary_invocation(rng));
    }
    s
}

/// One structural mutation of `s`, in place.  Returns a short stable tag
/// naming the mutation applied (a coverage feature for the fuzzer).
pub fn mutate_once(s: &mut Script, rng: &mut Lcg) -> &'static str {
    // An empty script can only grow.
    if s.stmts.is_empty() {
        s.stmts.push(arbitrary_invocation(rng));
        return "insert";
    }
    match rng.range(0, 6) {
        0 if s.stmts.len() >= 2 => {
            // Swap two adjacent invocations (ordering legality probe).
            let i = rng.range(0, s.stmts.len() as i64 - 1) as usize;
            s.stmts.swap(i, i + 1);
            "swap"
        }
        1 if s.stmts.len() >= 2 => {
            // Drop one invocation (degeneration probe).
            let i = rng.range(0, s.stmts.len() as i64) as usize;
            s.stmts.remove(i);
            "drop"
        }
        2 => {
            // Duplicate one invocation (idempotence probe).
            let i = rng.range(0, s.stmts.len() as i64) as usize;
            let dup = s.stmts[i].clone();
            s.stmts.insert(i + 1, dup);
            "dup"
        }
        3 => {
            // Splice in an arbitrary invocation.
            let i = rng.range(0, s.stmts.len() as i64 + 1) as usize;
            s.stmts.insert(i, arbitrary_invocation(rng));
            "insert"
        }
        4 => {
            // Perturb one argument of one invocation.
            let i = rng.range(0, s.stmts.len() as i64) as usize;
            let inv = &mut s.stmts[i];
            if inv.args.is_empty() {
                inv.args.push(Arg::Ident(pick(rng, LABELS).into()));
            } else {
                let a = rng.range(0, inv.args.len() as i64) as usize;
                inv.args[a] = match &inv.args[a] {
                    Arg::Int(v) => Arg::Int(v + rng.range(-2, 3)),
                    Arg::Ident(id) if MODES.contains(&id.as_str()) => {
                        Arg::Ident(pick(rng, MODES).into())
                    }
                    Arg::Ident(id) if ARRAYS.contains(&id.as_str()) => {
                        Arg::Ident(pick(rng, ARRAYS).into())
                    }
                    Arg::Ident(_) => Arg::Ident(pick(rng, LABELS).into()),
                };
            }
            "arg"
        }
        _ => {
            // Replace a whole invocation.
            let i = rng.range(0, s.stmts.len() as i64) as usize;
            s.stmts[i] = arbitrary_invocation(rng);
            "replace"
        }
    }
}

/// A mutated copy of `base`: 1–3 structural mutations.  Returns the
/// mutant and the tags of the mutations applied.
pub fn mutate_script(base: &Script, rng: &mut Lcg) -> (Script, Vec<&'static str>) {
    let mut s = base.clone();
    let n = rng.range(1, 4);
    let mut tags = Vec::with_capacity(n as usize);
    for _ in 0..n {
        tags.push(mutate_once(&mut s, rng));
    }
    (s, tags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mutants() {
        let base = arbitrary_script(&mut Lcg::new(7), 4);
        let (a, ta) = mutate_script(&base, &mut Lcg::new(42));
        let (b, tb) = mutate_script(&base, &mut Lcg::new(42));
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_diverge_eventually() {
        let base = arbitrary_script(&mut Lcg::new(7), 4);
        let distinct = (0..32u64)
            .map(|s| mutate_script(&base, &mut Lcg::new(s)).0)
            .collect::<std::collections::HashSet<_>>();
        assert!(
            distinct.len() > 8,
            "mutator barely moves: {}",
            distinct.len()
        );
    }

    #[test]
    fn mutants_reparse_after_pretty_print() {
        // Whatever the mutator produces must survive the parser: the
        // fuzzer pretty-prints cases into repro files and reparses them.
        let mut rng = Lcg::new(99);
        let mut base = arbitrary_script(&mut rng, 3);
        for _ in 0..200 {
            mutate_once(&mut base, &mut rng);
            let printed = base.to_string();
            let reparsed = crate::parse_script(&printed)
                .unwrap_or_else(|e| panic!("mutant failed to reparse: {e}\n{printed}"));
            assert_eq!(reparsed, base, "print/reparse changed the script");
        }
    }

    #[test]
    fn arbitrary_invocations_use_registered_components() {
        let mut rng = Lcg::new(3);
        for _ in 0..100 {
            let inv = arbitrary_invocation(&mut rng);
            assert!(
                crate::component::lookup(&inv.component).is_some(),
                "unregistered component {}",
                inv.component
            );
        }
    }
}
