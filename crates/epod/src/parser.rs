//! Hand-written lexer/parser for EPOD scripts.
//!
//! The grammar is tiny:
//!
//! ```text
//! script     := stmt*
//! stmt       := [ "(" ident ("," ident)* ")" "=" ] ident "(" args? ")" ";"
//! args       := arg ("," arg)*
//! arg        := ident | integer | "(" args ")"      // nested parens flatten
//! ```
//!
//! `//` line comments are skipped.  Nested argument parentheses (the
//! `thread_grouping((Li, Lj))` form of Fig. 3) flatten into the argument
//! list.

use crate::ast::{Arg, Invocation, Script};
use std::fmt;

/// Parse errors with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Semi,
    Eq,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            ';' => {
                out.push((i, Tok::Semi));
                i += 1;
            }
            '=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: i64 = src[start..i].parse().map_err(|_| ParseError {
                    at: start,
                    message: "bad integer literal".into(),
                })?;
                out.push((start, Tok::Int(v)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    at: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(a, _)| *a)
            .unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        let at = self.at();
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(ParseError {
                at,
                message: format!("expected {want:?}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let at = self.at();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError {
                at,
                message: format!("expected identifier, found {other:?}"),
            }),
        }
    }

    fn args(&mut self, out: &mut Vec<Arg>) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(Tok::RParen) => return Ok(()),
                Some(Tok::LParen) => {
                    self.next();
                    self.args(out)?;
                    self.expect(Tok::RParen)?;
                }
                Some(Tok::Ident(_)) => {
                    if let Some(Tok::Ident(s)) = self.next() {
                        out.push(Arg::Ident(s));
                    }
                }
                Some(Tok::Int(_)) => {
                    if let Some(Tok::Int(v)) = self.next() {
                        out.push(Arg::Int(v));
                    }
                }
                other => {
                    return Err(ParseError {
                        at: self.at(),
                        message: format!("expected argument, found {other:?}"),
                    })
                }
            }
            match self.peek() {
                Some(Tok::Comma) => {
                    self.next();
                }
                _ => return Ok(()),
            }
        }
    }

    fn stmt(&mut self) -> Result<Invocation, ParseError> {
        let mut outputs = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            // Could be output bindings `(a, b) = comp(...)`.
            self.next();
            loop {
                outputs.push(self.ident()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
            self.expect(Tok::RParen)?;
            self.expect(Tok::Eq)?;
        }
        let component = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        self.args(&mut args)?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        Ok(Invocation {
            outputs,
            component,
            args,
        })
    }
}

/// Parse an EPOD script.
pub fn parse_script(src: &str) -> Result<Script, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        stmts.push(p.stmt()?);
    }
    Ok(Script { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The GEMM-NN script of Fig. 3.
    pub const FIG3: &str = "
        (Lii, Ljj) = thread_grouping((Li, Lj));
        (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
        loop_unroll(Ljjj, Lkkk);
        SM_alloc(B, Transpose);
        reg_alloc(C);
    ";

    #[test]
    fn parses_fig3() {
        let s = parse_script(FIG3).unwrap();
        assert_eq!(
            s.component_names(),
            vec![
                "thread_grouping",
                "loop_tiling",
                "loop_unroll",
                "SM_alloc",
                "reg_alloc"
            ]
        );
        assert_eq!(s.stmts[0].outputs, vec!["Lii", "Ljj"]);
        assert_eq!(s.stmts[0].args.len(), 2);
        assert_eq!(s.stmts[3].args[1].ident(), Some("Transpose"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let s = parse_script(FIG3).unwrap();
        let printed = s.to_string();
        let again = parse_script(&printed).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn comments_and_integers() {
        let s =
            parse_script("// the solver adaptor\nbinding_triangular(A, 0); // bind to thread 0\n")
                .unwrap();
        assert_eq!(s.stmts[0].component, "binding_triangular");
        assert_eq!(s.stmts[0].args[1], Arg::Int(0));
    }

    #[test]
    fn nested_parens_flatten() {
        let s = parse_script("thread_grouping((Li, Lj));").unwrap();
        assert_eq!(s.stmts[0].args.len(), 2);
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_script("loop_unroll(Ljjj").unwrap_err();
        assert!(err.message.contains("expected"));
        let err2 = parse_script("@bad").unwrap_err();
        assert!(err2.message.contains("unexpected character"));
    }

    #[test]
    fn gm_map_symmetry_script() {
        // The SYMM-LN best script of Fig. 14 (prefix).
        let s = parse_script(
            "GM_map(A, Symmetry);\nformat_iteration(A, Symmetry);\n\
             (Lii, Ljj) = thread_grouping((Li, Lj));",
        )
        .unwrap();
        assert_eq!(s.stmts.len(), 3);
        assert_eq!(
            s.stmts[0].args[1].as_mode(),
            Some(oa_loopir::AllocMode::Symmetry)
        );
    }
}
