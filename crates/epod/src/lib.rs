//! # oa-epod — the EPOD script language and translator
//!
//! EPOD scripts encapsulate tuning experience as explicit optimization
//! sequences (Sec. III of the paper).  This crate provides:
//!
//! * the script [`ast`] and a [`parser`] for the paper's notation;
//! * the [`component`] registry (pools, location constraints);
//! * the [`translator`] that applies a script to an `oa-loopir` program —
//!   strictly, or leniently with component degeneration (the behaviour the
//!   composer's filter builds on).
//!
//! ```
//! use oa_epod::{parse_script, apply_strict};
//! use oa_loopir::builder::gemm_nn_like;
//! use oa_loopir::transform::TileParams;
//!
//! let script = parse_script(
//!     "(Lii, Ljj) = thread_grouping((Li, Lj));
//!      (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
//!      loop_unroll(Ljjj, Lkkk);
//!      SM_alloc(B, Transpose);
//!      reg_alloc(C);").unwrap();
//! let params = TileParams { ty: 8, tx: 8, thr_i: 4, thr_j: 4, kb: 4, unroll: 0 };
//! let tuned = apply_strict(&gemm_nn_like("GEMM-NN"), &script, params).unwrap();
//! assert!(tuned.array("sB").is_some());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod component;
pub mod mutate;
pub mod parser;
pub mod translator;

pub use ast::{Arg, Invocation, Script};
pub use component::{lookup, ComponentInfo, Pool, COMPONENTS};
pub use mutate::{arbitrary_invocation, arbitrary_script, mutate_once, mutate_script};
pub use parser::{parse_script, ParseError};
pub use translator::{apply_lenient, apply_strict, LenientOutcome, TranslateError, Translator};
