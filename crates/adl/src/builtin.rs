//! The four adaptors defined in Sec. IV.A of the paper, transcribed in ADL.

use crate::{parse_adl, Adaptor};

/// `Adaptor_Transpose` (Sec. IV.A.1): three alternatives — keep the matrix
/// unchanged, transpose it in global memory up front, or transpose
/// sub-matrices while staging them into shared memory.
pub fn transpose() -> Adaptor {
    one("
        adaptor Adaptor_Transpose(X):
          |
          | GM_map(X, Transpose);
          | SM_alloc(X, Transpose);
    ")
}

/// `Adaptor_Symmetry` (Sec. IV.A.2): keep unchanged; materialize the full
/// symmetric matrix then re-format the iteration space into GEMM-NN; or
/// re-format (fission only) and stage symmetric sub-matrices.
///
pub fn symmetry() -> Adaptor {
    one("
        adaptor Adaptor_Symmetry(X):
          |
          | GM_map(X, Symmetry); format_iteration(X, Symmetry);
          | format_iteration(X, Symmetry); SM_alloc(X, Symmetry);
    ")
}

/// `Adaptor_Triangular` (Sec. IV.A.3): keep unchanged; peel the triangular
/// areas off the rectangular ones; or pad the triangular iteration spaces
/// to rectangles (requiring zero-filled blanks, hence multi-versioning).
pub fn triangular() -> Adaptor {
    one("
        adaptor Adaptor_Triangular(X):
          |
          | peel_triangular(X);
          | padding_triangular(X); {cond(blank(X).zero = true)}
    ")
}

/// `Adaptor_Solver` (Sec. IV.A.4): peel the triangular area and bind it to
/// a single thread of each block.
///
/// One alternative beyond the paper's single rule: the empty rule, i.e.
/// the *unbound* per-column variant where each thread solves its own
/// column's diagonal segment instead of funnelling the solve through
/// thread 0 — the search picks whichever the device favours.
pub fn solver() -> Adaptor {
    one("
        adaptor Adaptor_Solver(X):
          | peel_triangular(X); binding_triangular(X, 0);
          |
    ")
}

/// All four built-ins.
pub fn all() -> Vec<Adaptor> {
    vec![transpose(), symmetry(), triangular(), solver()]
}

fn one(src: &str) -> Adaptor {
    let mut v = parse_adl(src).expect("builtin adaptor sources are valid ADL");
    assert_eq!(v.len(), 1);
    v.remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_parse_with_expected_shapes() {
        assert_eq!(transpose().rules.len(), 3);
        assert_eq!(symmetry().rules.len(), 3);
        assert_eq!(triangular().rules.len(), 3);
        assert_eq!(solver().rules.len(), 2);
        assert_eq!(all().len(), 4);
    }

    #[test]
    fn solver_binds_thread_zero() {
        let s = solver();
        let rule = &s.rules[0];
        assert_eq!(rule.seq[0].component, "peel_triangular");
        assert_eq!(rule.seq[1].component, "binding_triangular");
        assert_eq!(rule.seq[1].args[1], oa_epod::Arg::Int(0));
    }

    #[test]
    fn empty_rules_where_the_paper_has_them() {
        assert!(transpose().rules[0].is_empty());
        assert!(symmetry().rules[0].is_empty());
        assert!(triangular().rules[0].is_empty());
        assert!(!solver().rules[0].is_empty());
        assert!(solver().rules[1].is_empty());
    }
}
