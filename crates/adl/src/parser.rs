//! Parser for ADL source text.
//!
//! Grammar (Sec. IV.A):
//!
//! ```text
//! file      := adaptor*
//! adaptor   := "adaptor" NAME "(" IDENT ")" ":" rule*
//! rule      := "|" invocation* [ "{" "cond" "(" blank-cond ")" "}" ]
//! blank-cond:= "blank" "(" IDENT ")" "." "zero" "=" "true"
//! ```
//!
//! Rules run until the next `|`, the next `adaptor` keyword, or EOF.
//! Invocation sequences reuse the EPOD script parser.

use crate::{Adaptor, AdaptorRule, Cond};
use oa_epod::parse_script;
use std::fmt;

/// ADL parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdlError {
    /// Description.
    pub message: String,
}

impl fmt::Display for AdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ADL error: {}", self.message)
    }
}

impl std::error::Error for AdlError {}

fn err(m: impl Into<String>) -> AdlError {
    AdlError { message: m.into() }
}

/// Parse an ADL file into its adaptor definitions.
pub fn parse_adl(src: &str) -> Result<Vec<Adaptor>, AdlError> {
    // Strip comments.
    let cleaned: String = src
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");

    let mut adaptors = Vec::new();
    let mut rest = cleaned.trim();
    while !rest.is_empty() {
        let Some(stripped) = rest.strip_prefix("adaptor") else {
            return Err(err(format!("expected `adaptor`, found: {:.30}…", rest)));
        };
        // Header: NAME(PARAM):
        let colon = stripped
            .find(':')
            .ok_or_else(|| err("missing `:` after adaptor header"))?;
        let header = stripped[..colon].trim();
        let open = header
            .find('(')
            .ok_or_else(|| err("missing `(` in adaptor header"))?;
        let close = header
            .rfind(')')
            .ok_or_else(|| err("missing `)` in adaptor header"))?;
        let name = header[..open].trim().to_string();
        let param = header[open + 1..close].trim().to_string();
        if name.is_empty() || param.is_empty() {
            return Err(err("empty adaptor name or parameter"));
        }

        // Body: until the next top-level `adaptor` keyword.
        let body_start = colon + 1;
        let body_rest = &stripped[body_start..];
        let next = body_rest.find("adaptor").unwrap_or(body_rest.len());
        let body = &body_rest[..next];
        rest = body_rest[next..].trim();

        let mut rules = Vec::new();
        for (i, chunk) in body.split('|').enumerate() {
            if i == 0 {
                if !chunk.trim().is_empty() {
                    return Err(err(format!(
                        "unexpected text before the first `|` in {name}: {:.30}",
                        chunk.trim()
                    )));
                }
                continue;
            }
            rules.push(parse_rule(chunk)?);
        }
        if rules.is_empty() {
            return Err(err(format!("adaptor {name} has no rules")));
        }
        adaptors.push(Adaptor { name, param, rules });
    }
    Ok(adaptors)
}

fn parse_rule(chunk: &str) -> Result<AdaptorRule, AdlError> {
    let chunk = chunk.trim();
    // Optional {cond(...)} suffix.
    let (seq_text, cond) = if let Some(brace) = chunk.find('{') {
        let end = chunk
            .rfind('}')
            .ok_or_else(|| err("unterminated `{cond(...)}`"))?;
        let cond_text = &chunk[brace + 1..end];
        (&chunk[..brace], Some(parse_cond(cond_text)?))
    } else {
        (chunk, None)
    };
    let script = parse_script(seq_text).map_err(|e| err(format!("in rule `{seq_text}`: {e}")))?;
    Ok(AdaptorRule {
        seq: script.stmts,
        cond,
    })
}

fn parse_cond(text: &str) -> Result<Cond, AdlError> {
    // cond(blank(X).zero = true)
    let t: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    let inner = t
        .strip_prefix("cond(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(format!("malformed condition `{text}`")))?;
    let arr = inner
        .strip_prefix("blank(")
        .and_then(|s| s.split_once(')'))
        .filter(|(_, tail)| *tail == ".zero=true")
        .map(|(a, _)| a.to_string())
        .ok_or_else(|| {
            err(format!(
                "unsupported condition `{text}` (only blank(X).zero = true)"
            ))
        })?;
    Ok(Cond::BlankZero(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_transpose_adaptor() {
        let src = "
            adaptor Adaptor_Transpose(X):
              |
              | GM_map(X, Transpose);
              | SM_alloc(X, Transpose);
        ";
        let a = parse_adl(src).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].name, "Adaptor_Transpose");
        assert_eq!(a[0].param, "X");
        assert_eq!(a[0].rules.len(), 3);
        assert!(a[0].rules[0].is_empty());
        assert_eq!(a[0].rules[1].seq[0].component, "GM_map");
        assert_eq!(a[0].rules[2].seq[0].component, "SM_alloc");
    }

    #[test]
    fn parses_condition() {
        let src = "
            adaptor Adaptor_Triangular(X):
              |
              | peel_triangular(X);
              | padding_triangular(X); {cond(blank(X).zero = true)}
        ";
        let a = parse_adl(src).unwrap();
        assert_eq!(a[0].rules[2].cond, Some(Cond::BlankZero("X".into())));
        assert_eq!(a[0].rules[1].cond, None);
    }

    #[test]
    fn parses_multi_component_rules() {
        let src = "
            adaptor Adaptor_Symmetry(X):
              |
              | GM_map(X, Symmetry); format_iteration(X, Symmetry);
              | format_iteration(X, Symmetry); SM_alloc(X, Symmetry);
        ";
        let a = parse_adl(src).unwrap();
        assert_eq!(a[0].rules[1].seq.len(), 2);
        assert_eq!(a[0].rules[2].seq[1].component, "SM_alloc");
    }

    #[test]
    fn parses_multiple_adaptors() {
        let src = "
            adaptor A1(X):
              | peel_triangular(X);
            adaptor A2(Y):
              | binding_triangular(Y, 0);
        ";
        let a = parse_adl(src).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].param, "Y");
        assert_eq!(a[1].rules[0].seq[0].args[1], oa_epod::Arg::Int(0));
    }

    #[test]
    fn rejects_malformed_headers_and_conditions() {
        assert!(parse_adl("adaptor Foo X: | x(X);").is_err());
        assert!(parse_adl("notadaptor Foo(X): | x(X);").is_err());
        assert!(parse_adl(
            "adaptor Foo(X):\n | padding_triangular(X); {cond(blank(X).positive = true)}"
        )
        .is_err());
    }
}
