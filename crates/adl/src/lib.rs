//! # oa-adl — the Adaptor Definition Language
//!
//! An *adaptor* relates a new BLAS3 routine to an existing optimization
//! scheme by describing, in terms of optimization components, how the new
//! routine's matrices differ (Sec. IV.A):
//!
//! ```text
//! adaptor Adaptor_Transpose(X):
//!   |
//!   | GM_map(X, Transpose);
//!   | SM_alloc(X, Transpose);
//! ```
//!
//! Each `|` rule is an alternative implementation; rules may carry a
//! condition (`{cond(blank(X).zero = true)}`) that makes the composer
//! generate multiple-version code.  The four adaptors the paper defines —
//! Transpose, Symmetry, Triangular, Solver — ship in [`builtin`].

#![warn(missing_docs)]

pub mod builtin;
pub mod parser;

pub use parser::{parse_adl, AdlError};

use oa_epod::{Arg, Invocation};
use std::fmt;

/// A condition attached to an adaptor rule.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// `blank(X).zero = true` — the blank triangle of the formal parameter
    /// must contain zeros (checked at runtime via multi-versioning).
    BlankZero(String),
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::BlankZero(x) => write!(f, "cond(blank({x}).zero = true)"),
        }
    }
}

/// One alternative implementation of an adaptor.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AdaptorRule {
    /// The component invocation sequence (empty = "keep X unchanged").
    pub seq: Vec<Invocation>,
    /// Optional condition.
    pub cond: Option<Cond>,
}

impl AdaptorRule {
    /// The empty rule.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when this is the empty (identity) rule.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// An adaptor definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Adaptor {
    /// Name, e.g. `Adaptor_Transpose`.
    pub name: String,
    /// Formal matrix parameter (`X`).
    pub param: String,
    /// Alternative rules, in declaration order.
    pub rules: Vec<AdaptorRule>,
}

impl Adaptor {
    /// Instantiate the adaptor for a concrete matrix: every occurrence of
    /// the formal parameter in every rule is replaced by `array`.
    pub fn instantiate(&self, array: &str) -> Vec<AdaptorRule> {
        self.rules
            .iter()
            .map(|r| AdaptorRule {
                seq: r
                    .seq
                    .iter()
                    .map(|inv| Invocation {
                        outputs: inv.outputs.clone(),
                        component: inv.component.clone(),
                        args: inv
                            .args
                            .iter()
                            .map(|a| match a {
                                Arg::Ident(s) if *s == self.param => Arg::Ident(array.to_string()),
                                other => other.clone(),
                            })
                            .collect(),
                    })
                    .collect(),
                cond: r.cond.as_ref().map(|c| match c {
                    Cond::BlankZero(x) if *x == self.param => Cond::BlankZero(array.to_string()),
                    other => other.clone(),
                }),
            })
            .collect()
    }
}

impl fmt::Display for Adaptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "adaptor {}({}):", self.name, self.param)?;
        for r in &self.rules {
            write!(f, "  |")?;
            for inv in &r.seq {
                write!(f, " {inv}")?;
            }
            if let Some(c) = &r.cond {
                write!(f, " {{{c}}}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_substitutes_formal_param() {
        let a = builtin::transpose();
        let rules = a.instantiate("B");
        assert!(rules[0].is_empty());
        assert_eq!(rules[1].seq[0].args[0], Arg::Ident("B".into()));
        assert_eq!(rules[2].seq[0].component, "SM_alloc");
        assert_eq!(rules[2].seq[0].args[0], Arg::Ident("B".into()));
    }

    #[test]
    fn instantiate_preserves_conditions() {
        let a = builtin::triangular();
        let rules = a.instantiate("A");
        let padded = rules.iter().find(|r| {
            r.seq
                .first()
                .map(|i| i.component == "padding_triangular")
                .unwrap_or(false)
        });
        assert_eq!(padded.unwrap().cond, Some(Cond::BlankZero("A".into())));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for a in [
            builtin::transpose(),
            builtin::symmetry(),
            builtin::triangular(),
            builtin::solver(),
        ] {
            let printed = a.to_string();
            let parsed = crate::parser::parse_adl(&printed).unwrap();
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0], a, "roundtrip failed for {}", a.name);
        }
    }
}
