//! Criterion bench for Fig. 11's engine on the GTX 285 model, including
//! the MAGMA-like baseline evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_core::{OaFramework, RoutineId, Side, Trans, Uplo};
use oa_gpusim::DeviceSpec;

fn bench_fig11(c: &mut Criterion) {
    let device = DeviceSpec::gtx285();
    let oa = OaFramework::new(device.clone());
    let n = 1024;
    let gemm = RoutineId::Gemm(Trans::N, Trans::N);
    let trsm = RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N);

    let mut g = c.benchmark_group("fig11_gtx285");
    g.sample_size(10);
    g.bench_function("evaluate_cublas_gemm_nn", |b| {
        b.iter(|| oa.cublas_baseline(gemm, n).gflops)
    });
    g.bench_function("evaluate_magma_gemm_nn", |b| {
        b.iter(|| oa.magma_baseline(gemm, n).unwrap().gflops)
    });
    g.bench_function("evaluate_magma_trsm_ll_n", |b| {
        b.iter(|| oa.magma_baseline(trsm, n).unwrap().gflops)
    });
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
