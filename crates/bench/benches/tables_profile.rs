//! Criterion bench for Tables I–III's engine: profile-counter extraction
//! for the SYMM kernels on each device model.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_core::{OaFramework, RoutineId, Side, Uplo};
use oa_gpusim::DeviceSpec;

fn bench_tables(c: &mut Criterion) {
    let symm = RoutineId::Symm(Side::Left, Uplo::Lower);
    let n = 1024;
    let mut g = c.benchmark_group("tables_profile");
    g.sample_size(10);
    for device in DeviceSpec::all() {
        let oa = OaFramework::new(device.clone());
        let id = device.name.replace(' ', "_").to_lowercase();
        g.bench_function(format!("cublas_symm_counters_{id}"), |b| {
            b.iter(|| {
                let rep = oa.cublas_baseline(symm, n);
                (rep.counters.gld_incoherent, rep.counters.instructions)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
