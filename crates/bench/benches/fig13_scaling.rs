//! Criterion bench for Fig. 13's engine: re-evaluating one tuned kernel
//! across the problem-size sweep on GeForce 9800.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oa_core::{OaFramework, RoutineId, Trans};
use oa_gpusim::DeviceSpec;

fn bench_fig13(c: &mut Criterion) {
    let device = DeviceSpec::geforce_9800();
    let oa = OaFramework::new(device.clone());
    let gemm = RoutineId::Gemm(Trans::N, Trans::N);
    let tuned = oa.tune(gemm, 1024).expect("tune GEMM-NN");
    let rec = oa_core::TunedRecord::from_kernel(&tuned);

    let mut g = c.benchmark_group("fig13_scaling");
    g.sample_size(10);
    for n in [512i64, 1024, 2048] {
        g.bench_with_input(BenchmarkId::new("evaluate_gemm_nn", n), &n, |b, &n| {
            b.iter(|| oa.evaluate_record(&rec, gemm, n).unwrap().gflops)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
