//! Framework micro-benchmarks: the composer, the EPOD translator and the
//! functional executor — the moving parts every figure regeneration runs
//! through.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_core::composer::{compose, AdaptorApplication};
use oa_core::epod::translator::apply_strict;
use oa_core::loopir::interp::Bindings;
use oa_core::loopir::transform::TileParams;
use oa_core::{RoutineId, Side, Trans, Uplo};

fn bench_framework(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework");
    g.sample_size(10);

    // EPOD script parsing + strict application (the Fig. 3 scheme).
    let src = oa_core::blas3::routines::source(RoutineId::Gemm(Trans::N, Trans::N));
    let script = oa_core::blas3::gemm_nn_script();
    let params = TileParams {
        ty: 32,
        tx: 32,
        thr_i: 16,
        thr_j: 16,
        kb: 16,
        unroll: 0,
    };
    g.bench_function("epod_apply_fig3_gemm", |b| {
        b.iter(|| apply_strict(&src, &script, params).unwrap())
    });

    // Composer: Adaptor_Triangular over the GEMM scheme (the Sec. IV.B.2
    // example workload).
    let trmm = oa_core::blas3::routines::source(RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N));
    let apps = [AdaptorApplication::new(
        oa_core::adl::builtin::triangular(),
        "A",
    )];
    g.bench_function("composer_triangular_adaptor", |b| {
        b.iter(|| compose(&trmm, &script, &apps, params).unwrap().len())
    });

    // Functional executor at a small size (the correctness oracle path).
    let tuned = apply_strict(
        &src,
        &script,
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        },
    )
    .unwrap();
    g.bench_function("gpu_exec_gemm_32", |b| {
        b.iter(|| oa_gpusim::run_fresh_gpu(&tuned, &Bindings::square(32), 7).unwrap())
    });

    // Performance-model evaluation.
    let big = apply_strict(&src, &script, params).unwrap();
    g.bench_function("perf_evaluate_gemm_1024", |b| {
        b.iter(|| {
            oa_gpusim::perf::evaluate(
                &big,
                &Bindings::square(1024),
                &oa_gpusim::DeviceSpec::gtx285(),
                2.0 * 1024f64.powi(3),
                true,
            )
            .unwrap()
            .gflops
        })
    });
    g.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
