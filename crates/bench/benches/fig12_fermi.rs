//! Criterion bench for Fig. 12's engine on the Fermi C2050 model (CC 2.0
//! cache-line coalescing path).

use criterion::{criterion_group, criterion_main, Criterion};
use oa_core::{OaFramework, RoutineId, Side, Trans, Uplo};
use oa_gpusim::DeviceSpec;

fn bench_fig12(c: &mut Criterion) {
    let device = DeviceSpec::fermi_c2050();
    let oa = OaFramework::new(device.clone());
    let n = 1024;
    let gemm = RoutineId::Gemm(Trans::N, Trans::N);
    let trmm = RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N);

    let mut g = c.benchmark_group("fig12_fermi");
    g.sample_size(10);
    g.bench_function("evaluate_cublas_gemm_nn", |b| {
        b.iter(|| oa.cublas_baseline(gemm, n).gflops)
    });
    g.bench_function("evaluate_cublas_trmm_ll_n", |b| {
        b.iter(|| oa.cublas_baseline(trmm, n).gflops)
    });
    g.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
