//! # oa-bench — harnesses regenerating every table and figure of the paper
//!
//! One binary per artifact (see DESIGN.md §3):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig10` | Fig. 10 — 24 variants on GeForce 9800 |
//! | `fig11` | Fig. 11 — GTX 285 (+ MAGMA bars) |
//! | `fig12` | Fig. 12 — Fermi Tesla C2050 |
//! | `fig13` | Fig. 13 — OA GFLOPS vs problem size |
//! | `fig14` | Fig. 14 — best-performing EPOD scripts |
//! | `tables` | Tables I–III — SYMM profile counters |
//! | `summary` | Sec. I / V.A headline numbers |
//!
//! All binaries accept `--quick` (smaller problem size, used as smoke
//! tests) and share a JSON tuning cache (`tuning_cache.json`, overridable
//! via `OA_CACHE`).

use oa_core::{OaFramework, RoutineId, TuneCache};
use oa_gpusim::DeviceSpec;
use std::path::PathBuf;

/// One bar-group of Figures 10–12.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Routine name.
    pub routine: String,
    /// OA tuned GFLOPS.
    pub oa: f64,
    /// CUBLAS-3.2-like baseline GFLOPS.
    pub cublas: f64,
    /// MAGMA-v0.2-like baseline GFLOPS (Fig. 11 only).
    pub magma: Option<f64>,
}

impl FigureRow {
    /// OA / CUBLAS speedup.
    pub fn speedup(&self) -> f64 {
        self.oa / self.cublas
    }
}

/// The problem size the paper fixes for Figures 10–12.
pub const PAPER_N: i64 = 4096;
/// The `--quick` smoke-test size.
pub const QUICK_N: i64 = 512;

/// Resolve the tuning-cache path (`OA_CACHE` env or `tuning_cache.json`).
pub fn cache_path() -> PathBuf {
    std::env::var("OA_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("tuning_cache.json"))
}

/// `--quick` flag from argv.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Problem size selected by the flag.
pub fn problem_size() -> i64 {
    if quick_flag() {
        QUICK_N
    } else {
        PAPER_N
    }
}

/// Generate the data of one of Figures 10–12: all 24 variants, OA vs
/// CUBLAS-like (vs MAGMA-like when `with_magma`).
pub fn figure_data(
    device: &DeviceSpec,
    n: i64,
    with_magma: bool,
    cache: &mut TuneCache,
) -> Vec<FigureRow> {
    let oa = OaFramework::new(device.clone());
    let mut rows = Vec::new();
    for r in RoutineId::all24() {
        let rec = cache
            .tune_cached(r, device, n)
            .unwrap_or_else(|e| panic!("tuning {} failed: {e}", r.name()));
        // Re-evaluate the cached script so the report reflects this run.
        let oa_rep = oa
            .evaluate_record(&rec, r, n)
            .unwrap_or_else(|e| panic!("evaluating {} failed: {e}", r.name()));
        let cublas = oa.cublas_baseline(r, n);
        let magma = if with_magma {
            oa.magma_baseline(r, n).map(|m| m.gflops)
        } else {
            None
        };
        rows.push(FigureRow {
            routine: r.name(),
            oa: oa_rep.gflops,
            cublas: cublas.gflops,
            magma,
        });
    }
    rows
}

/// Print a figure as an aligned text table.
pub fn print_figure(title: &str, device: &DeviceSpec, n: i64, rows: &[FigureRow]) {
    println!("== {title} ==");
    println!(
        "device: {} (peak {:.0} GFLOPS), problem size {n}",
        device.name,
        device.peak_gflops()
    );
    let magma_col = rows.iter().any(|r| r.magma.is_some());
    print!("{:<12} {:>10} {:>12}", "routine", "OA", "CUBLAS-like");
    if magma_col {
        print!(" {:>11}", "MAGMA-like");
    }
    println!(" {:>8}", "speedup");
    for row in rows {
        print!("{:<12} {:>10.1} {:>12.1}", row.routine, row.oa, row.cublas);
        if magma_col {
            match row.magma {
                Some(m) => print!(" {:>11.1}", m),
                None => print!(" {:>11}", "-"),
            }
        }
        println!(" {:>7.2}x", row.speedup());
    }
    let max = rows.iter().map(FigureRow::speedup).fold(0.0f64, f64::max);
    let min_oa = rows.iter().map(|r| r.oa).fold(f64::INFINITY, f64::min);
    let max_oa = rows.iter().map(|r| r.oa).fold(0.0f64, f64::max);
    println!("max speedup over CUBLAS-like: {max:.2}x");
    println!(
        "OA performance band: {min_oa:.0}..{max_oa:.0} GFLOPS (gap {:.2}x; the paper's point: OA stays near GEMM-NN)",
        max_oa / min_oa
    );
    println!();
}

/// Load the cache, run a closure with it, persist it back.
///
/// Load issues (stale or corrupted records) are reported on stderr, and
/// the write-back merges under the cache's lock file, so concurrent bench
/// binaries sharing one path cannot lose each other's records.
pub fn with_cache<T>(f: impl FnOnce(&mut TuneCache) -> T) -> T {
    let path = cache_path();
    let (mut cache, issues) = TuneCache::load_reporting(&path);
    for issue in issues {
        eprintln!("tuning cache: {issue}");
    }
    let out = f(&mut cache);
    match cache.merge_save(&path) {
        Ok(issues) => {
            for issue in issues {
                eprintln!("tuning cache: {issue}");
            }
        }
        Err(e) => eprintln!("warning: could not save tuning cache: {e}"),
    }
    out
}

/// The representative routines Fig. 13 plots across problem sizes.
pub fn fig13_routines() -> Vec<RoutineId> {
    use oa_core::{Side, Trans, Uplo};
    vec![
        RoutineId::Gemm(Trans::N, Trans::N),
        RoutineId::Symm(Side::Left, Uplo::Lower),
        RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N),
        RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_row_math() {
        let r = FigureRow {
            routine: "GEMM-NN".into(),
            oa: 400.0,
            cublas: 200.0,
            magma: None,
        };
        assert_eq!(r.speedup(), 2.0);
    }

    #[test]
    fn defaults() {
        assert_eq!(PAPER_N, 4096);
        assert!(cache_path().to_string_lossy().contains("tuning_cache"));
        assert_eq!(fig13_routines().len(), 4);
    }
}
