//! Fig. 13 — Performance with varying problem sizes on GeForce 9800: the
//! paper's scalability claim is that OA performance stays *stable* from
//! 512 to 4096.  `--quick` restricts the sweep to 512..1024.

use oa_bench::{fig13_routines, with_cache};
use oa_core::OaFramework;
use oa_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::geforce_9800();
    let sizes: Vec<i64> = if oa_bench::quick_flag() {
        vec![512, 1024]
    } else {
        vec![512, 1024, 2048, 3072, 4096]
    };
    let oa = OaFramework::new(device.clone());

    println!("== Fig. 13: OA performance vs problem size on GeForce 9800 ==");
    print!("{:<12}", "routine");
    for n in &sizes {
        print!(" {n:>9}");
    }
    println!("  (GFLOPS per size)");

    with_cache(|cache| {
        for r in fig13_routines() {
            // Tune once at the largest size, then re-evaluate the same
            // tuned kernel across the sweep — the stability claim is about
            // one library binary, not per-size retuning.
            let tune_n = *sizes.last().unwrap();
            let rec = cache
                .tune_cached(r, &device, tune_n)
                .unwrap_or_else(|e| panic!("tuning {} failed: {e}", r.name()));
            print!("{:<12}", r.name());
            let mut vals = Vec::new();
            for &n in &sizes {
                let rep = oa
                    .evaluate_record(&rec, r, n)
                    .unwrap_or_else(|e| panic!("evaluating {} at {n}: {e}", r.name()));
                print!(" {:>9.1}", rep.gflops);
                vals.push(rep.gflops);
            }
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(0.0f64, f64::max);
            println!("   stability {:.2}x", hi / lo);
        }
    });
    println!("\npaper reference: \"our OA framework can achieve stable performances for BLAS3 routines when the problem size varies\".");
}
