//! Ablation study over the design choices DESIGN.md calls out: how much
//! each component of the Fig. 3 scheme contributes, and peel vs. padding
//! for the triangular routines — the "why does the scheme look like this"
//! companion to the paper's figures.
//!
//! ```sh
//! cargo run -p oa-bench --release --bin ablation [-- --quick]
//! ```

use oa_bench::problem_size;
use oa_core::epod::{parse_script, translator::apply_lenient};
use oa_core::loopir::interp::Bindings;
use oa_core::loopir::transform::TileParams;
use oa_core::{DeviceSpec, RoutineId, Side, Trans, Uplo};

fn eval(
    r: RoutineId,
    script_text: &str,
    params: TileParams,
    device: &DeviceSpec,
    n: i64,
) -> Option<f64> {
    let src = oa_core::blas3::routines::source(r);
    let script = parse_script(script_text).ok()?;
    let out = apply_lenient(&src, &script, params).ok()?;
    oa_core::gpusim::perf::evaluate(&out.program, &Bindings::square(n), device, r.flops(n), true)
        .ok()
        .map(|rep| rep.gflops)
}

fn main() {
    let n = problem_size().min(2048); // ablations don't need the full 4096
    let device = DeviceSpec::gtx285();
    let params = TileParams {
        ty: 64,
        tx: 16,
        thr_i: 64,
        thr_j: 1,
        kb: 16,
        unroll: 0,
    };

    println!("== Ablation: the GEMM-NN scheme, component by component ==");
    println!(
        "device {}, n = {n}, fixed Volkov-shaped parameters {params:?}\n",
        device.name
    );
    let gemm = RoutineId::Gemm(Trans::N, Trans::N);
    let stages: &[(&str, &str)] = &[
        (
            "thread_grouping only",
            "(Lii, Ljj) = thread_grouping((Li, Lj));",
        ),
        (
            "+ loop_tiling",
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);",
        ),
        (
            "+ SM_alloc(B, Transpose)",
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             SM_alloc(B, Transpose);",
        ),
        (
            "+ reg_alloc(C)",
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             SM_alloc(B, Transpose);
             reg_alloc(C);",
        ),
        (
            "+ loop_unroll (full Fig. 3 scheme)",
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             loop_unroll(Ljjj, Lkkk);
             SM_alloc(B, Transpose);
             reg_alloc(C);",
        ),
    ];
    let mut prev: Option<f64> = None;
    for (label, text) in stages {
        match eval(gemm, text, params, &device, n) {
            Some(g) => {
                let delta = prev
                    .map(|p| format!(" ({:+.1}%)", (g / p - 1.0) * 100.0))
                    .unwrap_or_default();
                println!("{label:<38} {g:>8.1} GFLOPS{delta}");
                prev = Some(g);
            }
            None => println!("{label:<38} {:>8}", "n/a"),
        }
    }

    println!("\n== Ablation: Adaptor_Triangular's two rules on TRMM-LL-N ==\n");
    let trmm = RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N);
    let base = "(Lii, Ljj) = thread_grouping((Li, Lj));
                (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
                {TRI}
                loop_unroll(Ljjj, Lkkk);
                SM_alloc(B, Transpose);
                SM_alloc(A, NoChange);
                reg_alloc(C);";
    for (label, tri) in [
        ("no triangular treatment (guard-false tiles)", ""),
        ("peel_triangular(A)", "peel_triangular(A);"),
        ("padding_triangular(A)", "padding_triangular(A);"),
    ] {
        let text = base.replace("{TRI}", tri);
        match eval(trmm, &text, params, &device, n) {
            Some(g) => println!("{label:<46} {g:>8.1} GFLOPS"),
            None => println!("{label:<46} {:>8}", "n/a"),
        }
    }

    println!("\n== Ablation: Adaptor_Solver — bound vs unbound diagonal solve (TRSM-LL-N) ==\n");
    let trsm = RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N);
    let sparams = TileParams {
        ty: 16,
        tx: 64,
        thr_i: 1,
        thr_j: 64,
        kb: 8,
        unroll: 0,
    };
    for (label, tri) in [
        ("unbound per-column solve (empty rule)", ""),
        (
            "binding_triangular(A, 0) (paper's rule)",
            "binding_triangular(A, 0);",
        ),
    ] {
        let text = format!(
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             {tri}
             SM_alloc(A, NoChange);
             SM_alloc(B, Transpose);
             reg_alloc(B);"
        );
        match eval(trsm, &text, sparams, &device, n) {
            Some(g) => println!("{label:<46} {g:>8.1} GFLOPS"),
            None => println!("{label:<46} {:>8}", "n/a"),
        }
    }

    println!("\n== Ablation: shared-memory bank-conflict padding (GEMM, 2-D block) ==\n");
    // With a 16-wide thread block the staged tile's leading dimension is a
    // bank multiple; SM_alloc pads it automatically.  Quantify by comparing
    // the mode whose smem layout strides across banks.
    let params2d = TileParams {
        ty: 32,
        tx: 32,
        thr_i: 16,
        thr_j: 16,
        kb: 16,
        unroll: 0,
    };
    for (label, mode) in [
        ("SM_alloc(B, Transpose)", "Transpose"),
        ("SM_alloc(B, NoChange)", "NoChange"),
    ] {
        let text = format!(
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             loop_unroll(Ljjj, Lkkk);
             SM_alloc(B, {mode});
             SM_alloc(A, NoChange);
             reg_alloc(C);"
        );
        match eval(gemm, &text, params2d, &device, n) {
            Some(g) => println!("{label:<46} {g:>8.1} GFLOPS"),
            None => println!("{label:<46} {:>8}", "n/a"),
        }
    }
}
