//! Tables I–III — SYMM profile counters, OA vs CUBLAS-3.2-like, on all
//! three platforms.  Counter names follow `cuda_profile` (Table I/II: CC 1.x
//! coalescing counters; Table III: Fermi per-warp request counters).
//!
//! Our simulator counts whole-GPU totals from sampled address streams; the
//! paper's profiler counted a subset of TPCs, so *ratios between the OA
//! and CUBLAS columns* are the comparable quantity (EXPERIMENTS.md).

use oa_bench::{problem_size, with_cache};
use oa_core::{OaFramework, RoutineId, Side, Uplo};
use oa_gpusim::profile::fmt_millions;
use oa_gpusim::{DeviceSpec, ProfileCounters};

fn main() {
    let n = problem_size();
    let r = RoutineId::Symm(Side::Left, Uplo::Lower);

    with_cache(|cache| {
        for (idx, device) in DeviceSpec::all().into_iter().enumerate() {
            let oa = OaFramework::new(device.clone());
            let rec = cache
                .tune_cached(r, &device, n)
                .unwrap_or_else(|e| panic!("tuning SYMM failed: {e}"));
            let oa_rep = oa.evaluate_record(&rec, r, n).unwrap();
            let cu_rep = oa.cublas_baseline(r, n);
            println!(
                "== Table {}: Profiles of SYMM for OA and CUBLAS-3.2-like on {} (n = {n}) ==",
                ["I", "II", "III"][idx],
                device.name
            );
            print_table(&device, &cu_rep.counters, &oa_rep.counters);
            println!(
                "GFLOPS: CUBLAS-like {:.0}, OA {:.0} ({:.2}x)\n",
                cu_rep.gflops,
                oa_rep.gflops,
                oa_rep.gflops / cu_rep.gflops
            );
        }
    });

    println!("paper reference points:");
    println!("  Table I  (9800):  OA eliminates gld_incoherent entirely and halves instructions;");
    println!("  Table II (GTX285): gld_incoherent is 0 for both; gld_coherent 127M -> 33M, instructions 181M -> reduced;");
    println!("  Table III (Fermi): both gld_request and inst_executed drop.");
}

fn print_table(device: &DeviceSpec, cublas: &ProfileCounters, oa: &ProfileCounters) {
    let rows: Vec<(&str, f64, f64)> = match device.cc {
        oa_gpusim::ComputeCapability::Cc1_0 | oa_gpusim::ComputeCapability::Cc1_3 => vec![
            ("gld_incoherent", cublas.gld_incoherent, oa.gld_incoherent),
            ("gld_coherent", cublas.gld_coherent, oa.gld_coherent),
            ("gst_incoherent", cublas.gst_incoherent, oa.gst_incoherent),
            ("gst_coherent", cublas.gst_coherent, oa.gst_coherent),
            ("instructions", cublas.instructions, oa.instructions),
        ],
        oa_gpusim::ComputeCapability::Cc2_0 => vec![
            ("gld_request", cublas.gld_request, oa.gld_request),
            ("gst_request", cublas.gst_request, oa.gst_request),
            ("local_load", cublas.local_load, oa.local_load),
            ("local_store", cublas.local_store, oa.local_store),
            ("inst_executed", cublas.instructions, oa.instructions),
        ],
    };
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "Events", "CUBLAS", "OA", "OA/CUBLAS"
    );
    for (name, c, o) in rows {
        let ratio = if c > 0.0 {
            format!("{:.2}", o / c)
        } else {
            "-".to_string()
        };
        println!(
            "{:<16} {:>12} {:>12} {:>10}",
            name,
            fmt_millions(c),
            fmt_millions(o),
            ratio
        );
    }
}
