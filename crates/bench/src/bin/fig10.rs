//! Fig. 10 — Performance of BLAS3 on GeForce 9800 (24 variants, OA vs
//! CUBLAS-3.2-like, problem size 4096).  `--quick` runs at 512.

use oa_bench::{figure_data, print_figure, problem_size, with_cache};
use oa_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::geforce_9800();
    let n = problem_size();
    let rows = with_cache(|cache| figure_data(&device, n, false, cache));
    print_figure(
        "Fig. 10: Performance of BLAS3 on GeForce 9800",
        &device,
        n,
        &rows,
    );
    println!("paper reference points: SYMM 42 -> 225 GFLOPS; up to 5.4x speedup over CUBLAS 3.2.");
}
