//! Micro-benchmark of the three functional GPU executors.
//!
//! Runs fully lowered kernels (the CUBLAS-like baselines, which exercise
//! staging, register tiles and barriers) through all engines:
//!
//! * `exec::exec_program` — the tree-walking oracle (sequential blocks,
//!   string-keyed environments);
//! * `tape::Tape` — compile-once kernel tape, block-parallel with rayon;
//! * `bytecode::ByteCode` — flat linear bytecode, optimized address units,
//!   lane-vectorized interpretation (`vexec`).
//!
//! Reports wall-clock per launch, blocks/second and effective GFLOPS for
//! each, plus per-row and geomean tape→bytecode speedups, and writes the
//! measurements to `BENCH_exec.json`.  `--quick` (alias `--smoke`) trims
//! the routine set and iteration budget for smoke runs.

use oa_core::autotune::json::Json;
use oa_core::blas3::baselines::cublas_like;
use oa_core::gpusim::{exec_program, ByteCode, DeviceSpec, Tape};
use oa_core::loopir::interp::{alloc_buffers, Bindings, Buffers};
use oa_core::loopir::Program;
use oa_core::{RoutineId, Side, Trans, Uplo};
use std::collections::BTreeMap;
use std::time::Instant;

/// Time one engine: repeatedly execute on a fresh clone of the input
/// buffers (clone excluded from the timer) until the time budget is
/// spent, and return the best-observed seconds per launch.
fn time_launches(
    budget_secs: f64,
    max_iters: usize,
    base: &Buffers,
    mut launch: impl FnMut(&mut Buffers),
) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    for _ in 0..max_iters {
        let mut bufs = base.clone();
        let t0 = Instant::now();
        launch(&mut bufs);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        if spent >= budget_secs {
            break;
        }
    }
    best
}

struct Measurement {
    routine: String,
    n: i64,
    blocks: i64,
    legacy_secs: f64,
    tape_secs: f64,
    bytecode_secs: f64,
}

impl Measurement {
    /// Oracle → tape speedup (the PR 1 headline).
    fn speedup(&self) -> f64 {
        self.legacy_secs / self.tape_secs
    }

    /// Tape → bytecode speedup (the PR 2 headline).
    fn bytecode_speedup(&self) -> f64 {
        self.tape_secs / self.bytecode_secs
    }
}

fn measure(r: RoutineId, n: i64, dev: &DeviceSpec, budget: f64) -> Measurement {
    let p: Program = cublas_like(r, dev);
    let bindings = Bindings::square(n);
    let base = alloc_buffers(&p, &bindings, 0xBEEF);

    let tape = Tape::compile(&p, &bindings).expect("baseline kernels lower");
    let bc = ByteCode::compile(&p, &bindings).expect("baseline kernels lower to bytecode");
    // Warm all paths once (page-in, lazy allocations) before timing.
    let mut warm = base.clone();
    tape.execute(&mut warm).expect("tape exec");
    let mut warm = base.clone();
    bc.execute(&mut warm).expect("bytecode exec");
    let mut warm = base.clone();
    exec_program(&p, &bindings, &mut warm).expect("oracle exec");

    let bytecode_secs = time_launches(budget, 200, &base, |bufs| {
        bc.execute(bufs).expect("bytecode exec");
    });
    let tape_secs = time_launches(budget, 200, &base, |bufs| {
        tape.execute(bufs).expect("tape exec");
    });
    let legacy_secs = time_launches(budget, 200, &base, |bufs| {
        exec_program(&p, &bindings, bufs).expect("oracle exec");
    });

    Measurement {
        routine: r.name(),
        n,
        blocks: tape.total_blocks(),
        legacy_secs,
        tape_secs,
        bytecode_secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let dev = DeviceSpec::gtx285();
    let budget = if quick { 0.3 } else { 1.5 };

    // GEMM-NN at n=64 is the headline case (the composer filter and the
    // differential tests launch exactly this scale); the larger sizes and
    // extra routines show how the gap widens with grid size.
    let mut cases: Vec<(RoutineId, i64)> = vec![(RoutineId::Gemm(Trans::N, Trans::N), 64)];
    if !quick {
        cases.push((RoutineId::Gemm(Trans::N, Trans::N), 128));
        cases.push((RoutineId::Gemm(Trans::N, Trans::N), 256));
        cases.push((RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N), 128));
        cases.push((RoutineId::Symm(Side::Left, Uplo::Lower), 128));
    }

    println!(
        "{:<10} {:>5} {:>7} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "routine",
        "n",
        "blocks",
        "legacy ms",
        "tape ms",
        "bytecode ms",
        "tape/leg",
        "bc/tape",
        "GFLOPS"
    );
    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0;
    for &(r, n) in &cases {
        let m = measure(r, n, &dev, budget);
        let blocks_per_sec = m.blocks as f64 / m.bytecode_secs;
        let gflops = r.flops(n) / m.bytecode_secs / 1e9;
        let tape_gflops = r.flops(n) / m.tape_secs / 1e9;
        let legacy_gflops = r.flops(n) / m.legacy_secs / 1e9;
        log_speedup_sum += m.bytecode_speedup().ln();
        println!(
            "{:<10} {:>5} {:>7} {:>12.3} {:>12.3} {:>12.3} {:>9.2}x {:>9.2}x {:>10.4}",
            m.routine,
            m.n,
            m.blocks,
            m.legacy_secs * 1e3,
            m.tape_secs * 1e3,
            m.bytecode_secs * 1e3,
            m.speedup(),
            m.bytecode_speedup(),
            gflops
        );
        rows.push(Json::Obj(BTreeMap::from([
            ("routine".to_string(), Json::Str(m.routine.clone())),
            ("n".to_string(), Json::Num(m.n as f64)),
            ("blocks".to_string(), Json::Num(m.blocks as f64)),
            ("legacy_secs".to_string(), Json::Num(m.legacy_secs)),
            ("tape_secs".to_string(), Json::Num(m.tape_secs)),
            ("bytecode_secs".to_string(), Json::Num(m.bytecode_secs)),
            ("speedup".to_string(), Json::Num(m.speedup())),
            (
                "bytecode_speedup".to_string(),
                Json::Num(m.bytecode_speedup()),
            ),
            ("blocks_per_sec".to_string(), Json::Num(blocks_per_sec)),
            ("bytecode_gflops".to_string(), Json::Num(gflops)),
            ("tape_gflops".to_string(), Json::Num(tape_gflops)),
            ("legacy_gflops".to_string(), Json::Num(legacy_gflops)),
        ])));
    }
    let geomean = (log_speedup_sum / cases.len() as f64).exp();
    println!("\ntape -> bytecode geomean speedup: {geomean:.2}x");

    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "functional-executor wall clock: tree-walking oracle vs compiled kernel tape \
                 (block-parallel) vs lane-vectorized linear bytecode; GFLOPS are simulation \
                 throughput, not modeled device GFLOPS"
                    .to_string(),
            ),
        ),
        ("threads".to_string(), Json::Num(rayon_threads() as f64)),
        ("bytecode_geomean_speedup".to_string(), Json::Num(geomean)),
        ("measurements".to_string(), Json::Arr(rows)),
    ]));
    std::fs::write("BENCH_exec.json", doc.pretty() + "\n").expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}
