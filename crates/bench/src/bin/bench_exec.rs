//! Micro-benchmark of the four functional GPU executors.
//!
//! Runs fully lowered kernels (the CUBLAS-like baselines, which exercise
//! staging, register tiles and barriers) through all engines:
//!
//! * `exec::exec_program` — the tree-walking oracle (sequential blocks,
//!   string-keyed environments);
//! * `tape::Tape` — compile-once kernel tape, block-parallel with rayon;
//! * `bytecode::ByteCode` — flat linear bytecode, optimized address units,
//!   lane-vectorized interpretation (`vexec`);
//! * `native::NativeProgram` — the bytecode's lane-affine inner loop
//!   nests lowered to specialized host SIMD microkernels.
//!
//! Reports wall-clock per launch, blocks/second and effective GFLOPS for
//! each, plus per-row and geomean tape→bytecode and bytecode→native
//! speedups, and writes the measurements to `BENCH_exec.json`.  The
//! `GEMM-NN-inner` row is a register-tiled kernel whose deep K tile makes
//! the inner FMA nest dominate — the shape the native tier targets.
//! `--quick` (alias `--smoke`) trims the routine set and iteration budget
//! for smoke runs.

use oa_core::autotune::json::Json;
use oa_core::autotune::report::{NativeCoverageStats, TuneEvent};
use oa_core::blas3::baselines::cublas_like;
use oa_core::gpusim::{exec_program, ByteCode, DeviceSpec, NativeProgram, Tape};
use oa_core::loopir::builder::{gemm_nn_like, syrk_ln_like};
use oa_core::loopir::interp::{alloc_buffers, Bindings, Buffers};
use oa_core::loopir::transform::{loop_tiling, reg_alloc, sm_alloc, thread_grouping, TileParams};
use oa_core::loopir::Program;
use oa_core::trace::{stderr_observer, TraceMode};
use oa_core::{RoutineId, Side, Trans, Uplo};
use std::collections::BTreeMap;
use std::time::Instant;

/// Time one engine: repeatedly execute on a fresh clone of the input
/// buffers (clone excluded from the timer) until the time budget is
/// spent, and return the best-observed seconds per launch.
fn time_launches(
    budget_secs: f64,
    max_iters: usize,
    base: &Buffers,
    mut launch: impl FnMut(&mut Buffers),
) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    for _ in 0..max_iters {
        let mut bufs = base.clone();
        let t0 = Instant::now();
        launch(&mut bufs);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        if spent >= budget_secs {
            break;
        }
    }
    best
}

struct Measurement {
    routine: String,
    n: i64,
    blocks: i64,
    flops: f64,
    legacy_secs: f64,
    tape_secs: f64,
    bytecode_secs: f64,
    native_secs: f64,
    coverage: NativeCoverageStats,
}

impl Measurement {
    /// Oracle → tape speedup (the PR 1 headline).
    fn speedup(&self) -> f64 {
        self.legacy_secs / self.tape_secs
    }

    /// Tape → bytecode speedup (the PR 2 headline).
    fn bytecode_speedup(&self) -> f64 {
        self.tape_secs / self.bytecode_secs
    }

    /// Bytecode → native speedup (this PR's headline).
    fn native_speedup(&self) -> f64 {
        self.bytecode_secs / self.native_secs
    }
}

/// Measure one fully lowered program through all four engines.
fn measure_program(label: &str, p: &Program, n: i64, flops: f64, budget: f64) -> Measurement {
    let bindings = Bindings::square(n);
    let base = alloc_buffers(p, &bindings, 0xBEEF);

    let tape = Tape::compile(p, &bindings).expect("baseline kernels lower");
    let bc = ByteCode::compile(p, &bindings).expect("baseline kernels lower to bytecode");
    let native = NativeProgram::compile(p, &bindings).expect("baseline kernels lower natively");
    // Warm all paths once (page-in, lazy allocations) before timing.
    let mut warm = base.clone();
    tape.execute(&mut warm).expect("tape exec");
    let mut warm = base.clone();
    bc.execute(&mut warm).expect("bytecode exec");
    let mut warm = base.clone();
    native.execute(&mut warm).expect("native exec");
    let mut warm = base.clone();
    exec_program(p, &bindings, &mut warm).expect("oracle exec");

    let native_secs = time_launches(budget, 200, &base, |bufs| {
        native.execute(bufs).expect("native exec");
    });
    let bytecode_secs = time_launches(budget, 200, &base, |bufs| {
        bc.execute(bufs).expect("bytecode exec");
    });
    let tape_secs = time_launches(budget, 200, &base, |bufs| {
        tape.execute(bufs).expect("tape exec");
    });
    let legacy_secs = time_launches(budget, 200, &base, |bufs| {
        exec_program(p, &bindings, bufs).expect("oracle exec");
    });

    // Coverage after all launches: entries/fallbacks accumulate over the
    // warm-up and every timed iteration.
    let cov = native.coverage();
    let coverage = NativeCoverageStats {
        routine: label.to_string(),
        regions: cov.regions,
        entries: cov.entries,
        fallbacks: cov.fallbacks,
        rejects: cov
            .rejects
            .iter()
            .map(|&(name, count)| (name.to_string(), count))
            .collect(),
    };

    Measurement {
        routine: label.to_string(),
        n,
        blocks: tape.total_blocks(),
        flops,
        legacy_secs,
        tape_secs,
        bytecode_secs,
        native_secs,
        coverage,
    }
}

fn measure(r: RoutineId, n: i64, dev: &DeviceSpec, budget: f64) -> Measurement {
    let p: Program = cublas_like(r, dev);
    measure_program(&r.name(), &p, n, r.flops(n), budget)
}

/// The native tier's target shape: a register-tiled GEMM with a deep K
/// tile, so nearly all work is the lane-affine inner FMA nest (staging
/// and bookkeeping amortize over `kb` accumulate steps per tile).
fn gemm_inner_block() -> Program {
    let params = TileParams {
        ty: 32,
        tx: 32,
        thr_i: 8,
        thr_j: 8,
        kb: 32,
        unroll: 0,
    };
    let mut p = gemm_nn_like("g");
    thread_grouping(&mut p, "Li", "Lj", params).unwrap();
    loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
    sm_alloc(&mut p, "A", oa_core::loopir::AllocMode::NoChange).unwrap();
    sm_alloc(&mut p, "B", oa_core::loopir::AllocMode::Transpose).unwrap();
    reg_alloc(&mut p, "C").unwrap();
    p
}

/// The register-tiled SYRK-LN pipeline (rank-K update of the lower
/// triangle, `C := A·Aᵀ + C`).
fn syrk_ln(n: i64) -> Program {
    // 64-lane blocks (8×8 threads, 2×2 register tiles): the 16-wide
    // output tile keeps the diagonal straddle-fallback fraction small
    // while the lane count matches the library kernels' vector width.
    let params = TileParams {
        ty: if n >= 128 { 16 } else { 8 },
        tx: if n >= 128 { 16 } else { 8 },
        thr_i: if n >= 128 { 8 } else { 4 },
        thr_j: if n >= 128 { 8 } else { 4 },
        kb: if n >= 128 { 32 } else { 4 },
        unroll: 0,
    };
    let mut p = syrk_ln_like("syrk");
    thread_grouping(&mut p, "Li", "Lj", params).unwrap();
    loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
    reg_alloc(&mut p, "C").unwrap();
    p
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let dev = DeviceSpec::gtx285();
    let budget = if quick { 0.3 } else { 1.5 };

    // GEMM-NN at n=64 is the headline case (the composer filter and the
    // differential tests launch exactly this scale); the larger sizes and
    // extra routines show how the gap widens with grid size.  The
    // triangular family (TRMM/SYMM/TRSM) rides in both modes so the
    // native-coverage floor guards it even on smoke runs.
    let mut cases: Vec<(RoutineId, i64)> = vec![(RoutineId::Gemm(Trans::N, Trans::N), 64)];
    let tri_n = if quick { 64 } else { 256 };
    if !quick {
        cases.push((RoutineId::Gemm(Trans::N, Trans::N), 128));
        cases.push((RoutineId::Gemm(Trans::N, Trans::N), 256));
    }
    cases.push((RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N), tri_n));
    cases.push((RoutineId::Symm(Side::Left, Uplo::Lower), tri_n));
    // TRSM sizes must be 64-multiples (the solver serializes along a
    // 64-wide column tile).  It runs a size up from the rest of the
    // family: the interpreted substitution is O(n²·64) while the
    // natively lowered update nest is O(n³), so the larger size shows
    // the covered fraction rather than the serial floor.
    let trsm_n = if quick { 64 } else { tri_n };
    cases.push((RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N), trsm_n));

    println!(
        "{:<14} {:>5} {:>7} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8} {:>10}",
        "routine",
        "n",
        "blocks",
        "legacy ms",
        "tape ms",
        "bc ms",
        "native ms",
        "tape/leg",
        "bc/tape",
        "nat/bc",
        "GFLOPS"
    );
    let mut measurements = Vec::new();
    for &(r, n) in &cases {
        measurements.push(measure(r, n, &dev, budget));
    }
    // The inner-block shape: deep-K register-tiled GEMM where the native
    // microkernels carry nearly all of the work.
    let inner_n = if quick { 64 } else { 128 };
    let inner = gemm_inner_block();
    let gemm = RoutineId::Gemm(Trans::N, Trans::N);
    measurements.push(measure_program(
        "GEMM-NN-inner",
        &inner,
        inner_n,
        gemm.flops(inner_n),
        budget,
    ));
    // SYRK-LN is not one of the 24 library routines, but its
    // output-triangle guard is the both-axes divergence shape: full
    // blocks get a uniform corner verdict, diagonal blocks fall back.
    let syrk = syrk_ln(tri_n);
    let syrk_flops = tri_n as f64 * tri_n as f64 * (tri_n as f64 + 1.0);
    measurements.push(measure_program("SYRK-LN", &syrk, tri_n, syrk_flops, budget));

    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0;
    let mut log_native_sum = 0.0;
    for m in &measurements {
        let blocks_per_sec = m.blocks as f64 / m.bytecode_secs;
        let gflops = m.flops / m.bytecode_secs / 1e9;
        let native_gflops = m.flops / m.native_secs / 1e9;
        let tape_gflops = m.flops / m.tape_secs / 1e9;
        let legacy_gflops = m.flops / m.legacy_secs / 1e9;
        log_speedup_sum += m.bytecode_speedup().ln();
        log_native_sum += m.native_speedup().ln();
        println!(
            "{:<14} {:>5} {:>7} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>7.2}x {:>7.2}x {:>7.2}x {:>10.4}",
            m.routine,
            m.n,
            m.blocks,
            m.legacy_secs * 1e3,
            m.tape_secs * 1e3,
            m.bytecode_secs * 1e3,
            m.native_secs * 1e3,
            m.speedup(),
            m.bytecode_speedup(),
            m.native_speedup(),
            native_gflops
        );
        rows.push(Json::Obj(BTreeMap::from([
            ("routine".to_string(), Json::Str(m.routine.clone())),
            ("n".to_string(), Json::Num(m.n as f64)),
            ("blocks".to_string(), Json::Num(m.blocks as f64)),
            ("legacy_secs".to_string(), Json::Num(m.legacy_secs)),
            ("tape_secs".to_string(), Json::Num(m.tape_secs)),
            ("bytecode_secs".to_string(), Json::Num(m.bytecode_secs)),
            ("native_secs".to_string(), Json::Num(m.native_secs)),
            ("speedup".to_string(), Json::Num(m.speedup())),
            (
                "bytecode_speedup".to_string(),
                Json::Num(m.bytecode_speedup()),
            ),
            ("native_speedup".to_string(), Json::Num(m.native_speedup())),
            ("blocks_per_sec".to_string(), Json::Num(blocks_per_sec)),
            ("bytecode_gflops".to_string(), Json::Num(gflops)),
            ("native_gflops".to_string(), Json::Num(native_gflops)),
            ("tape_gflops".to_string(), Json::Num(tape_gflops)),
            ("legacy_gflops".to_string(), Json::Num(legacy_gflops)),
            (
                "native_coverage".to_string(),
                Json::Obj(BTreeMap::from([
                    ("regions".to_string(), Json::Int(m.coverage.regions as i64)),
                    ("entries".to_string(), Json::Int(m.coverage.entries as i64)),
                    (
                        "fallbacks".to_string(),
                        Json::Int(m.coverage.fallbacks as i64),
                    ),
                    (
                        "rejects".to_string(),
                        Json::Obj(
                            m.coverage
                                .rejects
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Int(*v as i64)))
                                .collect::<BTreeMap<_, _>>(),
                        ),
                    ),
                ])),
            ),
        ])));
    }
    // Coverage through the trace stream (OA_TRACE=json|pretty), so
    // regressions show up in captured streams, not just the artifact.
    let mut obs = stderr_observer(TraceMode::from_env());
    for m in &measurements {
        obs(TuneEvent::NativeCoverage(m.coverage.clone()));
    }
    let rows_n = measurements.len() as f64;
    let geomean = (log_speedup_sum / rows_n).exp();
    let native_geomean = (log_native_sum / rows_n).exp();
    println!("\ntape -> bytecode geomean speedup: {geomean:.2}x");
    println!("bytecode -> native geomean speedup: {native_geomean:.2}x");

    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "functional-executor wall clock: tree-walking oracle vs compiled kernel tape \
                 (block-parallel) vs lane-vectorized linear bytecode vs native microkernels; \
                 GFLOPS are simulation throughput, not modeled device GFLOPS"
                    .to_string(),
            ),
        ),
        ("threads".to_string(), Json::Num(rayon_threads() as f64)),
        ("bytecode_geomean_speedup".to_string(), Json::Num(geomean)),
        (
            "native_geomean_speedup".to_string(),
            Json::Num(native_geomean),
        ),
        ("measurements".to_string(), Json::Arr(rows)),
    ]));
    std::fs::write("BENCH_exec.json", doc.pretty() + "\n").expect("write BENCH_exec.json");
    println!("\nwrote BENCH_exec.json");

    // Perf floor: the committed geomean minus 10% slack.  CI fails the
    // build when a fresh run regresses below it.
    let key = if quick { "smoke" } else { "full" };
    match std::fs::read_to_string("results/native_floor.json") {
        Ok(text) => {
            let floor = oa_core::autotune::json::parse(&text)
                .and_then(|d| d.get(key).and_then(Json::as_f64))
                .unwrap_or_else(|| panic!("results/native_floor.json lacks a `{key}` number"));
            let min = floor * 0.9;
            if native_geomean < min {
                eprintln!(
                    "FAIL: native_geomean_speedup {native_geomean:.2}x regressed below the \
                     committed `{key}` floor {floor:.2}x - 10% = {min:.2}x"
                );
                std::process::exit(1);
            }
            println!("native geomean {native_geomean:.2}x >= `{key}` floor {floor:.2}x - 10%");
        }
        Err(_) => println!("no results/native_floor.json here; floor check skipped"),
    }
}

fn rayon_threads() -> usize {
    rayon::current_num_threads()
}
