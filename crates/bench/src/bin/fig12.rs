//! Fig. 12 — Performance of BLAS3 on Fermi Tesla C2050.  `--quick` runs at
//! 512.

use oa_bench::{figure_data, print_figure, problem_size, with_cache};
use oa_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::fermi_c2050();
    let n = problem_size();
    let rows = with_cache(|cache| figure_data(&device, n, false, cache));
    print_figure(
        "Fig. 12: Performance of BLAS3 on Fermi Tesla C2050",
        &device,
        n,
        &rows,
    );
    println!("paper reference point: up to 3.4x speedup over CUBLAS 3.2.");
}
