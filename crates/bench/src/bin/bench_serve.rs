//! Throughput benchmark of the persistent `oa serve --listen` server.
//!
//! Spawns the server in-process on a loopback TCP socket and drives it
//! with a multi-tenant adversarial load: one `flood` tenant hammering
//! cheap clamped-class GEMMs (`n = 16` → tuning class 64) while three
//! `mix-*` tenants interleave GEMM/SYMM at 16/32/48 and TRSM at its
//! 64-wide tile multiple.  Tuning is amortized through the shared cache
//! (the library is *generated* once, then *served*); a warm-up pass
//! populates the compiled-program LRU so the measured window is the
//! steady compile-once/run-many regime a long-lived server settles into.
//!
//! Measures:
//!
//! * **steady throughput** — completed requests / wall over the measured
//!   window, all clients pipelining concurrently;
//! * **latency** — client-side per-request sojourn (write → response
//!   line) and the server's own admission→response p50/p99 from its
//!   `metrics` op;
//! * **backpressure** — a second, deliberately tiny server is flooded to
//!   show admission control rejecting with structured lines instead of
//!   queueing without bound.
//!
//! Prints the rates and writes `BENCH_serve.json`.  The acceptance bar
//! (full mode only) is steady throughput ≥ 448 req/s — the floor set by
//! `BENCH_dispatch.json`'s batched steady rate on this machine.
//! `--quick` (alias `--smoke`) drives a smaller window and skips the bar.

use oa_core::autotune::json::{self, Json};
use oa_core::dispatch::{Registry, Request};
use oa_core::gpusim::DeviceSpec;
use oa_core::serve::{percentile, spawn_server, Listener, ServeConfig};
use oa_core::trace::TraceMode;
use oa_core::RoutineId;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The steady acceptance floor, req/s (from `BENCH_dispatch.json`).
const FLOOR_RPS: f64 = 448.0;

/// One tenant's request mix for the measured window.
fn tenant_mix(tenant: &str, count: usize) -> Vec<Request> {
    let shapes: Vec<(RoutineId, i64)> = if tenant == "flood" {
        // The adversary: cheap clamped-class requests, all one shape.
        vec![(RoutineId::parse("GEMM-NN").unwrap(), 16)]
    } else {
        vec![
            (RoutineId::parse("GEMM-NN").unwrap(), 32),
            (RoutineId::parse("GEMM-NT").unwrap(), 48),
            (RoutineId::parse("SYMM-LL").unwrap(), 32),
            (RoutineId::parse("TRSM-LL-N").unwrap(), 64),
            (RoutineId::parse("GEMM-NN").unwrap(), 16),
        ]
    };
    (0..count)
        .map(|i| {
            let (routine, n) = shapes[i % shapes.len()];
            let mut r = Request::new(routine, n);
            r.seed = i as u64 * 31 + 7;
            r.tenant = Some(tenant.to_string());
            r
        })
        .collect()
}

/// Drive one connection: pipeline all requests, then collect every
/// response, returning per-request sojourn latencies (ms) and the count
/// of `ok` lines.
fn run_client(addr: &str, reqs: &[Request]) -> (Vec<f64>, usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("read timeout");
    let mut w = stream.try_clone().expect("clone");
    let mut sent = Vec::with_capacity(reqs.len());
    for r in reqs {
        let line = r.to_json().compact();
        writeln!(w, "{line}").expect("send");
        sent.push(Instant::now());
    }
    w.flush().expect("flush");

    let mut latencies = vec![0.0f64; reqs.len()];
    let mut ok = 0usize;
    let mut reader = BufReader::new(stream);
    for _ in 0..reqs.len() {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("response");
        assert!(n > 0, "connection closed early");
        let doc = json::parse(line.trim()).expect("response JSON");
        let id = doc.get("id").and_then(Json::as_i64).expect("id") as usize;
        latencies[id] = sent[id].elapsed().as_secs_f64() * 1e3;
        if doc.get("status").and_then(Json::as_str) == Some("ok") {
            ok += 1;
        }
    }
    (latencies, ok)
}

/// Flood a deliberately tiny server to demonstrate admission control:
/// every request is answered, the overflow with structured rejections.
fn overload_probe(registry: Arc<Registry>) -> (usize, usize) {
    let cfg = ServeConfig {
        threads: 1,
        queue_cap: 4,
        tenant_quota: 2,
        ..ServeConfig::default()
    };
    let server = spawn_server(
        registry,
        Listener::bind("127.0.0.1:0").expect("bind probe"),
        cfg,
        TraceMode::Off,
    );
    let reqs = tenant_mix("flood", 100);
    let (_, ok) = run_client(server.addr(), &reqs);
    let stats = server.shutdown_and_join();
    assert_eq!(stats.admitted, stats.completed, "probe drain lost work");
    assert!(stats.rejected > 0, "overload probe produced no rejections");
    (ok, stats.rejected)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let device = DeviceSpec::gtx285();
    let per_tenant = if quick { 50 } else { 300 };
    let tenants = ["flood", "mix-a", "mix-b", "mix-c"];
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let cache = oa_bench::cache_path();

    let registry = Arc::new(Registry::new(device).with_tune_cache(cache));

    // Tune every (routine, class) the load needs up front and persist it.
    let mixes: Vec<Vec<Request>> = tenants.iter().map(|t| tenant_mix(t, per_tenant)).collect();
    let t0 = Instant::now();
    for mix in &mixes {
        registry.warm(&mix[..mix.len().min(8)], &mut |_| {});
    }
    let warm_secs = t0.elapsed().as_secs_f64();

    let mut cfg = ServeConfig::from_env();
    cfg.threads = threads;
    cfg.queue_cap = cfg.queue_cap.max(4 * per_tenant);
    cfg.tenant_quota = cfg.tenant_quota.max(per_tenant);
    let batch_max = cfg.batch_max;
    let batch_window_ms = cfg.batch_window.as_secs_f64() * 1e3;
    let (queue_cap, tenant_quota) = (cfg.queue_cap, cfg.tenant_quota);
    let server = spawn_server(
        registry.clone(),
        Listener::bind("127.0.0.1:0").expect("bind"),
        cfg,
        TraceMode::Off,
    );
    let addr = server.addr().to_string();

    // Warm-up pass: compile each distinct program once through the
    // server itself, so the measured window is pure run-many.
    for mix in &mixes {
        let head: Vec<Request> = mix.iter().take(8).cloned().collect();
        run_client(&addr, &head);
    }

    // Measured window: all tenants pipeline concurrently.
    let t0 = Instant::now();
    let handles: Vec<_> = mixes
        .iter()
        .map(|mix| {
            let addr = addr.clone();
            let mix = mix.clone();
            std::thread::spawn(move || run_client(&addr, &mix))
        })
        .collect();
    let mut latencies = Vec::new();
    let mut ok = 0usize;
    for h in handles {
        let (lat, k) = h.join().expect("client thread");
        latencies.extend(lat);
        ok += k;
    }
    let steady_secs = t0.elapsed().as_secs_f64();
    let total = per_tenant * tenants.len();
    assert_eq!(ok, total, "steady-window requests failed");
    let steady_rps = total as f64 / steady_secs;

    latencies.sort_by(|a, b| a.total_cmp(b));
    let client_p50 = percentile(&latencies, 50.0);
    let client_p99 = percentile(&latencies, 99.0);

    // Live introspection snapshot straight off the socket.
    let metrics_line = {
        let stream = TcpStream::connect(&addr).expect("connect metrics");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let mut w = stream.try_clone().expect("clone");
        writeln!(w, "{{\"op\":\"metrics\"}}").expect("send metrics");
        w.flush().expect("flush");
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("metrics");
        json::parse(line.trim()).expect("metrics JSON")
    };

    let stats = server.shutdown_and_join();
    assert_eq!(stats.admitted, stats.completed, "drain lost requests");

    let (probe_ok, probe_rejected) = overload_probe(registry);

    println!(
        "serve throughput ({} tenants x {} requests, {} worker threads)",
        tenants.len(),
        per_tenant,
        threads
    );
    println!("  warm-up (tuning, amortized): {:.1} ms", warm_secs * 1e3);
    println!(
        "  steady window: {steady_rps:>8.1} req/s ({} requests, {:.1} ms wall)",
        total,
        steady_secs * 1e3
    );
    println!(
        "  client sojourn: p50 {client_p50:.2} ms, p99 {client_p99:.2} ms; \
         server-side p50 {:.2} ms, p99 {:.2} ms",
        stats.p50_ms, stats.p99_ms
    );
    println!(
        "  batching: {} batches, max {}, mean {:.2}; lru {} hits / {} misses; {} clamped",
        stats.batches, stats.max_batch, stats.mean_batch, stats.hits, stats.misses, stats.clamped
    );
    println!("  overload probe: {probe_ok} served, {probe_rejected} rejected (structured)");

    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "persistent `oa serve --listen` driven over loopback TCP by one flood tenant \
                 (cheap clamped-class n=16 GEMMs) plus three mixed tenants (GEMM/SYMM at \
                 16/32/48, TRSM at 64), all pipelining concurrently; warm-up pass compiles each \
                 distinct program once so the measured window is the steady run-many regime; \
                 `steady_requests_per_sec` is the acceptance headline (floor 448 req/s, from \
                 BENCH_dispatch.json); the overload probe floods a queue_cap=4 / quota=2 server \
                 to show admission control answering every line, overflow as structured \
                 rejections"
                    .to_string(),
            ),
        ),
        ("quick".to_string(), Json::Bool(quick)),
        ("tenants".to_string(), Json::Int(tenants.len() as i64)),
        (
            "requests_per_tenant".to_string(),
            Json::Int(per_tenant as i64),
        ),
        ("threads".to_string(), Json::Int(threads as i64)),
        ("queue_cap".to_string(), Json::Int(queue_cap as i64)),
        ("tenant_quota".to_string(), Json::Int(tenant_quota as i64)),
        ("batch_max".to_string(), Json::Int(batch_max as i64)),
        ("batch_window_ms".to_string(), Json::Num(batch_window_ms)),
        ("warm_secs".to_string(), Json::Num(warm_secs)),
        ("steady_secs".to_string(), Json::Num(steady_secs)),
        ("steady_requests_per_sec".to_string(), Json::Num(steady_rps)),
        ("client_p50_ms".to_string(), Json::Num(client_p50)),
        ("client_p99_ms".to_string(), Json::Num(client_p99)),
        (
            "server".to_string(),
            Json::Obj(BTreeMap::from([
                ("admitted".to_string(), Json::Int(stats.admitted as i64)),
                ("completed".to_string(), Json::Int(stats.completed as i64)),
                ("ok".to_string(), Json::Int(stats.ok as i64)),
                ("failed".to_string(), Json::Int(stats.failed as i64)),
                ("rejected".to_string(), Json::Int(stats.rejected as i64)),
                ("clamped".to_string(), Json::Int(stats.clamped as i64)),
                ("batches".to_string(), Json::Int(stats.batches as i64)),
                ("max_batch".to_string(), Json::Int(stats.max_batch as i64)),
                ("mean_batch".to_string(), Json::Num(stats.mean_batch)),
                ("p50_ms".to_string(), Json::Num(stats.p50_ms)),
                ("p99_ms".to_string(), Json::Num(stats.p99_ms)),
                ("hits".to_string(), Json::Int(stats.hits as i64)),
                ("misses".to_string(), Json::Int(stats.misses as i64)),
                ("tenants".to_string(), Json::Int(stats.tenants as i64)),
                ("wall_ms".to_string(), Json::Num(stats.wall_ms)),
            ])),
        ),
        ("metrics_snapshot".to_string(), metrics_line),
        (
            "overload_probe".to_string(),
            Json::Obj(BTreeMap::from([
                ("requests".to_string(), Json::Int(100)),
                ("served".to_string(), Json::Int(probe_ok as i64)),
                ("rejected".to_string(), Json::Int(probe_rejected as i64)),
            ])),
        ),
    ]));
    std::fs::write("BENCH_serve.json", doc.pretty() + "\n").expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if !quick {
        assert!(
            steady_rps >= FLOOR_RPS,
            "steady throughput {steady_rps:.1} req/s below the {FLOOR_RPS} req/s floor"
        );
    }
}
