//! Fig. 11 — Performance of BLAS3 on GTX 285, including the MAGMA-v0.2-like
//! bars for the GEMM and TRSM variants ("SYMM and TRMM variants are not
//! compared due to their absence in MAGMA").  `--quick` runs at 512.

use oa_bench::{figure_data, print_figure, problem_size, with_cache};
use oa_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::gtx285();
    let n = problem_size();
    let rows = with_cache(|cache| figure_data(&device, n, true, cache));
    print_figure(
        "Fig. 11: Performance of BLAS3 on GTX 285",
        &device,
        n,
        &rows,
    );
    println!(
        "paper reference points: GEMM-NN 420 GFLOPS (CUBLAS), SYMM 155 -> 403 GFLOPS, up to 2.8x; OA > MAGMA v0.2 > CUBLAS on GEMM/TRSM."
    );
}
