//! Fig. 14 — Best-performing EPOD scripts for GEMM-TN, SYMM-LN (= SYMM-LL,
//! left/lower, no transpose), TRMM-LL-N and TRSM-LL-N, as found by the
//! search.  With `--verbose`, also prints the transformed kernel source
//! and the mixed-sequence statistics of the Sec. IV.B.2 filter example.

use oa_bench::{problem_size, with_cache};
use oa_core::{RoutineId, Side, Trans, Uplo};
use oa_gpusim::DeviceSpec;

fn main() {
    let device = DeviceSpec::gtx285();
    let n = problem_size();
    let verbose = std::env::args().any(|a| a == "--verbose");

    let routines = [
        RoutineId::Gemm(Trans::T, Trans::N),
        RoutineId::Symm(Side::Left, Uplo::Lower),
        RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N),
        RoutineId::Trsm(Side::Left, Uplo::Lower, Trans::N),
    ];

    println!(
        "== Fig. 14: Best-performing EPOD scripts (device {}, n = {n}) ==\n",
        device.name
    );
    with_cache(|cache| {
        for r in routines {
            let rec = cache
                .tune_cached(r, &device, n)
                .unwrap_or_else(|e| panic!("tuning {} failed: {e}", r.name()));
            println!(
                "---- {} ({:.0} GFLOPS, params {:?}) ----",
                r.name(),
                rec.gflops,
                rec.params
            );
            println!("{}", rec.script);
            if verbose {
                let src = oa_core::blas3::routines::source(r);
                let script = oa_core::epod::parse_script(&rec.script).unwrap();
                let out =
                    oa_core::epod::translator::apply_lenient(&src, &script, rec.tile_params())
                        .unwrap();
                println!("transformed kernel:\n{}", out.program);
                if let Ok(cuda) = oa_core::gpusim::to_cuda_source(
                    &out.program,
                    &oa_core::loopir::interp::Bindings::square(n),
                ) {
                    println!("emitted CUDA source:\n{cuda}");
                }
            }
        }
    });

    if verbose {
        print_filter_example();
    }
    println!("paper reference (Fig. 14): GEMM-TN uses GM_map(A, Transpose); SYMM uses GM_map(A, Symmetry) + format_iteration; TRMM uses padding_triangular; TRSM uses binding_triangular.");
}

/// The Sec. IV.B.2 mixing/filter statistics for Adaptor_Triangular over
/// the GEMM-NN scheme.
fn print_filter_example() {
    use oa_core::composer::{filter, mix, split};
    use oa_core::epod::Invocation;
    use oa_core::loopir::transform::TileParams;

    let source =
        oa_core::blas3::routines::source(RoutineId::Trmm(Side::Left, Uplo::Lower, Trans::N));
    let base = split(&oa_core::blas3::gemm_nn_script().stmts).sequence;
    let mut sequences = Vec::new();
    sequences.extend(mix(&base, &[]));
    sequences.extend(mix(&base, &[Invocation::idents("peel_triangular", &["A"])]));
    sequences.extend(mix(
        &base,
        &[Invocation::idents("padding_triangular", &["A"])],
    ));
    println!(
        "== Sec. IV.B.2 filter example: {} mixed sequences ==",
        sequences.len()
    );
    let params = TileParams {
        ty: 32,
        tx: 32,
        thr_i: 16,
        thr_j: 16,
        kb: 16,
        unroll: 0,
    };
    let surviving = filter(&source, &sequences, params).unwrap();
    println!(
        "semi-output after degeneration + dedup: {} effective sequences",
        surviving.len()
    );
    for s in &surviving {
        let names: Vec<&str> = s.applied.iter().map(|i| i.component.as_str()).collect();
        let dropped: Vec<String> = s
            .dropped
            .iter()
            .map(|(i, e)| format!("{} ({e})", i.component))
            .collect();
        println!("  {:?}  dropped: {:?}", names, dropped);
    }
    println!();
}
