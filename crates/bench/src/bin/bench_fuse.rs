//! Fusion benchmark: expression-DAG chains, fused vs. sequenced.
//!
//! Runs the two canonical producer→consumer chains through the registry's
//! DAG path twice each — once with the fusion planner on (`fuse: true`)
//! and once forced to the sequenced plan — and reports modeled
//! global-memory traffic and model GFLOPS for both:
//!
//! * `GEMM→ADD` — the epilogue splice: the GEMM result is consumed
//!   in-register by the elementwise add, so the intermediate product
//!   never round-trips through global memory;
//! * `SYRK→TRSM` — the solver-prologue splice: the rank-update tile is
//!   staged into the solver's shared-memory prologue directly.
//!
//! Honesty first: before any numbers are reported, each chain's fused
//! digest is checked **bit for bit** against the sequenced digest on all
//! four execution engines (oracle, tape, bytecode, native).  A fusion
//! pass that changes results is disqualified, not benchmarked.
//!
//! Writes `BENCH_fuse.json` and enforces a committed traffic-reduction
//! floor (`results/fuse_floor.json`): the smallest reduction of
//! global-memory traffic across **fused** rows must not regress below
//! the floor minus 10% slack.  Rows the planner demotes as
//! `unprofitable` (past the prologue splice's crossover size, on-the-fly
//! recomputation re-reads swallow the round-trip saving) are reported
//! with their reject reason and must match the sequenced plan exactly —
//! the gate itself is under test.  `--quick` (alias `--smoke`) trims
//! sizes for CI smoke runs.

use oa_core::autotune::json::Json;
use oa_core::dispatch::Registry;
use oa_core::gpusim::ExecEngine;
use oa_core::{DagRequest, DagStatus, DeviceSpec};
use std::collections::BTreeMap;

const ENGINES: [ExecEngine; 4] = [
    ExecEngine::Oracle,
    ExecEngine::Tape,
    ExecEngine::Bytecode,
    ExecEngine::Native,
];

fn chain_gemm_add(n: i64) -> DagRequest {
    let line = format!(
        r#"{{"dag": [{{"id": "mm", "routine": "GEMM-NN", "a": "A", "b": "B", "c": "C"}},
            {{"id": "sum", "routine": "ADD", "a": "@mm", "b": "E"}}], "n": {n}, "seed": 7}}"#
    );
    parse_req(&line)
}

fn chain_syrk_trsm(n: i64) -> DagRequest {
    let line = format!(
        r#"{{"dag": [{{"id": "rk", "routine": "SYRK", "a": "F", "c": "S"}},
            {{"id": "tri", "routine": "TRSM-LL-N", "a": "L", "b": "@rk"}}], "n": {n}, "seed": 7}}"#
    );
    parse_req(&line)
}

fn parse_req(line: &str) -> DagRequest {
    let doc = oa_core::autotune::json::parse(line).expect("valid JSON");
    DagRequest::from_json(&doc).unwrap_or_else(|e| panic!("{}: {}", e.class, e.reason))
}

struct Run {
    digest: u64,
    units: usize,
    fused_edges: usize,
    rejects: Vec<(String, String, String)>,
    gmem_bytes: f64,
    gflops: f64,
    ms: f64,
}

fn run(registry: &Registry, req: &DagRequest) -> Run {
    match registry.run_dag(req).status {
        DagStatus::Ok(ok) => Run {
            digest: ok.digest,
            units: ok.units,
            fused_edges: ok.fused.len(),
            rejects: ok.rejected,
            gmem_bytes: ok.gmem_bytes.expect("modeled traffic"),
            gflops: ok.model_gflops.expect("modeled GFLOPS"),
            ms: ok.ms,
        },
        DagStatus::Failed { class, reason } => {
            panic!("{} n={}: {class}: {reason}", req.shape(), req.n)
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let dev = DeviceSpec::gtx285();
    // Solver chains need 64-multiples (the TRSM column tile); the shared
    // size list keeps the table comparable across chains.
    let sizes: &[i64] = if quick { &[64] } else { &[64, 128, 256] };

    type ChainBuilder = fn(i64) -> DagRequest;
    let chains: Vec<(&str, ChainBuilder)> = vec![
        ("GEMM->ADD", chain_gemm_add),
        ("SYRK->TRSM", chain_syrk_trsm),
    ];

    // Differential gate: fused and sequenced digests must agree on every
    // engine, and every engine must agree with every other.
    println!("cross-engine differential (fused vs sequenced, bit for bit):");
    for (label, mk) in &chains {
        let req = mk(sizes[0]);
        let mut unfused = req.clone();
        unfused.fuse = false;
        let mut digests = Vec::new();
        for engine in ENGINES {
            let registry = Registry::new(dev.clone()).with_engine(engine);
            let f = run(&registry, &req);
            let s = run(&registry, &unfused);
            assert_eq!(
                f.digest, s.digest,
                "{label} n={} on {engine:?}: fusion changed bits",
                req.n
            );
            assert!(f.fused_edges >= 1, "{label} did not fuse on {engine:?}");
            digests.push(f.digest);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "{label}: engines disagree: {digests:x?}"
        );
        println!(
            "  {label:<12} n={:<4} {:016x} on all 4 engines",
            req.n, digests[0]
        );
    }

    // Traffic/GFLOPS table on one engine (the modeled numbers are
    // engine-invariant; bytecode keeps the wall clock small).
    let registry = Registry::new(dev).with_engine(ExecEngine::Bytecode);
    println!(
        "\n{:<12} {:>5} {:>6} {:>15} {:>15} {:>9} {:>10} {:>10}",
        "chain", "n", "units", "fused gmem B", "seq gmem B", "traffic", "fused GF", "seq GF"
    );
    let mut rows = Vec::new();
    let mut min_reduction = f64::INFINITY;
    for (label, mk) in &chains {
        for &n in sizes {
            let req = mk(n);
            let mut unfused = req.clone();
            unfused.fuse = false;
            let f = run(&registry, &req);
            let s = run(&registry, &unfused);
            assert_eq!(f.digest, s.digest, "{label} n={n}: fusion changed bits");
            let demoted = f.fused_edges == 0;
            if demoted {
                // The profitability gate fired: the plan must BE the
                // sequenced plan, reason on record.
                assert_eq!(f.units, s.units, "{label} n={n}: demoted but not sequenced");
                assert_eq!(
                    f.gmem_bytes, s.gmem_bytes,
                    "{label} n={n}: demoted plan diverged"
                );
                assert!(
                    f.rejects.iter().any(|(_, _, r)| r == "unprofitable"),
                    "{label} n={n}: demoted without a recorded reason: {:?}",
                    f.rejects
                );
            } else {
                assert!(
                    f.gmem_bytes < s.gmem_bytes,
                    "{label} n={n}: fused traffic {} !< sequenced {}",
                    f.gmem_bytes,
                    s.gmem_bytes
                );
            }
            let ratio = f.gmem_bytes / s.gmem_bytes;
            if !demoted {
                min_reduction = min_reduction.min(1.0 - ratio);
            }
            println!(
                "{label:<12} {n:>5} {:>3}<-{:<2} {:>15.0} {:>15.0} {:>8.1}% {:>10.1} {:>10.1}{}",
                f.units,
                s.units,
                f.gmem_bytes,
                s.gmem_bytes,
                ratio * 100.0,
                f.gflops,
                s.gflops,
                if demoted {
                    "  (demoted: unprofitable)"
                } else {
                    ""
                }
            );
            rows.push(Json::Obj(BTreeMap::from([
                ("chain".to_string(), Json::Str(label.to_string())),
                ("shape".to_string(), Json::Str(req.shape())),
                ("n".to_string(), Json::Num(n as f64)),
                ("fused_units".to_string(), Json::Int(f.units as i64)),
                ("sequenced_units".to_string(), Json::Int(s.units as i64)),
                ("fused_edges".to_string(), Json::Int(f.fused_edges as i64)),
                ("fused_gmem_bytes".to_string(), Json::Num(f.gmem_bytes)),
                ("sequenced_gmem_bytes".to_string(), Json::Num(s.gmem_bytes)),
                ("traffic_ratio".to_string(), Json::Num(ratio)),
                ("fused_model_gflops".to_string(), Json::Num(f.gflops)),
                ("sequenced_model_gflops".to_string(), Json::Num(s.gflops)),
                ("fused_ms".to_string(), Json::Num(f.ms)),
                ("sequenced_ms".to_string(), Json::Num(s.ms)),
                ("demoted".to_string(), Json::Bool(demoted)),
                (
                    "digest".to_string(),
                    Json::Str(format!("{:016x}", f.digest)),
                ),
            ])));
        }
    }
    println!(
        "\nsmallest traffic reduction: {:.1}%",
        min_reduction * 100.0
    );

    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "expression-DAG fusion: modeled global-memory traffic and model GFLOPS, \
                 fused plan vs sequenced plan; digests checked bit-identical across all \
                 four execution engines before any number is reported"
                    .to_string(),
            ),
        ),
        (
            "min_traffic_reduction".to_string(),
            Json::Num(min_reduction),
        ),
        ("measurements".to_string(), Json::Arr(rows)),
    ]));
    std::fs::write("BENCH_fuse.json", doc.pretty() + "\n").expect("write BENCH_fuse.json");
    println!("wrote BENCH_fuse.json");

    // Floor: the committed minimum traffic reduction minus 10% slack.
    let key = if quick { "smoke" } else { "full" };
    match std::fs::read_to_string("results/fuse_floor.json") {
        Ok(text) => {
            let floor = oa_core::autotune::json::parse(&text)
                .and_then(|d| d.get(key).and_then(Json::as_f64))
                .unwrap_or_else(|| panic!("results/fuse_floor.json lacks a `{key}` number"));
            let min = floor * 0.9;
            if min_reduction < min {
                eprintln!(
                    "FAIL: min traffic reduction {:.3} regressed below the committed \
                     `{key}` floor {floor:.3} - 10% = {min:.3}",
                    min_reduction
                );
                std::process::exit(1);
            }
            println!(
                "min traffic reduction {:.3} >= `{key}` floor {floor:.3} - 10%",
                min_reduction
            );
        }
        Err(_) => println!("no results/fuse_floor.json here; floor check skipped"),
    }
}
