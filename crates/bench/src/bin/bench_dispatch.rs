//! Throughput benchmark of the batched routine-dispatch layer.
//!
//! Serves one 64-request mixed-routine batch two ways, tuning amortized
//! through the persistent cache in both (the library is *generated*
//! once, then *called*):
//!
//! * **baseline** — one request at a time with **no shared state**: a
//!   fresh registry per request, the pre-`oa serve` workflow (one CLI
//!   process per request).  Every request re-loads the tuning cache,
//!   re-validates the record, re-applies the script, re-runs the
//!   performance model and re-lowers before it executes;
//! * **batched** — one long-lived [`Registry`]: the batch drained by
//!   `run_batch`'s worker pool through the compiled-program LRU.  The
//!   first pass compiles each distinct program once (**cold**); repeat
//!   passes are the compile-once/run-many regime a server settles into
//!   (**steady**, the headline `speedup`).
//!
//! Prints all three rates and writes `BENCH_dispatch.json`.  The
//! acceptance bar is batched ≥ 3x baseline on the 64-request batch.
//! `--quick` (alias `--smoke`) serves a 32-request batch.

use oa_core::autotune::json::Json;
use oa_core::dispatch::{Registry, Request, RequestStatus};
use oa_core::gpusim::DeviceSpec;
use oa_core::{RoutineId, Trans};
use std::collections::BTreeMap;
use std::time::Instant;

/// The benchmark batch: `count` requests cycling the 24-routine catalog
/// with alternating sizes and distinct seeds.  The triangular solvers
/// stay at their 64-wide column-tile multiple (other sizes are rejected
/// at launch); everything else alternates 32/48 per catalog pass.
fn bench_requests(count: usize) -> Vec<Request> {
    let all = RoutineId::all24();
    (0..count)
        .map(|i| {
            let routine = all[i % all.len()];
            let n = if matches!(routine, RoutineId::Trsm(..)) {
                64
            } else {
                [32i64, 48][(i / all.len()) % 2]
            };
            Request {
                routine,
                n,
                seed: i as u64 * 77 + 5,
                zero_blanks: true,
                tenant: None,
            }
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let device = DeviceSpec::gtx285();
    let count = if quick { 32 } else { 64 };
    let steady_passes = if quick { 2 } else { 3 };
    let reqs = bench_requests(count);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let cache = oa_bench::cache_path();

    let registry = Registry::new(device.clone()).with_tune_cache(cache.clone());

    // Tune everything the batch needs up front and persist it: both
    // serving modes below replay the same generated library.
    let t0 = Instant::now();
    registry.warm(&reqs, &mut |_| {});
    let warm_secs = t0.elapsed().as_secs_f64();

    // Baseline: no shared state — a fresh registry per request.
    let t0 = Instant::now();
    let mut baseline_ok = 0usize;
    for req in &reqs {
        let fresh = Registry::new(device.clone()).with_tune_cache(cache.clone());
        if matches!(fresh.run_one(req).status, RequestStatus::Ok(_)) {
            baseline_ok += 1;
        }
    }
    let baseline_secs = t0.elapsed().as_secs_f64();
    assert_eq!(baseline_ok, reqs.len(), "baseline requests failed");

    // Batched, cold store: each distinct program compiles exactly once.
    registry.clear_programs();
    let cold = registry.run_batch(&reqs, threads, &mut |_| {});
    assert_eq!(cold.stats.failed, 0, "cold batch requests failed");

    // Batched, steady state: the warm-store rate over repeat passes.
    let t0 = Instant::now();
    let mut steady_ok = 0usize;
    let mut last = cold.stats;
    for _ in 0..steady_passes {
        let rep = registry.run_batch(&reqs, threads, &mut |_| {});
        assert_eq!(rep.stats.failed, 0, "steady batch requests failed");
        steady_ok += rep.stats.ok;
        last = rep.stats;
    }
    let steady_secs = t0.elapsed().as_secs_f64();

    let baseline_rps = reqs.len() as f64 / baseline_secs;
    let cold_rps = cold.stats.requests_per_sec;
    let steady_rps = steady_ok as f64 / steady_secs;
    let speedup = steady_rps / baseline_rps;
    let speedup_cold = cold_rps / baseline_rps;

    println!(
        "dispatch throughput ({} requests, {} threads)",
        reqs.len(),
        threads
    );
    println!("  warm-up (tuning, amortized): {:.1} ms", warm_secs * 1e3);
    println!(
        "  baseline (fresh registry per request):   {:>8.1} req/s ({:.1} ms)",
        baseline_rps,
        baseline_secs * 1e3
    );
    println!(
        "  batched, cold store (compile-once):      {:>8.1} req/s ({:.1} ms, {} hits / {} misses)",
        cold_rps, cold.stats.wall_ms, cold.stats.hits, cold.stats.misses
    );
    println!(
        "  batched, steady state (run-many):        {:>8.1} req/s ({} passes, {:.1} ms)",
        steady_rps,
        steady_passes,
        steady_secs * 1e3
    );
    println!("  batched / baseline: {speedup:.2}x steady, {speedup_cold:.2}x cold");
    // Sanity: GEMM-NN must be in the mix (it is — the catalog cycles).
    debug_assert!(reqs
        .iter()
        .any(|r| r.routine == RoutineId::Gemm(Trans::N, Trans::N)));

    let batch_json = |s: &oa_core::autotune::report::BatchStats| {
        Json::Obj(BTreeMap::from([
            ("requests".to_string(), Json::Int(s.requests as i64)),
            ("ok".to_string(), Json::Int(s.ok as i64)),
            ("hits".to_string(), Json::Int(s.hits as i64)),
            ("misses".to_string(), Json::Int(s.misses as i64)),
            ("evictions".to_string(), Json::Int(s.evictions as i64)),
            ("threads".to_string(), Json::Int(s.threads as i64)),
            ("wall_ms".to_string(), Json::Num(s.wall_ms)),
            (
                "requests_per_sec".to_string(),
                Json::Num(s.requests_per_sec),
            ),
        ]))
    };
    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "batched dispatch vs one-request-at-a-time on the same mixed batch; baseline \
                 serves each request with a fresh registry (cache load + validate + translate + \
                 model eval + lower + execute every time, the pre-serve workflow); batched \
                 serves through one registry's program LRU — cold pass compiles each distinct \
                 program once, steady passes are pure run-many; `speedup` = steady / baseline"
                    .to_string(),
            ),
        ),
        ("requests".to_string(), Json::Int(reqs.len() as i64)),
        ("threads".to_string(), Json::Int(threads as i64)),
        ("steady_passes".to_string(), Json::Int(steady_passes as i64)),
        ("warm_secs".to_string(), Json::Num(warm_secs)),
        ("baseline_secs".to_string(), Json::Num(baseline_secs)),
        (
            "baseline_requests_per_sec".to_string(),
            Json::Num(baseline_rps),
        ),
        ("batched_cold".to_string(), batch_json(&cold.stats)),
        ("batched_last_pass".to_string(), batch_json(&last)),
        ("steady_requests_per_sec".to_string(), Json::Num(steady_rps)),
        ("speedup".to_string(), Json::Num(speedup)),
        ("speedup_cold".to_string(), Json::Num(speedup_cold)),
    ]));
    std::fs::write("BENCH_dispatch.json", doc.pretty() + "\n").expect("write BENCH_dispatch.json");
    println!("\nwrote BENCH_dispatch.json");
}
