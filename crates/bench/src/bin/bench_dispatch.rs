//! Throughput benchmark of the batched routine-dispatch layer.
//!
//! Serves one 64-request mixed-routine batch two ways, tuning amortized
//! through the persistent cache in both (the library is *generated*
//! once, then *called*):
//!
//! * **baseline** — one request at a time with **no shared state**: a
//!   fresh registry per request, the pre-`oa serve` workflow (one CLI
//!   process per request).  Every request re-loads the tuning cache,
//!   re-validates the record, re-applies the script, re-runs the
//!   performance model and re-lowers before it executes;
//! * **batched** — one long-lived [`Registry`]: the batch drained by
//!   `run_batch`'s worker pool through the compiled-program LRU.  The
//!   first pass compiles each distinct program once (**cold**); repeat
//!   passes are the compile-once/run-many regime a server settles into
//!   (**steady**, the headline `speedup`).
//!
//! Prints all three rates and writes `BENCH_dispatch.json`.  The
//! acceptance bar is batched ≥ 3x baseline on the 64-request batch.
//! `--quick` (alias `--smoke`) serves a 32-request batch.

use oa_core::autotune::json::Json;
use oa_core::autotune::{
    samples_from_trace, sibling_model_path, CandidateFate, CostModel, Sample, TuneEvent,
};
use oa_core::dispatch::{size_class, Registry, Request, RequestStatus};
use oa_core::gpusim::DeviceSpec;
use oa_core::loopir::transform::TileParams;
use oa_core::{RoutineId, Trans};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// The benchmark batch: `count` requests cycling the 24-routine catalog
/// with alternating sizes and distinct seeds.  The triangular solvers
/// stay at their 64-wide column-tile multiple (other sizes are rejected
/// at launch); everything else alternates 32/48 per catalog pass.
fn bench_requests(count: usize) -> Vec<Request> {
    let all = RoutineId::all24();
    (0..count)
        .map(|i| {
            let routine = all[i % all.len()];
            let n = if matches!(routine, RoutineId::Trsm(..)) {
                64
            } else {
                [32i64, 48][(i / all.len()) % 2]
            };
            Request {
                routine,
                n,
                seed: i as u64 * 77 + 5,
                zero_blanks: true,
                tenant: None,
            }
        })
        .collect()
}

/// One sweep's traced rows, grouped per `Begin` event: the routine, the
/// tuned size, and `(script index, params, gflops, won)` per candidate.
type TracedSweep = (RoutineId, i64, Vec<(usize, TileParams, f64, bool)>);

/// One timed cold `warm` over a throwaway tuning cache: wall seconds,
/// total candidate evaluations (points − skipped, summed over sweeps),
/// and the traced sweeps for model training.
struct ColdWarm {
    secs: f64,
    evals: usize,
    sweeps: Vec<TracedSweep>,
    registry: Registry,
}

fn cold_warm(device: &DeviceSpec, cache: PathBuf, reqs: &[Request]) -> ColdWarm {
    let registry = Registry::new(device.clone()).with_tune_cache(cache);
    let mut events = Vec::new();
    let t0 = Instant::now();
    registry.warm(reqs, &mut |e| events.push(e));
    let secs = t0.elapsed().as_secs_f64();
    let mut evals = 0usize;
    let mut sweeps: Vec<TracedSweep> = Vec::new();
    for e in events {
        match e {
            TuneEvent::Begin { routine, n, .. } => {
                let r = RoutineId::parse(&routine).expect("traced routine parses");
                sweeps.push((r, n, Vec::new()));
            }
            TuneEvent::Candidate(c) => {
                if let (Some(sweep), Some(si), Some(p)) = (sweeps.last_mut(), c.script, c.params) {
                    sweep.2.push((
                        si,
                        p,
                        c.gflops.unwrap_or(0.0),
                        matches!(c.fate, CandidateFate::Won),
                    ));
                }
            }
            TuneEvent::Summary {
                points, skipped, ..
            } => evals += points - skipped,
            _ => {}
        }
    }
    ColdWarm {
        secs,
        evals,
        sweeps,
        registry,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let device = DeviceSpec::gtx285();
    let count = if quick { 32 } else { 64 };
    let steady_passes = if quick { 2 } else { 3 };
    let reqs = bench_requests(count);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let cache = oa_bench::cache_path();

    let registry = Registry::new(device.clone()).with_tune_cache(cache.clone());

    // Tune everything the batch needs up front and persist it: both
    // serving modes below replay the same generated library.
    let t0 = Instant::now();
    registry.warm(&reqs, &mut |_| {});
    let warm_secs = t0.elapsed().as_secs_f64();

    // Baseline: no shared state — a fresh registry per request.
    let t0 = Instant::now();
    let mut baseline_ok = 0usize;
    for req in &reqs {
        let fresh = Registry::new(device.clone()).with_tune_cache(cache.clone());
        if matches!(fresh.run_one(req).status, RequestStatus::Ok(_)) {
            baseline_ok += 1;
        }
    }
    let baseline_secs = t0.elapsed().as_secs_f64();
    assert_eq!(baseline_ok, reqs.len(), "baseline requests failed");

    // Batched, cold store: each distinct program compiles exactly once.
    registry.clear_programs();
    let cold = registry.run_batch(&reqs, threads, &mut |_| {});
    assert_eq!(cold.stats.failed, 0, "cold batch requests failed");

    // Batched, steady state: the warm-store rate over repeat passes.
    let t0 = Instant::now();
    let mut steady_ok = 0usize;
    let mut last = cold.stats;
    for _ in 0..steady_passes {
        let rep = registry.run_batch(&reqs, threads, &mut |_| {});
        assert_eq!(rep.stats.failed, 0, "steady batch requests failed");
        steady_ok += rep.stats.ok;
        last = rep.stats;
    }
    let steady_secs = t0.elapsed().as_secs_f64();

    let baseline_rps = reqs.len() as f64 / baseline_secs;
    let cold_rps = cold.stats.requests_per_sec;
    let steady_rps = steady_ok as f64 / steady_secs;
    let speedup = steady_rps / baseline_rps;
    let speedup_cold = cold_rps / baseline_rps;

    println!(
        "dispatch throughput ({} requests, {} threads)",
        reqs.len(),
        threads
    );
    println!("  warm-up (tuning, amortized): {:.1} ms", warm_secs * 1e3);
    println!(
        "  baseline (fresh registry per request):   {:>8.1} req/s ({:.1} ms)",
        baseline_rps,
        baseline_secs * 1e3
    );
    println!(
        "  batched, cold store (compile-once):      {:>8.1} req/s ({:.1} ms, {} hits / {} misses)",
        cold_rps, cold.stats.wall_ms, cold.stats.hits, cold.stats.misses
    );
    println!(
        "  batched, steady state (run-many):        {:>8.1} req/s ({} passes, {:.1} ms)",
        steady_rps,
        steady_passes,
        steady_secs * 1e3
    );
    println!("  batched / baseline: {speedup:.2}x steady, {speedup_cold:.2}x cold");

    // Cold *tuning* with and without the learned cost model: the exact
    // side's traced sweeps train the artifact the modeled side loads
    // (`OA_TUNE_MODEL` defaults to rank+exit; its sibling artifact sits
    // next to the tuning cache), then both sides warm the same request
    // set from empty throwaway caches.
    let pid = std::process::id();
    let tmp = std::env::temp_dir();
    let cache_exact = tmp.join(format!("oa_bench_dispatch_cold_exact_{pid}.json"));
    let cache_model = tmp.join(format!("oa_bench_dispatch_cold_model_{pid}.json"));
    let model_path = sibling_model_path(&cache_model);
    for p in [
        &cache_exact,
        &cache_model,
        &model_path,
        &sibling_model_path(&cache_exact),
    ] {
        let _ = std::fs::remove_file(p);
    }
    let exact = cold_warm(&device, cache_exact.clone(), &reqs);
    let mut samples: Vec<Sample> = Vec::new();
    for (r, n, traced) in &exact.sweeps {
        samples.extend(
            samples_from_trace(exact.registry.engine(), *r, *n, traced)
                .unwrap_or_else(|e| panic!("{} n={n}: trace recompose failed: {e}", r.name())),
        );
    }
    let model = CostModel::train(&samples, 5);
    assert!(
        model.can_rank(),
        "cold-path training refused to rank: {:?}",
        model.refused
    );
    model.save(&model_path).expect("write model artifact");
    let modeled = cold_warm(&device, cache_model.clone(), &reqs);

    // The winner contract, end to end through the registry: identical
    // tuned entries for every (routine, class) the batch resolves.
    let mut cold_winners_moved = 0usize;
    let mut classes: Vec<(RoutineId, i64)> =
        reqs.iter().map(|q| (q.routine, size_class(q.n))).collect();
    classes.sort_by_key(|&(r, class)| (r.name(), class));
    classes.dedup();
    for &(r, class) in &classes {
        let a = exact.registry.resolve(r, class).expect("exact resolve");
        let b = modeled.registry.resolve(r, class).expect("modeled resolve");
        if a.script.to_string() != b.script.to_string() || a.params != b.params {
            cold_winners_moved += 1;
        }
    }
    let cold_eval_reduction = exact.evals as f64 / modeled.evals.max(1) as f64;
    let cold_time_reduction = exact.secs / modeled.secs.max(1e-9);
    println!(
        "  cold tuning, exact sweep:                {:>8.1} ms ({} evals)",
        exact.secs * 1e3,
        exact.evals
    );
    println!(
        "  cold tuning, model rank+exit:            {:>8.1} ms ({} evals; {:.1}x fewer evals, \
         {:.1}x faster, {} winner(s) moved)",
        modeled.secs * 1e3,
        modeled.evals,
        cold_eval_reduction,
        cold_time_reduction,
        cold_winners_moved
    );
    for p in [
        &cache_exact,
        &cache_model,
        &model_path,
        &sibling_model_path(&cache_exact),
    ] {
        let _ = std::fs::remove_file(p);
    }

    // Sanity: GEMM-NN must be in the mix (it is — the catalog cycles).
    debug_assert!(reqs
        .iter()
        .any(|r| r.routine == RoutineId::Gemm(Trans::N, Trans::N)));

    let batch_json = |s: &oa_core::autotune::report::BatchStats| {
        Json::Obj(BTreeMap::from([
            ("requests".to_string(), Json::Int(s.requests as i64)),
            ("ok".to_string(), Json::Int(s.ok as i64)),
            ("hits".to_string(), Json::Int(s.hits as i64)),
            ("misses".to_string(), Json::Int(s.misses as i64)),
            ("evictions".to_string(), Json::Int(s.evictions as i64)),
            ("threads".to_string(), Json::Int(s.threads as i64)),
            ("wall_ms".to_string(), Json::Num(s.wall_ms)),
            (
                "requests_per_sec".to_string(),
                Json::Num(s.requests_per_sec),
            ),
        ]))
    };
    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "batched dispatch vs one-request-at-a-time on the same mixed batch; baseline \
                 serves each request with a fresh registry (cache load + validate + translate + \
                 model eval + lower + execute every time, the pre-serve workflow); batched \
                 serves through one registry's program LRU — cold pass compiles each distinct \
                 program once, steady passes are pure run-many; `speedup` = steady / baseline"
                    .to_string(),
            ),
        ),
        ("requests".to_string(), Json::Int(reqs.len() as i64)),
        ("threads".to_string(), Json::Int(threads as i64)),
        ("steady_passes".to_string(), Json::Int(steady_passes as i64)),
        ("warm_secs".to_string(), Json::Num(warm_secs)),
        ("baseline_secs".to_string(), Json::Num(baseline_secs)),
        (
            "baseline_requests_per_sec".to_string(),
            Json::Num(baseline_rps),
        ),
        ("batched_cold".to_string(), batch_json(&cold.stats)),
        ("batched_last_pass".to_string(), batch_json(&last)),
        ("steady_requests_per_sec".to_string(), Json::Num(steady_rps)),
        ("speedup".to_string(), Json::Num(speedup)),
        ("speedup_cold".to_string(), Json::Num(speedup_cold)),
        ("cold_tune_exact_secs".to_string(), Json::Num(exact.secs)),
        ("cold_tune_model_secs".to_string(), Json::Num(modeled.secs)),
        (
            "cold_tune_exact_evals".to_string(),
            Json::Int(exact.evals as i64),
        ),
        (
            "cold_tune_model_evals".to_string(),
            Json::Int(modeled.evals as i64),
        ),
        (
            "cold_tune_eval_reduction".to_string(),
            Json::Num(cold_eval_reduction),
        ),
        (
            "cold_tune_time_reduction".to_string(),
            Json::Num(cold_time_reduction),
        ),
        (
            "cold_tune_winners_unchanged".to_string(),
            Json::Bool(cold_winners_moved == 0),
        ),
    ]));
    std::fs::write("BENCH_dispatch.json", doc.pretty() + "\n").expect("write BENCH_dispatch.json");
    println!("\nwrote BENCH_dispatch.json");

    // Winner invariance is the model's contract — enforced in every mode.
    assert_eq!(
        cold_winners_moved, 0,
        "model-ranked cold tuning changed a registry winner"
    );
    // Full mode also enforces the cold-path floor: the modeled warm-up
    // must pay ≥ 3x fewer candidate evaluations and be visibly faster.
    if !quick {
        assert!(
            cold_eval_reduction >= 3.0,
            "modeled cold tuning saved only {cold_eval_reduction:.2}x evaluations (need >= 3x)"
        );
        assert!(
            modeled.secs <= 0.9 * exact.secs,
            "modeled cold tuning not faster: {:.1} ms vs {:.1} ms exact",
            modeled.secs * 1e3,
            exact.secs * 1e3
        );
    }
}
