//! Cold-sweep cost of the learned tuner model: exact sweep vs
//! `rank+exit`.
//!
//! Trains the cost model on exact-sweep traces at the training classes,
//! then tunes every test routine at a *held-out* class twice — once as
//! the exact sweep and once ranked by the model with early exit — and
//! reports, per routine, how many sweep points each mode paid and
//! whether the winner moved (it must not: the model is order-only by
//! contract).
//!
//! Prints the table and writes `BENCH_model.json`.  Full mode enforces
//! the acceptance bar: total candidate evaluations reduced ≥ 3x with
//! every winner bit-identical.  `--quick` (alias `--smoke`) trains on
//! one class and tests a 6-routine family-spanning subset, with the
//! winner check still enforced but no reduction floor.

use std::collections::BTreeMap;
use std::sync::Arc;

use oa_core::autotune::json::Json;
use oa_core::autotune::{
    sweep_samples, tune_fresh_modeled, CostModel, ModelCtx, ModelMode, TuneEvent, TunedKernel,
};
use oa_core::gpusim::{DeviceSpec, ExecEngine};
use oa_core::RoutineId;

/// One tuned side of the comparison: the winner plus sweep accounting.
struct SweepRun {
    kernel: TunedKernel,
    /// Points that actually ran translate/evaluate (points − skipped).
    attempted: usize,
    points: usize,
}

fn run_sweep(r: RoutineId, device: &DeviceSpec, n: i64, ctx: &ModelCtx) -> SweepRun {
    let mut attempted = 0usize;
    let mut points = 0usize;
    let kernel = tune_fresh_modeled(ExecEngine::Oracle, r, device, n, ctx, &mut |e| {
        if let TuneEvent::Summary {
            points: p, skipped, ..
        } = e
        {
            points = p;
            attempted = p - skipped;
        }
    })
    .unwrap_or_else(|e| panic!("{} n={n}: tune failed: {e}", r.name()));
    SweepRun {
        kernel,
        attempted,
        points,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    let device = DeviceSpec::gtx285();
    let train_classes: &[i64] = if quick { &[64] } else { &[64, 256] };
    let test_class = 128i64;
    let test_routines: Vec<RoutineId> = if quick {
        [
            "GEMM-NN",
            "GEMM-TT",
            "SYMM-LL",
            "SYMM-RU",
            "TRMM-LL-N",
            "TRSM-LL-N",
        ]
        .iter()
        .map(|s| RoutineId::parse(s).expect("static routine parses"))
        .collect()
    } else {
        RoutineId::all24().to_vec()
    };

    // Training set: exact sweeps at the training classes — the same
    // traces `oa model train` would consume, built in-process.
    let mut samples = Vec::new();
    for r in RoutineId::all24() {
        for &n in train_classes {
            samples.extend(
                sweep_samples(ExecEngine::Oracle, r, &device, n)
                    .unwrap_or_else(|e| panic!("{} n={n}: training sweep failed: {e}", r.name())),
            );
        }
    }
    let model = CostModel::train(&samples, 5);
    assert!(
        model.can_rank(),
        "training sweeps must produce a rankable model: {:?}",
        model.refused
    );
    let model = Arc::new(model);

    println!(
        "model-ranked sweep vs exact sweep at held-out class n={test_class} \
         (trained on {} samples at classes {train_classes:?}, safety margin {:.2})",
        samples.len(),
        model.safety
    );
    println!(
        "  {:<12} {:>8} {:>12} {:>12} {:>9}  winner",
        "routine", "points", "exact-evals", "ranked-evals", "reduction"
    );

    let mut rows = Vec::new();
    let mut total_exact = 0usize;
    let mut total_ranked = 0usize;
    let mut winners_moved = 0usize;
    for &r in &test_routines {
        let exact = run_sweep(r, &device, test_class, &ModelCtx::off());
        let ranked = run_sweep(
            r,
            &device,
            test_class,
            &ModelCtx::with_model(ModelMode::RankExit, model.clone()),
        );
        let same = exact.kernel.script.to_string() == ranked.kernel.script.to_string()
            && exact.kernel.params == ranked.kernel.params
            && exact.kernel.report.gflops.to_bits() == ranked.kernel.report.gflops.to_bits();
        if !same {
            winners_moved += 1;
        }
        let reduction = exact.attempted as f64 / ranked.attempted.max(1) as f64;
        println!(
            "  {:<12} {:>8} {:>12} {:>12} {:>8.1}x  {}",
            r.name(),
            exact.points,
            exact.attempted,
            ranked.attempted,
            reduction,
            if same { "unchanged" } else { "MOVED" }
        );
        total_exact += exact.attempted;
        total_ranked += ranked.attempted;
        rows.push(Json::Obj(BTreeMap::from([
            ("routine".to_string(), Json::Str(r.name())),
            ("points".to_string(), Json::Int(exact.points as i64)),
            ("exact_evals".to_string(), Json::Int(exact.attempted as i64)),
            (
                "ranked_evals".to_string(),
                Json::Int(ranked.attempted as i64),
            ),
            ("reduction".to_string(), Json::Num(reduction)),
            ("gflops".to_string(), Json::Num(ranked.kernel.report.gflops)),
            ("winner_unchanged".to_string(), Json::Bool(same)),
        ])));
    }

    let reduction = total_exact as f64 / total_ranked.max(1) as f64;
    println!(
        "  total: {total_exact} exact evals vs {total_ranked} ranked evals — \
         {reduction:.1}x fewer, {winners_moved} winner(s) moved"
    );

    let doc = Json::Obj(BTreeMap::from([
        (
            "note".to_string(),
            Json::Str(
                "cold-sweep cost with the learned cost model: every test routine tuned at a \
                 held-out size class by the exact sweep and by the model-ranked rank+exit sweep; \
                 winners must be bit-identical (the model is order-only), only the evaluation \
                 count may drop"
                    .to_string(),
            ),
        ),
        (
            "train_classes".to_string(),
            Json::Arr(train_classes.iter().map(|&n| Json::Int(n)).collect()),
        ),
        ("test_class".to_string(), Json::Int(test_class)),
        ("train_samples".to_string(), Json::Int(samples.len() as i64)),
        ("safety".to_string(), Json::Num(model.safety)),
        ("routines".to_string(), Json::Arr(rows)),
        ("exact_evals".to_string(), Json::Int(total_exact as i64)),
        ("ranked_evals".to_string(), Json::Int(total_ranked as i64)),
        ("eval_reduction".to_string(), Json::Num(reduction)),
        (
            "winners_unchanged".to_string(),
            Json::Bool(winners_moved == 0),
        ),
    ]));
    std::fs::write("BENCH_model.json", doc.pretty() + "\n").expect("write BENCH_model.json");
    println!("\nwrote BENCH_model.json");

    // Winner invariance is the contract — enforced in every mode.
    assert_eq!(winners_moved, 0, "model-ranked sweep changed a winner");
    // The eval-reduction floor is the full-mode acceptance bar.
    if !quick {
        assert!(
            reduction >= 3.0,
            "ranked sweep saved only {reduction:.2}x evaluations (need >= 3x)"
        );
    }
}
