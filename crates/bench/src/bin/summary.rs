//! Headline numbers (Sec. I / Sec. V.A): maximum speedups per platform,
//! the SYMM before/after GFLOPS, and the GEMM-vs-variants performance gap
//! that OA narrows.

use oa_bench::{figure_data, problem_size, with_cache, FigureRow};
use oa_gpusim::DeviceSpec;

fn main() {
    let n = problem_size();
    with_cache(|cache| {
        println!("== Headline summary (problem size {n}) ==\n");
        for device in DeviceSpec::all() {
            let rows = figure_data(&device, n, false, cache);
            let max_row = rows
                .iter()
                .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
                .unwrap();
            let symm = rows.iter().find(|r| r.routine == "SYMM-LL").unwrap();
            let gemm = rows.iter().find(|r| r.routine == "GEMM-NN").unwrap();
            let gap = |rows: &[FigureRow], f: fn(&FigureRow) -> f64| {
                let lo = rows.iter().map(f).fold(f64::INFINITY, f64::min);
                let hi = rows.iter().map(f).fold(0.0f64, f64::max);
                hi / lo
            };
            println!("{}:", device.name);
            println!(
                "  max OA speedup over CUBLAS-like: {:.2}x ({})",
                max_row.speedup(),
                max_row.routine
            );
            println!(
                "  SYMM-LL: {:.0} -> {:.0} GFLOPS   GEMM-NN baseline: {:.0} GFLOPS",
                symm.cublas, symm.oa, gemm.cublas
            );
            println!(
                "  variant-performance gap (max/min GFLOPS): CUBLAS-like {:.2}x, OA {:.2}x",
                gap(&rows, |r| r.cublas),
                gap(&rows, |r| r.oa)
            );
            println!();
        }
    });
    println!("paper reference: up to 5.4x (GeForce 9800), 2.8x (GTX 285), 3.4x (Fermi C2050);");
    println!("SYMM 155 -> 403 GFLOPS on GTX 285 and 42 -> 225 GFLOPS on GeForce 9800;");
    println!("CUBLAS fluctuates drastically across variants while OA stays near GEMM-NN.");
}
