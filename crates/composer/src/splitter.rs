//! The splitter: routes an optimization sequence's memory-allocation
//! invocations (`SM_alloc`, `Reg_alloc`) to the allocator and everything
//! else to the mixer (Sec. IV.B, Fig. 8).

use oa_epod::{lookup, Invocation};

/// A split sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SplitSeq {
    /// Loop-restructuring invocations, order-significant (mixer input).
    pub sequence: Vec<Invocation>,
    /// Memory-allocation invocations (allocator input).
    pub allocations: Vec<Invocation>,
}

/// Split a sequence of invocations.  Unknown components are passed through
/// to the sequence part; the filter will reject them with a hard error,
/// which gives the developer a better message than dropping them here.
pub fn split(invs: &[Invocation]) -> SplitSeq {
    let mut out = SplitSeq::default();
    for inv in invs {
        let is_alloc = lookup(&inv.component)
            .map(|c| c.is_allocation)
            .unwrap_or(false);
        if is_alloc {
            out.allocations.push(inv.clone());
        } else {
            out.sequence.push(inv.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_epod::parse_script;

    #[test]
    fn splits_fig3_script() {
        let s = parse_script(
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             loop_unroll(Ljjj, Lkkk);
             SM_alloc(B, Transpose);
             reg_alloc(C);",
        )
        .unwrap();
        let split = split(&s.stmts);
        assert_eq!(
            split
                .sequence
                .iter()
                .map(|i| i.component.as_str())
                .collect::<Vec<_>>(),
            vec!["thread_grouping", "loop_tiling", "loop_unroll"]
        );
        assert_eq!(
            split
                .allocations
                .iter()
                .map(|i| i.component.as_str())
                .collect::<Vec<_>>(),
            vec!["SM_alloc", "reg_alloc"]
        );
    }

    #[test]
    fn adaptor_rule_with_gm_map_stays_in_sequence() {
        let s = parse_script("GM_map(A, Symmetry); format_iteration(A, Symmetry);").unwrap();
        let split = split(&s.stmts);
        assert_eq!(split.sequence.len(), 2);
        assert!(split.allocations.is_empty());
    }
}
