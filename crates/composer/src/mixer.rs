//! The mixer: interleaves two polyhedral transformation sequences while
//! strictly keeping each sequence's internal order, then discards
//! interleavings violating location constraints (Sec. IV.B.1, Fig. 9) —
//! e.g. `GM_map` "should be fixed as the first in a sequence if it
//! appears", so no violating sequence is ever generated.

use oa_epod::{lookup, Invocation};

/// Upper bound on generated interleavings, a safety valve for deep adaptor
/// stacks (documented in DESIGN.md; the paper's search is also bounded in
/// practice by its small component counts).
pub const MAX_MIXES: usize = 256;

/// All order-preserving interleavings of `a` and `b` that satisfy the
/// components' location constraints.
pub fn mix(a: &[Invocation], b: &[Invocation]) -> Vec<Vec<Invocation>> {
    let mut out = Vec::new();
    let mut scratch = Vec::with_capacity(a.len() + b.len());
    interleave(a, b, &mut scratch, &mut out);
    out.retain(|seq| satisfies_location_constraints(seq));
    out
}

fn interleave(
    a: &[Invocation],
    b: &[Invocation],
    acc: &mut Vec<Invocation>,
    out: &mut Vec<Vec<Invocation>>,
) {
    if out.len() >= MAX_MIXES {
        return;
    }
    match (a.first(), b.first()) {
        (None, None) => out.push(acc.clone()),
        (Some(_), None) => {
            let mut full = acc.clone();
            full.extend_from_slice(a);
            out.push(full);
        }
        (None, Some(_)) => {
            let mut full = acc.clone();
            full.extend_from_slice(b);
            out.push(full);
        }
        (Some(x), Some(y)) => {
            acc.push(x.clone());
            interleave(&a[1..], b, acc, out);
            acc.pop();
            acc.push(y.clone());
            interleave(a, &b[1..], acc, out);
            acc.pop();
        }
    }
}

/// Check the location constraints of every component in a sequence.
pub fn satisfies_location_constraints(seq: &[Invocation]) -> bool {
    seq.iter()
        .enumerate()
        .all(|(idx, inv)| match lookup(&inv.component) {
            Some(info) if info.must_be_first => idx == 0,
            _ => true,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_epod::Invocation;

    fn inv(name: &str) -> Invocation {
        Invocation::idents(name, &["A"])
    }

    #[test]
    fn interleavings_preserve_order_and_count() {
        // (TG, LT, LU) x (peel): C(4,1) = 4 interleavings — the paper's
        // sequences 2–5 (before padding).
        let base = vec![
            inv("thread_grouping"),
            inv("loop_tiling"),
            inv("loop_unroll"),
        ];
        let adaptor = vec![inv("peel_triangular")];
        let mixes = mix(&base, &adaptor);
        assert_eq!(mixes.len(), 4);
        for m in &mixes {
            // Base order preserved.
            let pos: Vec<usize> = ["thread_grouping", "loop_tiling", "loop_unroll"]
                .iter()
                .map(|n| m.iter().position(|i| i.component == *n).unwrap())
                .collect();
            assert!(pos.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn binomial_counts() {
        let a = vec![inv("loop_tiling"), inv("loop_unroll")];
        let b = vec![inv("peel_triangular"), inv("padding_triangular")];
        // C(4, 2) = 6.
        assert_eq!(mix(&a, &b).len(), 6);
    }

    #[test]
    fn gm_map_fixed_first() {
        let base = vec![inv("thread_grouping"), inv("loop_tiling")];
        let adaptor = vec![inv("GM_map")];
        let mixes = mix(&base, &adaptor);
        // Only the interleaving with GM_map first survives.
        assert_eq!(mixes.len(), 1);
        assert_eq!(mixes[0][0].component, "GM_map");
    }

    #[test]
    fn empty_adaptor_gives_base_sequence() {
        let base = vec![inv("thread_grouping"), inv("loop_tiling")];
        let mixes = mix(&base, &[]);
        assert_eq!(mixes.len(), 1);
        assert_eq!(mixes[0], base);
    }

    #[test]
    fn constraint_checker_direct() {
        assert!(satisfies_location_constraints(&[
            inv("GM_map"),
            inv("loop_tiling")
        ]));
        assert!(!satisfies_location_constraints(&[
            inv("loop_tiling"),
            inv("GM_map")
        ]));
    }
}
