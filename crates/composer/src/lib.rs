//! # oa-composer — the OA composer
//!
//! Composes an existing EPOD script with user-defined adaptors and derives
//! new EPOD scripts for a new routine (Sec. IV.B, Fig. 8).  Five modules
//! mirror the paper's five components:
//!
//! * [`splitter`] — polyhedral sequence vs. memory allocations;
//! * [`mixer`] — order-preserving interleavings under location constraints;
//! * [`filter`] — apply-or-degenerate, semi-output dedup, dependence check;
//! * [`allocator`] — allocation-mode merging (`Transpose ∘ Transpose = NoChange`);
//! * [`compose`] (the generator) — final script assembly.

#![warn(missing_docs)]

pub mod allocator;
pub mod compose;
pub mod filter;
pub mod mixer;
pub mod splitter;

pub use allocator::{compose_modes, merge_allocations};
pub use compose::{compose, compose_on, AdaptorApplication, ComposeStats, GeneratedVariant};
pub use filter::{filter, filter_on, filter_report_on, FilterReport, FilteredSeq};
pub use mixer::mix;
pub use splitter::{split, SplitSeq};
