//! The filter: tries every mixed sequence component-by-component, omitting
//! components whose constraints fail (*degeneration*), de-duplicates the
//! resulting effective sequences (the paper's *semi-output*), and finally
//! checks data dependences — here as an exact sampled-equivalence check
//! against the source program, our PolyDeps stand-in (Sec. IV.B.2).

use oa_epod::translator::{apply_lenient, TranslateError};
use oa_epod::{Invocation, Script};
use oa_gpusim::{exec_program_on, select_engine, ExecEngine, ExecError};
use oa_loopir::interp::{alloc_buffers, equivalent_on, run_fresh, Bindings};
use oa_loopir::stmt::Stmt;
use oa_loopir::transform::{TileParams, TransformError};
use oa_loopir::{MemSpace, Program};

/// One surviving sequence.
#[derive(Clone, Debug)]
pub struct FilteredSeq {
    /// The sequence as requested by the mixer.
    pub requested: Vec<Invocation>,
    /// The components that actually applied (the *effective* sequence).
    pub applied: Vec<Invocation>,
    /// Degenerated components with their reasons.
    pub dropped: Vec<(Invocation, TransformError)>,
    /// The transformed program.
    pub program: Program,
}

/// Aggregate outcome of one filter run — what survived plus *why* the
/// rest did not.  The counts feed the composer's [`ComposeStats`]
/// (crate::ComposeStats) and the fuzzer's coverage map (filter behavior
/// is a coverage feature: a mutation that first triggers the dependence
/// check is more interesting than one that repeats a known path).
#[derive(Clone, Debug)]
pub struct FilterReport {
    /// The surviving sequences (the semi-output).
    pub survivors: Vec<FilteredSeq>,
    /// Sequences removed because their effective sequence duplicated an
    /// earlier survivor (semi-output de-duplication).
    pub duplicates: usize,
    /// Sequences removed by the dependence check (sampled-equivalence
    /// mismatch or barrier-divergence verdict).
    pub illegal: usize,
}

/// [`filter_on`] with the process-default engine
/// ([`oa_gpusim::select_engine`]).
pub fn filter(
    source: &Program,
    sequences: &[Vec<Invocation>],
    params: TileParams,
) -> Result<Vec<FilteredSeq>, TranslateError> {
    filter_on(select_engine(), source, sequences, params)
}

/// Run the filter over mixed sequences, checking candidates on `engine`;
/// returns the survivors only (see [`filter_report_on`] for the counts).
pub fn filter_on(
    engine: ExecEngine,
    source: &Program,
    sequences: &[Vec<Invocation>],
    params: TileParams,
) -> Result<Vec<FilteredSeq>, TranslateError> {
    filter_report_on(engine, source, sequences, params).map(|r| r.survivors)
}

/// Run the filter over mixed sequences, checking candidates on `engine`,
/// and report removal reasons alongside the survivors.
///
/// Sequences containing cross-thread constructs (`binding_triangular`'s
/// thread-0 regions) cannot be checked by sequential equivalence; they are
/// passed through (their legality is established by the component's own
/// structural checks and, downstream, by the GPU executor).
pub fn filter_report_on(
    engine: ExecEngine,
    source: &Program,
    sequences: &[Vec<Invocation>],
    params: TileParams,
) -> Result<FilterReport, TranslateError> {
    let mut out: Vec<FilteredSeq> = Vec::new();
    let mut duplicates = 0usize;
    let mut illegal = 0usize;
    for seq in sequences {
        let script = Script { stmts: seq.clone() };
        let outcome = match apply_lenient(source, &script, params) {
            Ok(o) => o,
            Err(TranslateError::Component(..)) => unreachable!("lenient mode absorbs these"),
            Err(hard) => return Err(hard),
        };
        // Semi-output de-duplication: a sequence that degenerated into an
        // already-present effective sequence adds nothing.
        let applied_names: Vec<&str> = outcome
            .applied
            .iter()
            .map(|i| i.component.as_str())
            .collect();
        if out.iter().any(|f| {
            f.applied
                .iter()
                .map(|i| i.component.as_str())
                .collect::<Vec<_>>()
                == applied_names
                && f.applied == outcome.applied
        }) {
            duplicates += 1;
            continue;
        }
        // Dependence check (PolyDeps stand-in): exact equivalence on
        // sampled inputs, skipped for thread-communicating programs.
        if !has_thread0_region(&outcome.program.body) {
            let ok = [(16i64, 5u64), (12, 19)]
                .iter()
                .all(|&(n, seed)| matches_source(engine, source, &outcome.program, n, seed, 1e-3));
            if !ok {
                illegal += 1;
                continue; // illegal sequence removed
            }
        }
        out.push(FilteredSeq {
            requested: seq.clone(),
            applied: outcome.applied,
            dropped: outcome.dropped,
            program: outcome.program,
        });
    }
    Ok(FilterReport {
        survivors: out,
        duplicates,
        illegal,
    })
}

/// Sampled equivalence of a candidate against the source, preferring the
/// compiled GPU executor.
///
/// A block/thread-mapped candidate is what the downstream pipeline will
/// actually launch, so it is checked on the caller's fast engine (bytecode
/// by default — far cheaper than the tree-walking interpreter when the
/// filter sweeps dozens of sequences).  Candidates that do not lower — not
/// yet mapped, or structurally unlaunchable — fall back to the sequential
/// interpreter, which executes mapped loops as ordinary loops.  A barrier
/// divergence, by contrast, is a *legality* verdict: the candidate is
/// illegal under GPU semantics.
fn matches_source(
    engine: ExecEngine,
    source: &Program,
    candidate: &Program,
    n: i64,
    seed: u64,
    tol: f32,
) -> bool {
    let bindings = Bindings::square(n);
    let mut cand_out = alloc_buffers(candidate, &bindings, seed);
    match exec_program_on(engine, candidate, &bindings, &mut cand_out) {
        Ok(()) => {}
        Err(ExecError::BarrierDivergence(_)) => return false,
        // Launch extraction or buffer resolution failed: not launchable
        // yet, check sequentially.
        Err(_) => return equivalent_on(source, candidate, &bindings, seed, tol),
    }
    let ref_out = run_fresh(source, &bindings, seed);
    // Same comparison set as `equivalent_on`: every global array the
    // reference writes.
    source.assignments().iter().all(|a| {
        let name = &a.lhs.array;
        if source
            .array(name)
            .map(|d| d.space == MemSpace::Global)
            .unwrap_or(false)
        {
            match (ref_out.get(name.as_str()), cand_out.get(name.as_str())) {
                (Some(r), Some(c)) => r.max_abs_diff(c) <= tol,
                _ => false,
            }
        } else {
            true
        }
    })
}

/// Does the program contain a thread-0-bound region?
pub fn has_thread0_region(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::If {
            pred,
            then_body,
            else_body,
        } => pred.thread0_only || has_thread0_region(then_body) || has_thread0_region(else_body),
        Stmt::Loop(l) => has_thread0_region(&l.body),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixer::mix;
    use oa_epod::Invocation;
    use oa_loopir::builder::trmm_ll_like;

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    fn base_seq() -> Vec<Invocation> {
        vec![
            Invocation {
                outputs: vec!["Lii".into(), "Ljj".into()],
                component: "thread_grouping".into(),
                args: vec![
                    oa_epod::Arg::Ident("Li".into()),
                    oa_epod::Arg::Ident("Lj".into()),
                ],
            },
            Invocation {
                outputs: vec!["Liii".into(), "Ljjj".into(), "Lkkk".into()],
                component: "loop_tiling".into(),
                args: vec![
                    oa_epod::Arg::Ident("Lii".into()),
                    oa_epod::Arg::Ident("Ljj".into()),
                    oa_epod::Arg::Ident("Lk".into()),
                ],
            },
            Invocation::idents("loop_unroll", &["Ljjj", "Lkkk"]),
        ]
    }

    /// The Sec. IV.B.2 worked example: mixing Adaptor_Triangular with the
    /// GEMM-NN scheme over the TRMM nest.  The paper reports a 7-sequence
    /// semi-output from 9 mixed sequences; in our engine the trapezoid
    /// decomposition only exists after the k loop is tiled (the paper's
    /// thread_grouping tiles k as part of its multi-level tiling), so the
    /// two "peel/pad between grouping and tiling" entries degenerate into
    /// their post-tiling twins and the deduplicated semi-output has 5
    /// effective sequences covering the same three optimization outcomes
    /// (plain, peeled, padded) — see DESIGN.md §6.
    #[test]
    fn paper_filter_example_semi_output() {
        let source = trmm_ll_like("TRMM-LL-N");
        let base = base_seq();
        // Rules: empty, peel, padding -> 1 + 4 + 4 = 9 mixed sequences.
        let mut all_sequences = Vec::new();
        all_sequences.extend(mix(&base, &[]));
        all_sequences.extend(mix(&base, &[Invocation::idents("peel_triangular", &["A"])]));
        all_sequences.extend(mix(
            &base,
            &[Invocation::idents("padding_triangular", &["A"])],
        ));
        assert_eq!(all_sequences.len(), 9);

        let surviving = filter(&source, &all_sequences, params()).unwrap();
        let effective: Vec<Vec<&str>> = surviving
            .iter()
            .map(|f| f.applied.iter().map(|i| i.component.as_str()).collect())
            .collect();
        assert_eq!(surviving.len(), 5, "semi-output: {effective:#?}");

        // The plain scheme (sequences 1, 2, 3, 6, 7 all collapse here: the
        // pre-tiling peel/pad degenerate, and unroll fails over the
        // unsplit triangular band so it is dropped as well).
        assert!(
            effective.contains(&vec!["thread_grouping", "loop_tiling", "loop_unroll"])
                || effective.contains(&vec!["thread_grouping", "loop_tiling"])
        );
        // Peel between tiling and unroll: the full pipeline (sequence 4).
        assert!(effective.contains(&vec![
            "thread_grouping",
            "loop_tiling",
            "peel_triangular",
            "loop_unroll"
        ]));
        // Peel after a failed unroll (sequence 5's degeneration).
        assert!(effective.contains(&vec!["thread_grouping", "loop_tiling", "peel_triangular"]));
        // The padded analogues (sequences 8 and 9).
        assert!(effective.contains(&vec![
            "thread_grouping",
            "loop_tiling",
            "padding_triangular",
            "loop_unroll"
        ]));
        assert!(effective.contains(&vec![
            "thread_grouping",
            "loop_tiling",
            "padding_triangular"
        ]));
    }

    #[test]
    fn thread0_detector() {
        use oa_loopir::expr::Predicate;
        let stmts = vec![Stmt::If {
            pred: Predicate::thread0(),
            then_body: vec![],
            else_body: vec![],
        }];
        assert!(has_thread0_region(&stmts));
        assert!(!has_thread0_region(&[]));
    }
}
