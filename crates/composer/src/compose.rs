//! The composer's top level: splitter → mixer → filter → allocator →
//! generator (Fig. 8), producing the new EPOD script(s) for a routine from
//! an existing script plus developer-defined adaptors.

use crate::allocator::merge_allocations;
use crate::filter::{filter_report_on, FilteredSeq};
use crate::mixer::{mix, MAX_MIXES};
use crate::splitter::split;
use oa_adl::{Adaptor, AdaptorRule, Cond};
use oa_epod::translator::{apply_lenient, TranslateError};
use oa_epod::{Invocation, Script};
use oa_gpusim::{select_engine, ExecEngine};
use oa_loopir::transform::TileParams;
use oa_loopir::{AllocMode, Program};
use std::collections::HashMap;
use std::time::Instant;

/// One adaptor applied to one matrix of the routine.
#[derive(Clone, Debug)]
pub struct AdaptorApplication {
    /// The adaptor definition.
    pub adaptor: Adaptor,
    /// The concrete matrix it adapts.
    pub array: String,
}

impl AdaptorApplication {
    /// Convenience constructor.
    pub fn new(adaptor: Adaptor, array: &str) -> Self {
        Self {
            adaptor,
            array: array.to_string(),
        }
    }
}

/// A generated EPOD script variant — the composer/generator output.
#[derive(Clone, Debug)]
pub struct GeneratedVariant {
    /// The final script (effective polyhedral sequence + merged
    /// allocations, exactly what Fig. 14 prints).
    pub script: Script,
    /// Conditions attached by the chosen adaptor rules (multi-versioning).
    pub conds: Vec<Cond>,
    /// The fully transformed program, ready for lowering.
    pub program: Program,
    /// Which rule of each application was chosen (for reporting).
    pub rule_choice: Vec<usize>,
}

/// Observability record of one compose run: how many sequences the mixer
/// produced, how many the filter kept, which components degenerated and
/// why, and how long the legality filter ran.
#[derive(Clone, Debug, Default)]
pub struct ComposeStats {
    /// Mixed sequences handed to the filter (over all rule choices).
    pub mixed: usize,
    /// Sequences surviving the filter (the semi-output).
    pub surviving: usize,
    /// Sequences the filter removed as semi-output duplicates.
    pub duplicates: usize,
    /// Sequences the filter removed as illegal (dependence check).
    pub illegal: usize,
    /// `(component, reason)` for every degenerated component across the
    /// surviving sequences.
    pub degenerated: Vec<(String, String)>,
    /// Cumulative wall time spent in the legality filter, milliseconds.
    pub filter_ms: f64,
}

/// Compose a base script with adaptors, generating candidate scripts for
/// the new routine.  The best performer is later selected by search
/// (`oa-autotune`).  Uses the process-default execution engine; see
/// [`compose_on`].
pub fn compose(
    source: &Program,
    base: &Script,
    applications: &[AdaptorApplication],
    params: TileParams,
) -> Result<Vec<GeneratedVariant>, TranslateError> {
    compose_on(select_engine(), source, base, applications, params).map(|(v, _)| v)
}

/// [`compose`] with an explicit legality-filter engine and a
/// [`ComposeStats`] report for tracing.
pub fn compose_on(
    engine: ExecEngine,
    source: &Program,
    base: &Script,
    applications: &[AdaptorApplication],
    params: TileParams,
) -> Result<(Vec<GeneratedVariant>, ComposeStats), TranslateError> {
    let base_split = split(&base.stmts);
    let mut variants: Vec<GeneratedVariant> = Vec::new();
    let mut stats = ComposeStats::default();

    for choice in rule_choices(applications) {
        // Split each chosen rule; collect conditions.
        let mut rule_seqs: Vec<Vec<Invocation>> = Vec::new();
        let mut rule_allocs: Vec<Invocation> = Vec::new();
        let mut conds: Vec<Cond> = Vec::new();
        for (app, rule_idx) in applications.iter().zip(&choice) {
            let rule: AdaptorRule = app.adaptor.instantiate(&app.array).remove(*rule_idx);
            let s = split(&rule.seq);
            rule_seqs.push(s.sequence);
            rule_allocs.extend(s.allocations);
            conds.extend(rule.cond);
        }

        // Mix the base polyhedral sequence with each rule's sequence in
        // turn (order within each sequence preserved).
        let mut mixes: Vec<Vec<Invocation>> = vec![base_split.sequence.clone()];
        for rs in &rule_seqs {
            let mut next = Vec::new();
            for m in &mixes {
                next.extend(mix(m, rs));
                if next.len() >= MAX_MIXES {
                    break;
                }
            }
            next.truncate(MAX_MIXES);
            mixes = next;
        }

        // Filter: apply-or-degenerate, dedup, dependence check.
        stats.mixed += mixes.len();
        let t0 = Instant::now();
        let report = filter_report_on(engine, source, &mixes, params)?;
        let survivors: Vec<FilteredSeq> = report.survivors;
        stats.filter_ms += t0.elapsed().as_secs_f64() * 1e3;
        stats.surviving += survivors.len();
        stats.duplicates += report.duplicates;
        stats.illegal += report.illegal;

        for surv in survivors {
            for (inv, err) in &surv.dropped {
                stats
                    .degenerated
                    .push((inv.component.clone(), err.to_string()));
            }
            // Which GM_maps actually applied (allocator input).
            let mut gm_mapped: HashMap<String, AllocMode> = HashMap::new();
            for inv in &surv.applied {
                if inv.component == "GM_map" {
                    if let (Some(arr), Some(mode)) = (
                        inv.args.first().and_then(oa_epod::Arg::ident),
                        inv.args.get(1).and_then(oa_epod::Arg::as_mode),
                    ) {
                        gm_mapped.insert(arr.to_string(), mode);
                    }
                }
            }
            let allocs = merge_allocations(&base_split.allocations, &rule_allocs, &gm_mapped);

            // Apply the allocation scheme (leniently: e.g. SM_alloc cannot
            // stage when the surviving sequence has no k tiling).
            let alloc_script = Script { stmts: allocs };
            let outcome = apply_lenient(&surv.program, &alloc_script, params)?;

            let mut final_script = Script {
                stmts: surv.applied.clone(),
            };
            final_script.stmts.extend(outcome.applied.clone());

            // Global dedup by final script text.
            if variants.iter().any(|v| v.script == final_script) {
                continue;
            }
            variants.push(GeneratedVariant {
                script: final_script,
                conds: conds.clone(),
                program: outcome.program,
                rule_choice: choice.clone(),
            });
        }
    }
    Ok((variants, stats))
}

/// Cartesian product of rule indices over the applications.
fn rule_choices(applications: &[AdaptorApplication]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for app in applications {
        let n = app.adaptor.rules.len();
        let mut next = Vec::with_capacity(out.len() * n);
        for prefix in &out {
            for r in 0..n {
                let mut c = prefix.clone();
                c.push(r);
                next.push(c);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_epod::parse_script;
    use oa_loopir::builder::{gemm_nn_like, trmm_ll_like};
    use oa_loopir::interp::{equivalent_on, Bindings};

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    fn gemm_script() -> Script {
        parse_script(
            "(Lii, Ljj) = thread_grouping((Li, Lj));
             (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
             loop_unroll(Ljjj, Lkkk);
             SM_alloc(B, Transpose);
             reg_alloc(C);",
        )
        .unwrap()
    }

    #[test]
    fn no_adaptor_reproduces_base_scheme() {
        let source = gemm_nn_like("GEMM-NN");
        let variants = compose(&source, &gemm_script(), &[], params()).unwrap();
        assert_eq!(variants.len(), 1);
        let names = variants[0].script.component_names();
        assert_eq!(
            names,
            vec![
                "thread_grouping",
                "loop_tiling",
                "loop_unroll",
                "SM_alloc",
                "reg_alloc"
            ]
        );
        assert!(variants[0].program.array("sB").is_some());
        assert!(variants[0].program.array("rC").is_some());
    }

    #[test]
    fn triangular_adaptor_generates_peeled_and_padded_variants() {
        let source = trmm_ll_like("TRMM-LL-N");
        let apps = [AdaptorApplication::new(oa_adl::builtin::triangular(), "A")];
        let variants = compose(&source, &gemm_script(), &apps, params()).unwrap();
        assert!(variants.len() >= 3, "got {} variants", variants.len());
        let with = |c: &str| {
            variants
                .iter()
                .filter(|v| v.script.component_names().contains(&c))
                .count()
        };
        assert!(with("peel_triangular") >= 1);
        assert!(with("padding_triangular") >= 1);
        // Padded variants carry the blank-zero condition.
        for v in &variants {
            if v.script.component_names().contains(&"padding_triangular") {
                assert!(v
                    .conds
                    .iter()
                    .any(|c| matches!(c, Cond::BlankZero(a) if a == "A")));
            }
        }
        // Every generated program is semantically the routine.
        for v in &variants {
            assert!(
                equivalent_on(&source, &v.program, &Bindings::square(16), 3, 1e-3),
                "variant not equivalent: {}",
                v.script
            );
        }
    }

    #[test]
    fn gm_map_variant_for_transposed_gemm() {
        // GEMM-TN: A stored transposed; Adaptor_Transpose(A).
        use oa_loopir::scalar::{Access, ScalarExpr};
        use oa_loopir::stmt::{AssignOp, AssignStmt, Loop, Stmt};
        use oa_loopir::{AffineExpr, ArrayDecl};
        let mut source = gemm_nn_like("GEMM-TN");
        source.declare(ArrayDecl::global(
            "A",
            AffineExpr::var("K"),
            AffineExpr::var("M"),
        ));
        source.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("C", "i", "j"),
                AssignOp::AddAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "k", "i")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            vec![Stmt::Loop(Box::new(lk))]
        });
        let apps = [AdaptorApplication::new(oa_adl::builtin::transpose(), "A")];
        let variants = compose(&source, &gemm_script(), &apps, params()).unwrap();
        // At least: the empty rule, the GM_map rule and the SM_alloc rule.
        assert!(variants.len() >= 3, "got {}", variants.len());
        let gm_variant = variants
            .iter()
            .find(|v| v.script.component_names().contains(&"GM_map"))
            .expect("a GM_map variant");
        // GM_map is first in its script (location constraint).
        assert_eq!(gm_variant.script.component_names()[0], "GM_map");
        for v in &variants {
            assert!(
                equivalent_on(&source, &v.program, &Bindings::square(16), 7, 1e-3),
                "variant not equivalent: {}",
                v.script
            );
        }
    }

    #[test]
    fn rule_choice_cartesian_product() {
        let apps = [
            AdaptorApplication::new(oa_adl::builtin::transpose(), "A"),
            AdaptorApplication::new(oa_adl::builtin::transpose(), "B"),
        ];
        assert_eq!(rule_choices(&apps).len(), 9);
        assert_eq!(rule_choices(&[]).len(), 1);
    }
}
