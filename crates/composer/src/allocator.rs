//! The allocator: integrates the memory-allocation invocations of the EPOD
//! script and the adaptor into one final allocation scheme (Sec. IV.B.3).
//!
//! The paper's worked example: for `C = α·A·Bᵀ + β·C` the adaptor declares
//! `SM_alloc(B, Transpose)` and the GEMM-NN script declares the same, so
//! the allocator merges them into a single `SM_alloc(B, NoChange)` — the
//! two transpositions compose to the identity.  Likewise, when the chosen
//! polyhedral sequence already re-mapped a matrix with `GM_map`, the
//! allocation is redirected to the mapped copy (`NewX`) with the composed
//! mode.

use oa_epod::{Arg, Invocation};
use oa_loopir::AllocMode;
use std::collections::HashMap;

/// Compose two allocation modes applied in sequence.
pub fn compose_modes(first: AllocMode, second: AllocMode) -> AllocMode {
    use AllocMode::*;
    match (first, second) {
        (NoChange, m) | (m, NoChange) => m,
        (Transpose, Transpose) => NoChange,
        // Symmetric completion absorbs transposition (the completed matrix
        // equals its own transpose).
        (Symmetry, _) | (_, Symmetry) => Symmetry,
    }
}

/// Merge base-script and adaptor allocations given the `GM_map`s the chosen
/// polyhedral sequence applied (array → mode).
pub fn merge_allocations(
    base: &[Invocation],
    adaptor: &[Invocation],
    gm_mapped: &HashMap<String, AllocMode>,
) -> Vec<Invocation> {
    // Collect SM_alloc modes per array (order of first mention preserved)
    // and reg_alloc arrays.
    let mut sm_order: Vec<String> = Vec::new();
    let mut sm_modes: HashMap<String, AllocMode> = HashMap::new();
    let mut regs: Vec<String> = Vec::new();

    for inv in base.iter().chain(adaptor) {
        match inv.component.as_str() {
            "SM_alloc" | "sm_alloc" => {
                let Some(arr) = inv.args.first().and_then(Arg::ident) else {
                    continue;
                };
                let mode = inv
                    .args
                    .get(1)
                    .and_then(Arg::as_mode)
                    .unwrap_or(AllocMode::NoChange);
                match sm_modes.get_mut(arr) {
                    Some(existing) => *existing = compose_modes(*existing, mode),
                    None => {
                        sm_order.push(arr.to_string());
                        sm_modes.insert(arr.to_string(), mode);
                    }
                }
            }
            "reg_alloc" | "Reg_alloc" => {
                if let Some(arr) = inv.args.first().and_then(Arg::ident) {
                    if !regs.contains(&arr.to_string()) {
                        regs.push(arr.to_string());
                    }
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    for arr in sm_order {
        let mut mode = sm_modes[&arr];
        let mut target = arr.clone();
        if let Some(gm) = gm_mapped.get(&arr) {
            // The data already lives re-mapped in `NewX`.  Only Transpose
            // is a coordinate transform that composes with the staging
            // mode; Symmetry materialization leaves coordinates unchanged.
            target = format!("New{arr}");
            if *gm == AllocMode::Transpose {
                mode = compose_modes(AllocMode::Transpose, mode);
            }
        }
        out.push(Invocation::call(
            "SM_alloc",
            &[Arg::Ident(target), Arg::Ident(mode.to_string())],
        ));
    }
    for arr in regs {
        out.push(Invocation::call("reg_alloc", &[Arg::Ident(arr)]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_epod::Invocation;

    fn sm(arr: &str, mode: &str) -> Invocation {
        Invocation::idents("SM_alloc", &[arr, mode])
    }

    #[test]
    fn mode_composition_table() {
        use AllocMode::*;
        assert_eq!(compose_modes(NoChange, Transpose), Transpose);
        assert_eq!(compose_modes(Transpose, NoChange), Transpose);
        assert_eq!(compose_modes(Transpose, Transpose), NoChange);
        assert_eq!(compose_modes(Symmetry, Transpose), Symmetry);
        assert_eq!(compose_modes(NoChange, NoChange), NoChange);
    }

    #[test]
    fn paper_example_double_transpose_cancels() {
        // Adaptor and script both stage B transposed -> one NoChange decl.
        let merged = merge_allocations(
            &[sm("B", "Transpose")],
            &[sm("B", "Transpose")],
            &HashMap::new(),
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].args[0], Arg::Ident("B".into()));
        assert_eq!(merged[0].args[1], Arg::Ident("NoChange".into()));
    }

    #[test]
    fn distinct_arrays_kept_separate() {
        let merged = merge_allocations(
            &[sm("B", "Transpose")],
            &[sm("A", "NoChange")],
            &HashMap::new(),
        );
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn gm_mapped_array_redirects_and_composes() {
        let mut gm = HashMap::new();
        gm.insert("B".to_string(), AllocMode::Transpose);
        let merged = merge_allocations(&[sm("B", "Transpose")], &[], &gm);
        assert_eq!(merged[0].args[0], Arg::Ident("NewB".into()));
        assert_eq!(merged[0].args[1], Arg::Ident("NoChange".into()));
    }

    #[test]
    fn reg_alloc_deduplicated() {
        let merged = merge_allocations(
            &[Invocation::idents("reg_alloc", &["C"])],
            &[Invocation::idents("reg_alloc", &["C"])],
            &HashMap::new(),
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].component, "reg_alloc");
    }
}
