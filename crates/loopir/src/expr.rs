//! Affine integer expressions over loop iterators and symbolic parameters.
//!
//! Every loop bound and every array subscript in the BLAS3 loop nests is an
//! integer-linear combination of loop variables (`i`, `k`, …), symbolic
//! problem parameters (`M`, `N`, `K`, tile sizes once bound), the CUDA
//! builtin indices introduced by `thread_grouping` (`bx`, `by`, `tx`, `ty`),
//! and a constant.  This module is the arithmetic bedrock for the whole
//! polyhedral-lite pipeline: transformations substitute variables, the
//! dependence test reasons about subscript differences, and the simulator
//! evaluates the same expressions to concrete addresses.

use std::collections::BTreeMap;
use std::fmt;

/// Names of the CUDA builtin index variables introduced by
/// `thread_grouping`.  They are ordinary [`AffineExpr`] variables; the
/// lowering stage gives them their per-thread values.
pub const BLOCK_X: &str = "bx";
/// See [`BLOCK_X`].
pub const BLOCK_Y: &str = "by";
/// See [`BLOCK_X`].
pub const THREAD_X: &str = "tx";
/// See [`BLOCK_X`].
pub const THREAD_Y: &str = "ty";

/// An affine (integer-linear) expression: `Σ cᵥ·v + c₀`.
///
/// The variable map is a `BTreeMap` so that expressions have a canonical
/// form: printing, hashing and equality are deterministic, and zero
/// coefficients are never stored.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct AffineExpr {
    terms: BTreeMap<String, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn cst(c: i64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(name: impl Into<String>) -> Self {
        Self::term(name, 1)
    }

    /// A single variable with an explicit coefficient.
    pub fn term(name: impl Into<String>, coeff: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(name.into(), coeff);
        }
        Self { terms, constant: 0 }
    }

    /// The constant part `c₀`.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Iterate over `(variable, coefficient)` pairs in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True if the expression has no variables.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Some(c)` if the expression is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.constant)
    }

    /// True if `name` occurs with a non-zero coefficient.
    pub fn uses(&self, name: &str) -> bool {
        self.terms.contains_key(name)
    }

    /// All variable names occurring in the expression.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(|s| s.as_str())
    }

    /// `self + other`.
    pub fn add(&self, other: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        for (v, c) in &other.terms {
            let e = out.terms.entry(v.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(v);
            }
        }
        out.constant += other.constant;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &AffineExpr) -> AffineExpr {
        self.add(&other.scale(-1))
    }

    /// `self + c`.
    pub fn add_const(&self, c: i64) -> AffineExpr {
        let mut out = self.clone();
        out.constant += c;
        out
    }

    /// `self · c`.
    pub fn scale(&self, c: i64) -> AffineExpr {
        if c == 0 {
            return AffineExpr::zero();
        }
        let mut out = self.clone();
        for coeff in out.terms.values_mut() {
            *coeff *= c;
        }
        out.constant *= c;
        out
    }

    /// Substitute `replacement` for every occurrence of variable `name`.
    ///
    /// This is how loop transformations rewrite subscripts: tiling replaces
    /// `i` with `ib·T + it`, thread distribution replaces `it` with
    /// `ty`-based expressions, and so on.
    pub fn subst(&self, name: &str, replacement: &AffineExpr) -> AffineExpr {
        let coeff = self.coeff(name);
        if coeff == 0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.terms.remove(name);
        out.add(&replacement.scale(coeff))
    }

    /// Rename a variable (used by loop interchange / iterator renaming).
    pub fn rename(&self, from: &str, to: &str) -> AffineExpr {
        self.subst(from, &AffineExpr::var(to))
    }

    /// Evaluate under a concrete environment.  Panics in debug builds on an
    /// unbound variable; in the simulator every variable is always bound.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            acc += c * env(v);
        }
        acc
    }

    /// The greatest common divisor of all variable coefficients
    /// (0 when there are none).  Used by the GCD dependence test.
    pub fn coeff_gcd(&self) -> i64 {
        self.terms.values().fold(0i64, |g, &c| gcd(g, c.abs()))
    }
}

/// Euclid's gcd on non-negative integers (`gcd(0, x) == x`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Debug for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                match c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    _ => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Comparison operators usable in affine guards.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the comparison to two concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A single affine comparison `lhs ⋈ rhs`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AffineCond {
    /// Left-hand side.
    pub lhs: AffineExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: AffineExpr,
}

impl AffineCond {
    /// Construct a comparison.
    pub fn new(lhs: AffineExpr, op: CmpOp, rhs: AffineExpr) -> Self {
        Self { lhs, op, rhs }
    }

    /// Evaluate under a concrete environment.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64) -> bool {
        self.op.eval(self.lhs.eval(env), self.rhs.eval(env))
    }

    /// Rename a variable on both sides.
    pub fn rename(&self, from: &str, to: &str) -> Self {
        Self {
            lhs: self.lhs.rename(from, to),
            op: self.op,
            rhs: self.rhs.rename(from, to),
        }
    }

    /// Substitute an expression for a variable on both sides.
    pub fn subst(&self, name: &str, replacement: &AffineExpr) -> Self {
        Self {
            lhs: self.lhs.subst(name, replacement),
            op: self.op,
            rhs: self.rhs.subst(name, replacement),
        }
    }
}

impl fmt::Display for AffineCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A guard predicate: the conjunction of affine comparisons, optionally
/// extended with the two "special" conditions the paper needs —
/// `threadIdx == (0,0)` (from `binding_triangular`) and the runtime
/// `blank(X).zero` flag (from `Adaptor_Triangular`'s multi-version rule).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Predicate {
    /// Affine conjuncts; empty means `true` (unless a special flag is set).
    pub conds: Vec<AffineCond>,
    /// Require `threadIdx.x == 0 && threadIdx.y == 0`.
    pub thread0_only: bool,
    /// Require the runtime `check_blank_zero(X)` flag for the named array.
    pub blank_zero: Option<String>,
    /// If `true`, the `blank_zero` flag requirement is negated (the
    /// fallback version of multi-versioned code).
    pub blank_zero_negated: bool,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always() -> Self {
        Self::default()
    }

    /// A predicate with a single affine conjunct.
    pub fn cond(lhs: AffineExpr, op: CmpOp, rhs: AffineExpr) -> Self {
        Self {
            conds: vec![AffineCond::new(lhs, op, rhs)],
            ..Self::default()
        }
    }

    /// The `threadIdx == (0,0)` predicate.
    pub fn thread0() -> Self {
        Self {
            thread0_only: true,
            ..Self::default()
        }
    }

    /// Conjoin another affine condition.
    pub fn and(mut self, c: AffineCond) -> Self {
        self.conds.push(c);
        self
    }

    /// True if the predicate is trivially `true`.
    pub fn is_always(&self) -> bool {
        self.conds.is_empty() && !self.thread0_only && self.blank_zero.is_none()
    }

    /// Evaluate the affine part under `env`; the caller supplies the values
    /// of the special flags.
    pub fn eval(&self, env: &dyn Fn(&str) -> i64, thread0: bool, blank_zero: bool) -> bool {
        if self.thread0_only && !thread0 {
            return false;
        }
        if self.blank_zero.is_some() {
            let want = !self.blank_zero_negated;
            if blank_zero != want {
                return false;
            }
        }
        self.conds.iter().all(|c| c.eval(env))
    }

    /// Substitute an expression for a variable in every affine conjunct.
    pub fn subst(&self, name: &str, replacement: &AffineExpr) -> Self {
        Self {
            conds: self
                .conds
                .iter()
                .map(|c| c.subst(name, replacement))
                .collect(),
            thread0_only: self.thread0_only,
            blank_zero: self.blank_zero.clone(),
            blank_zero_negated: self.blank_zero_negated,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.thread0_only {
            parts.push("threadIdx.x == 0 && threadIdx.y == 0".to_string());
        }
        if let Some(a) = &self.blank_zero {
            if self.blank_zero_negated {
                parts.push(format!("!blank({a}).zero"));
            } else {
                parts.push(format!("blank({a}).zero"));
            }
        }
        for c in &self.conds {
            parts.push(c.to_string());
        }
        if parts.is_empty() {
            f.write_str("true")
        } else {
            f.write_str(&parts.join(" && "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, i64)]) -> impl Fn(&str) -> i64 + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("unbound var {name}"))
        }
    }

    #[test]
    fn constant_arithmetic() {
        let a = AffineExpr::cst(3).add(&AffineExpr::cst(4));
        assert_eq!(a.as_const(), Some(7));
        assert!(a.is_const());
    }

    #[test]
    fn add_cancels_zero_coefficients() {
        let a = AffineExpr::var("i").add(&AffineExpr::term("i", -1));
        assert!(a.is_const());
        assert_eq!(a.as_const(), Some(0));
    }

    #[test]
    fn subst_replaces_with_coefficient() {
        // 2*i + 3 with i := 4*ib + it  ->  8*ib + 2*it + 3
        let e = AffineExpr::term("i", 2).add_const(3);
        let rep = AffineExpr::term("ib", 4).add(&AffineExpr::var("it"));
        let out = e.subst("i", &rep);
        assert_eq!(out.coeff("ib"), 8);
        assert_eq!(out.coeff("it"), 2);
        assert_eq!(out.constant(), 3);
        assert!(!out.uses("i"));
    }

    #[test]
    fn subst_absent_var_is_identity() {
        let e = AffineExpr::var("i").add_const(1);
        let out = e.subst("j", &AffineExpr::cst(5));
        assert_eq!(out, e);
    }

    #[test]
    fn eval_linear() {
        let e = AffineExpr::term("i", 2)
            .add(&AffineExpr::term("j", -1))
            .add_const(10);
        assert_eq!(e.eval(&env(&[("i", 3), ("j", 4)])), 2 * 3 - 4 + 10);
    }

    #[test]
    fn scale_by_zero_gives_zero() {
        let e = AffineExpr::var("i").add_const(7);
        assert_eq!(e.scale(0), AffineExpr::zero());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
    }

    #[test]
    fn coeff_gcd_over_terms() {
        let e = AffineExpr::term("i", 6).add(&AffineExpr::term("j", 9));
        assert_eq!(e.coeff_gcd(), 3);
    }

    #[test]
    fn display_forms() {
        let e = AffineExpr::term("i", 2)
            .add(&AffineExpr::term("j", -1))
            .add_const(-3);
        assert_eq!(e.to_string(), "2*i - j - 3");
        assert_eq!(AffineExpr::cst(0).to_string(), "0");
        assert_eq!(AffineExpr::var("k").to_string(), "k");
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Eq.eval(1, 2));
        assert!(CmpOp::Gt.eval(3, 2));
    }

    #[test]
    fn predicate_eval_with_specials() {
        let p = Predicate::cond(AffineExpr::var("i"), CmpOp::Lt, AffineExpr::var("M"));
        let e = env(&[("i", 3), ("M", 4)]);
        assert!(p.eval(&e, false, false));

        let p0 = Predicate::thread0();
        assert!(p0.eval(&|_| 0, true, false));
        assert!(!p0.eval(&|_| 0, false, false));

        let bz = Predicate {
            blank_zero: Some("A".into()),
            ..Predicate::default()
        };
        assert!(bz.eval(&|_| 0, false, true));
        assert!(!bz.eval(&|_| 0, false, false));

        let nbz = Predicate {
            blank_zero: Some("A".into()),
            blank_zero_negated: true,
            ..Predicate::default()
        };
        assert!(nbz.eval(&|_| 0, false, false));
        assert!(!nbz.eval(&|_| 0, false, true));
    }

    #[test]
    fn predicate_subst_applies_to_conjuncts() {
        let p = Predicate::cond(AffineExpr::var("i"), CmpOp::Le, AffineExpr::var("M"));
        let q = p.subst("i", &AffineExpr::term("ib", 16));
        assert_eq!(q.conds[0].lhs.coeff("ib"), 16);
    }

    #[test]
    fn rename_var() {
        let e = AffineExpr::var("i").add(&AffineExpr::var("k"));
        let r = e.rename("i", "k");
        assert_eq!(r.coeff("k"), 2);
    }
}
