//! Pretty-printer: renders a [`Program`] as labeled C-like source, the same
//! notation the paper uses in its figures.  Used by documentation, tests
//! and the `fig14` harness (which prints best-performing scripts next to
//! their transformed code).

use crate::nest::Program;
use crate::stmt::{LoopMapping, Stmt};
use std::fmt::Write;

/// Render a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// routine {}", p.name);
    for a in &p.arrays {
        let _ = writeln!(
            out,
            "// array {} [{} x {}] {:?}{}",
            a.name,
            a.rows,
            a.cols,
            a.space,
            if a.pad > 0 {
                format!(" pad+{}", a.pad)
            } else {
                String::new()
            }
        );
    }
    for mk in &p.prologues {
        let _ = writeln!(
            out,
            "// GM_map kernel: {} = {}({})",
            mk.dst, mk.mode, mk.src
        );
    }
    for chk in &p.blank_checks {
        let _ = writeln!(
            out,
            "// runtime: blank_zero_{} = check_blank_zero({});",
            chk.array, chk.array
        );
    }
    pretty_stmts(&p.body, 0, &mut out);
    out
}

/// Render a statement list at the given indent depth.
pub fn pretty_stmts(stmts: &[Stmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in stmts {
        match s {
            Stmt::Loop(l) => {
                let map = match l.mapping {
                    LoopMapping::Seq => String::new(),
                    m => format!("  // -> {m:?}"),
                };
                let unroll = match l.unroll {
                    0 => "  // fully unrolled".to_string(),
                    1 => String::new(),
                    n => format!("  // unroll x{n}"),
                };
                let _ = writeln!(
                    out,
                    "{pad}{}: for ({} = {}; {} < {}; {}++) {{{map}{unroll}",
                    l.label, l.var, l.lower, l.var, l.upper, l.var
                );
                pretty_stmts(&l.body, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Assign(a) => {
                let _ = writeln!(out, "{pad}{a}");
            }
            Stmt::If {
                pred,
                then_body,
                else_body,
            } => {
                let _ = writeln!(out, "{pad}if ({pred}) {{");
                pretty_stmts(then_body, depth + 1, out);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    pretty_stmts(else_body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::Stage(st) => {
                let _ = writeln!(
                    out,
                    "{pad}__stage_shared({} <- {}[{}..+{}][{}..+{}], {});",
                    st.dst, st.src, st.src_row0, st.rows, st.src_col0, st.cols, st.mode
                );
            }
            Stmt::RegLoad(rt) => {
                let _ = writeln!(
                    out,
                    "{pad}__reg_load({}[{}x{}] <- {}[{}][{}], stride ({}, {}));",
                    rt.reg,
                    rt.rows,
                    rt.cols,
                    rt.global,
                    rt.row0,
                    rt.col0,
                    rt.row_stride,
                    rt.col_stride
                );
            }
            Stmt::RegZero(rt) => {
                let _ = writeln!(out, "{pad}__reg_zero({}[{}x{}]);", rt.reg, rt.rows, rt.cols);
            }
            Stmt::RegStore(rt) => {
                let _ = writeln!(
                    out,
                    "{pad}__reg_store({}[{}][{}] <- {}[{}x{}], stride ({}, {}));",
                    rt.global,
                    rt.row0,
                    rt.col0,
                    rt.reg,
                    rt.rows,
                    rt.cols,
                    rt.row_stride,
                    rt.col_stride
                );
            }
            Stmt::Sync => {
                let _ = writeln!(out, "{pad}__syncthreads();");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::gemm_nn_like;

    #[test]
    fn gemm_pretty_contains_labels_and_update() {
        let p = gemm_nn_like("GEMM-NN");
        let s = p.to_string();
        assert!(s.contains("Li: for (i = 0; i < M; i++)"));
        assert!(s.contains("Lk: for (k = 0; k < K; k++)"));
        assert!(s.contains("C[i][j] += (A[i][k] * B[k][j]);"));
    }

    #[test]
    fn triangular_pretty_bound() {
        let p = crate::builder::trmm_ll_like("TRMM");
        let s = p.to_string();
        assert!(s.contains("k < i + 1"));
    }
}
