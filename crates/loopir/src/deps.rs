//! Data-dependence analysis.
//!
//! The paper delegates legality checking to the PolyDeps tool over the
//! polyhedral IR.  We implement the equivalent as an *instance-wise dynamic
//! test*: the loop nest is enumerated on small sampled sizes, every memory
//! access instance is recorded with its iteration vector, and the exact
//! flow/anti/output dependences between statement instances are derived.
//! For the affine, parameter-monotone nests of BLAS3, behaviour at a small
//! size is representative of all sizes (subscripts are affine and loop
//! bounds grow monotonically with the parameters), so this test doubles as
//! the GCD/Banerjee static test with none of its conservatism.

use crate::nest::Program;
use crate::stmt::{AssignOp, Loop, Stmt};
use std::collections::HashMap;

/// Dependence kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Read-after-write.
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
}

/// One (summarized) dependence edge between two static statements.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Dependence {
    /// Kind of the dependence.
    pub kind: DepKind,
    /// Array through which the dependence flows.
    pub array: String,
    /// Source statement id (pre-order index of `Stmt::Assign` nodes).
    pub src_stmt: usize,
    /// Destination statement id.
    pub dst_stmt: usize,
    /// Label of the outermost common loop whose iterator differs between
    /// the two instances, or `None` for loop-independent dependences.
    pub carrier: Option<String>,
    /// True when both endpoints are the same accumulation statement
    /// updating the same location (`+=`/`-=` self-dependence).  Such
    /// reduction dependences may be reordered (associativity) but still
    /// forbid naive parallelization of the carrying loop.
    pub is_reduction: bool,
}

/// The dependence graph of a program, computed at a sample size.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Deduplicated dependence edges.
    pub deps: Vec<Dependence>,
}

impl DepGraph {
    /// Compute the graph by enumerating the nest at the given bindings.
    ///
    /// Only `Loop` / `Assign` / `If` statements participate (macro memory
    /// statements are introduced after legality checking, as in the paper
    /// where the allocator runs after the filter).
    pub fn compute(program: &Program, bindings: &crate::interp::Bindings) -> Self {
        let mut walker = Walker {
            program,
            bindings,
            iter_stack: Vec::new(),
            env: HashMap::new(),
            last_writer: HashMap::new(),
            readers: HashMap::new(),
            edges: HashMap::new(),
            stmt_counter: 0,
            stmt_ids: HashMap::new(),
            stmt_ops: HashMap::new(),
        };
        walker.walk_stmts(&program.body, &mut Vec::new());
        let mut deps: Vec<Dependence> = walker.edges.into_keys().collect();
        deps.sort_by(|a, b| {
            (a.src_stmt, a.dst_stmt, &a.array, a.kind as u8).cmp(&(
                b.src_stmt,
                b.dst_stmt,
                &b.array,
                b.kind as u8,
            ))
        });
        Self { deps }
    }

    /// True when no dependence (reduction or otherwise) is carried by the
    /// loop with the given label — i.e. its iterations may execute in
    /// parallel with no further machinery.
    pub fn loop_is_parallel(&self, label: &str) -> bool {
        !self
            .deps
            .iter()
            .any(|d| d.carrier.as_deref() == Some(label))
    }

    /// True when the only dependences carried by the loop are reduction
    /// self-dependences — the loop may be reordered/tiled (associativity)
    /// but not trivially parallelized.
    pub fn loop_is_reduction(&self, label: &str) -> bool {
        let carried: Vec<_> = self
            .deps
            .iter()
            .filter(|d| d.carrier.as_deref() == Some(label))
            .collect();
        !carried.is_empty() && carried.iter().all(|d| d.is_reduction)
    }

    /// Dependences carried by a given loop label.
    pub fn carried_by<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a Dependence> + 'a {
        self.deps
            .iter()
            .filter(move |d| d.carrier.as_deref() == Some(label))
    }
}

/// An instance identifier: statement id plus the iteration vector of its
/// enclosing loops (label, value) from outermost in.
type Instance = (usize, Vec<(String, i64)>);

struct Walker<'a> {
    program: &'a Program,
    bindings: &'a crate::interp::Bindings,
    iter_stack: Vec<(String, String, i64)>, // (label, var, value)
    env: HashMap<String, i64>,
    /// (array, r, c) -> last writing instance
    last_writer: HashMap<(String, i64, i64), Instance>,
    /// (array, r, c) -> readers since last write
    readers: HashMap<(String, i64, i64), Vec<Instance>>,
    edges: HashMap<Dependence, ()>,
    stmt_counter: usize,
    stmt_ids: HashMap<*const crate::stmt::AssignStmt, usize>,
    stmt_ops: HashMap<usize, AssignOp>,
}

impl<'a> Walker<'a> {
    fn lookup(&self, name: &str) -> i64 {
        if let Some(v) = self.env.get(name) {
            *v
        } else {
            self.program.resolve(name, self.bindings)
        }
    }

    fn walk_stmts(&mut self, stmts: &[Stmt], _path: &mut Vec<usize>) {
        for s in stmts {
            match s {
                Stmt::Loop(l) => self.walk_loop(l),
                Stmt::Assign(a) => self.visit_assign(a),
                Stmt::If {
                    pred,
                    then_body,
                    else_body,
                } => {
                    // Polyhedral sequences (the only input to legality
                    // checking) contain affine guards only; the special
                    // thread0/blank flags default permissively.
                    let ok = pred.eval(&|n| self.lookup(n), true, true);
                    if ok {
                        self.walk_stmts(then_body, _path);
                    } else {
                        self.walk_stmts(else_body, _path);
                    }
                }
                // Macro statements don't exist at legality-check time.
                _ => {}
            }
        }
    }

    fn walk_loop(&mut self, l: &Loop) {
        // Mapped loops are analyzed under sequential semantics, which is
        // conservative for dependence existence.
        let lo = l.lower.eval(&|n| self.lookup(n));
        let hi = l.upper.eval(&|n| self.lookup(n));
        for v in lo..hi {
            self.env.insert(l.var.clone(), v);
            self.iter_stack.push((l.label.clone(), l.var.clone(), v));
            let body = &l.body;
            self.walk_stmts(body, &mut Vec::new());
            self.iter_stack.pop();
        }
        self.env.remove(&l.var);
    }

    fn stmt_id(&mut self, a: &crate::stmt::AssignStmt) -> usize {
        let ptr = a as *const _;
        if let Some(id) = self.stmt_ids.get(&ptr) {
            *id
        } else {
            let id = self.stmt_counter;
            self.stmt_counter += 1;
            self.stmt_ids.insert(ptr, id);
            self.stmt_ops.insert(id, a.op);
            id
        }
    }

    fn current_instance(&self, stmt: usize) -> Instance {
        (
            stmt,
            self.iter_stack
                .iter()
                .map(|(lbl, _, v)| (lbl.clone(), *v))
                .collect(),
        )
    }

    fn visit_assign(&mut self, a: &crate::stmt::AssignStmt) {
        let id = self.stmt_id(a);
        let inst = self.current_instance(id);

        // Reads first (for `+=`, the read of the destination happens before
        // the write).  The accumulator read is tagged: only flow
        // self-dependences through it qualify as reduction dependences.
        let mut reads: Vec<((String, i64, i64), bool)> = a
            .rhs
            .accesses()
            .iter()
            .map(|acc| {
                (
                    (
                        acc.array.clone(),
                        acc.row.eval(&|n| self.lookup(n)),
                        acc.col.eval(&|n| self.lookup(n)),
                    ),
                    false,
                )
            })
            .collect();
        if a.op != AssignOp::Assign {
            reads.push((
                (
                    a.lhs.array.clone(),
                    a.lhs.row.eval(&|n| self.lookup(n)),
                    a.lhs.col.eval(&|n| self.lookup(n)),
                ),
                true,
            ));
        }
        for (key, is_acc) in &reads {
            if let Some(writer) = self.last_writer.get(key) {
                self.record(DepKind::Flow, &key.0, writer.clone(), inst.clone(), *is_acc);
            }
            self.readers
                .entry(key.clone())
                .or_default()
                .push(inst.clone());
        }

        // Then the write.
        let wkey = (
            a.lhs.array.clone(),
            a.lhs.row.eval(&|n| self.lookup(n)),
            a.lhs.col.eval(&|n| self.lookup(n)),
        );
        if let Some(prev) = self.last_writer.get(&wkey) {
            let acc = a.op != AssignOp::Assign;
            self.record(DepKind::Output, &wkey.0, prev.clone(), inst.clone(), acc);
        }
        if let Some(rs) = self.readers.remove(&wkey) {
            let acc = a.op != AssignOp::Assign;
            for r in rs {
                if r != inst {
                    self.record(DepKind::Anti, &wkey.0, r, inst.clone(), acc);
                }
            }
        }
        self.last_writer.insert(wkey, inst);
    }

    fn record(
        &mut self,
        kind: DepKind,
        array: &str,
        src: Instance,
        dst: Instance,
        via_accumulator: bool,
    ) {
        if src == dst {
            return; // within a single instance (e.g. `+=` read/write pair)
        }
        // Outermost common loop whose value differs.
        let mut carrier = None;
        for ((ls, vs), (ld, vd)) in src.1.iter().zip(dst.1.iter()) {
            if ls != ld {
                break; // no longer a common loop
            }
            if vs != vd {
                carrier = Some(ls.clone());
                break;
            }
        }
        let same_stmt = src.0 == dst.0;
        let is_reduction = same_stmt
            && via_accumulator
            && matches!(
                self.stmt_ops.get(&src.0),
                Some(AssignOp::AddAssign) | Some(AssignOp::SubAssign)
            );
        let dep = Dependence {
            kind,
            array: array.to_string(),
            src_stmt: src.0,
            dst_stmt: dst.0,
            carrier,
            is_reduction,
        };
        self.edges.insert(dep, ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{gemm_nn_like, trmm_ll_like};
    use crate::expr::AffineExpr;
    use crate::interp::Bindings;
    use crate::scalar::{Access, ScalarExpr};
    use crate::stmt::{AssignOp, AssignStmt, Loop, Stmt};

    #[test]
    fn gemm_k_is_reduction_i_j_parallel() {
        let p = gemm_nn_like("g");
        let g = DepGraph::compute(&p, &Bindings::square(5));
        assert!(g.loop_is_parallel("Li"), "i carries nothing: {:?}", g.deps);
        assert!(g.loop_is_parallel("Lj"));
        assert!(!g.loop_is_parallel("Lk"));
        assert!(g.loop_is_reduction("Lk"));
    }

    #[test]
    fn trmm_same_structure() {
        let p = trmm_ll_like("t");
        let g = DepGraph::compute(&p, &Bindings::square(5));
        assert!(g.loop_is_parallel("Li"));
        assert!(g.loop_is_parallel("Lj"));
        assert!(g.loop_is_reduction("Lk"));
    }

    #[test]
    fn trsm_like_i_loop_carries_flow() {
        // Li: for i; Lj: for j; Lk: for k < i: B[i][j] -= A[i][k]*B[k][j]
        let mut p = gemm_nn_like("trsm-like");
        p.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("B", "i", "j"),
                AssignOp::SubAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "i", "k")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            vec![Stmt::Loop(Box::new(lk))]
        });
        // B must be square for B[i][j] writes with i in 0..M: M=K here.
        let g = DepGraph::compute(&p, &Bindings::square(5));
        assert!(
            !g.loop_is_parallel("Li"),
            "solver pattern must carry a dependence on Li: {:?}",
            g.deps
        );
        // And it is a genuine flow dependence, not just a reduction.
        assert!(!g.loop_is_reduction("Li"));
        assert!(g.loop_is_parallel("Lj"));
    }

    #[test]
    fn independent_writes_no_deps() {
        // for i: C[i][0] = A[i][0]  — no dependences at all.
        let mut p = gemm_nn_like("w");
        p.body = vec![Stmt::Loop(Box::new(Loop::new(
            "Li",
            "i",
            AffineExpr::zero(),
            AffineExpr::var("M"),
            vec![Stmt::Assign(AssignStmt::new(
                Access::new("C", AffineExpr::var("i"), AffineExpr::zero()),
                AssignOp::Assign,
                ScalarExpr::load(Access::new("A", AffineExpr::var("i"), AffineExpr::zero())),
            ))],
        )))];
        let g = DepGraph::compute(&p, &Bindings::square(5));
        assert!(g.deps.is_empty());
        assert!(g.loop_is_parallel("Li"));
    }

    #[test]
    fn anti_dependence_detected() {
        // S1: C[i][0] = A[i][0]; then A[i][0] = 0  — anti dep, loop-independent.
        let mut p = gemm_nn_like("anti");
        p.body = vec![Stmt::Loop(Box::new(Loop::new(
            "Li",
            "i",
            AffineExpr::zero(),
            AffineExpr::var("M"),
            vec![
                Stmt::Assign(AssignStmt::new(
                    Access::new("C", AffineExpr::var("i"), AffineExpr::zero()),
                    AssignOp::Assign,
                    ScalarExpr::load(Access::new("A", AffineExpr::var("i"), AffineExpr::zero())),
                )),
                Stmt::Assign(AssignStmt::new(
                    Access::new("A", AffineExpr::var("i"), AffineExpr::zero()),
                    AssignOp::Assign,
                    ScalarExpr::Lit(0.0),
                )),
            ],
        )))];
        let g = DepGraph::compute(&p, &Bindings::square(4));
        assert!(g
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Anti && d.carrier.is_none()));
    }

    #[test]
    fn symm_shadow_write_carried_by_i() {
        // The SYMM-LN pattern: the shadow statement writes C[k][j], read
        // later as C[i][j] by other iterations -> Li carries deps.
        let mut p = gemm_nn_like("symm");
        p.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![
                Stmt::Assign(AssignStmt::new(
                    Access::idx("C", "i", "j"),
                    AssignOp::AddAssign,
                    ScalarExpr::mul(
                        ScalarExpr::load(Access::idx("A", "i", "k")),
                        ScalarExpr::load(Access::idx("B", "k", "j")),
                    ),
                )),
                Stmt::Assign(AssignStmt::new(
                    Access::idx("C", "k", "j"),
                    AssignOp::AddAssign,
                    ScalarExpr::mul(
                        ScalarExpr::load(Access::idx("A", "i", "k")),
                        ScalarExpr::load(Access::idx("B", "i", "j")),
                    ),
                )),
            ];
            vec![Stmt::Loop(Box::new(lk))]
        });
        let g = DepGraph::compute(&p, &Bindings::square(5));
        // The two statements write overlapping C locations across i
        // iterations: Li carries output dependences.
        assert!(!g.loop_is_parallel("Li"));
    }
}
