//! A sequential reference interpreter for [`Program`]s.
//!
//! Mapped (block/thread) loops are executed as ordinary sequential loops.
//! This gives the *original sequential semantics* of the routine, which is
//! exactly what the composer's filter needs to check that a polyhedral
//! transformation sequence preserved the program's meaning (the stand-in
//! for the paper's PolyDeps legality check, made exact on sampled inputs).
//!
//! Shared-memory staging is idempotent (a copy) and register tiles have a
//! contiguous per-thread lifetime in the sequential order, so macro
//! statements interpret correctly too — with the single exception of
//! `binding_triangular` kernels (TRSM), whose cross-thread communication
//! requires real barrier-stepped execution; those are validated by
//! `oa-gpusim`'s executor instead.

use crate::arrays::{AllocMode, MemSpace};
use crate::expr::{AffineExpr, Predicate};
use crate::nest::{MapKernel, Program};
use crate::scalar::{Access, ScalarExpr};
use crate::stmt::{stage_src_coords, AssignOp, Loop, LoopMapping, SharedStage, Stmt};
use std::collections::HashMap;

/// A deterministic 64-bit linear congruential generator (Knuth's MMIX
/// constants) — the single case/data generator shared by [`Matrix::fill_pseudo`]
/// and the workspace's property/differential tests (re-exported as
/// `oa_core::testutil::Lcg`), so tests don't need the `rand` crate and
/// every stream is reproducible from its seed.
#[derive(Clone, Debug)]
pub struct Lcg(u64);

impl Lcg {
    /// Seed the generator (the raw seed is pre-mixed with the golden
    /// ratio so nearby seeds give unrelated streams).
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    /// Advance the state one MMIX step and return it in full.
    fn step(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Next pseudo-random value (the state's well-mixed high bits).
    /// Not an `Iterator`: the stream is infinite and draws are also
    /// consumed through `range`/`unit_f32`, so an `Option` wrapper
    /// would only add unwraps at every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.step() >> 17
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    /// Uniform `f32` in `[-1, 1]` (the matrix-fill distribution).
    pub fn unit_f32(&mut self) -> f32 {
        ((self.step() >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    }
}

/// Concrete bindings for size parameters (`M`, `N`, `K`) and scalar
/// parameters (`alpha`, `beta`).
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    /// Integer size parameters.
    pub sizes: HashMap<String, i64>,
    /// Floating-point scalar parameters.
    pub scalars: HashMap<String, f32>,
}

impl Bindings {
    /// Bind the classic `M`, `N`, `K` trio to a single square size.
    pub fn square(n: i64) -> Self {
        let mut b = Self::default();
        for p in ["M", "N", "K"] {
            b.sizes.insert(p.to_string(), n);
        }
        b
    }

    /// Bind a size parameter.
    pub fn with_size(mut self, name: &str, v: i64) -> Self {
        self.sizes.insert(name.to_string(), v);
        self
    }

    /// Look up a size parameter.
    pub fn size(&self, name: &str) -> i64 {
        *self
            .sizes
            .get(name)
            .unwrap_or_else(|| panic!("unbound size parameter {name}"))
    }
}

/// A column-major matrix buffer.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: i64,
    /// Columns.
    pub cols: i64,
    /// Leading dimension (≥ rows; shared tiles carry padding).
    pub ld: i64,
    /// Element storage, length `ld * cols`.
    pub data: Vec<f32>,
}

impl Matrix {
    /// A zero-filled matrix.
    pub fn zeros(rows: i64, cols: i64) -> Self {
        Self {
            rows,
            cols,
            ld: rows,
            data: vec![0.0; (rows * cols) as usize],
        }
    }

    /// A zero-filled matrix with an explicit leading dimension.
    pub fn zeros_padded(rows: i64, cols: i64, pad: i64) -> Self {
        let ld = rows + pad;
        Self {
            rows,
            cols,
            ld,
            data: vec![0.0; (ld * cols) as usize],
        }
    }

    /// Element read (column-major).
    #[inline]
    pub fn get(&self, r: i64, c: i64) -> f32 {
        debug_assert!(
            r >= 0 && r < self.ld && c >= 0 && c < self.cols,
            "({r},{c}) out of bounds"
        );
        self.data[(r + c * self.ld) as usize]
    }

    /// Element write (column-major).
    #[inline]
    pub fn set(&mut self, r: i64, c: i64, v: f32) {
        debug_assert!(
            r >= 0 && r < self.ld && c >= 0 && c < self.cols,
            "({r},{c}) out of bounds"
        );
        self.data[(r + c * self.ld) as usize] = v;
    }

    /// Fill with deterministic pseudo-random values in `[-1, 1]` (the
    /// shared [`Lcg`], so tests don't need the `rand` crate at runtime).
    pub fn fill_pseudo(&mut self, seed: u64) {
        let mut g = Lcg::new(seed);
        for v in &mut self.data {
            *v = g.unit_f32();
        }
    }

    /// Zero out the area a [`crate::arrays::Fill`] declares blank.
    pub fn zero_blank(&mut self, fill: crate::arrays::Fill) {
        match fill {
            crate::arrays::Fill::Full => {}
            crate::arrays::Fill::LowerTriangular => {
                for c in 0..self.cols {
                    for r in 0..c.min(self.rows) {
                        self.set(r, c, 0.0);
                    }
                }
            }
            crate::arrays::Fill::UpperTriangular => {
                for c in 0..self.cols {
                    for r in (c + 1)..self.rows {
                        self.set(r, c, 0.0);
                    }
                }
            }
        }
    }

    /// Max absolute difference against another matrix of identical shape
    /// (compares only the unpadded `rows x cols` area).
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut worst = 0.0f32;
        for c in 0..self.cols {
            for r in 0..self.rows {
                worst = worst.max((self.get(r, c) - other.get(r, c)).abs());
            }
        }
        worst
    }
}

/// The environment of one interpretation run: matrix buffers by name.
pub type Buffers = HashMap<String, Matrix>;

/// Allocate buffers for every array a program declares, given bindings.
/// Global arrays get pseudo-random content (triangular/symmetric blanks
/// zeroed when the declaration promises so); shared/register arrays start
/// zeroed.
pub fn alloc_buffers(p: &Program, b: &Bindings, seed: u64) -> Buffers {
    let env = |n: &str| b.size(n);
    let mut bufs = Buffers::new();
    for (idx, a) in p.arrays.iter().enumerate() {
        let rows = a.rows.eval(&env);
        let cols = a.cols.eval(&env);
        let mut m = Matrix::zeros_padded(rows, cols, a.pad);
        if a.space == MemSpace::Global {
            m.fill_pseudo(seed.wrapping_add(idx as u64 * 0x1234_5678));
            if a.blank_is_zero {
                m.zero_blank(a.fill);
            }
        }
        bufs.insert(a.name.clone(), m);
    }
    bufs
}

/// Interpreter over a program.  Runs prologue `GM_map` kernels, then the
/// main body, mutating `bufs` in place.
pub struct Interp<'a> {
    program: &'a Program,
    bindings: &'a Bindings,
    /// Values of the currently live loop iterators.
    iter_env: HashMap<String, i64>,
    /// Stack of (var, mapping, at_lower_bound) for thread0 evaluation.
    thread_iters: Vec<(String, bool)>,
    /// Values of the runtime blank-zero flags, keyed by array.
    pub blank_flags: HashMap<String, bool>,
}

impl<'a> Interp<'a> {
    /// Create an interpreter.
    pub fn new(program: &'a Program, bindings: &'a Bindings) -> Self {
        Self {
            program,
            bindings,
            iter_env: HashMap::new(),
            thread_iters: Vec::new(),
            blank_flags: HashMap::new(),
        }
    }

    /// Run the whole program (prologues, blank checks, body).
    pub fn run(&mut self, bufs: &mut Buffers) {
        for mk in &self.program.prologues {
            run_map_kernel(mk, bufs, &|n| self.bindings.size(n));
        }
        for chk in &self.program.blank_checks {
            let decl = self
                .program
                .array(&chk.array)
                .unwrap_or_else(|| panic!("blank check on undeclared array {}", chk.array));
            let m = &bufs[&chk.array];
            let flag = blank_is_zero(m, decl.fill);
            self.blank_flags.insert(chk.array.clone(), flag);
        }
        let body = self.program.body.clone();
        self.exec_stmts(&body, bufs);
    }

    fn lookup(&self, name: &str) -> i64 {
        if let Some(v) = self.iter_env.get(name) {
            return *v;
        }
        self.program.resolve(name, self.bindings)
    }

    fn eval_affine(&self, e: &AffineExpr) -> i64 {
        e.eval(&|n| self.lookup(n))
    }

    fn eval_pred(&self, p: &Predicate) -> bool {
        let thread0 = self.thread_iters.iter().all(|(_, at_lb)| *at_lb);
        let blank = p
            .blank_zero
            .as_ref()
            .map(|a| *self.blank_flags.get(a).unwrap_or(&false))
            .unwrap_or(false);
        p.eval(&|n| self.lookup(n), thread0, blank)
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], bufs: &mut Buffers) {
        for s in stmts {
            self.exec_stmt(s, bufs);
        }
    }

    fn exec_stmt(&mut self, s: &Stmt, bufs: &mut Buffers) {
        match s {
            Stmt::Loop(l) => self.exec_loop(l, bufs),
            Stmt::Assign(a) => {
                let v = self.eval_scalar(&a.rhs, bufs);
                let (r, c) = (self.eval_affine(&a.lhs.row), self.eval_affine(&a.lhs.col));
                let m = bufs
                    .get_mut(&a.lhs.array)
                    .unwrap_or_else(|| panic!("write to undeclared array {}", a.lhs.array));
                let old = m.get(r, c);
                let new = match a.op {
                    AssignOp::Assign => v,
                    AssignOp::AddAssign => old + v,
                    AssignOp::SubAssign => old - v,
                };
                m.set(r, c, new);
            }
            Stmt::If {
                pred,
                then_body,
                else_body,
            } => {
                if self.eval_pred(pred) {
                    self.exec_stmts(then_body, bufs);
                } else {
                    self.exec_stmts(else_body, bufs);
                }
            }
            Stmt::Stage(st) => self.exec_stage(st, bufs),
            Stmt::RegLoad(rt) => self.reg_transfer(rt, bufs, RegDir::Load),
            Stmt::RegZero(rt) => {
                let m = bufs.get_mut(&rt.reg).expect("register tile buffer");
                m.data.fill(0.0);
            }
            Stmt::RegStore(rt) => self.reg_transfer(rt, bufs, RegDir::Store),
            Stmt::Sync => {} // no-op under sequential semantics
        }
    }

    fn exec_loop(&mut self, l: &Loop, bufs: &mut Buffers) {
        let lo = self.eval_affine(&l.lower);
        let hi = self.eval_affine(&l.upper);
        let is_thread = matches!(l.mapping, LoopMapping::ThreadX | LoopMapping::ThreadY);
        if is_thread {
            self.thread_iters.push((l.var.clone(), true));
        }
        for v in lo..hi {
            self.iter_env.insert(l.var.clone(), v);
            if is_thread {
                if let Some(last) = self.thread_iters.last_mut() {
                    last.1 = v == lo;
                }
            }
            self.exec_stmts(&l.body, bufs);
        }
        self.iter_env.remove(&l.var);
        if is_thread {
            self.thread_iters.pop();
        }
    }

    fn exec_stage(&mut self, st: &SharedStage, bufs: &mut Buffers) {
        let r0 = self.eval_affine(&st.src_row0);
        let c0 = self.eval_affine(&st.src_col0);
        for c in 0..st.cols {
            for r in 0..st.rows {
                // Under Symmetry the element's logical value lives at the
                // globally mirrored position whenever (r0+r, c0+c) falls on
                // the source's blank side; the other modes read directly.
                let (sr, sc) = stage_src_coords(st.mode, st.src_fill, r0 + r, c0 + c);
                // Evaluate the per-element guard with the element's source
                // coordinates exposed as `__sr` / `__sc`.
                self.iter_env.insert("__sr".into(), sr);
                self.iter_env.insert("__sc".into(), sc);
                let copy = self.eval_pred(&st.guard);
                self.iter_env.remove("__sr");
                self.iter_env.remove("__sc");
                let v = if copy { bufs[&st.src].get(sr, sc) } else { 0.0 };
                let dst = bufs.get_mut(&st.dst).expect("shared tile buffer");
                match st.mode {
                    AllocMode::NoChange | AllocMode::Symmetry => dst.set(r, c, v),
                    AllocMode::Transpose => dst.set(c, r, v),
                }
            }
        }
    }

    fn reg_transfer(&mut self, rt: &crate::stmt::RegTile, bufs: &mut Buffers, dir: RegDir) {
        let r0 = self.eval_affine(&rt.row0);
        let c0 = self.eval_affine(&rt.col0);
        for c in 0..rt.cols {
            for r in 0..rt.rows {
                let gr = r0 + r * rt.row_stride;
                let gc = c0 + c * rt.col_stride;
                self.iter_env.insert("__gr".into(), gr);
                self.iter_env.insert("__gc".into(), gc);
                let in_range = self.eval_pred(&rt.guard);
                self.iter_env.remove("__gr");
                self.iter_env.remove("__gc");
                if !in_range {
                    continue;
                }
                match dir {
                    RegDir::Load => {
                        let v = bufs[&rt.global].get(gr, gc);
                        bufs.get_mut(&rt.reg).unwrap().set(r, c, v);
                    }
                    RegDir::Store => {
                        let v = bufs[&rt.reg].get(r, c);
                        bufs.get_mut(&rt.global).unwrap().set(gr, gc, v);
                    }
                }
            }
        }
    }

    fn eval_scalar(&self, e: &ScalarExpr, bufs: &Buffers) -> f32 {
        match e {
            ScalarExpr::Load(acc) => self.read_access(acc, bufs),
            ScalarExpr::Lit(v) => *v,
            ScalarExpr::Param(p) => *self
                .bindings
                .scalars
                .get(p)
                .unwrap_or_else(|| panic!("unbound scalar parameter {p}")),
            ScalarExpr::Bin(op, l, r) => {
                let a = self.eval_scalar(l, bufs);
                let b = self.eval_scalar(r, bufs);
                op.apply(a, b)
            }
        }
    }

    fn read_access(&self, acc: &Access, bufs: &Buffers) -> f32 {
        let m = bufs
            .get(&acc.array)
            .unwrap_or_else(|| panic!("read of undeclared array {}", acc.array));
        m.get(self.eval_affine(&acc.row), self.eval_affine(&acc.col))
    }
}

enum RegDir {
    Load,
    Store,
}

/// Run a `GM_map` prologue kernel sequentially.
pub fn run_map_kernel(mk: &MapKernel, bufs: &mut Buffers, env: &dyn Fn(&str) -> i64) {
    let rows = mk.rows.eval(env);
    let cols = mk.cols.eval(env);
    let mut dst = Matrix::zeros(rows, cols);
    let src = bufs.get(&mk.src).expect("GM_map source buffer");
    for c in 0..cols {
        for r in 0..rows {
            let v = match mk.mode {
                AllocMode::NoChange => src.get(r, c),
                AllocMode::Transpose => {
                    // Blank source positions materialize as zeros, so the
                    // transposed packed matrix is safe to pad over.
                    let stored = match mk.src_fill {
                        crate::arrays::Fill::LowerTriangular => c >= r,
                        crate::arrays::Fill::UpperTriangular => c <= r,
                        crate::arrays::Fill::Full => true,
                    };
                    if stored {
                        src.get(c, r)
                    } else {
                        0.0
                    }
                }
                AllocMode::Symmetry => {
                    // Full matrix from a triangular-stored symmetric
                    // source: dest = src + srcᵀ − diag(src), reading only
                    // the stored triangle.
                    let stored = match mk.src_fill {
                        crate::arrays::Fill::UpperTriangular => r <= c,
                        // Full sources behave as lower-stored.
                        _ => r >= c,
                    };
                    if stored {
                        src.get(r, c)
                    } else {
                        src.get(c, r)
                    }
                }
            };
            dst.set(r, c, v);
        }
    }
    bufs.insert(mk.dst.clone(), dst);
}

/// Scan a matrix's blank triangle and report whether it is entirely zero —
/// the runtime `check_blank_zero` of `Adaptor_Triangular`.
pub fn blank_is_zero(m: &Matrix, fill: crate::arrays::Fill) -> bool {
    match fill {
        crate::arrays::Fill::Full => true,
        crate::arrays::Fill::LowerTriangular => {
            (0..m.cols).all(|c| (0..c.min(m.rows)).all(|r| m.get(r, c) == 0.0))
        }
        crate::arrays::Fill::UpperTriangular => {
            (0..m.cols).all(|c| ((c + 1)..m.rows).all(|r| m.get(r, c) == 0.0))
        }
    }
}

/// Run `program` on freshly allocated pseudo-random inputs and return the
/// resulting buffers.  A convenience wrapper used pervasively in tests and
/// the composer's legality check.
pub fn run_fresh(program: &Program, bindings: &Bindings, seed: u64) -> Buffers {
    let mut bufs = alloc_buffers(program, bindings, seed);
    Interp::new(program, bindings).run(&mut bufs);
    bufs
}

/// Compare two programs for semantic equivalence on sampled inputs: same
/// seed, same bindings, compare every global array the reference writes.
pub fn equivalent_on(
    reference: &Program,
    candidate: &Program,
    bindings: &Bindings,
    seed: u64,
    tol: f32,
) -> bool {
    let ref_out = run_fresh(reference, bindings, seed);
    let cand_out = run_fresh(candidate, bindings, seed);
    // Compare the output array(s): every global array written by the
    // reference program's assignments.
    let mut written: Vec<&str> = Vec::new();
    for a in reference.assignments() {
        if reference
            .array(&a.lhs.array)
            .map(|d| d.space == MemSpace::Global)
            .unwrap_or(false)
            && !written.contains(&a.lhs.array.as_str())
        {
            written.push(&a.lhs.array);
        }
    }
    written
        .iter()
        .all(|name| match (ref_out.get(*name), cand_out.get(*name)) {
            (Some(r), Some(c)) => r.max_abs_diff(c) <= tol,
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{gemm_nn_like, trmm_ll_like};

    #[test]
    fn gemm_interp_matches_manual_oracle() {
        let p = gemm_nn_like("GEMM-NN");
        let b = Bindings::square(8);
        let mut bufs = alloc_buffers(&p, &b, 42);
        let (a, bm, c0) = (bufs["A"].clone(), bufs["B"].clone(), bufs["C"].clone());
        Interp::new(&p, &b).run(&mut bufs);
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = c0.get(i, j);
                for k in 0..8 {
                    acc += a.get(i, k) * bm.get(k, j);
                }
                assert!((bufs["C"].get(i, j) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn trmm_interp_respects_triangular_bound() {
        let p = trmm_ll_like("TRMM");
        let b = Bindings::square(6);
        let mut bufs = alloc_buffers(&p, &b, 7);
        let (a, bm, c0) = (bufs["A"].clone(), bufs["B"].clone(), bufs["C"].clone());
        Interp::new(&p, &b).run(&mut bufs);
        for i in 0..6 {
            for j in 0..6 {
                let mut acc = c0.get(i, j);
                for k in 0..=i {
                    acc += a.get(i, k) * bm.get(k, j);
                }
                assert!((bufs["C"].get(i, j) - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn map_kernel_transpose() {
        let mk = MapKernel {
            dst: "NewA".into(),
            src: "A".into(),
            mode: AllocMode::Transpose,
            src_fill: crate::arrays::Fill::Full,
            rows: AffineExpr::var("M"),
            cols: AffineExpr::var("M"),
        };
        let mut bufs = Buffers::new();
        let mut a = Matrix::zeros(4, 4);
        a.fill_pseudo(3);
        bufs.insert("A".into(), a.clone());
        run_map_kernel(&mk, &mut bufs, &|_| 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(bufs["NewA"].get(r, c), a.get(c, r));
            }
        }
    }

    #[test]
    fn map_kernel_symmetry_mirrors_lower() {
        let mk = MapKernel {
            dst: "NewA".into(),
            src: "A".into(),
            mode: AllocMode::Symmetry,
            src_fill: crate::arrays::Fill::LowerTriangular,
            rows: AffineExpr::var("M"),
            cols: AffineExpr::var("M"),
        };
        let mut bufs = Buffers::new();
        let mut a = Matrix::zeros(5, 5);
        a.fill_pseudo(11);
        bufs.insert("A".into(), a.clone());
        run_map_kernel(&mk, &mut bufs, &|_| 5);
        let n = &bufs["NewA"];
        for r in 0..5 {
            for c in 0..5 {
                let expect = if r >= c { a.get(r, c) } else { a.get(c, r) };
                assert_eq!(n.get(r, c), expect);
                assert_eq!(n.get(r, c), n.get(c, r));
            }
        }
    }

    #[test]
    fn blank_zero_check() {
        let mut m = Matrix::zeros(4, 4);
        m.fill_pseudo(1);
        assert!(!blank_is_zero(&m, crate::arrays::Fill::LowerTriangular));
        m.zero_blank(crate::arrays::Fill::LowerTriangular);
        assert!(blank_is_zero(&m, crate::arrays::Fill::LowerTriangular));
        // lower part untouched
        assert_ne!(m.get(3, 0), 0.0);
    }

    #[test]
    fn equivalence_check_detects_difference() {
        let g = gemm_nn_like("GEMM-NN");
        let t = trmm_ll_like("TRMM");
        let b = Bindings::square(6);
        assert!(equivalent_on(&g, &g, &b, 5, 1e-5));
        assert!(!equivalent_on(&g, &t, &b, 5, 1e-5));
    }

    #[test]
    fn padded_matrix_indexing() {
        let mut m = Matrix::zeros_padded(4, 4, 1);
        assert_eq!(m.ld, 5);
        m.set(3, 3, 2.5);
        assert_eq!(m.get(3, 3), 2.5);
        assert_eq!(m.data.len(), 20);
    }
}
