//! Array (matrix) declarations and memory-space / allocation-mode metadata.

use crate::expr::AffineExpr;
use std::fmt;

/// Where an array lives in the GPU memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSpace {
    /// Device (global) memory — the default for all matrices.
    Global,
    /// Per-SM shared memory (scratchpad), introduced by `SM_alloc`.
    Shared,
    /// Per-thread registers, introduced by `Reg_alloc`.
    Reg,
}

/// The allocation modes of `SM_alloc` / `GM_map` (Sec. III.B of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllocMode {
    /// `dest = src`
    NoChange,
    /// `dest = srcᵀ`
    Transpose,
    /// `dest = src + srcᵀ − diag(src)` — materializes the full matrix from
    /// a triangular-stored symmetric one.
    Symmetry,
}

impl fmt::Display for AllocMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AllocMode::NoChange => "NoChange",
            AllocMode::Transpose => "Transpose",
            AllocMode::Symmetry => "Symmetry",
        })
    }
}

/// Which part of a matrix is semantically meaningful.  BLAS3 packs
/// symmetric and triangular matrices; the blank (unstored) part may or may
/// not be physically zero — `Adaptor_Triangular`'s `cond(blank(X).zero)`
/// rule keys on exactly this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Fill {
    /// Every element is meaningful (general matrix).
    Full,
    /// Only the lower triangle (including diagonal) is meaningful.
    LowerTriangular,
    /// Only the upper triangle (including diagonal) is meaningful.
    UpperTriangular,
}

/// A matrix declaration.
///
/// All matrices are stored **column-major** (BLAS convention).  The leading
/// dimension of a global array equals its row count; shared arrays may be
/// padded (`pad`) to avoid shared-memory bank conflicts, e.g. a `(16, 16)`
/// tile padded to `(16, 17)` as described in Sec. III.B.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayDecl {
    /// Array name (`A`, `B`, `C`, `NewA`, `sB`, `rC`, …).
    pub name: String,
    /// Number of rows (may reference size parameters for global arrays;
    /// must be constant for shared/register arrays).
    pub rows: AffineExpr,
    /// Number of columns.
    pub cols: AffineExpr,
    /// Memory space.
    pub space: MemSpace,
    /// Extra rows added to the leading dimension (column-major padding),
    /// non-zero only for shared arrays.
    pub pad: i64,
    /// Semantic fill.
    pub fill: Fill,
    /// Whether the blank (unstored) area is guaranteed to contain zeros.
    /// `padding_triangular` requires this (or a runtime check).
    pub blank_is_zero: bool,
    /// Whether the matrix is *semantically symmetric* (`X == Xᵀ`), with the
    /// stored triangle given by `fill`.  A triangular `fill` alone does not
    /// imply this — TRMM/TRSM operands are packed triangular matrices whose
    /// blank area is logically zero, not mirrored.  The `Symmetry` modes of
    /// `GM_map` / `SM_alloc` reconstruct the full matrix by mirroring the
    /// stored triangle, which is only meaningful when this flag holds.
    pub symmetric: bool,
}

impl ArrayDecl {
    /// A general (full) global matrix of symbolic size `rows × cols`.
    pub fn global(name: impl Into<String>, rows: AffineExpr, cols: AffineExpr) -> Self {
        Self {
            name: name.into(),
            rows,
            cols,
            space: MemSpace::Global,
            pad: 0,
            fill: Fill::Full,
            blank_is_zero: false,
            symmetric: false,
        }
    }

    /// A triangular / symmetric-stored global matrix.
    pub fn global_with_fill(
        name: impl Into<String>,
        rows: AffineExpr,
        cols: AffineExpr,
        fill: Fill,
    ) -> Self {
        Self {
            fill,
            ..Self::global(name, rows, cols)
        }
    }

    /// Mark the matrix semantically symmetric (builder style).
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// A constant-size shared-memory tile.
    pub fn shared(name: impl Into<String>, rows: i64, cols: i64, pad: i64) -> Self {
        Self {
            name: name.into(),
            rows: AffineExpr::cst(rows),
            cols: AffineExpr::cst(cols),
            space: MemSpace::Shared,
            pad,
            fill: Fill::Full,
            blank_is_zero: false,
            symmetric: false,
        }
    }

    /// A constant-size per-thread register tile.
    pub fn reg(name: impl Into<String>, rows: i64, cols: i64) -> Self {
        Self {
            name: name.into(),
            rows: AffineExpr::cst(rows),
            cols: AffineExpr::cst(cols),
            space: MemSpace::Reg,
            pad: 0,
            fill: Fill::Full,
            blank_is_zero: false,
            symmetric: false,
        }
    }

    /// Leading dimension (column-major): rows + padding.  Only meaningful
    /// when `rows` is constant or after binding size parameters.
    pub fn leading_dim(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        self.rows.eval(env) + self.pad
    }

    /// Total element count including padding (constant-size arrays only).
    pub fn padded_len(&self, env: &dyn Fn(&str) -> i64) -> i64 {
        self.leading_dim(env) * self.cols.eval(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_tile_padding_changes_leading_dim() {
        let t = ArrayDecl::shared("sB", 16, 16, 1);
        let env = |_: &str| panic!("constant");
        assert_eq!(t.leading_dim(&env), 17);
        assert_eq!(t.padded_len(&env), 17 * 16);
    }

    #[test]
    fn global_symbolic_dims_eval() {
        let a = ArrayDecl::global("A", AffineExpr::var("M"), AffineExpr::var("K"));
        let env = |n: &str| match n {
            "M" => 64,
            "K" => 32,
            _ => unreachable!(),
        };
        assert_eq!(a.leading_dim(&env), 64);
        assert_eq!(a.padded_len(&env), 64 * 32);
    }

    #[test]
    fn fill_defaults() {
        let a = ArrayDecl::global("A", AffineExpr::var("M"), AffineExpr::var("M"));
        assert_eq!(a.fill, Fill::Full);
        let t = ArrayDecl::global_with_fill(
            "L",
            AffineExpr::var("M"),
            AffineExpr::var("M"),
            Fill::LowerTriangular,
        );
        assert_eq!(t.fill, Fill::LowerTriangular);
        assert!(!t.blank_is_zero);
    }
}
