//! Slot resolution: compiling name-based affine expressions and predicates
//! down to integer-indexed forms evaluable over a flat `&[i64]` frame.
//!
//! The tree-walking interpreters resolve every variable name through a
//! `HashMap<String, i64>` environment on every evaluation.  For the GPU
//! executor that cost dominates: each thread of each block hashes the same
//! handful of strings millions of times.  This module does the name
//! resolution **once**: a [`SlotMap`] interns every live variable to a
//! frame index, and [`SlotExpr`] / [`SlotPred`] are the pre-resolved
//! residues of [`AffineExpr`] / [`Predicate`] in which
//!
//! * registered variables became `(slot, coefficient)` pairs, and
//! * everything else (size parameters, derived ceil-div parameters) was
//!   folded into the constant via the caller's resolve function —
//!   mirroring the interpreter's `env.get(name).unwrap_or_else(resolve)`
//!   lookup order exactly.
//!
//! Evaluation is then a dot product over a dense frame with no hashing and
//! no allocation.

use crate::expr::{AffineExpr, CmpOp, Predicate};
use std::collections::HashMap;

/// An interning map from variable names to frame slots.
///
/// A name is a *slot* (per-thread mutable state: loop iterators, mapped
/// block/thread indices, the staging/tile specials) iff it was registered
/// here; any other name appearing in an expression is a constant parameter
/// to be folded at compile time.
#[derive(Debug, Default, Clone)]
pub struct SlotMap {
    names: HashMap<String, usize>,
}

impl SlotMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name`, returning its slot (existing slot if already
    /// registered — re-registration is idempotent, so sibling loops
    /// reusing an iterator name share a slot exactly like they share an
    /// environment entry).
    pub fn register(&mut self, name: &str) -> usize {
        if let Some(&s) = self.names.get(name) {
            return s;
        }
        let s = self.names.len();
        self.names.insert(name.to_string(), s);
        s
    }

    /// The slot of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.names.get(name).copied()
    }

    /// Number of slots; the per-thread frame length.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no slot has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An affine expression with all names resolved: `Σ cₛ·frame[s] + c₀`.
///
/// Hashable so downstream lowerings (the gpusim bytecode compiler) can
/// intern identical address expressions into a shared unit table.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SlotExpr {
    /// `(slot, coefficient)` pairs for the registered variables.
    pub terms: Vec<(usize, i64)>,
    /// The constant, including every folded parameter.
    pub constant: i64,
}

impl SlotExpr {
    /// A constant expression.
    pub fn cst(c: i64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Compile `e` against the slot map: registered names become terms,
    /// unregistered names are folded through `resolve`.
    pub fn compile(e: &AffineExpr, slots: &SlotMap, resolve: &dyn Fn(&str) -> i64) -> Self {
        let mut terms = Vec::new();
        let mut constant = e.constant();
        for (name, coeff) in e.terms() {
            match slots.get(name) {
                Some(s) => terms.push((s, coeff)),
                None => constant += coeff * resolve(name),
            }
        }
        Self { terms, constant }
    }

    /// `Some(c)` when no slots remain — the expression is a compile-time
    /// constant.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    /// Evaluate over a frame.
    #[inline]
    pub fn eval(&self, frame: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(s, c) in &self.terms {
            acc += c * frame[s];
        }
        acc
    }
}

/// One pre-resolved comparison.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SlotCond {
    /// Left-hand side.
    pub lhs: SlotExpr,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: SlotExpr,
}

impl SlotCond {
    /// Evaluate over a frame.
    #[inline]
    pub fn eval(&self, frame: &[i64]) -> bool {
        self.op.eval(self.lhs.eval(frame), self.rhs.eval(frame))
    }
}

/// A pre-resolved guard predicate.
///
/// The `blank_zero` special is resolved to an index into the executor's
/// runtime blank-flag vector (the flags themselves are only known after
/// the prologue kernels run, so they stay an execution-time input).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SlotPred {
    /// Affine conjuncts; empty means `true` modulo the specials.
    pub conds: Vec<SlotCond>,
    /// Require `threadIdx == (0, 0)`.
    pub thread0_only: bool,
    /// Index of the runtime blank-zero flag this predicate consults.
    pub blank_flag: Option<usize>,
    /// Negate the blank-zero requirement.
    pub blank_negated: bool,
}

impl SlotPred {
    /// The always-true predicate.
    pub fn always() -> Self {
        Self {
            conds: Vec::new(),
            thread0_only: false,
            blank_flag: None,
            blank_negated: false,
        }
    }

    /// Compile `p`; `blank_index` maps a checked array name to its flag
    /// index in the executor's flag vector.
    pub fn compile(
        p: &Predicate,
        slots: &SlotMap,
        resolve: &dyn Fn(&str) -> i64,
        blank_index: &mut dyn FnMut(&str) -> usize,
    ) -> Self {
        Self {
            conds: p
                .conds
                .iter()
                .map(|c| SlotCond {
                    lhs: SlotExpr::compile(&c.lhs, slots, resolve),
                    op: c.op,
                    rhs: SlotExpr::compile(&c.rhs, slots, resolve),
                })
                .collect(),
            thread0_only: p.thread0_only,
            blank_flag: p.blank_zero.as_deref().map(&mut *blank_index),
            blank_negated: p.blank_zero_negated,
        }
    }

    /// True when nothing can ever make this predicate false.
    pub fn is_always(&self) -> bool {
        self.conds.is_empty() && !self.thread0_only && self.blank_flag.is_none()
    }

    /// Evaluate over a frame plus the two runtime specials.
    #[inline]
    pub fn eval(&self, frame: &[i64], thread0: bool, blank_flags: &[bool]) -> bool {
        if self.thread0_only && !thread0 {
            return false;
        }
        if let Some(ix) = self.blank_flag {
            if blank_flags[ix] == self.blank_negated {
                return false;
            }
        }
        self.conds.iter().all(|c| c.eval(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut m = SlotMap::new();
        let a = m.register("i");
        let b = m.register("k");
        assert_ne!(a, b);
        assert_eq!(m.register("i"), a);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("k"), Some(b));
        assert_eq!(m.get("zzz"), None);
    }

    #[test]
    fn compile_folds_unregistered_names() {
        let mut m = SlotMap::new();
        let si = m.register("i");
        // 2*i + 3*M + 1  with M unregistered and resolve(M) = 10.
        let e = AffineExpr::term("i", 2)
            .add(&AffineExpr::term("M", 3))
            .add_const(1);
        let c = SlotExpr::compile(&e, &m, &|n| match n {
            "M" => 10,
            _ => panic!("unexpected resolve of {n}"),
        });
        assert_eq!(c.terms, vec![(si, 2)]);
        assert_eq!(c.constant, 31);
        let mut frame = vec![0i64; m.len()];
        frame[si] = 4;
        assert_eq!(c.eval(&frame), 39);
    }

    #[test]
    fn fully_constant_expression() {
        let m = SlotMap::new();
        let e = AffineExpr::term("N", 2).add_const(5);
        let c = SlotExpr::compile(&e, &m, &|_| 8);
        assert_eq!(c.as_const(), Some(21));
    }

    #[test]
    fn pred_compile_and_eval() {
        use crate::expr::Predicate;
        let mut m = SlotMap::new();
        let si = m.register("i");
        let p = Predicate::cond(AffineExpr::var("i"), CmpOp::Lt, AffineExpr::var("M"));
        let mut blank = |_: &str| 0usize;
        let c = SlotPred::compile(&p, &m, &|_| 7, &mut blank);
        let mut frame = vec![0i64; m.len()];
        frame[si] = 6;
        assert!(c.eval(&frame, false, &[]));
        frame[si] = 7;
        assert!(!c.eval(&frame, false, &[]));
    }

    #[test]
    fn pred_specials() {
        use crate::expr::Predicate;
        let m = SlotMap::new();
        let mut blank = |_: &str| 0usize;
        let t0 = SlotPred::compile(&Predicate::thread0(), &m, &|_| 0, &mut blank);
        assert!(t0.eval(&[], true, &[]));
        assert!(!t0.eval(&[], false, &[]));

        let bz = Predicate {
            blank_zero: Some("A".into()),
            ..Predicate::default()
        };
        let c = SlotPred::compile(&bz, &m, &|_| 0, &mut blank);
        assert_eq!(c.blank_flag, Some(0));
        assert!(c.eval(&[], false, &[true]));
        assert!(!c.eval(&[], false, &[false]));

        let nbz = Predicate {
            blank_zero: Some("A".into()),
            blank_zero_negated: true,
            ..Predicate::default()
        };
        let c = SlotPred::compile(&nbz, &m, &|_| 0, &mut blank);
        assert!(c.eval(&[], false, &[false]));
        assert!(!c.eval(&[], false, &[true]));
    }
}
