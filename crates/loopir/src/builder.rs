//! Convenience builders for the canonical BLAS3-shaped loop nests used
//! throughout the crate's tests.  The real routine definitions (all 24
//! variants) live in `oa-blas3`; these builders exist so `oa-loopir` can be
//! tested standalone.

use crate::arrays::ArrayDecl;
use crate::expr::AffineExpr;
use crate::nest::Program;
use crate::scalar::{Access, ScalarExpr};
use crate::stmt::{AssignOp, AssignStmt, Loop, Stmt};

/// Build the triply nested update statement `C[i][j] (op)= A[ar][ac] * B[br][bc]`.
pub fn mad_stmt(c: (&str, &str), a: (&str, &str), b: (&str, &str), op: AssignOp) -> Stmt {
    Stmt::Assign(AssignStmt::new(
        Access::idx("C", c.0, c.1),
        op,
        ScalarExpr::mul(
            ScalarExpr::load(Access::idx("A", a.0, a.1)),
            ScalarExpr::load(Access::idx("B", b.0, b.1)),
        ),
    ))
}

/// The labeled GEMM-NN source nest of Fig. 3:
///
/// ```text
/// Li: for (i = 0; i < M; i++)
///   Lj: for (j = 0; j < N; j++)
///     Lk: for (k = 0; k < K; k++)
///       C[i][j] += A[i][k] * B[k][j];
/// ```
pub fn gemm_nn_like(name: &str) -> Program {
    let mut p = Program::new(name, &["M", "N", "K"]);
    p.declare(ArrayDecl::global(
        "A",
        AffineExpr::var("M"),
        AffineExpr::var("K"),
    ));
    p.declare(ArrayDecl::global(
        "B",
        AffineExpr::var("K"),
        AffineExpr::var("N"),
    ));
    p.declare(ArrayDecl::global(
        "C",
        AffineExpr::var("M"),
        AffineExpr::var("N"),
    ));
    let lk = Loop::new(
        "Lk",
        "k",
        AffineExpr::zero(),
        AffineExpr::var("K"),
        vec![mad_stmt(
            ("i", "j"),
            ("i", "k"),
            ("k", "j"),
            AssignOp::AddAssign,
        )],
    );
    let lj = Loop::new(
        "Lj",
        "j",
        AffineExpr::zero(),
        AffineExpr::var("N"),
        vec![Stmt::Loop(Box::new(lk))],
    );
    let li = Loop::new(
        "Li",
        "i",
        AffineExpr::zero(),
        AffineExpr::var("M"),
        vec![Stmt::Loop(Box::new(lj))],
    );
    p.body = vec![Stmt::Loop(Box::new(li))];
    p
}

/// A triangular-k nest (TRMM-LL-N shape):
///
/// ```text
/// Li: for (i = 0; i < M; i++)
///   Lj: for (j = 0; j < N; j++)
///     Lk: for (k = 0; k <= i; k++)     // i.e. k < i + 1
///       C[i][j] += A[i][k] * B[k][j];
/// ```
pub fn trmm_ll_like(name: &str) -> Program {
    let mut p = gemm_nn_like(name);
    // A is a lower-triangular matrix: only k <= i is ever touched, and the
    // upper triangle is *blank* (not guaranteed zero unless a component
    // arranges it).
    p.declare(crate::arrays::ArrayDecl::global_with_fill(
        "A",
        AffineExpr::var("M"),
        AffineExpr::var("K"),
        crate::arrays::Fill::LowerTriangular,
    ));
    p.rewrite_loop("Lk", &mut |mut lk: Loop| {
        lk.upper = AffineExpr::var("i").add_const(1);
        vec![Stmt::Loop(Box::new(lk))]
    });
    p
}

/// A rank-K update restricted to the lower triangle (SYRK-LN shape):
///
/// ```text
/// Li: for (i = 0; i < M; i++)
///   Lj: for (j = 0; j < N; j++)
///     Lk: for (k = 0; k < K; k++)
///       if (i >= j)                    // only the stored triangle of C
///         C[i][j] += A[i][k] * A[j][k];
/// ```
///
/// Both operands read the *same* matrix (`C := A·Aᵀ + C`), and the
/// triangular restriction is a guard over the output — the shape whose
/// diagonal blocks straddle a thread block after distribution.  The
/// guard sits inside `Lk` so `loop_tiling`'s guard-contains-exactly-`Lk`
/// structure is preserved by `thread_grouping`.
pub fn syrk_ln_like(name: &str) -> Program {
    let mut p = Program::new(name, &["M", "N", "K"]);
    p.declare(ArrayDecl::global(
        "A",
        AffineExpr::var("M"),
        AffineExpr::var("K"),
    ));
    p.declare(ArrayDecl::global(
        "C",
        AffineExpr::var("M"),
        AffineExpr::var("N"),
    ));
    let guard = crate::expr::Predicate::cond(
        AffineExpr::var("i"),
        crate::expr::CmpOp::Ge,
        AffineExpr::var("j"),
    );
    let update = Stmt::Assign(AssignStmt::new(
        Access::idx("C", "i", "j"),
        AssignOp::AddAssign,
        ScalarExpr::mul(
            ScalarExpr::load(Access::idx("A", "i", "k")),
            ScalarExpr::load(Access::idx("A", "j", "k")),
        ),
    ));
    let lk = Loop::new(
        "Lk",
        "k",
        AffineExpr::zero(),
        AffineExpr::var("K"),
        vec![Stmt::guarded(guard, vec![update])],
    );
    let lj = Loop::new(
        "Lj",
        "j",
        AffineExpr::zero(),
        AffineExpr::var("N"),
        vec![Stmt::Loop(Box::new(lk))],
    );
    let li = Loop::new(
        "Li",
        "i",
        AffineExpr::zero(),
        AffineExpr::var("M"),
        vec![Stmt::Loop(Box::new(lj))],
    );
    p.body = vec![Stmt::Loop(Box::new(li))];
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape() {
        let p = gemm_nn_like("g");
        let lk = p.find_loop("Lk").unwrap();
        assert_eq!(lk.upper, AffineExpr::var("K"));
        assert_eq!(p.assignments().len(), 1);
    }

    #[test]
    fn syrk_guards_the_lower_triangle() {
        let p = syrk_ln_like("s");
        let lk = p.find_loop("Lk").unwrap();
        assert!(matches!(&lk.body[..], [Stmt::If { else_body, .. }] if else_body.is_empty()));
        assert_eq!(p.assignments().len(), 1);
    }

    #[test]
    fn trmm_triangular_bound() {
        let p = trmm_ll_like("t");
        let lk = p.find_loop("Lk").unwrap();
        assert!(lk.has_nonrectangular_bounds());
        assert_eq!(lk.upper, AffineExpr::var("i").add_const(1));
    }
}
