//! `loop_tiling` — tile the reduction dimension for locality (Sec. III.B).
//!
//! For the 2-D (GEMM-style) distribution this strip-mines `Lk` into a tile
//! loop `Lkk` and an intra-tile loop `Lkkk`, then hoists `Lkk` above the
//! per-thread register-tile loops so that one `KB`-deep slice of the
//! operands is live per step — the structure `SM_alloc` stages into shared
//! memory.  Hoisting the tile loop across the register loops reorders a
//! reduction, which is legal because the update operator is associative
//! (`+=` / `-=`); the component verifies this and fails otherwise.
//!
//! For the solver (TRSM-style) distribution, tiling must preserve the
//! forward-substitution order, so the k range of each row block splits
//! inherently into a *rectangular* region (full tiles strictly below the
//! diagonal block, reading already-solved rows) and a row-ordered
//! *diagonal* region interleaving the remaining updates with the divide
//! statements.

use crate::expr::{AffineExpr, CmpOp, Predicate};
use crate::nest::Program;
use crate::stmt::{AssignOp, Loop, Stmt};
use crate::transform::{GroupingStyle, KTileInfo, TResult, TransformError};

/// Apply `loop_tiling(Lii, Ljj, Lk)`.  Returns the labels
/// `(Liii, Ljjj, Lkkk)` (cf. Fig. 3).
pub fn loop_tiling(
    p: &mut Program,
    lii_label: &str,
    ljj_label: &str,
    lk_label: &str,
) -> TResult<(String, String, String)> {
    let info = p.tiling.clone().ok_or_else(|| {
        TransformError::NotApplicable("loop_tiling requires thread_grouping first".into())
    })?;
    if info.k_tile.is_some() {
        return Err(TransformError::NotApplicable(
            "k dimension already tiled".into(),
        ));
    }
    match info.style {
        GroupingStyle::Gemm2D => tile_2d(p, lii_label, ljj_label, lk_label),
        GroupingStyle::Solver1D => tile_solver(p, lii_label, lk_label),
    }
}

/// Infer the global extent of the `k` dimension from the declared shape of
/// an array subscripted by `k` (e.g. `A[i][k]` with `A: M x K` gives `K`).
fn k_extent(p: &Program, lk: &Loop) -> TResult<String> {
    // A rectangular bound names the extent directly.
    if let Some(param) = single_param(&lk.upper) {
        return Ok(param);
    }
    for a in lk.body.iter().flat_map(|s| s.assignments()) {
        for acc in a.accesses() {
            let Some(decl) = p.array(&acc.array) else {
                continue;
            };
            if acc.row.uses(&lk.var) {
                if let Some(param) = single_param(&decl.rows) {
                    return Ok(param);
                }
            }
            if acc.col.uses(&lk.var) {
                if let Some(param) = single_param(&decl.cols) {
                    return Ok(param);
                }
            }
        }
    }
    Err(TransformError::NotApplicable(format!(
        "cannot infer the extent of loop {}",
        lk.label
    )))
}

fn single_param(e: &AffineExpr) -> Option<String> {
    let vars: Vec<&str> = e.vars().collect();
    if vars.len() == 1 && e.coeff(vars[0]) == 1 && e.constant() == 0 {
        Some(vars[0].to_string())
    } else {
        None
    }
}

fn tile_2d(
    p: &mut Program,
    lii_label: &str,
    ljj_label: &str,
    lk_label: &str,
) -> TResult<(String, String, String)> {
    let info = p.tiling.clone().expect("checked by caller");
    let kb = info.params.kb;

    let lii = p
        .find_loop(lii_label)
        .ok_or_else(|| TransformError::Missing(format!("loop {lii_label}")))?
        .clone();

    // Expect the canonical chain Lii { Ljj { If(guard) { Lk { body } } } }.
    let ljj = match &lii.body[..] {
        [Stmt::Loop(l)] if l.label == ljj_label => (**l).clone(),
        _ => {
            return Err(TransformError::NotApplicable(format!(
                "{lii_label} does not immediately enclose {ljj_label}"
            )))
        }
    };
    let (guard, guarded_body) = match &ljj.body[..] {
        [Stmt::If {
            pred,
            then_body,
            else_body,
        }] if else_body.is_empty() => (pred.clone(), then_body.clone()),
        _ => {
            return Err(TransformError::NotApplicable(
                "expected a single guarded region inside the register loops".into(),
            ))
        }
    };
    let lk = match &guarded_body[..] {
        [Stmt::Loop(l)] if l.label == lk_label => (**l).clone(),
        _ => {
            return Err(TransformError::NotApplicable(format!(
                "the guarded region must contain exactly the loop {lk_label} \
                 (sibling statements would be re-executed per tile)"
            )))
        }
    };
    // Hoisting the tile loop across Lii/Ljj reorders the reduction: every
    // statement must be an associative accumulation.
    for a in lk.body.iter().flat_map(|s| s.assignments()) {
        if a.op == AssignOp::Assign {
            return Err(TransformError::NotApplicable(
                "k loop contains a non-accumulating statement; tile hoist illegal".into(),
            ));
        }
    }

    let extent_param = k_extent(p, &lk)?;
    let kbb = p.derive_param(&extent_param, kb);

    // k = kk*KB + k3 over the full [0, extent) range, guarded by the
    // original bounds (a non-zero lower bound — the upper-triangular
    // variants — becomes a `k >= lower` conjunct).  The edge guard from
    // thread_grouping and the k-range guard merge into one innermost
    // predicate.
    let k_expr = AffineExpr::term("kk", kb).add(&AffineExpr::var("k3"));
    let mut inner_guard = guard.and(crate::expr::AffineCond::new(
        k_expr.clone(),
        CmpOp::Lt,
        lk.upper.clone(),
    ));
    if lk.lower.as_const() != Some(0) {
        inner_guard = inner_guard.and(crate::expr::AffineCond::new(
            k_expr.clone(),
            CmpOp::Ge,
            lk.lower.clone(),
        ));
    }
    let body: Vec<Stmt> = lk.body.iter().map(|s| s.subst(&lk.var, &k_expr)).collect();

    // Rebuild in the Volkov order — the intra-tile k loop *outside* the
    // per-thread register loops, so each k step reuses its staged operands
    // across the whole register tile:
    // Lkk { Lkkk { Liii { Ljjj { If(guard && k-range) { body } } } } }.
    let mut new_ljj = ljj.clone();
    new_ljj.label = "Ljjj".into();
    new_ljj.body = vec![Stmt::If {
        pred: inner_guard,
        then_body: body,
        else_body: Vec::new(),
    }];
    let mut new_lii = lii.clone();
    new_lii.label = "Liii".into();
    new_lii.body = vec![Stmt::Loop(Box::new(new_ljj))];
    let lkkk = Loop::new(
        "Lkkk",
        "k3",
        AffineExpr::zero(),
        AffineExpr::cst(kb),
        vec![Stmt::Loop(Box::new(new_lii))],
    );
    let lkk = Loop::new(
        "Lkk",
        "kk",
        AffineExpr::zero(),
        AffineExpr::var(&kbb),
        vec![Stmt::Loop(Box::new(lkkk))],
    );

    p.rewrite_loop(lii_label, &mut |_| vec![Stmt::Loop(Box::new(lkk.clone()))]);

    let mut info = p.tiling.take().expect("tiling info");
    info.k_tile = Some(KTileInfo {
        orig_var: lk.var.clone(),
        tile_var: "kk".into(),
        point_var: "k3".into(),
        kb,
        tile_label: "Lkk".into(),
        point_label: "Lkkk".into(),
        expr: k_expr,
        extent: extent_param.clone(),
    });
    info.intra_vars.push(("k3".into(), kb));
    p.tiling = Some(info);
    Ok(("Liii".into(), "Ljjj".into(), "Lkkk".into()))
}

fn tile_solver(
    p: &mut Program,
    lii_label: &str,
    _lk_label: &str,
) -> TResult<(String, String, String)> {
    let info = p.tiling.clone().expect("checked by caller");
    let tb = info.params.ty; // row-block depth
    let kb = info.params.kb;
    if tb % kb != 0 {
        return Err(TransformError::BadParams(format!(
            "solver tiling requires KB ({kb}) to divide the row-block size TY ({tb})"
        )));
    }
    let r = tb / kb; // k tiles per row block

    let lii = p
        .find_loop(lii_label)
        .ok_or_else(|| TransformError::Missing(format!("loop {lii_label}")))?
        .clone();
    // Expect Lii { Lk(k in [0, i)) { updates }, post... } — the forward
    // substitution pattern.
    let (lk, post): (Loop, Vec<Stmt>) = match &lii.body[..] {
        [Stmt::Loop(l), rest @ ..] => ((**l).clone(), rest.to_vec()),
        _ => {
            return Err(TransformError::NotApplicable(
                "solver row loop must start with the update loop".into(),
            ))
        }
    };
    if lk.lower.as_const() != Some(0) || lk.upper != AffineExpr::var(&lii.var) {
        return Err(TransformError::NotApplicable(format!(
            "solver update loop must run k in [0, {}), found [{}, {})",
            lii.var, lk.lower, lk.upper
        )));
    }
    let m_param = single_param(&lii.upper).ok_or_else(|| {
        TransformError::NotApplicable("solver row loop bound must be a size parameter".into())
    })?;
    let mbb = p.derive_param(&m_param, tb);

    let i_expr = AffineExpr::term("ibb", tb).add(&AffineExpr::var("i3"));
    let i_guard = Predicate::cond(i_expr.clone(), CmpOp::Lt, AffineExpr::var(&m_param));

    // Rectangular region: kk in [0, ibb*R), k = kk*KB + k3 (all below the
    // diagonal block, reading rows solved in earlier ibb iterations).
    let k_rect = AffineExpr::term("kk", kb).add(&AffineExpr::var("k3"));
    let rect_body: Vec<Stmt> = lk
        .body
        .iter()
        .map(|s| s.subst(&lii.var, &i_expr).subst(&lk.var, &k_rect))
        .collect();
    let lkkk = Loop::new(
        "Lkkk",
        "k3",
        AffineExpr::zero(),
        AffineExpr::cst(kb),
        rect_body,
    );
    let liii = Loop::new(
        "Liii",
        "i3",
        AffineExpr::zero(),
        AffineExpr::cst(tb),
        vec![Stmt::guarded(
            i_guard.clone(),
            vec![Stmt::Loop(Box::new(lkkk))],
        )],
    );
    let lkk = Loop::new(
        "Lkk",
        "kk",
        AffineExpr::zero(),
        AffineExpr::term("ibb", r),
        vec![Stmt::Loop(Box::new(liii))],
    );

    // Diagonal region: row-ordered, k = ibb*TB + k3 with k3 in [0, i3),
    // followed by the post statements (the divides) for that row.
    let k_diag = AffineExpr::term("ibb", tb).add(&AffineExpr::var("k3"));
    let diag_updates: Vec<Stmt> = lk
        .body
        .iter()
        .map(|s| s.subst(&lii.var, &i_expr).subst(&lk.var, &k_diag))
        .collect();
    let lkd = Loop::new(
        "Lkd",
        "k3",
        AffineExpr::zero(),
        AffineExpr::var("i3"),
        diag_updates,
    );
    let mut diag_body = vec![Stmt::Loop(Box::new(lkd))];
    diag_body.extend(post.iter().map(|s| s.subst(&lii.var, &i_expr)));
    let ldiag = Loop::new(
        "Ldiag",
        "i3",
        AffineExpr::zero(),
        AffineExpr::cst(tb),
        vec![Stmt::guarded(i_guard, diag_body)],
    );

    let libb = Loop::new(
        "Libb",
        "ibb",
        AffineExpr::zero(),
        AffineExpr::var(&mbb),
        vec![Stmt::Loop(Box::new(lkk)), Stmt::Loop(Box::new(ldiag))],
    );

    p.rewrite_loop(lii_label, &mut |_| vec![Stmt::Loop(Box::new(libb.clone()))]);

    let mut info = p.tiling.take().expect("tiling info");
    info.dim_i.block_var = Some("ibb".into());
    info.dim_i.tile = tb;
    info.dim_i.reg_var = Some("i3".into());
    info.dim_i.reg_extent = tb;
    info.dim_i.expr = i_expr;
    info.k_tile = Some(KTileInfo {
        orig_var: lk.var.clone(),
        tile_var: "kk".into(),
        point_var: "k3".into(),
        kb,
        tile_label: "Lkk".into(),
        point_label: "Lkkk".into(),
        expr: k_rect,
        extent: m_param.clone(),
    });
    info.intra_vars
        .extend([("i3".into(), tb), ("k3".into(), kb)]);
    info.diag_label = Some("Ldiag".into());
    p.tiling = Some(info);
    // By convention the returned labels address the rectangular region,
    // which is where unrolling and staging pay off.
    Ok(("Liii".into(), "Ljjj".into(), "Lkkk".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{gemm_nn_like, trmm_ll_like};
    use crate::interp::{equivalent_on, Bindings};
    use crate::scalar::{Access, BinOp, ScalarExpr};
    use crate::stmt::AssignStmt;
    use crate::transform::{thread_grouping, TileParams};

    fn small_params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    /// The solver distribution requires one column per thread (TX == thr_j).
    fn solver_params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 4,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    #[test]
    fn gemm_tiling_preserves_semantics() {
        let reference = gemm_nn_like("g");
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", small_params()).unwrap();
        let (liii, ljjj, lkkk) = loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        assert_eq!(
            (liii.as_str(), ljjj.as_str(), lkkk.as_str()),
            ("Liii", "Ljjj", "Lkkk")
        );
        assert!(p.find_loop("Lkk").is_some());
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(16),
            3,
            1e-4
        ));
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(13),
            3,
            1e-4
        ));
    }

    #[test]
    fn trmm_tiling_keeps_triangular_guard() {
        let reference = trmm_ll_like("t");
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", small_params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(16),
            5,
            1e-4
        ));
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(11),
            5,
            1e-4
        ));
    }

    fn trsm_like() -> Program {
        let mut p = gemm_nn_like("trsm-like");
        p.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("B", "i", "j"),
                AssignOp::SubAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "i", "k")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            // Division post-statement: B[i][j] = B[i][j] / A[i][i].
            vec![
                Stmt::Loop(Box::new(lk)),
                Stmt::Assign(AssignStmt::new(
                    Access::idx("B", "i", "j"),
                    AssignOp::Assign,
                    ScalarExpr::Bin(
                        BinOp::Div,
                        Box::new(ScalarExpr::load(Access::idx("B", "i", "j"))),
                        Box::new(ScalarExpr::load(Access::idx("A", "i", "i"))),
                    ),
                )),
            ]
        });
        p
    }

    #[test]
    fn solver_tiling_preserves_forward_substitution() {
        let reference = trsm_like();
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", solver_params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let info = p.tiling.as_ref().unwrap();
        assert_eq!(info.diag_label.as_deref(), Some("Ldiag"));
        // Note the diagonal of A must be non-zero for the divide; the
        // pseudo-random fill makes zeros measure-zero.
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(16),
            7,
            1e-3
        ));
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(10),
            7,
            1e-3
        ));
    }

    #[test]
    fn tiling_requires_grouping() {
        let mut p = gemm_nn_like("g");
        let err = loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn double_tiling_rejected() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", small_params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let err = loop_tiling(&mut p, "Liii", "Ljjj", "Lkkk").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn solver_kb_must_divide_ty() {
        let mut p = trsm_like();
        let params = TileParams {
            ty: 8,
            tx: 4,
            thr_i: 4,
            thr_j: 4,
            kb: 3,
            unroll: 0,
        };
        thread_grouping(&mut p, "Li", "Lj", params).unwrap();
        let err = loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap_err();
        assert!(matches!(err, TransformError::BadParams(_)));
    }
}
