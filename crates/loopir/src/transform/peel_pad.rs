//! `peel_triangular` / `padding_triangular` — the two ways
//! `Adaptor_Triangular` deals with un-uniform loop bounds (Sec. IV.A.3,
//! Fig. 6).
//!
//! Both components run after `loop_tiling` ("for a triangular area, the
//! detection will fail before loop tiling is applied"): only then does the
//! iteration space decompose into *trapezoid* areas — full rectangular
//! tiles plus a guarded diagonal band.
//!
//! * `peel_triangular` splits the k-tile loop into an unguarded rectangular
//!   loop and a guarded diagonal loop, shrinking both to their true ranges
//!   (the original tiled loop wastes whole guard-false tiles).
//! * `padding_triangular` keeps a single loop over the padded rectangular
//!   range with the triangular guard *removed*; the padded iterations read
//!   the blank triangle, which is only sound when it contains zeros
//!   (`cond(blank(X).zero = true)`), so the component emits multi-versioned
//!   code dispatching on a runtime `check_blank_zero` flag.

use crate::expr::{AffineExpr, CmpOp, Predicate};
use crate::nest::{BlankZeroCheck, Program};
use crate::stmt::{AssignOp, Loop, Stmt};
use crate::transform::{GroupingStyle, TResult, TransformError};

/// The analyzed triangular guard of a tiled nest.
struct TriBand {
    /// Index of the triangular conjunct in the inner guard.
    cond_idx: usize,
    /// Block variable of the dimension the bound follows (`ib` or `jb`).
    block_var: String,
    /// k tiles per block tile (`TY/KB` or `TX/KB`).
    ratio: i64,
    /// `true` for lower-triangular style (`k < i + c`: guard passes for
    /// small k), `false` for upper (`k >= i + c`).
    lower_form: bool,
}

/// Locate the triangular conjunct inside `Lkkk`'s guard and classify it.
fn analyze(p: &Program, array: &str) -> TResult<(TriBand, Loop, Predicate, Vec<Stmt>)> {
    let info = p
        .tiling
        .as_ref()
        .ok_or_else(|| TransformError::NotApplicable("requires thread_grouping".into()))?;
    if info.style != GroupingStyle::Gemm2D {
        return Err(TransformError::NotApplicable(
            "the solver distribution separates its triangular region during tiling".into(),
        ));
    }
    let kt = info.k_tile.as_ref().ok_or_else(|| {
        TransformError::NotApplicable("trapezoid detection fails before loop tiling".into())
    })?;
    if p.array(array).is_none() {
        return Err(TransformError::Missing(format!("array {array}")));
    }
    let lkk = p
        .find_loop(&kt.tile_label)
        .ok_or_else(|| TransformError::Missing(format!("loop {}", kt.tile_label)))?
        .clone();
    let lkkk = p
        .find_loop(&kt.point_label)
        .ok_or_else(|| TransformError::Missing(format!("loop {}", kt.point_label)))?
        .clone();
    // Descend through the register-loop wrappers to the merged innermost
    // guard.
    let mut cursor: &[Stmt] = &lkkk.body;
    let (pred, inner) = loop {
        match cursor {
            [Stmt::Loop(l)] => cursor = &l.body,
            [Stmt::If {
                pred,
                then_body,
                else_body,
            }] if else_body.is_empty() => break (pred.clone(), then_body.clone()),
            _ => {
                return Err(TransformError::NotApplicable(
                    "no guarded region inside the k point loop".into(),
                ))
            }
        }
    };

    for (idx, cond) in pred.conds.iter().enumerate() {
        // Normalize to `diff ⋈ 0` with `pass ⇔ diff < 0` (Lt) or the
        // mirrored Ge form.
        // Tiling emits the k-range guards as `k < upper` (Lt — passes for
        // small k: lower-triangular form) or `k >= lower` (Ge — passes for
        // large k: upper form).  In both, `diff = lhs - rhs` carries
        // `+KB·kk + k3` and `-tile·block_var`.
        let (diff, lower_form) = match cond.op {
            CmpOp::Lt => (cond.lhs.sub(&cond.rhs), true),
            CmpOp::Ge => (cond.lhs.sub(&cond.rhs), false),
            _ => continue,
        };
        if diff.coeff(&kt.tile_var) != kt.kb || diff.coeff(&kt.point_var) != 1 {
            continue;
        }
        // Which block dimension does the bound follow?
        for dim in [&info.dim_i, &info.dim_j] {
            let Some(bv) = &dim.block_var else { continue };
            if diff.coeff(bv) == -dim.tile {
                if dim.tile % kt.kb != 0 {
                    return Err(TransformError::BadParams(format!(
                        "KB ({}) must divide the block tile ({})",
                        kt.kb, dim.tile
                    )));
                }
                let band = TriBand {
                    cond_idx: idx,
                    block_var: bv.clone(),
                    ratio: dim.tile / kt.kb,
                    lower_form,
                };
                return Ok((band, lkk, pred, inner));
            }
        }
    }
    Err(TransformError::NotApplicable(format!(
        "no trapezoid area involving {array} detected"
    )))
}

/// Rebuild the `Lkk` loop body with the given guard predicate (or none).
fn rebuild_kk(
    template: &Loop,
    label: &str,
    lower: AffineExpr,
    upper: AffineExpr,
    pred: Option<Predicate>,
    inner: &[Stmt],
    relabel_suffix: Option<&str>,
) -> Stmt {
    // template.body = [... Liii { Ljjj { If(outer guard) { Lkkk { If(pred){inner} } } } }]
    // We rewrite the innermost guard through a structural map.
    fn rewrite(
        stmts: &[Stmt],
        pred: &Option<Predicate>,
        inner: &[Stmt],
        suffix: Option<&str>,
    ) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Loop(l) => {
                    let mut nl = (**l).clone();
                    if let Some(sfx) = suffix {
                        nl.label = format!("{}{}", nl.label, sfx);
                    }
                    nl.body = rewrite(&nl.body, pred, inner, suffix);
                    Stmt::Loop(Box::new(nl))
                }
                Stmt::If {
                    pred: q,
                    then_body,
                    else_body,
                } => {
                    // The innermost guard is the one wrapping the original
                    // inner statements.
                    if then_body == inner {
                        match pred {
                            Some(np) => Stmt::If {
                                pred: np.clone(),
                                then_body: inner.to_vec(),
                                else_body: Vec::new(),
                            },
                            None => {
                                if inner.len() == 1 {
                                    inner[0].clone()
                                } else {
                                    Stmt::If {
                                        pred: Predicate::always(),
                                        then_body: inner.to_vec(),
                                        else_body: Vec::new(),
                                    }
                                }
                            }
                        }
                    } else {
                        Stmt::If {
                            pred: q.clone(),
                            then_body: rewrite(then_body, pred, inner, suffix),
                            else_body: rewrite(else_body, pred, inner, suffix),
                        }
                    }
                }
                other => other.clone(),
            })
            .collect()
    }
    let mut l = template.clone();
    l.label = label.to_string();
    l.lower = lower;
    l.upper = upper;
    l.body = rewrite(&template.body, &pred, inner, relabel_suffix);
    Stmt::Loop(Box::new(l))
}

/// Apply `peel_triangular(X)`.
pub fn peel_triangular(p: &mut Program, array: &str) -> TResult {
    let (band, lkk, pred, inner) = analyze(p, array)?;
    let r = band.ratio;
    let bv = AffineExpr::term(&band.block_var, r);

    // Guard without the triangular conjunct (rectangular region).
    let mut rect_pred = pred.clone();
    rect_pred.conds.remove(band.cond_idx);
    let rect_pred = if rect_pred.is_always() {
        None
    } else {
        Some(rect_pred)
    };

    let (rect, diag) = if band.lower_form {
        // full: [0, ib*R)           diag: [ib*R, (ib+1)*R)
        (
            rebuild_kk(
                &lkk,
                "Lkk",
                AffineExpr::zero(),
                bv.clone(),
                rect_pred,
                &inner,
                None,
            ),
            rebuild_kk(
                &lkk,
                "Lkk_diag",
                bv.clone(),
                bv.add_const(r),
                Some(pred.clone()),
                &inner,
                Some("_t"),
            ),
        )
    } else {
        // diag: [ib*R, (ib+1)*R)    full: [(ib+1)*R, Kb)
        (
            rebuild_kk(
                &lkk,
                "Lkk",
                bv.add_const(r),
                lkk.upper.clone(),
                rect_pred,
                &inner,
                None,
            ),
            rebuild_kk(
                &lkk,
                "Lkk_diag",
                bv.clone(),
                bv.add_const(r),
                Some(pred.clone()),
                &inner,
                Some("_t"),
            ),
        )
    };
    let replacement = if band.lower_form {
        vec![rect, diag]
    } else {
        vec![diag, rect]
    };
    let label = lkk.label.clone();
    p.rewrite_loop(&label, &mut |_| replacement.clone());
    Ok(())
}

/// Apply `padding_triangular(X)` with `cond(blank(X).zero = true)`
/// multi-versioning.
pub fn padding_triangular(p: &mut Program, array: &str) -> TResult {
    let (band, lkk, pred, inner) = analyze(p, array)?;
    // Padding turns guard-false iterations into reads of the blank
    // triangle; they must contribute nothing, so every statement has to be
    // an accumulation whose right-hand side reads the padded array.
    for s in &inner {
        for a in s.assignments() {
            if a.op == AssignOp::Assign {
                return Err(TransformError::NotApplicable(
                    "padded iterations require accumulation statements".into(),
                ));
            }
            let feeds = a.rhs.accesses().iter().any(|acc| {
                let d = p.array(&acc.array);
                d.map(|d| d.name == *array || d.name == format!("New{array}"))
                    .unwrap_or(false)
            });
            if !feeds {
                return Err(TransformError::NotApplicable(format!(
                    "statement does not read {array}; padding would change it"
                )));
            }
        }
    }

    let r = band.ratio;
    let bv = AffineExpr::term(&band.block_var, r);
    let mut padded_pred = pred.clone();
    padded_pred.conds.remove(band.cond_idx);
    // The removed triangular conjunct may have been the only bound keeping
    // `k` inside the matrix (ragged sizes); re-impose the edge guard.  It
    // specializes away on tile-divisible sizes.
    let kt = p
        .tiling
        .as_ref()
        .and_then(|i| i.k_tile.clone())
        .expect("k-tiled");
    let edge =
        crate::expr::AffineCond::new(kt.expr.clone(), CmpOp::Lt, AffineExpr::var(&kt.extent));
    if !padded_pred.conds.contains(&edge) {
        padded_pred.conds.push(edge);
    }
    let padded_pred = if padded_pred.is_always() {
        None
    } else {
        Some(padded_pred)
    };

    let (lo, hi) = if band.lower_form {
        (AffineExpr::zero(), bv.add_const(r))
    } else {
        (bv, lkk.upper.clone())
    };
    let padded = rebuild_kk(&lkk, "Lkk", lo, hi, padded_pred, &inner, None);
    // The fallback version keeps the original (guarded, full-range) loop.
    let mut fallback_lkk = lkk.clone();
    fallback_lkk.label = "Lkk_orig".into();
    let fallback = rebuild_kk(
        &fallback_lkk,
        "Lkk_orig",
        lkk.lower.clone(),
        lkk.upper.clone(),
        Some(pred),
        &inner,
        Some("_o"),
    );

    // When GM_map re-mapped the matrix, the padded iterations read the
    // mapped copy: the runtime blank check must target it.
    let checked = if p.array(&format!("New{array}")).is_some() {
        format!("New{array}")
    } else {
        array.to_string()
    };
    let versioned = Stmt::If {
        pred: Predicate {
            blank_zero: Some(checked.clone()),
            ..Predicate::default()
        },
        then_body: vec![padded],
        else_body: vec![fallback],
    };
    let label = lkk.label.clone();
    p.rewrite_loop(&label, &mut |_| vec![versioned.clone()]);
    if !p.blank_checks.iter().any(|c| c.array == checked) {
        p.blank_checks.push(BlankZeroCheck { array: checked });
    }
    Ok(())
}

/// Probe used by tests and the composer: does the tiled nest still carry a
/// triangular guard band (a conjunct coupling the k iterators with a block
/// variable)?
pub fn has_triangular_guard(p: &Program) -> bool {
    let Some(lkkk) = p
        .tiling
        .as_ref()
        .and_then(|i| i.k_tile.as_ref())
        .and_then(|kt| p.find_loop(&kt.point_label))
    else {
        return false;
    };
    let mut cursor: &[Stmt] = &lkkk.body;
    loop {
        match cursor {
            [Stmt::Loop(l)] => cursor = &l.body,
            [Stmt::If { pred, .. }] => {
                return pred.conds.iter().any(|c| {
                    let uses = |v: &str| c.lhs.uses(v) || c.rhs.uses(v);
                    (uses("kk") || uses("k3")) && (uses("ib") || uses("jb"))
                })
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{gemm_nn_like, trmm_ll_like};
    use crate::interp::{equivalent_on, Bindings};
    use crate::transform::{loop_tiling, thread_grouping, TileParams};

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 8,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    fn tiled_trmm() -> (Program, Program) {
        let reference = trmm_ll_like("t");
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        (reference, p)
    }

    #[test]
    fn peel_splits_and_preserves_semantics() {
        let (reference, mut p) = tiled_trmm();
        peel_triangular(&mut p, "A").unwrap();
        assert!(p.find_loop("Lkk").is_some());
        assert!(p.find_loop("Lkk_diag").is_some());
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(16),
            3,
            1e-4
        ));
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(24),
            7,
            1e-4
        ));
    }

    #[test]
    fn peel_rectangular_region_is_unguarded() {
        let (_, mut p) = tiled_trmm();
        peel_triangular(&mut p, "A").unwrap();
        // The triangular conjunct couples the k iterators (kk/k3) with the
        // block variable ib; after peeling no such conjunct remains in the
        // rectangular region (the outer i<M/j<N edge guard, which also
        // mentions ib, legitimately stays).
        let lkk = p.find_loop("Lkk").unwrap().clone();
        let mut found_tri = false;
        fn scan(stmts: &[Stmt], found: &mut bool) {
            for s in stmts {
                match s {
                    Stmt::If {
                        pred,
                        then_body,
                        else_body,
                    } => {
                        if pred.conds.iter().any(|c| {
                            let uses = |v: &str| c.lhs.uses(v) || c.rhs.uses(v);
                            (uses("kk") || uses("k3")) && uses("ib")
                        }) {
                            *found = true;
                        }
                        scan(then_body, found);
                        scan(else_body, found);
                    }
                    Stmt::Loop(l) => scan(&l.body, found),
                    _ => {}
                }
            }
        }
        scan(&lkk.body, &mut found_tri);
        assert!(
            !found_tri,
            "triangular guard must be peeled off the rectangular region"
        );
    }

    #[test]
    fn peel_before_tiling_fails() {
        let mut p = trmm_ll_like("t");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        let err = peel_triangular(&mut p, "A").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn peel_on_rectangular_gemm_fails() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let err = peel_triangular(&mut p, "A").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn padding_multiversion_correct_when_blanks_zero() {
        let reference = trmm_ll_like("t");
        let mut p = reference.clone();
        // Declare A's blank area zeroed: the allocator will zero-fill it.
        p.array_mut("A").unwrap().fill = crate::arrays::Fill::LowerTriangular;
        p.array_mut("A").unwrap().blank_is_zero = true;
        let mut reference2 = reference.clone();
        reference2.array_mut("A").unwrap().fill = crate::arrays::Fill::LowerTriangular;
        reference2.array_mut("A").unwrap().blank_is_zero = true;

        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        padding_triangular(&mut p, "A").unwrap();
        assert_eq!(p.blank_checks.len(), 1);
        assert!(equivalent_on(
            &reference2,
            &p,
            &Bindings::square(16),
            11,
            1e-4
        ));
    }

    #[test]
    fn padding_fallback_correct_when_blanks_dirty() {
        // Blanks NOT zeroed: the runtime check must route execution to the
        // fallback (guarded) version and results stay correct.
        let reference = trmm_ll_like("t");
        let mut p = reference.clone();
        p.array_mut("A").unwrap().fill = crate::arrays::Fill::LowerTriangular;
        // blank_is_zero stays false: the buffers keep random garbage there.
        let mut reference2 = reference.clone();
        reference2.array_mut("A").unwrap().fill = crate::arrays::Fill::LowerTriangular;

        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        padding_triangular(&mut p, "A").unwrap();
        assert!(equivalent_on(
            &reference2,
            &p,
            &Bindings::square(16),
            13,
            1e-4
        ));
    }

    /// TRMM-LU-N-like nest: k in [i, M) — the upper-triangular form.
    fn trmm_lu_like() -> Program {
        let mut p = gemm_nn_like("tu");
        p.array_mut("A").unwrap().fill = crate::arrays::Fill::UpperTriangular;
        p.rewrite_loop("Lk", &mut |mut lk| {
            lk.lower = AffineExpr::var("i");
            lk.upper = AffineExpr::var("K");
            vec![Stmt::Loop(Box::new(lk))]
        });
        p
    }

    #[test]
    fn peel_handles_upper_form() {
        let reference = trmm_lu_like();
        let mut p = reference.clone();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        peel_triangular(&mut p, "A").unwrap();
        assert!(p.find_loop("Lkk_diag").is_some());
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(16),
            3,
            1e-4
        ));
        assert!(equivalent_on(
            &reference,
            &p,
            &Bindings::square(24),
            5,
            1e-4
        ));
    }

    #[test]
    fn padding_handles_upper_form() {
        let reference = trmm_lu_like();
        let mut p = reference.clone();
        p.array_mut("A").unwrap().blank_is_zero = true;
        let mut reference2 = reference.clone();
        reference2.array_mut("A").unwrap().blank_is_zero = true;
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        padding_triangular(&mut p, "A").unwrap();
        assert!(equivalent_on(
            &reference2,
            &p,
            &Bindings::square(16),
            7,
            1e-4
        ));
        // Ragged size exercises the re-imposed k < K edge guard.
        assert!(equivalent_on(
            &reference2,
            &p,
            &Bindings::square(20),
            7,
            1e-4
        ));
    }

    #[test]
    fn triangular_guard_probe() {
        let (_, p) = tiled_trmm();
        assert!(has_triangular_guard(&p));
        let mut g = gemm_nn_like("g");
        thread_grouping(&mut g, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut g, "Lii", "Ljj", "Lk").unwrap();
        assert!(!has_triangular_guard(&g));
    }
}
