//! The optimization components of the two EPOD pools (Sec. III–IV).
//!
//! Each component is a fallible rewrite of a [`Program`].  Failure
//! ([`TransformError::NotApplicable`]) is a first-class outcome: the
//! composer's filter *degenerates* sequences whose components fail, exactly
//! as described for the `Adaptor_Triangular` example in Sec. IV.B.2.
//!
//! | Pool | Components |
//! |------|------------|
//! | polyhedral | `thread_grouping`, `loop_tiling`, `loop_interchange`, `loop_fission`, `loop_fusion`, `GM_map`, `format_iteration`, `peel_triangular`, `padding_triangular` |
//! | traditional | `loop_unroll`, `SM_alloc`, `Reg_alloc`, `binding_triangular` |

mod binding;
mod fission_fusion;
mod format_iteration;
mod fuse;
mod gm_map;
mod interchange;
mod peel_pad;
mod reg_alloc;
mod sm_alloc;
mod thread_grouping;
mod tiling;
mod unroll;

pub use binding::binding_triangular;
pub use fission_fusion::{loop_fission, loop_fusion};
pub use format_iteration::format_iteration;
pub use fuse::{epilogue_fuse, solver_prologue_fuse, EpilogueSpec, PrologueSpec};
pub use gm_map::gm_map;
pub use interchange::loop_interchange;
pub use peel_pad::{has_triangular_guard, padding_triangular, peel_triangular};
pub use reg_alloc::reg_alloc;
pub use sm_alloc::sm_alloc;
pub use thread_grouping::{thread_grouping, GroupingStyle};
pub use tiling::loop_tiling;
pub use unroll::loop_unroll;

use crate::expr::AffineExpr;
use std::fmt;

/// Why a component could not be applied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransformError {
    /// The component's structural precondition failed; the filter degrades
    /// the sequence by dropping the component (Sec. IV.B.2).
    NotApplicable(String),
    /// A referenced loop label or array is missing — a malformed script,
    /// reported to the developer rather than silently degraded.
    Missing(String),
    /// Parameter values violate a divisibility/resource constraint.
    BadParams(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NotApplicable(m) => write!(f, "not applicable: {m}"),
            TransformError::Missing(m) => write!(f, "missing: {m}"),
            TransformError::BadParams(m) => write!(f, "bad parameters: {m}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// Component result type.
pub type TResult<T = ()> = Result<T, TransformError>;

/// Tunable tile/thread-shape parameters, searched by `oa-autotune`
/// (the paper tunes them "with the method in [4]").
///
/// Matrices are column-major, so threads along the *i* (row) dimension are
/// mapped to `threadIdx.x`: consecutive threads touch consecutive memory
/// and global accesses coalesce, the same layout choice Volkov's GEMM makes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TileParams {
    /// Block tile rows (`TY`): rows of C computed per thread block.
    pub ty: i64,
    /// Block tile columns (`TX`).
    pub tx: i64,
    /// Threads along the i (row) dimension — mapped to `threadIdx.x`.
    pub thr_i: i64,
    /// Threads along the j (column) dimension — mapped to `threadIdx.y`.
    pub thr_j: i64,
    /// K-tile depth (`KB`).
    pub kb: i64,
    /// Requested unroll factor for `loop_unroll` (0 = full).
    pub unroll: usize,
}

impl Default for TileParams {
    fn default() -> Self {
        // A safe, CC1.x-friendly default: 32x32 C tiles, 16x16 threads
        // (256 threads/block), 2x2 register tiles, 16-deep K tiles.
        Self {
            ty: 32,
            tx: 32,
            thr_i: 16,
            thr_j: 16,
            kb: 16,
            unroll: 0,
        }
    }
}

impl TileParams {
    /// Register-tile rows per thread.
    pub fn reg_rows(&self) -> i64 {
        self.ty / self.thr_i
    }

    /// Register-tile columns per thread.
    pub fn reg_cols(&self) -> i64 {
        self.tx / self.thr_j
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.thr_i * self.thr_j
    }

    /// Validate divisibility constraints.
    pub fn validate(&self) -> TResult {
        if self.ty <= 0 || self.tx <= 0 || self.thr_i <= 0 || self.thr_j <= 0 || self.kb <= 0 {
            return Err(TransformError::BadParams(
                "non-positive tile parameter".into(),
            ));
        }
        if self.ty % self.thr_i != 0 || self.tx % self.thr_j != 0 {
            return Err(TransformError::BadParams(format!(
                "thread shape ({}, {}) must divide block tile ({}, {})",
                self.thr_i, self.thr_j, self.ty, self.tx
            )));
        }
        Ok(())
    }
}

/// One tiled data dimension, recording how an original iterator was
/// decomposed by `thread_grouping` (+ `loop_tiling`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TiledDim {
    /// The original iterator (`i` / `j`).
    pub orig_var: String,
    /// Block-loop iterator (`ib`), if this dimension is block-distributed.
    pub block_var: Option<String>,
    /// Block tile size (`TY`); equals the full extent when not tiled.
    pub tile: i64,
    /// Thread-loop iterator (`it`), if thread-distributed.
    pub thread_var: Option<String>,
    /// Thread extent (`TDY`).
    pub thread_extent: i64,
    /// Register-tile iterator (`ii`), if register-tiled.
    pub reg_var: Option<String>,
    /// Register-tile extent per thread.
    pub reg_extent: i64,
    /// Full reconstruction of the original iterator,
    /// e.g. `ib*TY + ii*TDY + it`.
    pub expr: AffineExpr,
}

/// The k-dimension tiling produced by `loop_tiling`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KTileInfo {
    /// The original reduction iterator (`k`).
    pub orig_var: String,
    /// Tile-loop iterator (`kk`).
    pub tile_var: String,
    /// Intra-tile iterator (`k3`).
    pub point_var: String,
    /// Tile depth (`KB`).
    pub kb: i64,
    /// Label of the tile loop (`Lkk`).
    pub tile_label: String,
    /// Label of the intra-tile loop (`Lkkk`).
    pub point_label: String,
    /// `kk*KB + k3` — reconstruction of `k`.
    pub expr: AffineExpr,
    /// Size parameter bounding the k dimension (`K`, or `M`/`N` for the
    /// triangular routines) — padding re-imposes it as an edge guard.
    pub extent: String,
}

/// Metadata shared between the grouping/tiling components and the memory
/// components, stored on the program.
#[derive(Clone, PartialEq, Debug)]
pub struct TilingInfo {
    /// The i (rows-of-C) dimension.
    pub dim_i: TiledDim,
    /// The j (cols-of-C) dimension.
    pub dim_j: TiledDim,
    /// k-tiling, once `loop_tiling` has run.
    pub k_tile: Option<KTileInfo>,
    /// All iterators that vary *within* a block tile, with their extents.
    /// Substituting each variable's minimizing value yields a tile-origin
    /// expression (the minimum handles reversed-index accesses such as the
    /// backward-substitution TRSM variants, where coefficients are
    /// negative).
    pub intra_vars: Vec<(String, i64)>,
    /// The parameters the structure was built with.
    pub params: TileParams,
    /// `GroupingStyle` used (GEMM-like 2-D or solver 1-D).
    pub style: GroupingStyle,
    /// Label of the solver's diagonal (triangular) region, once
    /// `loop_tiling` has created it (`Solver1D` only); the target of
    /// `binding_triangular`.
    pub diag_label: Option<String>,
}

impl TilingInfo {
    /// Minimize an expression over the intra-tile iteration box, producing
    /// the tile-origin along that subscript: each intra variable is
    /// replaced by 0 when its coefficient is non-negative and by
    /// `extent - 1` otherwise (reversed-index accesses).
    pub fn tile_origin(&self, e: &AffineExpr) -> AffineExpr {
        let mut out = e.clone();
        for (v, extent) in &self.intra_vars {
            let at = if out.coeff(v) >= 0 { 0 } else { extent - 1 };
            out = out.subst(v, &AffineExpr::cst(at));
        }
        out
    }

    /// The extent of variation of a subscript within one (block, k-tile)
    /// instance: `tile` if it follows the i/j block dimension, `kb` if it
    /// follows the k tile, 1 if invariant.
    pub fn tile_extent(&self, e: &AffineExpr) -> i64 {
        if let Some(kt) = &self.k_tile {
            if e.uses(&kt.point_var) || e.uses(&kt.tile_var) {
                return kt.kb;
            }
        }
        if let Some(bv) = &self.dim_i.block_var {
            if e.uses(bv) {
                return self.dim_i.tile;
            }
        }
        if self
            .dim_i
            .thread_var
            .as_deref()
            .map(|v| e.uses(v))
            .unwrap_or(false)
            || self
                .dim_i
                .reg_var
                .as_deref()
                .map(|v| e.uses(v))
                .unwrap_or(false)
        {
            return self.dim_i.tile;
        }
        if let Some(bv) = &self.dim_j.block_var {
            if e.uses(bv) {
                return self.dim_j.tile;
            }
        }
        if self
            .dim_j
            .thread_var
            .as_deref()
            .map(|v| e.uses(v))
            .unwrap_or(false)
            || self
                .dim_j
                .reg_var
                .as_deref()
                .map(|v| e.uses(v))
                .unwrap_or(false)
        {
            return self.dim_j.tile;
        }
        1
    }
}

/// Fresh-name helper: `base`, `base_1`, `base_2`, … avoiding collisions
/// with existing labels.
pub fn fresh_label(existing: &[String], base: &str) -> String {
    if !existing.iter().any(|l| l == base) {
        return base.to_string();
    }
    for n in 1.. {
        let cand = format!("{base}_{n}");
        if !existing.iter().any(|l| l == &cand) {
            return cand;
        }
    }
    unreachable!()
}
