//! `binding_triangular` — serialize a triangular region onto one thread
//! (Sec. IV.A.4, `Adaptor_Solver`).
//!
//! After the solver-style `loop_tiling`, each row block ends with a
//! diagonal region performing the triangular solve.  The component encloses
//! that region "with a condition of threadIdx.x == 0 && threadIdx.y == 0":
//! thread (0,0) performs the solve for **every** column of the block's
//! strip, bracketed by barriers so the other threads' updates are visible
//! before, and the solved rows are visible after.
//!
//! ⚠ The resulting program communicates *across* threads through barriers;
//! its semantics are only defined under barrier-stepped execution, so it is
//! validated by `oa-gpusim`'s executor rather than by the sequential
//! `loopir` interpreter.

use crate::expr::{AffineExpr, CmpOp, Predicate};
use crate::nest::Program;
use crate::stmt::{Loop, Stmt};
use crate::transform::{GroupingStyle, TResult, TransformError};

/// Apply `binding_triangular(X, thread_id)` (only `thread_id == 0` is
/// supported, as in the paper).
pub fn binding_triangular(p: &mut Program, array: &str, thread_id: u32) -> TResult {
    if thread_id != 0 {
        return Err(TransformError::NotApplicable(
            "only binding to thread 0 is supported".into(),
        ));
    }
    let info = p
        .tiling
        .clone()
        .ok_or_else(|| TransformError::NotApplicable("requires thread_grouping".into()))?;
    if info.style != GroupingStyle::Solver1D {
        return Err(TransformError::NotApplicable(
            "binding_triangular applies to the solver distribution".into(),
        ));
    }
    let diag_label = info.diag_label.clone().ok_or_else(|| {
        TransformError::NotApplicable("no diagonal region; run loop_tiling first".into())
    })?;
    if p.array(array).is_none() {
        return Err(TransformError::Missing(format!("array {array}")));
    }
    let dim_j = info.dim_j.clone();
    let (Some(jt), Some(jj)) = (dim_j.thread_var.clone(), dim_j.reg_var.clone()) else {
        return Err(TransformError::NotApplicable(
            "missing thread distribution".into(),
        ));
    };
    let Some(jb) = dim_j.block_var.clone() else {
        return Err(TransformError::NotApplicable(
            "missing block distribution".into(),
        ));
    };
    let diag = p
        .find_loop(&diag_label)
        .ok_or_else(|| TransformError::Missing(format!("loop {diag_label}")))?
        .clone();

    // The bound region iterates every column jc of the strip: substitute
    // jt -> jc, jj -> 0 so that j = jb*TX + jc.
    let diag_for_col = Stmt::Loop(Box::new(diag.clone()))
        .subst(&jt, &AffineExpr::var("jc"))
        .subst(&jj, &AffineExpr::zero());
    // Guard inner columns of edge strips: jb*TX + jc < N.  We recover N
    // from the guarded j expression's bound in the surrounding If, which
    // the solver grouping produced; structurally we know it is the column
    // count of the output array (any array subscripted by j).
    let n_bound = column_bound(p, &info.dim_j.orig_var).unwrap_or_else(|| AffineExpr::var("N"));
    let col_guard = Predicate::cond(
        AffineExpr::term(&jb, dim_j.tile).add(&AffineExpr::var("jc")),
        CmpOp::Lt,
        n_bound,
    );
    let ljc = Loop::new(
        "Ljc",
        "jc",
        AffineExpr::zero(),
        AffineExpr::cst(dim_j.tile),
        vec![Stmt::guarded(col_guard, vec![diag_for_col])],
    );

    // jj == 0 keeps the bound region from re-executing once per register
    // column of thread 0.
    let mut bound_pred = Predicate::thread0();
    bound_pred = bound_pred.and(crate::expr::AffineCond::new(
        AffineExpr::var(&jj),
        CmpOp::Eq,
        AffineExpr::zero(),
    ));
    let bound = Stmt::If {
        pred: bound_pred,
        then_body: vec![Stmt::Loop(Box::new(ljc))],
        else_body: Vec::new(),
    };

    p.rewrite_loop(&diag_label, &mut |_| {
        vec![Stmt::Sync, bound.clone(), Stmt::Sync]
    });
    Ok(())
}

/// Find the column count of an array subscripted by the given iterator in
/// its column position — the bound of the j dimension.
fn column_bound(p: &Program, j_var: &str) -> Option<AffineExpr> {
    // After grouping, j has been substituted; look instead at declared
    // output arrays: any global array whose cols is a plain parameter that
    // matches the j dimension.  The solver pattern writes B (M x N), so we
    // take the cols of the array written by the innermost statements.
    let assigns = p.assignments();
    let lhs_array = assigns.first().map(|a| a.lhs.array.clone())?;
    let decl = p.array(&lhs_array)?;
    let _ = j_var;
    Some(decl.cols.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::gemm_nn_like;
    use crate::scalar::{Access, BinOp, ScalarExpr};
    use crate::stmt::{AssignOp, AssignStmt};
    use crate::transform::{loop_tiling, thread_grouping, TileParams};

    fn trsm_like() -> Program {
        let mut p = gemm_nn_like("trsm-like");
        p.rewrite_loop("Lk", &mut |mut lk: Loop| {
            lk.upper = AffineExpr::var("i");
            lk.body = vec![Stmt::Assign(AssignStmt::new(
                Access::idx("B", "i", "j"),
                AssignOp::SubAssign,
                ScalarExpr::mul(
                    ScalarExpr::load(Access::idx("A", "i", "k")),
                    ScalarExpr::load(Access::idx("B", "k", "j")),
                ),
            ))];
            vec![
                Stmt::Loop(Box::new(lk)),
                Stmt::Assign(AssignStmt::new(
                    Access::idx("B", "i", "j"),
                    AssignOp::Assign,
                    ScalarExpr::Bin(
                        BinOp::Div,
                        Box::new(ScalarExpr::load(Access::idx("B", "i", "j"))),
                        Box::new(ScalarExpr::load(Access::idx("A", "i", "i"))),
                    ),
                )),
            ]
        });
        p
    }

    fn params() -> TileParams {
        TileParams {
            ty: 8,
            tx: 4,
            thr_i: 4,
            thr_j: 4,
            kb: 4,
            unroll: 0,
        }
    }

    #[test]
    fn binding_wraps_diag_in_thread0_guard() {
        let mut p = trsm_like();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        binding_triangular(&mut p, "A", 0).unwrap();
        // The diagonal loop now lives under a thread0 guard with barriers
        // around it and a per-strip column loop.
        assert!(p.find_loop("Ljc").is_some());
        let s = p.to_string();
        assert!(s.contains("threadIdx.x == 0"));
        assert!(s.contains("__syncthreads"));
    }

    #[test]
    fn binding_requires_solver_style() {
        let mut p = gemm_nn_like("g");
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let err = binding_triangular(&mut p, "A", 0).unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn binding_requires_tiled_diag_region() {
        let mut p = trsm_like();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        let err = binding_triangular(&mut p, "A", 0).unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn nonzero_thread_id_unsupported() {
        let mut p = trsm_like();
        thread_grouping(&mut p, "Li", "Lj", params()).unwrap();
        loop_tiling(&mut p, "Lii", "Ljj", "Lk").unwrap();
        let err = binding_triangular(&mut p, "A", 1).unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }
}
