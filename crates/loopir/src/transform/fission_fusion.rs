//! `loop_fission` / `loop_fusion` — polyhedral-pool components, the
//! building blocks of `format_iteration` (Sec. IV.A.2).

use crate::interp::{equivalent_on, Bindings};
use crate::nest::Program;
use crate::stmt::{Loop, Stmt};
use crate::transform::{TResult, TransformError};

/// Distribute a loop over its body statements: `for v { S1; S2; … }`
/// becomes `for v { S1 }; for v { S2 }; …` with labels `<L>_f0`, `<L>_f1`…
/// Verified by sampled equivalence; returns the new labels.
pub fn loop_fission(p: &mut Program, label: &str) -> TResult<Vec<String>> {
    let l = p
        .find_loop(label)
        .ok_or_else(|| TransformError::Missing(format!("loop {label}")))?
        .clone();
    if l.body.len() < 2 {
        return Err(TransformError::NotApplicable(format!(
            "loop {label} has a single statement; nothing to distribute"
        )));
    }
    let mut labels = Vec::new();
    let pieces: Vec<Stmt> = l
        .body
        .iter()
        .enumerate()
        .map(|(idx, s)| {
            let lbl = format!("{label}_f{idx}");
            labels.push(lbl.clone());
            Stmt::Loop(Box::new(Loop {
                label: lbl,
                var: l.var.clone(),
                lower: l.lower.clone(),
                upper: l.upper.clone(),
                mapping: l.mapping,
                unroll: l.unroll,
                body: vec![s.clone()],
            }))
        })
        .collect();
    let mut candidate = p.clone();
    candidate.rewrite_loop(label, &mut |_| pieces.clone());
    for (size, seed) in [(7, 3u64), (10, 17u64)] {
        if !equivalent_on(p, &candidate, &Bindings::square(size), seed, 1e-4) {
            return Err(TransformError::NotApplicable(format!(
                "fission of {label} changes program semantics"
            )));
        }
    }
    *p = candidate;
    Ok(labels)
}

/// Whether `first` and `second` are loops in the same statement list, with
/// `first` before `second` and no other loop between them.  `Some(false)`
/// when both labels were located but not in that arrangement, `None` when
/// neither occurs in the subtree.
fn adjacent_siblings(stmts: &[Stmt], first: &str, second: &str) -> Option<bool> {
    let mut i1 = None;
    let mut i2 = None;
    for (i, s) in stmts.iter().enumerate() {
        if let Stmt::Loop(l) = s {
            if l.label == first {
                i1 = Some(i);
            } else if l.label == second {
                i2 = Some(i);
            }
        }
    }
    match (i1, i2) {
        (Some(a), Some(b)) => {
            Some(a < b && stmts[a + 1..b].iter().all(|s| !matches!(s, Stmt::Loop(_))))
        }
        // Exactly one found at this level: the other lives in a different
        // scope (deeper, or another branch) — not siblings.
        (Some(_), None) | (None, Some(_)) => Some(false),
        (None, None) => stmts.iter().find_map(|s| match s {
            Stmt::Loop(l) => adjacent_siblings(&l.body, first, second),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => adjacent_siblings(then_body, first, second)
                .or_else(|| adjacent_siblings(else_body, first, second)),
            _ => None,
        }),
    }
}

/// Fuse two adjacent loops with identical bounds into one (keeping the
/// first label).  Verified by sampled equivalence.
pub fn loop_fusion(p: &mut Program, first: &str, second: &str) -> TResult {
    let l1 = p
        .find_loop(first)
        .ok_or_else(|| TransformError::Missing(format!("loop {first}")))?
        .clone();
    let l2 = p
        .find_loop(second)
        .ok_or_else(|| TransformError::Missing(format!("loop {second}")))?
        .clone();
    if l1.lower != l2.lower || l1.upper != l2.upper {
        return Err(TransformError::NotApplicable(format!(
            "loops {first} and {second} have mismatched bounds"
        )));
    }
    // Fusing non-siblings would splice a loop body out of the scope that
    // binds its iterators (e.g. hoisting an inner tile loop's body next to
    // an outer loop), leaving free variables behind — the sampled
    // equivalence run would then abort instead of rejecting cleanly.
    if !adjacent_siblings(&p.body, first, second).unwrap_or(false) {
        return Err(TransformError::NotApplicable(format!(
            "loops {first} and {second} are not adjacent siblings"
        )));
    }
    let mut fused = l1.clone();
    fused.body.extend(
        l2.body
            .iter()
            .map(|s| s.subst(&l2.var, &crate::expr::AffineExpr::var(&l1.var))),
    );

    let mut candidate = p.clone();
    // Remove the second loop, then replace the first with the fusion.
    candidate.rewrite_loop(second, &mut |_| vec![]);
    candidate.rewrite_loop(first, &mut |_| vec![Stmt::Loop(Box::new(fused.clone()))]);
    for (size, seed) in [(7, 5u64), (10, 29u64)] {
        if !equivalent_on(p, &candidate, &Bindings::square(size), seed, 1e-4) {
            return Err(TransformError::NotApplicable(format!(
                "fusion of {first} and {second} changes program semantics"
            )));
        }
    }
    *p = candidate;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::gemm_nn_like;
    use crate::expr::AffineExpr;
    use crate::scalar::{Access, ScalarExpr};
    use crate::stmt::{AssignOp, AssignStmt};

    /// for i { C[i][0] += A[i][0]; C[i][1] += B[i][1] } — independent
    /// statements, fissionable & refusable.
    fn two_stmt_loop() -> Program {
        let mut p = gemm_nn_like("two");
        p.body = vec![Stmt::Loop(Box::new(Loop::new(
            "Li",
            "i",
            AffineExpr::zero(),
            AffineExpr::var("M"),
            vec![
                Stmt::Assign(AssignStmt::new(
                    Access::new("C", AffineExpr::var("i"), AffineExpr::cst(0)),
                    AssignOp::AddAssign,
                    ScalarExpr::load(Access::new("A", AffineExpr::var("i"), AffineExpr::cst(0))),
                )),
                Stmt::Assign(AssignStmt::new(
                    Access::new("C", AffineExpr::var("i"), AffineExpr::cst(1)),
                    AssignOp::AddAssign,
                    ScalarExpr::load(Access::new("B", AffineExpr::var("i"), AffineExpr::cst(1))),
                )),
            ],
        )))];
        p
    }

    #[test]
    fn fission_then_fusion_roundtrip() {
        let reference = two_stmt_loop();
        let mut p = reference.clone();
        let labels = loop_fission(&mut p, "Li").unwrap();
        assert_eq!(labels, vec!["Li_f0", "Li_f1"]);
        assert_eq!(p.loop_labels(), vec!["Li_f0", "Li_f1"]);
        loop_fusion(&mut p, "Li_f0", "Li_f1").unwrap();
        assert_eq!(p.loop_labels(), vec!["Li_f0"]);
        assert!(equivalent_on(&reference, &p, &Bindings::square(6), 1, 1e-5));
    }

    #[test]
    fn fission_single_statement_rejected() {
        let mut p = gemm_nn_like("g");
        let err = loop_fission(&mut p, "Lk").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn illegal_fission_rejected() {
        // for i { C[i][0] = A[i][0]; A[i+... ]: make S2 read C[i][0] of the
        // *previous* statement but S1 of a later iteration reads what S2
        // wrote: use a genuinely order-sensitive pair:
        //   S1: C[i][0] = A[i][0]
        //   S2: A[i+1][0] = C[i][0]
        // Distribution executes all S1 before any S2 — but S1 at i+1 reads
        // A[i+1][0], written by S2 at i. Fission is illegal.
        let mut p = gemm_nn_like("bad");
        p.body = vec![Stmt::Loop(Box::new(Loop::new(
            "Li",
            "i",
            AffineExpr::zero(),
            AffineExpr::var("M").add_const(-1),
            vec![
                Stmt::Assign(AssignStmt::new(
                    Access::new("C", AffineExpr::var("i"), AffineExpr::cst(0)),
                    AssignOp::Assign,
                    ScalarExpr::load(Access::new("A", AffineExpr::var("i"), AffineExpr::cst(0))),
                )),
                Stmt::Assign(AssignStmt::new(
                    Access::new("A", AffineExpr::var("i").add_const(1), AffineExpr::cst(0)),
                    AssignOp::Assign,
                    ScalarExpr::load(Access::new("C", AffineExpr::var("i"), AffineExpr::cst(0))),
                )),
            ],
        )))];
        let err = loop_fission(&mut p, "Li").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn fusion_of_non_siblings_rejected() {
        // for i in 0..M { for k in 0..M { C[i][0] += A[k][0] } }
        // for j in 0..M { C[j][1] += B[j][1] }
        // Lk and Lj have identical bounds, but fusing them would hoist
        // Lk's body out of the scope that binds `i` — the interpreter
        // would hit a free variable instead of a clean rejection.  The
        // differential fuzzer found exactly this crash.
        let mut p = gemm_nn_like("nest");
        p.body = vec![
            Stmt::Loop(Box::new(Loop::new(
                "Li",
                "i",
                AffineExpr::zero(),
                AffineExpr::var("M"),
                vec![Stmt::Loop(Box::new(Loop::new(
                    "Lk",
                    "k",
                    AffineExpr::zero(),
                    AffineExpr::var("M"),
                    vec![Stmt::Assign(AssignStmt::new(
                        Access::new("C", AffineExpr::var("i"), AffineExpr::cst(0)),
                        AssignOp::AddAssign,
                        ScalarExpr::load(Access::new(
                            "A",
                            AffineExpr::var("k"),
                            AffineExpr::cst(0),
                        )),
                    ))],
                )))],
            ))),
            Stmt::Loop(Box::new(Loop::new(
                "Lj",
                "j",
                AffineExpr::zero(),
                AffineExpr::var("M"),
                vec![Stmt::Assign(AssignStmt::new(
                    Access::new("C", AffineExpr::var("j"), AffineExpr::cst(1)),
                    AssignOp::AddAssign,
                    ScalarExpr::load(Access::new("B", AffineExpr::var("j"), AffineExpr::cst(1))),
                ))],
            ))),
        ];
        let err = loop_fusion(&mut p, "Lk", "Lj").unwrap_err();
        assert!(
            matches!(&err, TransformError::NotApplicable(m) if m.contains("adjacent")),
            "unexpected error: {err:?}"
        );
        // Same labels the other way round: Lj is top-level, Lk nested.
        let err = loop_fusion(&mut p, "Lj", "Lk").unwrap_err();
        assert!(matches!(&err, TransformError::NotApplicable(_)));
    }

    #[test]
    fn fusion_bound_mismatch_rejected() {
        let mut p = two_stmt_loop();
        loop_fission(&mut p, "Li").unwrap();
        // Shrink the second loop's bound.
        p.rewrite_loop("Li_f1", &mut |mut l| {
            l.upper = AffineExpr::var("M").add_const(-1);
            vec![Stmt::Loop(Box::new(l))]
        });
        let err = loop_fusion(&mut p, "Li_f0", "Li_f1").unwrap_err();
        assert!(matches!(err, TransformError::NotApplicable(_)));
    }
}
